// Experiment P1 — performance of the simulation substrate itself:
// event-queue throughput, allocator decision latency, end-to-end
// scheduler throughput and trace post-processing. These are the numbers
// that justify "laptop-scale pure discrete-event simulation".
#include <benchmark/benchmark.h>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/intervals.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/sim/event_queue.hpp"
#include "moldsched/util/rng.hpp"

namespace {

using namespace moldsched;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = state.range(0);
  util::Rng rng(1);
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    times.push_back(rng.uniform(0.0, 1e6));
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::int64_t i = 0; i < n; ++i)
      q.schedule(times[static_cast<std::size_t>(i)], i);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1 << 10)->Arg(1 << 16);

void BM_LpaDecide(benchmark::State& state) {
  const core::LpaAllocator alloc(0.271);
  const model::AmdahlModel m(1000.0, 30.0);
  const int P = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.decide(m, P));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LpaDecide)->Arg(64)->Arg(1 << 12)->Arg(1 << 20);

void BM_SchedulerThroughput(benchmark::State& state) {
  util::Rng rng(7);
  const model::ModelSampler sampler(model::ModelKind::kGeneral);
  const int P = 128;
  const auto g = graph::layered_random(
      static_cast<int>(state.range(0)), 8, 24, 0.25, rng,
      graph::sampling_provider(sampler, rng, P));
  const core::LpaAllocator alloc(
      analysis::optimal_mu(model::ModelKind::kGeneral));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_online(g, P, alloc));
  }
  state.SetItemsProcessed(state.iterations() * g.num_tasks());
  state.counters["tasks"] = static_cast<double>(g.num_tasks());
}
BENCHMARK(BM_SchedulerThroughput)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_IntervalClassification(benchmark::State& state) {
  util::Rng rng(9);
  const model::ModelSampler sampler(model::ModelKind::kAmdahl);
  const int P = 64;
  const auto g = graph::layered_random(
      64, 8, 16, 0.3, rng, graph::sampling_provider(sampler, rng, P));
  const core::LpaAllocator alloc(0.271);
  const auto result = core::schedule_online(g, P, alloc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::classify_intervals(result.trace, P, 0.271));
  }
}
BENCHMARK(BM_IntervalClassification)->Unit(benchmark::kMillisecond);

void BM_GraphGeneration(benchmark::State& state) {
  util::Rng rng(11);
  const model::ModelSampler sampler(model::ModelKind::kCommunication);
  const auto provider = graph::sampling_provider(sampler, rng, 64);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::erdos_renyi_dag(n, 0.05, rng, provider));
  }
}
BENCHMARK(BM_GraphGeneration)->Arg(100)->Arg(400)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
