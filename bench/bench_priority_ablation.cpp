// Ablation A2 — waiting-queue priority rules.
//
// Algorithm 1 inserts available tasks "without any priority
// considerations" (FIFO) but the paper remarks that priority rules may
// help in practice. This ablation runs the same LPA allocation under
// the different queue policies and reports the measured ratios.
#include <benchmark/benchmark.h>

#include <iostream>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/experiment.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/util/stats.hpp"
#include "moldsched/util/table.hpp"

namespace {

using namespace moldsched;

void run_ablation(model::ModelKind kind, int P) {
  const double mu = analysis::optimal_mu(kind);
  const core::LpaAllocator alloc(mu);

  util::Table t({"queue policy", "mean T/LB", "p95 T/LB", "max T/LB"});
  for (const auto policy :
       {core::QueuePolicy::kFifo, core::QueuePolicy::kLifo,
        core::QueuePolicy::kLargestWorkFirst,
        core::QueuePolicy::kLongestMinTimeFirst,
        core::QueuePolicy::kSmallestAllocFirst}) {
    util::Rng rng(29);
    std::vector<double> ratios;
    for (int rep = 0; rep < 3; ++rep) {
      for (const auto& gc : analysis::random_graph_catalog(kind, P, rng)) {
        const auto result = core::schedule_online(gc.graph, P, alloc, policy);
        ratios.push_back(result.makespan /
                         analysis::optimal_makespan_lower_bound(gc.graph, P));
      }
    }
    const auto s = util::summarize(ratios);
    t.new_row()
        .cell(core::to_string(policy))
        .cell(s.mean, 3)
        .cell(s.p95, 3)
        .cell(s.max, 3);
  }
  t.print(std::cout, "queue-policy ablation, model = " +
                         model::to_string(kind) + ", P = " +
                         std::to_string(P) + " (same LPA allocation)");
  std::cout << '\n';
}

void BM_PolicyOverhead(benchmark::State& state) {
  const auto policy = static_cast<core::QueuePolicy>(state.range(0));
  const double mu = analysis::optimal_mu(model::ModelKind::kAmdahl);
  const core::LpaAllocator alloc(mu);
  util::Rng rng(3);
  const model::ModelSampler sampler(model::ModelKind::kAmdahl);
  const auto g = graph::layered_random(
      20, 4, 12, 0.3, rng, graph::sampling_provider(sampler, rng, 32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_online(g, 32, alloc, policy));
  }
}
BENCHMARK(BM_PolicyOverhead)
    ->Arg(static_cast<int>(core::QueuePolicy::kFifo))
    ->Arg(static_cast<int>(core::QueuePolicy::kLargestWorkFirst))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== bench_priority_ablation: queue policies ===\n\n";
  for (const auto kind :
       {model::ModelKind::kCommunication, model::ModelKind::kAmdahl,
        model::ModelKind::kGeneral}) {
    run_ablation(kind, 32);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
