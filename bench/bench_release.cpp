// Extension X2 — independent moldable tasks released over time (the
// other online setting of Section 2; Ye et al. [23] prove a
// 16.74-competitive algorithm for it, and the paper's conclusion names
// it as future work for this framework).
//
// Measures the LPA-based list scheduler's makespan against the
// release-aware lower bound across arrival intensities and allocator
// choices; empirical ratios sit far below Ye et al.'s worst-case 16.74.
#include <benchmark/benchmark.h>

#include <iostream>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/sched/baselines.hpp"
#include "moldsched/sched/release_scheduler.hpp"
#include "moldsched/util/stats.hpp"
#include "moldsched/util/table.hpp"

namespace {

using namespace moldsched;

std::vector<sched::ReleasedTask> make_arrivals(model::ModelKind kind, int n,
                                               int P, double rate,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  const model::ModelSampler sampler(kind);
  std::vector<sched::ReleasedTask> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    if (rate > 0.0) t += rng.exponential(rate);
    tasks.push_back({sampler.sample(rng, P), t, "t" + std::to_string(i)});
  }
  return tasks;
}

void sweep(model::ModelKind kind) {
  const int P = 32;
  const int n = 150;
  const double mu = analysis::optimal_mu(kind);
  const core::LpaAllocator lpa(mu);
  const sched::MinTimeAllocator greedy;
  const sched::SequentialAllocator sequential;

  util::Table t({"arrival rate", "LB", "lpa T/LB", "min-time T/LB",
                 "sequential T/LB"});
  for (const double rate : {0.0, 0.05, 0.2, 1.0}) {
    util::Accumulator lb_acc;
    util::Accumulator r_lpa;
    util::Accumulator r_greedy;
    util::Accumulator r_seq;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const auto tasks = make_arrivals(kind, n, P, rate, seed);
      const double lb = sched::release_makespan_lower_bound(tasks, P);
      lb_acc.add(lb);
      r_lpa.add(sched::OnlineReleaseScheduler(tasks, P, lpa).run().makespan /
                lb);
      r_greedy.add(
          sched::OnlineReleaseScheduler(tasks, P, greedy).run().makespan / lb);
      r_seq.add(
          sched::OnlineReleaseScheduler(tasks, P, sequential).run().makespan /
          lb);
    }
    t.new_row()
        .cell(rate, 2)
        .cell(lb_acc.mean(), 1)
        .cell(r_lpa.mean(), 3)
        .cell(r_greedy.mean(), 3)
        .cell(r_seq.mean(), 3);
  }
  t.print(std::cout,
          "model = " + model::to_string(kind) + ", n = " +
              std::to_string(n) + ", P = " + std::to_string(P) +
              " (rate 0 = all released at t=0; Ye et al. worst case 16.74)");
  std::cout << '\n';
}

void BM_ReleaseSchedule(benchmark::State& state) {
  const int P = 32;
  const auto tasks = make_arrivals(model::ModelKind::kAmdahl,
                                   static_cast<int>(state.range(0)), P, 0.2,
                                   5);
  const core::LpaAllocator alloc(
      analysis::optimal_mu(model::ModelKind::kAmdahl));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::OnlineReleaseScheduler(tasks, P, alloc).run());
  }
}
BENCHMARK(BM_ReleaseSchedule)->Arg(100)->Arg(1000)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== bench_release: tasks released over time ===\n\n";
  for (const auto kind :
       {model::ModelKind::kRoofline, model::ModelKind::kCommunication,
        model::ModelKind::kAmdahl, model::ModelKind::kGeneral}) {
    sweep(kind);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
