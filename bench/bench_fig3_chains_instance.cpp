// Experiment E5 — Figure 3: the Section 5 linear-chains instance.
//
// Prints the group structure (2^{K-i} chains of length i), platform
// size P = K * 2^{K-1} and task totals for ell = 1, 2, 3 — Figure 3 is
// the ell = 2 row — and verifies the offline schedule that finishes at
// time 1 (Figure 4a).
#include <benchmark/benchmark.h>

#include <iostream>
#include <sstream>

#include "moldsched/graph/algorithms.hpp"
#include "moldsched/graph/chains.hpp"
#include "moldsched/sched/chain_scheduler.hpp"
#include "moldsched/util/table.hpp"

namespace {

using namespace moldsched;

void print_structures() {
  util::Table t({"ell", "K=2^ell", "chains (2^K - 1)", "tasks", "P",
                 "groups (len:count)", "offline makespan"});
  for (const int ell : {1, 2, 3}) {
    const int K = 1 << ell;
    const auto inst = graph::make_chains_instance(K);
    std::ostringstream groups;
    for (int i = 1; i <= K; ++i) {
      if (i > 1) groups << ' ';
      groups << i << ':'
             << inst.chains_per_group[static_cast<std::size_t>(i - 1)];
    }
    t.new_row()
        .cell(ell)
        .cell(K)
        .cell(static_cast<long long>(inst.num_chains))
        .cell(static_cast<long long>(inst.total_tasks))
        .cell(static_cast<long long>(inst.P))
        .cell(groups.str())
        .cell(sched::verify_offline_chain_schedule(inst), 3);
  }
  t.print(std::cout,
          "Figure 3 — chains instance (the paper draws ell = 2: 15 chains, "
          "26 tasks, P = 32)");
  std::cout << '\n';

  // Materialize the Figure 3 graph and confirm its headline numbers.
  const auto inst = graph::make_chains_instance(4);
  const auto g = graph::chains_graph(inst);
  std::cout << "materialized ell=2 graph: " << g.num_tasks() << " tasks, "
            << g.num_edges() << " edges, D = " << graph::longest_hop_count(g)
            << ", task model " << g.model_of(0).describe() << "\n\n";
}

void BM_BuildChainsGraph(benchmark::State& state) {
  const auto inst =
      graph::make_chains_instance(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::chains_graph(inst));
  }
  state.counters["tasks"] = static_cast<double>(inst.total_tasks);
}
BENCHMARK(BM_BuildChainsGraph)->Arg(4)->Arg(8)->Arg(12)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== bench_fig3_chains_instance: Figure 3 ===\n\n";
  print_structures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
