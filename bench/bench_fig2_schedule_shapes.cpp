// Experiment E4 — Figure 2: the *shape* of the schedules on the generic
// lower-bound graph.
//
// Figure 2(a): Algorithm 1 serializes every layer — the X B-tasks run
// together (filling most of the machine), then the lone A-task runs on
// ceil(mu P) processors while everything else idles. Figure 2(b): the
// alternative (offline) schedule runs the A-chain first at full speed,
// then executes all B tasks and C compactly.
//
// This bench simulates both and prints the quantities that make the
// shapes visible: the alternating utilization levels of the online
// schedule, its T1/T2/T3 interval decomposition, and the makespans.
#include <benchmark/benchmark.h>

#include <iostream>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/intervals.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/adversary.hpp"
#include "moldsched/sim/gantt.hpp"
#include "moldsched/util/table.hpp"

namespace {

using namespace moldsched;

void print_shape(const std::string& label,
                 const graph::AdversaryInstance& inst) {
  const core::LpaAllocator alloc(inst.mu);
  const auto result = core::schedule_online(inst.graph, inst.P, alloc);
  const auto profile = result.trace.utilization_profile();

  // The online schedule alternates between exactly two utilization
  // levels: X*p_B (B-phase) and p_A (A-phase), plus the final C phase.
  const int b_level = inst.X * inst.expected_alloc_b;
  const int a_level = inst.expected_alloc_a;
  int b_phases = 0;
  int a_phases = 0;
  int other = 0;
  for (const auto& iv : profile) {
    if (iv.procs_in_use == b_level)
      ++b_phases;
    else if (iv.procs_in_use == a_level)
      ++a_phases;
    else
      ++other;
  }

  const auto breakdown = core::classify_intervals(result.trace, inst.P,
                                                  inst.mu);
  util::Table t({"quantity", "value"});
  t.new_row().cell("platform P").cell(inst.P);
  t.new_row().cell("layers Y").cell(inst.Y);
  t.new_row().cell("B-phase utilization (X*p_B)").cell(b_level);
  t.new_row().cell("A-phase utilization (p_A)").cell(a_level);
  t.new_row().cell("B-phase intervals").cell(b_phases);
  t.new_row().cell("A-phase intervals").cell(a_phases);
  t.new_row().cell("other intervals (C phase)").cell(other);
  t.new_row().cell("T1 (low load)").cell(breakdown.t1, 4);
  t.new_row().cell("T2 (mid load)").cell(breakdown.t2, 4);
  t.new_row().cell("T3 (high load)").cell(breakdown.t3, 4);
  t.new_row().cell("online makespan T").cell(result.makespan, 4);
  t.new_row().cell("alternative schedule T_alt").cell(inst.t_opt_upper, 4);
  t.new_row().cell("ratio T / T_alt").cell(
      result.makespan / inst.t_opt_upper, 4);
  t.print(std::cout, label);
  std::cout << '\n';
}

void print_small_gantt() {
  // A directly visible Figure 2(a): tiny communication instance whose
  // Gantt chart shows the B-block / lone-A alternation per layer.
  const double mu = analysis::optimal_mu(model::ModelKind::kCommunication);
  const auto inst = graph::communication_adversary(12, mu);
  const core::LpaAllocator alloc(inst.mu);
  const auto result = core::schedule_online(inst.graph, inst.P, alloc);
  std::cout << "Figure 2(a) rendered (communication instance, P=12, first "
               "layers):\n"
            << sim::render_gantt(result.trace, inst.graph, inst.P, 100)
            << '\n';
}

void BM_OnlineScheduleOnAdversary(benchmark::State& state) {
  const double mu = analysis::optimal_mu(model::ModelKind::kAmdahl);
  const auto inst =
      graph::amdahl_adversary(static_cast<int>(state.range(0)), mu);
  const core::LpaAllocator alloc(mu);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::schedule_online(inst.graph, inst.P, alloc));
  }
}
BENCHMARK(BM_OnlineScheduleOnAdversary)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== bench_fig2_schedule_shapes: Figure 2 ===\n\n";
  const double mu_c = analysis::optimal_mu(model::ModelKind::kCommunication);
  print_shape(
      "Figure 2(a) shape — communication instance, P=64 (each of the Y "
      "layers contributes one B-phase and one A-phase interval)",
      graph::communication_adversary(64, mu_c));
  const double mu_a = analysis::optimal_mu(model::ModelKind::kAmdahl);
  print_shape("Figure 2(a) shape — Amdahl instance, K=12 (P=144)",
              graph::amdahl_adversary(12, mu_a));
  print_small_gantt();
  std::cout
      << "Figure 2(b) is the alternative schedule whose makespan T_alt is\n"
         "printed above: A-chain at full machine speed, then B tasks and C\n"
         "packed in parallel. The T/T_alt gap is the lower-bound ratio.\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
