// Experiment E9 — constant competitiveness in P.
//
// The whole point of Theorems 1-4 is that the ratio bound does not
// depend on the platform size. This bench fixes a workload family and
// sweeps P across two orders of magnitude, reporting the measured
// T / LB per model: the ratios stay flat (and far below the bounds)
// while baselines may drift.
#include <benchmark/benchmark.h>

#include <iostream>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/analysis/report.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/util/stats.hpp"
#include "moldsched/util/table.hpp"

namespace {

using namespace moldsched;

double mean_ratio(model::ModelKind kind, int P, std::uint64_t seed) {
  const double mu = analysis::optimal_mu(kind);
  const core::LpaAllocator alloc(mu);
  const model::ModelSampler sampler(kind);
  util::Rng rng(seed);
  util::Accumulator acc;
  for (int rep = 0; rep < 4; ++rep) {
    const auto provider = graph::sampling_provider(sampler, rng, P);
    const auto g = graph::layered_random(8, 3, 12, 0.3, rng, provider);
    const auto result = core::schedule_online(g, P, alloc);
    acc.add(result.makespan /
            analysis::optimal_makespan_lower_bound(g, P));
  }
  return acc.mean();
}

void print_scaling() {
  util::Table t({"P", "roofline T/LB", "comm T/LB", "amdahl T/LB",
                 "general T/LB"});
  for (const int P : {8, 16, 32, 64, 128, 256, 512}) {
    t.new_row()
        .cell(P)
        .cell(mean_ratio(model::ModelKind::kRoofline, P, 3), 3)
        .cell(mean_ratio(model::ModelKind::kCommunication, P, 3), 3)
        .cell(mean_ratio(model::ModelKind::kAmdahl, P, 3), 3)
        .cell(mean_ratio(model::ModelKind::kGeneral, P, 3), 3);
  }
  t.print(std::cout,
          "measured mean T/LB vs platform size (bounds: 2.62 / 3.60 / "
          "4.73 / 5.71, independent of P)");
  analysis::write_file("results/scaling.csv", t.to_csv());
  std::cout << '\n';
}

void BM_ScheduleAtScale(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  const auto kind = model::ModelKind::kGeneral;
  util::Rng rng(5);
  const model::ModelSampler sampler(kind);
  const auto g = graph::layered_random(
      12, 4, 16, 0.3, rng, graph::sampling_provider(sampler, rng, P));
  const core::LpaAllocator alloc(analysis::optimal_mu(kind));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_online(g, P, alloc));
  }
}
BENCHMARK(BM_ScheduleAtScale)->Arg(32)->Arg(256)->Arg(2048)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== bench_scaling: ratio stability across platform sizes "
               "===\n\n";
  print_scaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
