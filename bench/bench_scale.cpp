// Scale-tier benchmark for the million-task graph engine, emitting a
// machine-readable BENCH_scale.json.
//
// Like bench_hot_paths this is a plain executable that owns its output
// format so CI can assert the recorded guards. Per tier it builds a
// layered_uniform DAG (exact-reserved CSR build), runs the full online
// scheduler + simulator end to end, validates the schedule, and checks
// the critical-path lower bound. The JSON records, per tier:
//   * build_tasks_per_s     — graph construction + CSR adjacency build
//   * schedule_tasks_per_s  — core::schedule_online end to end
//   * graph_bytes           — TaskGraph::memory_bytes() after the build
//   * peak_rss_bytes        — VmHWM high-water mark after the tier
// and two guard verdicts on the largest tier run:
//   * schedule_tasks_per_s >= --floor  (tasks/second floor)
//   * peak_rss_bytes       <= --rss-ceiling
// The process exits nonzero when a guard fails, so CI needs no parser
// to enforce them (it still uploads the JSON for trend tracking).
//
// Usage: bench_scale [--max-tasks N] [--out PATH] [--rounds R]
//                    [--floor TASKS_PER_S] [--rss-ceiling BYTES] [--procs P]
// Default --max-tasks is 10^5 (smoke); the nightly scale job passes
// 10^7. Tiers run at 10^5, 10^6, 10^7 up to --max-tasks.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/graph/passes.hpp"
#include "moldsched/model/general_model.hpp"
#include "moldsched/obs/process_stats.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/flags.hpp"
#include "moldsched/util/rng.hpp"

namespace {

namespace graph = moldsched::graph;
namespace model = moldsched::model;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct TierShape {
  long tasks;
  int layers;
  int width;
  int degree;
};

/// Layer shapes chosen so every tier has both parallelism (width >> P)
/// and depth (hundreds of scheduling waves).
constexpr TierShape kTiers[] = {
    {100'000, 100, 1'000, 2},
    {1'000'000, 500, 2'000, 2},
    {10'000'000, 2'000, 5'000, 2},
};

struct TierResult {
  TierShape shape{};
  std::size_t edges = 0;
  double build_s = 0.0;
  double schedule_s = 0.0;
  double makespan = 0.0;
  double lower_bound = 0.0;
  std::size_t graph_bytes = 0;
  double peak_rss_bytes = 0.0;

  [[nodiscard]] double build_tasks_per_s() const {
    return build_s > 0.0 ? static_cast<double>(shape.tasks) / build_s : 0.0;
  }
  [[nodiscard]] double schedule_tasks_per_s() const {
    return schedule_s > 0.0 ? static_cast<double>(shape.tasks) / schedule_s
                            : 0.0;
  }
};

/// A pool of distinct Eq. (1) models cycled across tasks: enough variety
/// that the decision cache works like it does on real mixed workloads
/// (one entry per distinct model) instead of degenerating to a single
/// all-hits entry.
graph::ModelProvider pooled_provider(int pool_size, std::uint64_t seed) {
  moldsched::util::Rng rng(seed);
  auto pool = std::make_shared<std::vector<model::ModelPtr>>();
  pool->reserve(static_cast<std::size_t>(pool_size));
  for (int i = 0; i < pool_size; ++i) {
    model::GeneralParams params;
    params.w = rng.log_uniform(1.0, 100.0);
    params.d = rng.log_uniform(0.01, 1.0);
    params.c = rng.log_uniform(1e-4, 1e-2);
    params.pbar = static_cast<int>(rng.uniform_int(4, 256));
    pool->push_back(std::make_shared<model::GeneralModel>(params));
  }
  auto next = std::make_shared<std::size_t>(0);
  return [pool, next] {
    const auto& m = (*pool)[*next % pool->size()];
    ++*next;
    return m;
  };
}

TierResult run_tier(const TierShape& shape, int P, int rounds,
                    bool check_bits) {
  TierResult r;
  r.shape = shape;

  double best_build = std::numeric_limits<double>::infinity();
  double best_sched = std::numeric_limits<double>::infinity();
  double first_makespan = 0.0;
  for (int round = 0; round < rounds; ++round) {
    const double t0 = now_s();
    const auto g = graph::layered_uniform(shape.layers, shape.width,
                                          shape.degree, /*seed=*/7,
                                          pooled_provider(64, 11));
    g.build_adjacency();
    const double t1 = now_s();

    const moldsched::core::LpaAllocator lpa(0.25);
    const auto cache = std::make_shared<moldsched::core::DecisionCache>();
    const moldsched::core::CachingAllocator cached(lpa, cache);
    const double t2 = now_s();
    const auto result = moldsched::core::schedule_online(g, P, cached);
    const double t3 = now_s();

    if (round == 0) {
      r.edges = g.num_edges();
      r.graph_bytes = g.memory_bytes();
      first_makespan = result.makespan;
      moldsched::sim::expect_valid_schedule(g, result.trace, P);
      const auto weights = graph::passes::min_time_weights(g, P);
      r.lower_bound = graph::passes::critical_path(g, weights).length;
      if (result.makespan < r.lower_bound) {
        throw std::logic_error("bench_scale: makespan " +
                               std::to_string(result.makespan) +
                               " below critical-path bound " +
                               std::to_string(r.lower_bound));
      }
    } else if (check_bits && result.makespan != first_makespan) {
      throw std::logic_error("bench_scale: makespan not bit-identical across "
                             "rounds");
    }
    r.makespan = result.makespan;
    best_build = std::min(best_build, t1 - t0);
    best_sched = std::min(best_sched, t3 - t2);
  }
  r.build_s = best_build;
  r.schedule_s = best_sched;
  r.peak_rss_bytes = moldsched::obs::read_peak_rss_bytes();
  return r;
}

std::string to_json(const std::vector<TierResult>& tiers, int P, int rounds,
                    double floor_tps, double rss_ceiling, bool floor_ok,
                    bool rss_ok) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  os << "{\n  \"bench\": \"scale\",\n  \"procs\": " << P
     << ",\n  \"rounds\": " << rounds << ",\n  \"tiers\": [\n";
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    const TierResult& r = tiers[i];
    os << "    {\n"
       << "      \"tasks\": " << r.shape.tasks << ",\n"
       << "      \"layers\": " << r.shape.layers << ",\n"
       << "      \"width\": " << r.shape.width << ",\n"
       << "      \"degree\": " << r.shape.degree << ",\n"
       << "      \"edges\": " << r.edges << ",\n"
       << "      \"build_s\": " << r.build_s << ",\n"
       << "      \"build_tasks_per_s\": " << r.build_tasks_per_s() << ",\n"
       << "      \"schedule_s\": " << r.schedule_s << ",\n"
       << "      \"schedule_tasks_per_s\": " << r.schedule_tasks_per_s()
       << ",\n"
       << "      \"makespan\": " << r.makespan << ",\n"
       << "      \"critical_path_lb\": " << r.lower_bound << ",\n"
       << "      \"graph_bytes\": " << r.graph_bytes << ",\n"
       << "      \"peak_rss_bytes\": " << r.peak_rss_bytes << "\n"
       << "    }" << (i + 1 < tiers.size() ? "," : "") << '\n';
  }
  os << "  ],\n"
     << "  \"guards\": {\n"
     << "    \"floor_tasks_per_s\": " << floor_tps << ",\n"
     << "    \"floor_ok\": " << (floor_ok ? "true" : "false") << ",\n"
     << "    \"rss_ceiling_bytes\": " << rss_ceiling << ",\n"
     << "    \"rss_ok\": " << (rss_ok ? "true" : "false") << "\n"
     << "  }\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const moldsched::util::Flags flags(argc, argv);
  const std::string out = flags.get_string("out", "BENCH_scale.json");
  const long max_tasks = flags.get_int("max-tasks", 100'000);
  const int rounds = static_cast<int>(flags.get_int("rounds", 2));
  const int P = static_cast<int>(flags.get_int("procs", 256));
  // Floors sit far (>= 4x) below the numbers measured on a single-core
  // dev container (see EXPERIMENTS.md for the measured table), so they
  // catch order-of-magnitude regressions — an accidental O(E) rebuild
  // per release, a per-task allocation — without flaking on slow CI.
  const double floor_tps = flags.get_double("floor", 100'000.0);
  const double rss_ceiling = flags.get_double("rss-ceiling", 8.0e9);
  if (rounds < 1 || P < 1 || max_tasks < 1) {
    std::cerr << "bench_scale: --rounds, --procs, --max-tasks must be >= 1\n";
    return 2;
  }

  std::vector<TierResult> tiers;
  try {
    for (const TierShape& shape : kTiers) {
      if (shape.tasks > max_tasks) break;
      std::cerr << "bench_scale: tier " << shape.tasks << " tasks...\n";
      tiers.push_back(run_tier(shape, P, rounds, /*check_bits=*/true));
      const TierResult& r = tiers.back();
      std::cerr << "  build " << r.build_tasks_per_s() / 1e6
                << " Mtasks/s, schedule " << r.schedule_tasks_per_s() / 1e6
                << " Mtasks/s, peak rss " << r.peak_rss_bytes / 1e9
                << " GB\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_scale: " << e.what() << '\n';
    return 2;
  }
  if (tiers.empty()) {
    std::cerr << "bench_scale: no tier fits under --max-tasks\n";
    return 2;
  }

  const TierResult& top = tiers.back();
  const bool floor_ok = top.schedule_tasks_per_s() >= floor_tps;
  const bool rss_ok =
      top.peak_rss_bytes > 0.0 && top.peak_rss_bytes <= rss_ceiling;

  const std::string json =
      to_json(tiers, P, rounds, floor_tps, rss_ceiling, floor_ok, rss_ok);
  std::ofstream file(out);
  if (!file) {
    std::cerr << "bench_scale: cannot open '" << out << "'\n";
    return 2;
  }
  file << json;
  std::cout << json;

  if (!floor_ok) {
    std::cerr << "bench_scale: GUARD FAILED: " << top.schedule_tasks_per_s()
              << " tasks/s below floor " << floor_tps << '\n';
    return 1;
  }
  if (!rss_ok) {
    std::cerr << "bench_scale: GUARD FAILED: peak rss " << top.peak_rss_bytes
              << " over ceiling " << rss_ceiling << '\n';
    return 1;
  }
  return 0;
}
