// Experiment E7 — the practical-performance study the paper's conclusion
// anticipates: "our algorithm will perform much better practically than
// predicted by the worst-case competitive ratios."
//
// Runs Algorithm 1 and the baseline suite over a diverse random-DAG
// catalog for each speedup model and reports makespan ratios against the
// Lemma 2 lower bound (a conservative over-estimate of the true
// competitive ratio). Observe: measured ratios sit far below the
// Table 1 constants.
#include <benchmark/benchmark.h>

#include <iostream>

#include "moldsched/analysis/experiment.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/analysis/report.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/sched/registry.hpp"

namespace {

using namespace moldsched;

void run_model(model::ModelKind kind, int P, std::uint64_t seed) {
  const double mu = analysis::optimal_mu(kind);
  util::Rng rng(seed);
  // Aggregate across several seeds' worth of catalogs.
  std::vector<analysis::GraphCase> cases;
  for (int rep = 0; rep < 3; ++rep) {
    auto batch = analysis::random_graph_catalog(kind, P, rng);
    for (auto& gc : batch) cases.push_back(std::move(gc));
  }
  auto suite = sched::standard_suite(mu);
  for (auto& variant : sched::engine_variants(mu))
    suite.push_back(std::move(variant));
  const auto rows = analysis::compare_suite(cases, P, suite);
  analysis::write_file(
      "results/random_dags_" + model::to_string(kind) + ".csv",
      analysis::suite_table(rows).to_csv());
  analysis::suite_table(rows).print(
      std::cout, "model = " + model::to_string(kind) +
                     ", P = " + std::to_string(P) + ", " +
                     std::to_string(cases.size()) +
                     " random graphs (ratio = makespan / Lemma-2 LB; "
                     "theorem bound = " +
                     util::format_double(
                         analysis::optimal_ratio(kind).upper_bound, 2) +
                     ")");
  std::cout << '\n';
}

void BM_LpaOnLayeredGraph(benchmark::State& state) {
  const auto kind = model::ModelKind::kGeneral;
  util::Rng rng(42);
  const model::ModelSampler sampler(kind);
  const int P = 64;
  const auto g = graph::layered_random(
      static_cast<int>(state.range(0)), 4, 16, 0.3, rng,
      graph::sampling_provider(sampler, rng, P));
  const core::LpaAllocator alloc(analysis::optimal_mu(kind));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_online(g, P, alloc));
  }
  state.counters["tasks"] = static_cast<double>(g.num_tasks());
}
BENCHMARK(BM_LpaOnLayeredGraph)->Arg(10)->Arg(40)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== bench_random_dags: practical performance on random "
               "DAGs ===\n\n";
  for (const auto kind :
       {model::ModelKind::kRoofline, model::ModelKind::kCommunication,
        model::ModelKind::kAmdahl, model::ModelKind::kGeneral}) {
    run_model(kind, 32, 1234);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
