// Experiment E7 — the practical-performance study the paper's conclusion
// anticipates: "our algorithm will perform much better practically than
// predicted by the worst-case competitive ratios."
//
// The study now lives in the experiment engine: the "random-dags" suite
// runs Algorithm 1 and the baseline suite over a diverse random-DAG
// catalog for each speedup model and aggregates makespan ratios against
// the Lemma 2 lower bound (a conservative over-estimate of the true
// competitive ratio). Observe: measured ratios sit far below the
// Table 1 constants. This binary is a thin wrapper over
// engine::run_suite (equivalent to `moldsched_run --suite random-dags`)
// plus the micro-benchmark sections.
#include <benchmark/benchmark.h>

#include <iostream>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/engine/suites.hpp"
#include "moldsched/graph/generators.hpp"

namespace {

using namespace moldsched;

void BM_LpaOnLayeredGraph(benchmark::State& state) {
  const auto kind = model::ModelKind::kGeneral;
  util::Rng rng(42);
  const model::ModelSampler sampler(kind);
  const int P = 64;
  const auto g = graph::layered_random(
      static_cast<int>(state.range(0)), 4, 16, 0.3, rng,
      graph::sampling_provider(sampler, rng, P));
  const core::LpaAllocator alloc(analysis::optimal_mu(kind));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_online(g, P, alloc));
  }
  state.counters["tasks"] = static_cast<double>(g.num_tasks());
}
BENCHMARK(BM_LpaOnLayeredGraph)->Arg(10)->Arg(40)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== bench_random_dags: practical performance on random "
               "DAGs ===\n\n";
  engine::SuiteOptions options;
  options.human_out = &std::cout;
  (void)engine::run_suite("random-dags", options);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
