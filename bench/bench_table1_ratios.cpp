// Experiment E1/E2 — Table 1 of the paper.
//
// Part 1 re-derives every Table 1 entry numerically: the upper bounds by
// minimizing the Theorem 1-4 ratio functions over mu, the lower bounds
// from the closed-form Theorem 5-8 limits at the same mu.
//
// Part 2 *measures* the lower bounds: it runs Algorithm 1 on the
// adversarial instances at growing platform sizes and reports the
// simulated ratio T / T_alt (T_alt = the proofs' explicit alternative
// schedule), which climbs toward the closed-form limit.
//
// Paper reference values:
//   Model        Roofline  Comm.  Amdahl  General
//   Upper bound  2.62      3.61   4.74    5.72
//   Lower bound  2.61      3.51   4.73    5.25
#include <benchmark/benchmark.h>

#include <iostream>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/analysis/report.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/adversary.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/util/table.hpp"

namespace {

using namespace moldsched;

double simulated_ratio(const graph::AdversaryInstance& inst) {
  const core::LpaAllocator alloc(inst.mu);
  const auto result = core::schedule_online(inst.graph, inst.P, alloc);
  return result.makespan / inst.t_opt_upper;
}

void print_table1() {
  const auto rows = analysis::compute_table1();
  const auto table = analysis::table1_table(rows);
  table.print(
      std::cout,
      "Table 1 — competitive ratios of Algorithm 1 (numerically derived)");
  analysis::write_file("results/table1.csv", table.to_csv());
  std::cout << "paper reports: upper 2.62 / 3.61 / 4.74 / 5.72, "
               "lower 2.61 / 3.51 / 4.73 / 5.25\n\n";
}

void print_empirical_lower_bounds() {
  const auto rows = analysis::compute_table1();
  util::Table t({"Model", "instance size", "simulated T/T_alt",
                 "closed-form limit", "upper bound"});
  for (const auto& row : rows) {
    auto emit = [&](const std::string& size_label,
                    const graph::AdversaryInstance& inst) {
      t.new_row()
          .cell(model::to_string(row.kind))
          .cell(size_label)
          .cell(simulated_ratio(inst), 3)
          .cell(inst.ratio_limit, 3)
          .cell(row.upper_bound, 3);
    };
    switch (row.kind) {
      case model::ModelKind::kRoofline:
        emit("P=64", graph::roofline_adversary(64, row.mu_star));
        emit("P=1024", graph::roofline_adversary(1024, row.mu_star));
        emit("P=8192", graph::roofline_adversary(8192, row.mu_star));
        break;
      case model::ModelKind::kCommunication:
        emit("P=64", graph::communication_adversary(64, row.mu_star));
        emit("P=256", graph::communication_adversary(256, row.mu_star));
        emit("P=512", graph::communication_adversary(512, row.mu_star));
        break;
      case model::ModelKind::kAmdahl:
        emit("K=12 (P=144)", graph::amdahl_adversary(12, row.mu_star));
        emit("K=24 (P=576)", graph::amdahl_adversary(24, row.mu_star));
        emit("K=48 (P=2304)", graph::amdahl_adversary(48, row.mu_star));
        break;
      case model::ModelKind::kGeneral:
        emit("K=12 (P=144)", graph::general_adversary(12, row.mu_star));
        emit("K=24 (P=576)", graph::general_adversary(24, row.mu_star));
        emit("K=48 (P=2304)", graph::general_adversary(48, row.mu_star));
        break;
      case model::ModelKind::kArbitrary:
        break;
    }
  }
  t.print(std::cout,
          "Table 1 lower bounds, measured on the Section 4.4 adversarial "
          "instances (ratio climbs toward the limit as size grows)");
  analysis::write_file("results/table1_adversary_ratios.csv", t.to_csv());
  std::cout << '\n';
}

void print_baselines_on_adversaries() {
  // How the baselines fare on the paper's own worst-case instances: the
  // LPA design (both steps) is what keeps the ratio at the Table 1
  // constant; ablated/greedy variants can do better or much worse
  // depending on which mechanism the instance attacks.
  const double mu_c = analysis::optimal_mu(model::ModelKind::kCommunication);
  const double mu_a = analysis::optimal_mu(model::ModelKind::kAmdahl);
  const auto comm = graph::communication_adversary(256, mu_c);
  const auto amd = graph::amdahl_adversary(24, mu_a);

  util::Table t({"scheduler", "comm adversary T/T_alt",
                 "amdahl adversary T/T_alt"});
  for (const auto& spec : sched::standard_suite(mu_c)) {
    const auto rc = spec.run(comm.graph, comm.P);
    // Rebuild Amdahl-suite spec at its own mu where the name matches.
    const auto ra = spec.run(amd.graph, amd.P);
    t.new_row()
        .cell(spec.name)
        .cell(rc.makespan / comm.t_opt_upper, 3)
        .cell(ra.makespan / amd.t_opt_upper, 3);
  }
  t.print(std::cout,
          "baseline schedulers on the adversarial instances (LPA's Table 1 "
          "guarantee holds by design; baselines have no such bound)");
  std::cout << '\n';
}

void BM_OptimalRatioDerivation(benchmark::State& state) {
  const auto kind = static_cast<model::ModelKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::optimal_ratio(kind));
  }
}
BENCHMARK(BM_OptimalRatioDerivation)
    ->Arg(static_cast<int>(model::ModelKind::kRoofline))
    ->Arg(static_cast<int>(model::ModelKind::kCommunication))
    ->Arg(static_cast<int>(model::ModelKind::kAmdahl))
    ->Arg(static_cast<int>(model::ModelKind::kGeneral))
    ->Unit(benchmark::kMillisecond);

void BM_CommunicationAdversarySimulation(benchmark::State& state) {
  const double mu = analysis::optimal_mu(model::ModelKind::kCommunication);
  const auto inst =
      graph::communication_adversary(static_cast<int>(state.range(0)), mu);
  const core::LpaAllocator alloc(mu);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::schedule_online(inst.graph, inst.P, alloc));
  }
  state.counters["tasks"] =
      static_cast<double>(inst.graph.num_tasks());
}
BENCHMARK(BM_CommunicationAdversarySimulation)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== bench_table1_ratios: reproduction of Table 1 ===\n\n";
  print_table1();
  print_empirical_lower_bounds();
  print_baselines_on_adversaries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
