// Experiment E1/E2 — Table 1 of the paper.
//
// The study itself now lives in the experiment engine: the "table1"
// suite re-derives every Table 1 entry numerically, measures the lower
// bounds on the Section 4.4 adversarial instances at growing platform
// sizes, and runs the baseline suite on those worst-case instances.
// This binary is a thin wrapper over engine::run_suite (equivalent to
// `moldsched_run --suite table1`) plus the micro-benchmark sections.
//
// Paper reference values:
//   Model        Roofline  Comm.  Amdahl  General
//   Upper bound  2.62      3.61   4.74    5.72
//   Lower bound  2.61      3.51   4.73    5.25
#include <benchmark/benchmark.h>

#include <iostream>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/engine/suites.hpp"
#include "moldsched/graph/adversary.hpp"

namespace {

using namespace moldsched;

void BM_OptimalRatioDerivation(benchmark::State& state) {
  const auto kind = static_cast<model::ModelKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::optimal_ratio(kind));
  }
}
BENCHMARK(BM_OptimalRatioDerivation)
    ->Arg(static_cast<int>(model::ModelKind::kRoofline))
    ->Arg(static_cast<int>(model::ModelKind::kCommunication))
    ->Arg(static_cast<int>(model::ModelKind::kAmdahl))
    ->Arg(static_cast<int>(model::ModelKind::kGeneral))
    ->Unit(benchmark::kMillisecond);

void BM_CommunicationAdversarySimulation(benchmark::State& state) {
  const double mu = analysis::optimal_mu(model::ModelKind::kCommunication);
  const auto inst =
      graph::communication_adversary(static_cast<int>(state.range(0)), mu);
  const core::LpaAllocator alloc(mu);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::schedule_online(inst.graph, inst.P, alloc));
  }
  state.counters["tasks"] =
      static_cast<double>(inst.graph.num_tasks());
}
BENCHMARK(BM_CommunicationAdversarySimulation)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== bench_table1_ratios: reproduction of Table 1 ===\n\n";
  engine::SuiteOptions options;
  options.human_out = &std::cout;
  (void)engine::run_suite("table1", options);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
