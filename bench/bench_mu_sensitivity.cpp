// Ablation A1 — sensitivity to the algorithm parameter mu.
//
// The analysis picks a model-specific mu* minimizing the worst-case
// ratio. This ablation sweeps mu and reports (a) the theoretical bound
// curve of Theorems 1-4 and (b) the measured mean/max ratio on random
// DAGs, showing how the practical optimum relates to the worst-case one.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/experiment.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/util/table.hpp"

namespace {

using namespace moldsched;

void sweep_model(model::ModelKind kind, int P) {
  util::Table t({"mu", "theoretical bound", "measured mean T/LB",
                 "measured max T/LB"});
  for (const double mu :
       {0.10, 0.15, 0.20, 0.211, 0.25, 0.271, 0.30, 0.324, 0.35, 0.382}) {
    if (mu > analysis::kMuMax + 1e-9) continue;
    const double bound = analysis::upper_ratio(kind, mu);
    const core::LpaAllocator alloc(mu);

    util::Rng rng(17);
    const auto cases = analysis::random_graph_catalog(kind, P, rng);
    double sum = 0.0;
    double worst = 0.0;
    for (const auto& gc : cases) {
      const auto result = core::schedule_online(gc.graph, P, *&alloc);
      const double ratio =
          result.makespan /
          analysis::optimal_makespan_lower_bound(gc.graph, P);
      sum += ratio;
      worst = std::max(worst, ratio);
    }
    t.new_row()
        .cell(mu, 3)
        .cell(std::isinf(bound) ? std::nan("") : bound, 3)
        .cell(sum / static_cast<double>(cases.size()), 3)
        .cell(worst, 3);
  }
  t.print(std::cout, "mu sweep, model = " + model::to_string(kind) +
                         ", P = " + std::to_string(P) +
                         " (mu* = " +
                         util::format_double(analysis::optimal_mu(kind), 3) +
                         "; 'n/a' bound = mu infeasible in the analysis)");
  std::cout << '\n';
}

void BM_AllocatorDecideSweep(benchmark::State& state) {
  const core::LpaAllocator alloc(0.25);
  const model::AmdahlModel m(500.0, 25.0);
  const int P = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.decide(m, P));
  }
}
BENCHMARK(BM_AllocatorDecideSweep)->Arg(64)->Arg(4096)->Arg(1 << 20);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== bench_mu_sensitivity: ablation of the mu parameter ===\n\n";
  for (const auto kind :
       {model::ModelKind::kRoofline, model::ModelKind::kCommunication,
        model::ModelKind::kAmdahl, model::ModelKind::kGeneral}) {
    sweep_model(kind, 32);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
