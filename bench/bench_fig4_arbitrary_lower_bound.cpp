// Experiment E6 — Figure 4 and Theorem 9: the Omega(ln D) lower bound
// for the arbitrary speedup model.
//
// Part 1 reproduces Figure 4 for ell = 2 (K = 4): the offline schedule
// finishes at time 1 (Figure 4a) while the equal-allocation online
// strategy, played against the Lemma 10 adaptive adversary, produces the
// milestone series t_1..t_4 (the paper reports 1/2, 5/6, ~1.07, ~1.23).
//
// Part 2 sweeps K and shows the makespan growing like ln K, bracketed
// between the Lemma 10 sum and well above the offline optimum of 1.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "moldsched/analysis/report.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/chains.hpp"
#include "moldsched/sched/chain_scheduler.hpp"
#include "moldsched/util/table.hpp"

namespace {

using namespace moldsched;

void print_figure4() {
  const auto inst = graph::make_chains_instance(4);
  const auto offline = sched::verify_offline_chain_schedule(inst);
  const auto result = sched::EqualAllocationChainScheduler(inst).run();

  util::Table t({"milestone", "simulated", "paper (Fig. 4b)"});
  const char* paper[] = {"1/2 = 0.500", "5/6 = 0.833", "~1.07", "~1.23"};
  for (int i = 1; i <= 4; ++i) {
    t.new_row()
        .cell("t" + std::to_string(i))
        .cell(result.milestones[static_cast<std::size_t>(i - 1)], 4)
        .cell(paper[i - 1]);
  }
  t.print(std::cout,
          "Figure 4(b) — equal-allocation online schedule milestones for "
          "ell = 2 (K = 4, P = 32, adaptive adversary)");
  std::cout << "Figure 4(a) — offline schedule makespan: " << offline
            << " (group i chains on 2^{i-1} processors each)\n"
            << "online makespan " << result.makespan << " -> ratio "
            << result.ratio << "\n\n";
}

void print_growth_sweep() {
  util::Table t({"K (=D)", "P", "chains", "online makespan", "offline",
                 "ratio", "Lemma 10 bound", "ln(K)-ln(l)-1/l"});
  for (const int K : {2, 4, 6, 8, 10, 12, 14, 16, 18}) {
    const auto inst = graph::make_chains_instance(K);
    const auto result = sched::EqualAllocationChainScheduler(inst).run();
    const double ell = std::log2(static_cast<double>(K));
    const double closed_form =
        ell > 0.0 ? std::log(static_cast<double>(K)) - std::log(ell) -
                        1.0 / ell
                  : 0.0;
    t.new_row()
        .cell(K)
        .cell(static_cast<long long>(inst.P))
        .cell(static_cast<long long>(inst.num_chains))
        .cell(result.makespan, 4)
        .cell(inst.offline_makespan, 1)
        .cell(result.ratio, 4)
        .cell(inst.online_makespan_lower_bound, 4)
        .cell(closed_form, 4);
  }
  t.print(std::cout,
          "Theorem 9 — online/offline ratio grows like Omega(ln D) under "
          "the arbitrary model (no online algorithm can be "
          "constant-competitive)");
  analysis::write_file("results/fig4_growth_sweep.csv", t.to_csv());
  std::cout << '\n';
}

void print_algorithm1_on_chains() {
  // Extra study: the paper's own Algorithm 1 (LPA + list scheduling, at
  // the roofline mu, since the tasks are arbitrary-model) run on the
  // materialized chains graph with fixed group assignment. Theorem 9
  // applies to *every* deterministic online algorithm, so its ratio must
  // also grow; this shows it concretely.
  util::Table t({"K", "P", "Algorithm 1 makespan", "equal-alloc makespan",
                 "offline"});
  for (const int K : {2, 4, 6, 8}) {
    const auto inst = graph::make_chains_instance(K);
    const auto g = graph::chains_graph(inst);
    const core::LpaAllocator alloc(0.38196601125010515);
    const auto lpa =
        core::schedule_online(g, static_cast<int>(inst.P), alloc);
    const auto equal = sched::EqualAllocationChainScheduler(inst).run();
    t.new_row()
        .cell(K)
        .cell(static_cast<long long>(inst.P))
        .cell(lpa.makespan, 4)
        .cell(equal.makespan, 4)
        .cell(inst.offline_makespan, 1);
  }
  t.print(std::cout,
          "Algorithm 1 on the chains instance (fixed group assignment): "
          "like any deterministic online algorithm, it cannot reach the "
          "offline optimum of 1");
  std::cout << '\n';
}

void BM_ChainGame(benchmark::State& state) {
  const auto inst =
      graph::make_chains_instance(static_cast<int>(state.range(0)));
  const sched::EqualAllocationChainScheduler scheduler(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.run());
  }
  state.counters["tasks"] = static_cast<double>(inst.total_tasks);
}
BENCHMARK(BM_ChainGame)->Arg(8)->Arg(12)->Arg(16)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout
      << "=== bench_fig4_arbitrary_lower_bound: Figure 4 / Theorem 9 ===\n\n";
  print_figure4();
  print_growth_sweep();
  print_algorithm1_on_chains();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
