// Experiment E3 — Figure 1: the generic lower-bound task graph.
//
// Prints, for each speedup model and several instance sizes, the graph's
// X (B tasks per layer), Y (layers), task/edge counts and the longest
// path depth — i.e. the structural skeleton Figure 1 depicts — plus the
// per-group speedup-model parameters the theorems assign.
#include <benchmark/benchmark.h>

#include <iostream>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/graph/adversary.hpp"
#include "moldsched/graph/algorithms.hpp"
#include "moldsched/util/table.hpp"

namespace {

using namespace moldsched;

void emit_row(util::Table& t, const std::string& kind_label,
              const graph::AdversaryInstance& inst) {
  t.new_row()
      .cell(kind_label)
      .cell(inst.P)
      .cell(inst.X)
      .cell(inst.Y)
      .cell(inst.graph.num_tasks())
      .cell(static_cast<long>(inst.graph.num_edges()))
      .cell(graph::longest_hop_count(inst.graph));
}

void print_structures() {
  util::Table t({"model", "P", "X (B/layer)", "Y (layers)", "tasks",
                 "edges", "longest path D"});
  const double mu_c = analysis::optimal_mu(model::ModelKind::kCommunication);
  const double mu_a = analysis::optimal_mu(model::ModelKind::kAmdahl);
  const double mu_g = analysis::optimal_mu(model::ModelKind::kGeneral);
  const double mu_r = analysis::optimal_mu(model::ModelKind::kRoofline);
  for (const int P : {64, 256}) emit_row(t, "roofline (Thm 5)",
                                         graph::roofline_adversary(P, mu_r));
  for (const int P : {64, 256})
    emit_row(t, "communication (Thm 6)",
             graph::communication_adversary(P, mu_c));
  for (const int K : {8, 16})
    emit_row(t, "amdahl (Thm 7)", graph::amdahl_adversary(K, mu_a));
  for (const int K : {8, 16})
    emit_row(t, "general (Thm 8)", graph::general_adversary(K, mu_g));
  t.print(std::cout,
          "Figure 1 — generic lower-bound graph ((X+1)Y + 1 tasks; "
          "B-tasks precede each layer's A-task in reveal order)");
  std::cout << '\n';

  // Show the per-group models of one representative instance.
  const auto inst = graph::communication_adversary(64, mu_c);
  std::cout << "communication instance at P=64 (mu=" << inst.mu
            << ", delta=" << inst.delta << "):\n"
            << "  A tasks: " << inst.graph.model_of(inst.X).describe() << '\n'
            << "  B tasks: " << inst.graph.model_of(0).describe() << '\n'
            << "  C task : "
            << inst.graph.model_of(inst.graph.num_tasks() - 1).describe()
            << "\n\n";
}

void BM_BuildCommunicationInstance(benchmark::State& state) {
  const double mu = analysis::optimal_mu(model::ModelKind::kCommunication);
  const int P = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::communication_adversary(P, mu));
  }
}
BENCHMARK(BM_BuildCommunicationInstance)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_BuildAmdahlInstance(benchmark::State& state) {
  const double mu = analysis::optimal_mu(model::ModelKind::kAmdahl);
  const int K = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::amdahl_adversary(K, mu));
  }
}
BENCHMARK(BM_BuildAmdahlInstance)->Arg(8)->Arg(24)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== bench_fig1_adversary_graph: Figure 1 structures ===\n\n";
  print_structures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
