// Extension X1 — resilient scheduling (Section 2 of the paper notes its
// results "can readily carry over to the failure scenario" of Benoit et
// al.). Tasks are re-executed until success; failures are discovered at
// attempt completion.
//
// Sweeps the failure intensity and reports the makespan inflation and
// wasted work of LPA vs the greedy min-time allocation, under both the
// Bernoulli (per-attempt) and Poisson (area-proportional) failure models.
// The Poisson model is where LPA's area-lean allocations pay off twice:
// less exposure per attempt, so fewer retries AND less waste per retry.
#include <benchmark/benchmark.h>

#include <iostream>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/resilience/resilient_scheduler.hpp"
#include "moldsched/sched/baselines.hpp"
#include "moldsched/util/stats.hpp"
#include "moldsched/util/table.hpp"

namespace {

using namespace moldsched;

graph::TaskGraph make_workload(int P, std::uint64_t seed) {
  util::Rng rng(seed);
  static const model::ModelSampler sampler(model::ModelKind::kCommunication);
  return graph::layered_random(8, 3, 10, 0.3, rng,
                               graph::sampling_provider(sampler, rng, P));
}

struct SweepPoint {
  double mean_makespan = 0.0;
  double mean_attempts = 0.0;
  double waste_fraction = 0.0;
};

SweepPoint run_sweep_point(const graph::TaskGraph& g, int P,
                           const core::Allocator& alloc,
                           const resilience::FailureModelPtr& failures) {
  util::Accumulator makespan;
  util::Accumulator attempts;
  util::Accumulator waste;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto result =
        resilience::ResilientOnlineScheduler(g, P, alloc, failures, seed)
            .run();
    makespan.add(result.makespan);
    double total_attempts = 0.0;
    for (const int a : result.attempts_per_task)
      total_attempts += static_cast<double>(a);
    attempts.add(total_attempts / static_cast<double>(g.num_tasks()));
    waste.add(result.wasted_area / result.total_area);
  }
  return {makespan.mean(), attempts.mean(), waste.mean()};
}

void sweep(bool poisson) {
  const int P = 32;
  const auto g = make_workload(P, 77);
  const double mu = analysis::optimal_mu(model::ModelKind::kCommunication);
  const core::LpaAllocator lpa(mu);
  const sched::MinTimeAllocator greedy;

  util::Table t({"intensity", "lpa makespan", "lpa attempts/task",
                 "lpa waste", "min-time makespan", "min-time attempts/task",
                 "min-time waste"});
  for (const double intensity : {0.0, 0.1, 0.2, 0.4, 0.6}) {
    resilience::FailureModelPtr failures;
    if (poisson)
      failures = std::make_shared<resilience::PoissonAreaFailures>(
          intensity * 0.002);
    else
      failures = std::make_shared<resilience::BernoulliFailures>(intensity);
    const auto a = run_sweep_point(g, P, lpa, failures);
    const auto b = run_sweep_point(g, P, greedy, failures);
    t.new_row()
        .cell(intensity, 3)
        .cell(a.mean_makespan, 1)
        .cell(a.mean_attempts, 2)
        .cell(a.waste_fraction, 3)
        .cell(b.mean_makespan, 1)
        .cell(b.mean_attempts, 2)
        .cell(b.waste_fraction, 3);
  }
  t.print(std::cout,
          poisson ? "Poisson area-proportional failures (lambda = "
                    "intensity * 0.002); larger allocations fail more"
                  : "Bernoulli per-attempt failures (q = intensity)");
  std::cout << '\n';
}

void BM_ResilientSchedule(benchmark::State& state) {
  const int P = 32;
  const auto g = make_workload(P, 99);
  const core::LpaAllocator alloc(
      analysis::optimal_mu(model::ModelKind::kCommunication));
  const auto failures = std::make_shared<resilience::BernoulliFailures>(
      static_cast<double>(state.range(0)) / 100.0);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resilience::ResilientOnlineScheduler(g, P, alloc, failures, seed++)
            .run());
  }
}
BENCHMARK(BM_ResilientSchedule)->Arg(0)->Arg(30)->Arg(60)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== bench_resilience: scheduling under task failures ===\n\n";
  sweep(/*poisson=*/false);
  sweep(/*poisson=*/true);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
