// Improved-family study — the per-model-aware allocator vs plain LPA.
//
// Two views: (a) head-to-head mean/max T / Lemma-2-LB on the random-DAG
// catalog, per model kind plus a mixed-kind workload (where the per-kind
// dispatch is the whole point), and (b) microbenchmarks of the decision
// hot path, since improved-lpa sits behind the same DecisionCache as lpa
// and must not regress the allocation cost.
#include <benchmark/benchmark.h>

#include <iostream>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/experiment.hpp"
#include "moldsched/analysis/improved.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/sched/improved_lpa.hpp"
#include "moldsched/util/table.hpp"

namespace {

using namespace moldsched;

struct FamilyStats {
  double mean = 0.0;
  double worst = 0.0;
};

FamilyStats measure(const std::vector<analysis::GraphCase>& cases, int P,
                    const core::Allocator& alloc) {
  FamilyStats s;
  for (const auto& gc : cases) {
    const auto result = core::schedule_online(gc.graph, P, alloc);
    const double ratio =
        result.makespan / analysis::optimal_makespan_lower_bound(gc.graph, P);
    s.mean += ratio;
    s.worst = std::max(s.worst, ratio);
  }
  s.mean /= static_cast<double>(cases.size());
  return s;
}

void head_to_head(int P) {
  util::Table t({"model", "lpa mean", "lpa max", "improved mean",
                 "improved max", "improved envelope"});
  const sched::ImprovedLpaAllocator improved;
  for (const auto kind :
       {model::ModelKind::kRoofline, model::ModelKind::kCommunication,
        model::ModelKind::kAmdahl, model::ModelKind::kGeneral}) {
    util::Rng rng(29);
    const auto cases = analysis::random_graph_catalog(kind, P, rng);
    const core::LpaAllocator lpa(analysis::optimal_mu(kind));
    const auto a = measure(cases, P, lpa);
    const auto b = measure(cases, P, improved);
    t.new_row()
        .cell(model::to_string(kind))
        .cell(a.mean, 3)
        .cell(a.worst, 3)
        .cell(b.mean, 3)
        .cell(b.worst, 3)
        .cell(analysis::improved_optimal_ratio(kind).upper_bound, 3);
  }

  // Mixed-kind workload: lpa must fall back to the general-model mu*,
  // improved dispatches per task; the certified envelope covers the mix.
  util::Rng rng(31);
  const model::ModelSampler samplers[] = {
      model::ModelSampler(model::ModelKind::kRoofline),
      model::ModelSampler(model::ModelKind::kCommunication),
      model::ModelSampler(model::ModelKind::kAmdahl),
      model::ModelSampler(model::ModelKind::kGeneral)};
  const graph::ModelProvider mixed = [&]() {
    return samplers[rng.uniform_int(0, 3)].sample(rng, P);
  };
  std::vector<analysis::GraphCase> cases;
  for (int rep = 0; rep < 6; ++rep) {
    cases.push_back({"layered", graph::layered_random(6, 2, 9, 0.35, rng,
                                                      mixed)});
    cases.push_back({"sp", graph::series_parallel(45, rng, mixed)});
  }
  const core::LpaAllocator lpa(
      analysis::optimal_mu(model::ModelKind::kGeneral));
  const auto a = measure(cases, P, lpa);
  const auto b = measure(cases, P, improved);
  const auto env = analysis::improved_mixed_envelope(
      {model::ModelKind::kRoofline, model::ModelKind::kCommunication,
       model::ModelKind::kAmdahl, model::ModelKind::kGeneral});
  t.new_row()
      .cell("mixed (all 4)")
      .cell(a.mean, 3)
      .cell(a.worst, 3)
      .cell(b.mean, 3)
      .cell(b.worst, 3)
      .cell(env.bound, 3);

  t.print(std::cout, "improved-lpa vs lpa, random-DAG catalog, P = " +
                         std::to_string(P));
  std::cout << '\n';
}

void BM_ImprovedDecide(benchmark::State& state) {
  const sched::ImprovedLpaAllocator alloc;
  const model::AmdahlModel m(500.0, 25.0);
  const int P = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.decide(m, P));
  }
}
BENCHMARK(BM_ImprovedDecide)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_ImprovedDeriveConstants(benchmark::State& state) {
  // First call per process pays the 2-D optimization; the cache makes
  // every later construction (and allocator instantiation) cheap.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::improved_optimal_ratio(model::ModelKind::kGeneral));
  }
}
BENCHMARK(BM_ImprovedDeriveConstants);

void BM_ImprovedScheduleOnline(benchmark::State& state) {
  const sched::ImprovedLpaAllocator alloc;
  const int P = 64;
  util::Rng rng(5);
  const model::ModelSampler sampler(model::ModelKind::kAmdahl);
  const auto provider = graph::sampling_provider(sampler, rng, P);
  const auto g = graph::layered_random(8, 3, 12, 0.3, rng, provider);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_online(g, P, alloc).makespan);
  }
}
BENCHMARK(BM_ImprovedScheduleOnline);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== bench_improved_family: per-model-aware allocator vs LPA "
               "===\n\n";
  head_to_head(32);
  head_to_head(128);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
