// Experiment E8 — realistic workflows (the paper's named future work):
// tiled Cholesky/LU, FFT butterflies, Montage mosaicking and wavefront
// sweeps, with kernels drawn from each speedup-model family.
//
// For every workflow we report the online algorithm against the offline
// tradeoff scheduler (a practical T_opt proxy) and the Lemma 2 bound.
#include <benchmark/benchmark.h>

#include <iostream>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/experiment.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/analysis/report.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/sched/level_scheduler.hpp"
#include "moldsched/sched/malleable_scheduler.hpp"
#include "moldsched/sched/offline.hpp"
#include "moldsched/util/table.hpp"

namespace {

using namespace moldsched;

void run_model(model::ModelKind kind, int P) {
  const double mu = analysis::optimal_mu(kind);
  const core::LpaAllocator lpa(mu);
  const auto cases = analysis::workflow_catalog(kind, 2);

  util::Table t({"workflow", "tasks", "LB (Lemma 2)", "online T",
                 "offline T", "level T", "malleable T", "T/LB",
                 "T/malleable"});
  for (const auto& gc : cases) {
    const auto online = core::schedule_online(gc.graph, P, lpa);
    const auto offline = sched::OfflineTradeoffScheduler(gc.graph, P).run();
    const auto level = sched::schedule_level_by_level(gc.graph, P, lpa);
    const auto fluid = sched::schedule_malleable_fluid(gc.graph, P);
    const double lb = analysis::optimal_makespan_lower_bound(gc.graph, P);
    t.new_row()
        .cell(gc.name)
        .cell(gc.graph.num_tasks())
        .cell(lb, 2)
        .cell(online.makespan, 2)
        .cell(offline.makespan, 2)
        .cell(level.makespan, 2)
        .cell(fluid.makespan, 2)
        .cell(online.makespan / lb, 3)
        .cell(online.makespan / fluid.makespan, 3);
  }
  t.print(std::cout, "model = " + model::to_string(kind) +
                         ", P = " + std::to_string(P) +
                         " (theorem bound = " +
                         util::format_double(
                             analysis::optimal_ratio(kind).upper_bound, 2) +
                         ")");
  analysis::write_file("results/workflows_" + model::to_string(kind) + ".csv",
                       t.to_csv());
  std::cout << '\n';
}

void BM_CholeskySchedule(benchmark::State& state) {
  graph::WorkflowModelConfig cfg;
  cfg.kind = model::ModelKind::kGeneral;
  const auto g = graph::cholesky(static_cast<int>(state.range(0)), cfg);
  const core::LpaAllocator alloc(analysis::optimal_mu(cfg.kind));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_online(g, 64, alloc));
  }
  state.counters["tasks"] = static_cast<double>(g.num_tasks());
}
BENCHMARK(BM_CholeskySchedule)->Arg(8)->Arg(14)->Unit(
    benchmark::kMillisecond);

void BM_OfflineTradeoffOnLu(benchmark::State& state) {
  graph::WorkflowModelConfig cfg;
  cfg.kind = model::ModelKind::kAmdahl;
  const auto g = graph::lu(static_cast<int>(state.range(0)), cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::OfflineTradeoffScheduler(g, 64).run());
  }
}
BENCHMARK(BM_OfflineTradeoffOnLu)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== bench_workflows: realistic workflow study ===\n\n";
  for (const auto kind :
       {model::ModelKind::kRoofline, model::ModelKind::kCommunication,
        model::ModelKind::kAmdahl, model::ModelKind::kGeneral}) {
    run_model(kind, 48);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
