// Experiment E8 — realistic workflows (the paper's named future work):
// tiled Cholesky/LU, FFT butterflies, Montage mosaicking and wavefront
// sweeps, with kernels drawn from each speedup-model family.
//
// The study now lives in the experiment engine: the "workflows" suite
// reports the online algorithm against the offline tradeoff scheduler
// (a practical T_opt proxy), the level-by-level variant, the fluid
// malleable relaxation and the Lemma 2 bound. This binary is a thin
// wrapper over engine::run_suite (equivalent to
// `moldsched_run --suite workflows`) plus the micro-benchmark sections.
#include <benchmark/benchmark.h>

#include <iostream>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/engine/suites.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/sched/offline.hpp"

namespace {

using namespace moldsched;

void BM_CholeskySchedule(benchmark::State& state) {
  graph::WorkflowModelConfig cfg;
  cfg.kind = model::ModelKind::kGeneral;
  const auto g = graph::cholesky(static_cast<int>(state.range(0)), cfg);
  const core::LpaAllocator alloc(analysis::optimal_mu(cfg.kind));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_online(g, 64, alloc));
  }
  state.counters["tasks"] = static_cast<double>(g.num_tasks());
}
BENCHMARK(BM_CholeskySchedule)->Arg(8)->Arg(14)->Unit(
    benchmark::kMillisecond);

void BM_OfflineTradeoffOnLu(benchmark::State& state) {
  graph::WorkflowModelConfig cfg;
  cfg.kind = model::ModelKind::kAmdahl;
  const auto g = graph::lu(static_cast<int>(state.range(0)), cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::OfflineTradeoffScheduler(g, 64).run());
  }
}
BENCHMARK(BM_OfflineTradeoffOnLu)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== bench_workflows: realistic workflow study ===\n\n";
  engine::SuiteOptions options;
  options.human_out = &std::cout;
  (void)engine::run_suite("workflows", options);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
