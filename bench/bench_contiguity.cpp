// Ablation A3 — the cost of contiguous processor allocation.
//
// The paper (like most moldable-scheduling theory) counts processors
// without placement. On partitionable machines a task needs a
// *contiguous* block, and fragmentation can delay tasks that fit by
// count. This bench runs Algorithm 1 with and without the contiguity
// constraint and reports the makespan inflation and the pure
// fragmentation waiting time.
#include <benchmark/benchmark.h>

#include <iostream>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/analysis/report.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/sched/contiguous_scheduler.hpp"
#include "moldsched/util/stats.hpp"
#include "moldsched/util/table.hpp"

namespace {

using namespace moldsched;

void run_study(model::ModelKind kind, int P) {
  const double mu = analysis::optimal_mu(kind);
  const core::LpaAllocator alloc(mu);
  util::Rng rng(61);
  const model::ModelSampler sampler(kind);

  util::Table t({"workload", "plain T", "contiguous T", "inflation",
                 "frag wait"});
  auto study = [&](const std::string& name, const graph::TaskGraph& g) {
    const auto plain = core::schedule_online(g, P, alloc);
    const auto contig = sched::schedule_online_contiguous(g, P, alloc);
    t.new_row()
        .cell(name)
        .cell(plain.makespan, 2)
        .cell(contig.base.makespan, 2)
        .cell(contig.base.makespan / plain.makespan, 4)
        .cell(contig.fragmentation_wait, 2);
  };

  const auto provider = graph::sampling_provider(sampler, rng, P);
  study("layered", graph::layered_random(8, 3, 12, 0.3, rng, provider));
  study("erdos-renyi", graph::erdos_renyi_dag(80, 0.05, rng, provider));
  study("independent", graph::independent(64, provider));
  graph::WorkflowModelConfig cfg;
  cfg.kind = kind;
  study("cholesky", graph::cholesky(8, cfg));
  study("montage", graph::montage(20, cfg));

  t.print(std::cout, "model = " + model::to_string(kind) +
                         ", P = " + std::to_string(P) +
                         " (first-fit contiguous placement)");
  analysis::write_file(
      "results/contiguity_" + model::to_string(kind) + ".csv", t.to_csv());
  std::cout << '\n';
}

void BM_ContiguousSchedule(benchmark::State& state) {
  const int P = 64;
  util::Rng rng(62);
  const model::ModelSampler sampler(model::ModelKind::kGeneral);
  const auto g = graph::layered_random(
      static_cast<int>(state.range(0)), 4, 16, 0.3, rng,
      graph::sampling_provider(sampler, rng, P));
  const core::LpaAllocator alloc(
      analysis::optimal_mu(model::ModelKind::kGeneral));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::schedule_online_contiguous(g, P, alloc));
  }
}
BENCHMARK(BM_ContiguousSchedule)->Arg(16)->Arg(64)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== bench_contiguity: contiguous-placement ablation ===\n\n";
  for (const auto kind :
       {model::ModelKind::kCommunication, model::ModelKind::kAmdahl,
        model::ModelKind::kGeneral}) {
    run_study(kind, 48);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
