// Hot-path microbenchmarks guarding the PR's optimizations, emitting a
// machine-readable BENCH_hotpaths.json (parseable by io::parse_json).
//
// Unlike the bench_* google-benchmark binaries, this is a plain
// executable: it owns its output format so CI can assert the recorded
// allocator_speedup of the allocator-bound random-dags entry stays
// >= 1.5x. Entries:
//   * allocator_random_dags      — the LPA decision stream harvested from
//     random DAGs (general models, binary-search Step 1), uncached vs
//     warm DecisionCache. The headline number.
//   * allocator_arbitrary_tables — same stream with TableModel tasks,
//     whose Step 1 is the O(p_max) exhaustive scan; caching wins big.
//   * event_queue_batch_pop      — pop_simultaneous (allocating) vs
//     pop_simultaneous_into (buffer reuse) on a tie-heavy event stream.
//   * end_to_end_random_dags     — full schedule_online over the graph
//     set, plain LPA vs warm cache (informational; sim work dominates).
//
// Usage: bench_hot_paths [--out PATH] [--rounds N] [--reuse K]
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "moldsched/check/corpus.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/sim/event_queue.hpp"
#include "moldsched/util/flags.hpp"
#include "moldsched/util/rng.hpp"

namespace {

using moldsched::core::CachingAllocator;
using moldsched::core::DecisionCache;
using moldsched::core::LpaAllocator;

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Best-of-`rounds` wall time of `fn()`, in nanoseconds.
template <typename Fn>
double best_ns(int rounds, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < rounds; ++r) {
    const double t0 = now_ns();
    fn();
    const double t1 = now_ns();
    if (t1 - t0 < best) best = t1 - t0;
  }
  return best;
}

/// Best-of-`rounds` for two competing paths, alternating them within
/// each round so frequency drift and scheduler noise land on both
/// sides instead of biasing whichever happened to run later.
template <typename FnA, typename FnB>
std::pair<double, double> best_pair_ns(int rounds, FnA&& a, FnB&& b) {
  double best_a = std::numeric_limits<double>::infinity();
  double best_b = std::numeric_limits<double>::infinity();
  for (int r = 0; r < rounds; ++r) {
    double t0 = now_ns();
    a();
    double t1 = now_ns();
    if (t1 - t0 < best_a) best_a = t1 - t0;
    t0 = now_ns();
    b();
    t1 = now_ns();
    if (t1 - t0 < best_b) best_b = t1 - t0;
  }
  return {best_a, best_b};
}

struct Entry {
  std::string name;
  double baseline_ns = 0.0;   ///< reference path, total per round
  double optimized_ns = 0.0;  ///< optimized path, total per round
  double ops = 0.0;           ///< units of work per round (calls/events)
  std::string baseline_label;
  std::string optimized_label;

  [[nodiscard]] double speedup() const {
    return optimized_ns > 0.0 ? baseline_ns / optimized_ns : 0.0;
  }
};

/// The allocation-request stream a job grid replays: every task of every
/// graph asks the allocator once per reveal, and repeated jobs repeat
/// the whole stream.
std::vector<moldsched::model::ModelPtr> harvest_models(
    const std::vector<moldsched::graph::TaskGraph>& graphs) {
  std::vector<moldsched::model::ModelPtr> stream;
  for (const auto& g : graphs)
    for (moldsched::graph::TaskId v = 0; v < g.num_tasks(); ++v)
      stream.push_back(g.model_ptr(v));
  return stream;
}

Entry bench_allocator_stream(const std::string& name,
                             const std::vector<moldsched::model::ModelPtr>& stream,
                             int P, int reuse, int rounds) {
  const LpaAllocator lpa(0.25);
  long long sink = 0;

  Entry e;
  e.name = name;
  e.ops = static_cast<double>(stream.size()) * reuse;
  e.baseline_label = "lpa";
  e.optimized_label = "cached(lpa), warm";

  const auto cache = std::make_shared<DecisionCache>();
  const CachingAllocator cached(lpa, cache);
  // Warm the cache outside the timed region: the steady state of a job
  // grid is all-hits.
  for (const auto& m : stream) sink += cached.allocate(*m, P);
  std::tie(e.baseline_ns, e.optimized_ns) = best_pair_ns(
      rounds,
      [&] {
        for (int k = 0; k < reuse; ++k)
          for (const auto& m : stream) sink += lpa.allocate(*m, P);
      },
      [&] {
        for (int k = 0; k < reuse; ++k)
          for (const auto& m : stream) sink += cached.allocate(*m, P);
      });

  if (sink == 42) std::cerr << "";  // defeat dead-code elimination
  return e;
}

Entry bench_event_queue(int rounds) {
  constexpr int kTimes = 2000;
  constexpr int kTies = 8;
  const auto fill = [](moldsched::sim::EventQueue& q) {
    q.reserve(kTimes * kTies);
    for (int t = 0; t < kTimes; ++t)
      for (int i = 0; i < kTies; ++i)
        q.schedule(static_cast<double>(t), t * kTies + i);
  };
  long long sink = 0;

  Entry e;
  e.name = "event_queue_batch_pop";
  e.ops = static_cast<double>(kTimes) * kTies;
  e.baseline_label = "pop_simultaneous (fresh vector per batch)";
  e.optimized_label = "pop_simultaneous_into (reused buffer)";

  e.baseline_ns = best_ns(rounds, [&] {
    moldsched::sim::EventQueue q;
    fill(q);
    while (!q.empty()) {
      const auto batch = q.pop_simultaneous();
      sink += static_cast<long long>(batch.size());
    }
  });
  e.optimized_ns = best_ns(rounds, [&] {
    moldsched::sim::EventQueue q;
    fill(q);
    std::vector<moldsched::sim::Event> batch;
    while (!q.empty()) {
      q.pop_simultaneous_into(batch);
      sink += static_cast<long long>(batch.size());
    }
  });

  if (sink == 42) std::cerr << "";
  return e;
}

Entry bench_end_to_end(const std::vector<moldsched::graph::TaskGraph>& graphs,
                       int P, int rounds) {
  const LpaAllocator lpa(0.25);
  double sink = 0.0;

  Entry e;
  e.name = "end_to_end_random_dags";
  e.ops = static_cast<double>(graphs.size());
  e.baseline_label = "schedule_online + lpa";
  e.optimized_label = "schedule_online + cached(lpa), warm";

  const auto cache = std::make_shared<DecisionCache>();
  const CachingAllocator cached(lpa, cache);
  for (const auto& g : graphs)
    sink += moldsched::core::schedule_online(g, P, cached).makespan;
  std::tie(e.baseline_ns, e.optimized_ns) = best_pair_ns(
      rounds,
      [&] {
        for (const auto& g : graphs)
          sink += moldsched::core::schedule_online(g, P, lpa).makespan;
      },
      [&] {
        for (const auto& g : graphs)
          sink += moldsched::core::schedule_online(g, P, cached).makespan;
      });

  if (sink == 42.0) std::cerr << "";
  return e;
}

std::string to_json(const std::vector<Entry>& entries, int rounds, int reuse) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  os << "{\n  \"bench\": \"hotpaths\",\n  \"rounds\": " << rounds
     << ",\n  \"reuse\": " << reuse << ",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    os << "    {\n"
       << "      \"name\": \"" << e.name << "\",\n"
       << "      \"baseline\": \"" << e.baseline_label << "\",\n"
       << "      \"optimized\": \"" << e.optimized_label << "\",\n"
       << "      \"ops_per_round\": " << e.ops << ",\n"
       << "      \"baseline_ns_per_op\": " << e.baseline_ns / e.ops << ",\n"
       << "      \"optimized_ns_per_op\": " << e.optimized_ns / e.ops << ",\n"
       << "      \"speedup\": " << e.speedup() << "\n"
       << "    }" << (i + 1 < entries.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const moldsched::util::Flags flags(argc, argv);
  const std::string out = flags.get_string("out", "BENCH_hotpaths.json");
  const int rounds = static_cast<int>(flags.get_int("rounds", 7));
  const int reuse = static_cast<int>(flags.get_int("reuse", 10));
  if (rounds < 1 || reuse < 1) {
    std::cerr << "bench_hot_paths: --rounds and --reuse must be >= 1\n";
    return 2;
  }

  // The instance set: one graph per corpus family, general models (the
  // binary-search Step 1), on a platform large enough that the search
  // depth matters.
  constexpr int kP = 65536;
  moldsched::util::Rng rng(20220815);  // ICPP 2022 vintage
  std::vector<moldsched::graph::TaskGraph> graphs;
  for (int f = 0; f < moldsched::check::num_corpus_families(); ++f)
    graphs.push_back(moldsched::check::corpus_graph(
        f, moldsched::model::ModelKind::kGeneral, rng, kP));
  const auto general_stream = harvest_models(graphs);

  // The table stream: arbitrary models whose Step 1 is the exhaustive
  // O(p_max) scan.
  constexpr int kTableP = 1024;
  std::vector<moldsched::model::ModelPtr> table_stream;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> times(kTableP);
    for (auto& t : times) t = rng.log_uniform(0.1, 100.0);
    table_stream.push_back(
        std::make_shared<moldsched::model::TableModel>(std::move(times)));
  }

  std::vector<Entry> entries;
  entries.push_back(bench_allocator_stream("allocator_random_dags",
                                           general_stream, kP, reuse, rounds));
  entries.push_back(bench_allocator_stream("allocator_arbitrary_tables",
                                           table_stream, kTableP, reuse,
                                           rounds));
  entries.push_back(bench_event_queue(rounds));
  entries.push_back(bench_end_to_end(graphs, kP, rounds));

  const std::string json = to_json(entries, rounds, reuse);
  std::ofstream file(out);
  if (!file) {
    std::cerr << "bench_hot_paths: cannot open '" << out << "'\n";
    return 2;
  }
  file << json;
  std::cout << json;

  for (const Entry& e : entries)
    std::cout << e.name << ": " << e.speedup() << "x\n";
  return 0;
}
