// Supplement to Table 1 — the full ratio-versus-mu curves the paper
// minimizes "numerically for mu in (0, (3-sqrt(5))/2]" in Theorems 2-4.
// Prints a downsampled view and writes the dense curves to
// results/ratio_curves.csv for plotting.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "moldsched/analysis/curves.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/analysis/report.hpp"
#include "moldsched/util/table.hpp"

namespace {

using namespace moldsched;

void print_curves() {
  util::Table t({"mu", "roofline", "comm upper", "comm lower",
                 "amdahl upper", "amdahl lower", "general upper",
                 "general lower"});
  const auto roof = analysis::ratio_curve(model::ModelKind::kRoofline, 16);
  const auto comm =
      analysis::ratio_curve(model::ModelKind::kCommunication, 16);
  const auto amd = analysis::ratio_curve(model::ModelKind::kAmdahl, 16);
  const auto gen = analysis::ratio_curve(model::ModelKind::kGeneral, 16);
  auto cell_or_na = [](util::Table& table, double v) {
    if (std::isfinite(v))
      table.cell(v, 3);
    else
      table.cell("inf");
  };
  for (std::size_t i = 0; i < roof.size(); ++i) {
    t.new_row().cell(roof[i].mu, 4);
    cell_or_na(t, roof[i].upper_bound);
    cell_or_na(t, comm[i].upper_bound);
    cell_or_na(t, comm[i].lower_bound_limit);
    cell_or_na(t, amd[i].upper_bound);
    cell_or_na(t, amd[i].lower_bound_limit);
    cell_or_na(t, gen[i].upper_bound);
    cell_or_na(t, gen[i].lower_bound_limit);
  }
  t.print(std::cout,
          "ratio vs mu (16 samples; 'inf' marks mu values where the "
          "model's construction is infeasible)");

  const auto csv = analysis::ratio_curves_csv(400);
  analysis::write_file("results/ratio_curves.csv", csv);
  std::cout << "\ndense curves (400 samples) written to "
               "results/ratio_curves.csv\n\n";
}

void BM_CurveGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::ratio_curves_csv(static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_CurveGeneration)->Arg(100)->Arg(1000)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== bench_ratio_curves: Theorems 1-4 ratio functions ===\n\n";
  print_curves();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
