// bench_serve — load generator for the scheduling service.
//
// Replays a catalog of instances (random DAGs, scientific workflows,
// Section 4.4 adversary graphs, or a mix) against a svc::Server at a
// configurable client concurrency: each worker thread opens its own
// connection, streams one session at a time task by task, and closes it.
// By default the server runs in process on an ephemeral port so the
// binary is self-contained; --host/--port target an external
// moldsched_serve instead.
//
// Output is BENCH_serve.json: request throughput, exact p50/p99 request
// latencies (sorted-sample order statistics, not histogram
// interpolation), per-error-code rejection counts, and — for the
// in-process server — a snapshot of the svc.* metrics registry.
// --overload shrinks the server's in-flight limit and piles on
// concurrency so the admission path (overloaded replies) is the thing
// being measured; the run must finish without hangs, and rejections are
// expected rather than tolerated.
//
// The bench doubles as the telemetry plane's referee: for an in-process
// non-overload run it cross-checks the server's log-bucketed
// svc.request.latency_ms p99 against the client's exact nearest-rank
// p99 and fails if they disagree beyond one bucket's relative
// resolution (plus loopback slack — client time includes the socket
// round trip the server never sees). --telemetry arms phase metrics and
// the flight recorder so with/without-telemetry throughput is
// comparable across two runs of the same command; the "telemetry" field
// in the JSON says which mode produced a given BENCH_serve.json.
// --soak switches to day-in-the-life mode: sessions arrive as a
// non-homogeneous Poisson process whose rate follows a diurnal curve
// (one "day" spans the whole run), drawn from the ingested workload
// catalog, with a small fraction of clients abandoning their session
// mid-stream to exercise the idle reaper. The run hard-asserts the
// soak invariants — zero fd growth, server RSS delta under a ceiling,
// every abandoned session reaped — and records the server-side
// log-bucketed p99 plus windowed client p99s in a "soak" section of
// BENCH_serve.json. Against an external moldsched_serve, the server's
// fd/RSS/reap/latency curves are scraped from its admin listener
// (--admin-port), so the same invariants hold out of process.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include "moldsched/check/wire_check.hpp"
#include "moldsched/graph/adversary.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/ingest/catalog.hpp"
#include "moldsched/io/json.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/obs/metrics.hpp"
#include "moldsched/obs/process_stats.hpp"
#include "moldsched/svc/client.hpp"
#include "moldsched/svc/server.hpp"
#include "moldsched/svc/wire.hpp"
#include "moldsched/util/flags.hpp"
#include "moldsched/util/rng.hpp"

namespace {

using namespace moldsched;

struct CatalogEntry {
  std::string name;
  graph::TaskGraph graph;
};

std::vector<CatalogEntry> build_catalog(const std::string& which, int P,
                                        double mu, std::uint64_t seed) {
  std::vector<CatalogEntry> out;
  util::Rng rng(seed);

  const auto add = [&out](std::string name, graph::TaskGraph g) {
    // Streaming requires id order to be topological; the relabel is the
    // identity for graphs that already are (all but the in-tree).
    out.push_back(
        CatalogEntry{std::move(name), check::relabel_topological(g)});
  };

  if (which == "random" || which == "mixed") {
    const model::ModelKind kinds[] = {
        model::ModelKind::kRoofline, model::ModelKind::kCommunication,
        model::ModelKind::kAmdahl, model::ModelKind::kGeneral};
    int i = 0;
    for (const auto kind : kinds) {
      const model::ModelSampler sampler(kind);
      const auto provider = graph::sampling_provider(sampler, rng, P);
      add("random/layered-" + std::to_string(i),
          graph::layered_random(6, 2, 8, 0.35, rng, provider));
      add("random/erdos-" + std::to_string(i),
          graph::erdos_renyi_dag(40, 0.08, rng, provider));
      add("random/intree-" + std::to_string(i),
          graph::random_in_tree(32, 3, rng, provider));
      add("random/sp-" + std::to_string(i),
          graph::series_parallel(36, rng, provider));
      ++i;
    }
  }
  if (which == "workflow" || which == "mixed") {
    graph::WorkflowModelConfig config;
    config.kind = model::ModelKind::kAmdahl;
    add("workflow/cholesky", graph::cholesky(4, config));
    add("workflow/lu", graph::lu(4, config));
    config.kind = model::ModelKind::kCommunication;
    add("workflow/fft", graph::fft(5, config));
    add("workflow/montage", graph::montage(8, config));
    config.kind = model::ModelKind::kGeneral;
    add("workflow/wavefront", graph::wavefront(6, 6, config));
  }
  if (which == "adversary" || which == "mixed") {
    add("adversary/roofline",
        graph::roofline_adversary(std::max(P, 2), mu).graph);
    add("adversary/communication",
        graph::communication_adversary(std::max(P, 4), mu).graph);
    add("adversary/amdahl", graph::amdahl_adversary(5, mu).graph);
    add("adversary/general", graph::general_adversary(5, mu).graph);
  }
  if (which == "ingest") {
    for (const auto& w : ingest::load_bundled_workloads())
      add("ingest/" + w.name, w.graph);
  }
  if (out.empty())
    throw std::invalid_argument(
        "unknown catalog '" + which +
        "' (known: random, workflow, adversary, mixed, ingest)");
  return out;
}

struct WorkerStats {
  std::vector<double> latencies_ms;  ///< every request round trip
  std::uint64_t requests_ok = 0;
  std::uint64_t tasks_released = 0;
  std::uint64_t sessions_ok = 0;
  std::uint64_t sessions_failed = 0;
  std::map<std::string, std::uint64_t> rejections;  ///< error code -> count
};

/// Percentile by exact order statistic (nearest-rank) on a sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

// ---------------------------------------------------------------------------
// --soak: day-in-the-life replay with resource-leak assertions.

/// Minimal blocking HTTP/1.0 GET; returns the response body. Throws on
/// connect/read failure — a soak against a dead admin listener should
/// fail loudly, not report vacuous resource curves.
std::string http_get(const std::string& host, int port,
                     const std::string& path) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &res) != 0 ||
      res == nullptr)
    throw std::runtime_error("http_get: cannot resolve " + host);
  const int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    throw std::runtime_error("http_get: socket failed");
  }
  const int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0) {
    ::close(fd);
    throw std::runtime_error("http_get: cannot connect to " + host + ":" +
                             std::to_string(port));
  }
  const std::string request = "GET " + path +
                              " HTTP/1.0\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      throw std::runtime_error("http_get: send failed");
    }
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto split = response.find("\r\n\r\n");
  if (split == std::string::npos)
    throw std::runtime_error("http_get: malformed response from " + host);
  return response.substr(split + 4);
}

/// One observation of the server's resource / reaper / latency state —
/// from this process for the in-process server, from the admin
/// listener's /metrics.json for an external one.
struct ServerSample {
  double open_fds = 0.0;
  double rss_bytes = 0.0;
  double reaped = 0.0;
  obs::MetricSample latency;  ///< svc.request.latency_ms
};

ServerSample sample_in_process() {
  ServerSample s;
  const obs::ProcessStats proc = obs::read_process_stats();
  s.open_fds = proc.open_fds;
  s.rss_bytes = proc.rss_bytes;
  for (const auto& m : obs::default_registry().snapshot()) {
    if (m.name == "svc.sessions.reaped") s.reaped = m.value;
    if (m.name == "svc.request.latency_ms") s.latency = m;
  }
  return s;
}

ServerSample sample_admin(const std::string& host, int admin_port) {
  ServerSample s;
  const io::JsonValue doc =
      io::parse_json(http_get(host, admin_port, "/metrics.json"));
  if (const auto* gauges = doc.find("gauges")) {
    if (const auto* v = gauges->find("proc.open_fds")) s.open_fds = v->number;
    if (const auto* v = gauges->find("proc.rss_bytes")) s.rss_bytes = v->number;
  }
  if (const auto* counters = doc.find("counters"))
    if (const auto* v = counters->find("svc.sessions.reaped"))
      s.reaped = v->number;
  if (const auto* hists = doc.find("histograms")) {
    if (const auto* h = hists->find("svc.request.latency_ms")) {
      // The exposition omits the bucket bounds (they are the fixed
      // default latency ladder); reconstruct a MetricSample so
      // obs::sample_quantile works on the scraped histogram too.
      s.latency.name = "svc.request.latency_ms";
      s.latency.kind = obs::MetricSample::Kind::kHistogram;
      s.latency.bounds = obs::Histogram::default_latency_bounds();
      if (const auto* v = h->find("count"))
        s.latency.count = static_cast<std::uint64_t>(v->number);
      if (const auto* v = h->find("sum")) s.latency.sum = v->number;
      if (const auto* v = h->find("min")) s.latency.min = v->number;
      if (const auto* v = h->find("max")) s.latency.max = v->number;
      if (const auto* v = h->find("buckets"))
        for (const auto& b : v->array)
          s.latency.buckets.push_back(static_cast<std::uint64_t>(b.number));
    }
  }
  return s;
}

struct SoakArrival {
  int id = 0;
  std::size_t entry = 0;  ///< catalog index
  bool abandon = false;
  double t_s = 0.0;  ///< offset from soak start
};

int run_soak(const util::Flags& flags) {
  const double duration_s = flags.get_double("duration", 60.0);
  const double rate = flags.get_double("rate", 12.0);
  const double period_s = flags.get_double("diurnal-period", duration_s);
  const double abandon_pct = flags.get_double("abandon-pct", 3.0);
  const int concurrency = static_cast<int>(flags.get_int("concurrency", 8));
  const std::string scheduler = flags.get_string("scheduler", "lpa");
  const double mu = flags.get_double("mu", 0.25);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1234));
  const double rss_ceiling_mb = flags.get_double("rss-ceiling-mb", 512.0);
  const double window_s = flags.get_double("p99-window", 10.0);
  const double p99_factor = flags.get_double("p99-window-factor", 0.0);
  const double idle_timeout_s = flags.get_double("idle-timeout", 2.0);
  const std::string out_path = flags.get_string("out", "BENCH_serve.json");
  const bool quiet = flags.get_bool("quiet", false);
  std::string host = flags.get_string("host", "");
  int port = static_cast<int>(flags.get_int("port", 0));
  const int admin_port = static_cast<int>(flags.get_int("admin-port", 0));
  const std::string catalog_name = flags.get_string("catalog", "ingest");

  const auto catalog = build_catalog(
      catalog_name, static_cast<int>(flags.get_int("P", 48)), mu, seed);
  // Per-entry platform size: the ingest catalog carries each file's own
  // P hint; other catalogs use the uniform --P.
  std::vector<int> entry_P(catalog.size(),
                           static_cast<int>(flags.get_int("P", 48)));
  if (catalog_name == "ingest") {
    const auto workloads = ingest::load_bundled_workloads();
    for (std::size_t i = 0; i < catalog.size(); ++i)
      for (const auto& w : workloads)
        if (catalog[i].name == "ingest/" + w.name) entry_P[i] = w.P;
  }

  std::unique_ptr<svc::Server> server;
  const bool in_process = host.empty();
  if (in_process) {
    svc::ServerLimits limits;
    limits.max_in_flight =
        static_cast<int>(flags.get_int("max-inflight", 256));
    limits.max_sessions = std::max(64, concurrency * 4);
    limits.idle_timeout_s = idle_timeout_s;  // reap within the run
    server = std::make_unique<svc::Server>(limits);
    host = "127.0.0.1";
    port = server->listen(host, 0);
  } else if (port == 0) {
    std::cerr << "bench_serve: --host requires --port\n";
    return 2;
  } else if (admin_port == 0) {
    std::cerr << "bench_serve: --soak against an external server needs "
                 "--admin-port to scrape fd/RSS/reaper state\n";
    return 2;
  }
  const auto sample_server = [&]() {
    return in_process ? sample_in_process() : sample_admin(host, admin_port);
  };

  const ServerSample baseline = sample_server();

  // Shared arrival queue: the main thread plays the day, workers drain.
  std::mutex mu_q;
  std::condition_variable cv;
  std::deque<SoakArrival> queue;
  bool producer_done = false;

  struct SoakWorker {
    std::vector<std::pair<double, double>> lat;  ///< (elapsed_s, ms)
    std::uint64_t sessions_ok = 0;
    std::uint64_t sessions_failed = 0;
    std::uint64_t abandoned = 0;  ///< successfully opened, then dropped
    std::uint64_t tasks_released = 0;
    std::map<std::string, std::uint64_t> rejections;
  };
  std::vector<SoakWorker> wstats(static_cast<std::size_t>(concurrency));
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_s = [&t0]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(concurrency));
  for (int w = 0; w < concurrency; ++w) {
    workers.emplace_back([&, w] {
      SoakWorker& st = wstats[static_cast<std::size_t>(w)];
      util::Rng wrng(util::derive_seed(seed, 1000 + static_cast<std::uint64_t>(w)));
      for (;;) {
        SoakArrival a;
        {
          std::unique_lock<std::mutex> lock(mu_q);
          cv.wait(lock, [&] { return producer_done || !queue.empty(); });
          if (queue.empty()) return;
          a = queue.front();
          queue.pop_front();
        }
        try {
          svc::Client client;
          client.connect(host, port);
          const auto timed = [&](const std::string& payload) {
            const auto s = std::chrono::steady_clock::now();
            std::string reply = client.roundtrip(payload);
            st.lat.emplace_back(
                elapsed_s(),
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - s)
                    .count());
            return reply;
          };
          const CatalogEntry& entry = catalog[a.entry];
          svc::OpenParams open;
          open.scheduler = scheduler;
          open.P = entry_P[a.entry];
          open.mu = mu;
          const svc::OpenReply opened = svc::parse_open_reply(
              timed(svc::open_request_json(open, 1)));
          if (!opened.ok) {
            ++st.rejections[svc::to_string(opened.error.code)];
            ++st.sessions_failed;
            continue;
          }
          const graph::TaskGraph& g = entry.graph;
          const graph::TaskId stop =
              a.abandon ? std::max<graph::TaskId>(1, g.num_tasks() / 3)
                        : g.num_tasks();
          bool failed = false;
          for (graph::TaskId v = 0; v < stop && !failed; ++v) {
            svc::ReleaseParams release;
            release.name = g.name(v);
            release.model = g.model_ptr(v);
            for (const graph::TaskId u : g.predecessors(v))
              release.preds.push_back(u);
            release.expected_task = v;
            const svc::ReleaseReply rr = svc::parse_release_reply(
                timed(svc::release_request_json(opened.session, release,
                                                v + 2)));
            if (!rr.ok) {
              ++st.rejections[svc::to_string(rr.error.code)];
              failed = true;
            } else {
              ++st.tasks_released;
            }
          }
          if (a.abandon && !failed) {
            // Day-in-the-life misbehavior: walk away mid-session. The
            // connection drops here; only the idle reaper can free the
            // session state, which the post-run assertion checks.
            client.disconnect();
            ++st.abandoned;
            continue;
          }
          const svc::CloseReply closed = svc::parse_close_reply(
              timed(svc::close_request_json(opened.session, 0)));
          if (!closed.ok) {
            ++st.rejections[svc::to_string(closed.error.code)];
            failed = true;
          }
          if (failed)
            ++st.sessions_failed;
          else
            ++st.sessions_ok;
        } catch (const std::exception&) {
          ++st.sessions_failed;
        }
      }
    });
  }

  // Non-homogeneous Poisson arrivals by thinning: candidate arrivals at
  // the peak rate, each kept with probability shape(t) in [0.3, 1] —
  // a raised-cosine "day" that troughs at both ends of the run and
  // peaks in the middle.
  util::Rng rng(seed);
  int next_id = 0;
  double t = 0.0;
  const double peak_rate = std::max(rate, 1e-9);
  while (t < duration_s) {
    t += rng.exponential(peak_rate);
    if (t >= duration_s) break;
    const double shape =
        0.3 + 0.7 * 0.5 * (1.0 - std::cos(2.0 * M_PI * t / period_s));
    if (!rng.bernoulli(shape)) continue;
    SoakArrival a;
    a.id = next_id++;
    a.entry = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(catalog.size()) - 1));
    a.abandon = rng.bernoulli(abandon_pct / 100.0);
    a.t_s = t;
    const double wait = t - elapsed_s();
    if (wait > 0)
      std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    {
      const std::lock_guard<std::mutex> lock(mu_q);
      queue.push_back(a);
    }
    cv.notify_one();
  }
  {
    const std::lock_guard<std::mutex> lock(mu_q);
    producer_done = true;
  }
  cv.notify_all();
  for (auto& th : workers) th.join();
  const double wall_s = elapsed_s();

  // Merge.
  std::vector<std::pair<double, double>> lat;
  std::uint64_t sess_ok = 0, sess_failed = 0, abandoned = 0, tasks = 0;
  std::map<std::string, std::uint64_t> rejections;
  for (const auto& st : wstats) {
    lat.insert(lat.end(), st.lat.begin(), st.lat.end());
    sess_ok += st.sessions_ok;
    sess_failed += st.sessions_failed;
    abandoned += st.abandoned;
    tasks += st.tasks_released;
    for (const auto& [code, n] : st.rejections) rejections[code] += n;
  }
  const auto arrivals = static_cast<std::uint64_t>(next_id);

  // Wait for the reaper to claim every abandoned session AND for the fd
  // count to settle back to the baseline before the final resource
  // sample: reaped sessions are exactly the leak the fd and RSS
  // assertions would otherwise misattribute, and the server's io thread
  // needs a poll cycle after the last client destructor to observe EOF
  // and close its side of each connection. A genuine leak never
  // converges, so the deadline still turns it into a failure.
  double reaped_delta = 0.0;
  const double reap_deadline = wall_s + std::max(3.0 * idle_timeout_s, 10.0);
  ServerSample fin = sample_server();
  for (;;) {
    reaped_delta = fin.reaped - baseline.reaped;
    if (reaped_delta >= static_cast<double>(abandoned) &&
        fin.open_fds <= baseline.open_fds)
      break;
    if (elapsed_s() > reap_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    fin = sample_server();
  }

  // Windowed client p99s: the "stable p99" signal. Windows with too few
  // samples (the diurnal troughs) are reported but never asserted on.
  struct Window {
    double t0 = 0.0, t1 = 0.0;
    std::uint64_t n = 0;
    double p99 = 0.0;
  };
  std::vector<Window> windows;
  const int n_windows =
      std::max(1, static_cast<int>(std::ceil(duration_s / window_s)));
  for (int i = 0; i < n_windows; ++i) {
    Window win;
    win.t0 = i * window_s;
    win.t1 = std::min(duration_s, (i + 1) * window_s);
    std::vector<double> sample;
    for (const auto& [at, ms] : lat)
      if (at >= win.t0 && at < win.t1) sample.push_back(ms);
    std::sort(sample.begin(), sample.end());
    win.n = sample.size();
    win.p99 = percentile(sample, 0.99);
    windows.push_back(win);
  }
  double win_p99_min = 0.0, win_p99_max = 0.0;
  for (const auto& win : windows) {
    if (win.n < 50) continue;  // troughs: too few samples to trust
    if (win_p99_max == 0.0) win_p99_min = win_p99_max = win.p99;
    win_p99_min = std::min(win_p99_min, win.p99);
    win_p99_max = std::max(win_p99_max, win.p99);
  }

  std::vector<double> all_ms;
  all_ms.reserve(lat.size());
  for (const auto& [at, ms] : lat) all_ms.push_back(ms);
  std::sort(all_ms.begin(), all_ms.end());
  const double client_p50 = percentile(all_ms, 0.50);
  const double client_p99 = percentile(all_ms, 0.99);
  const double server_p50 = obs::sample_quantile(fin.latency, 0.50);
  const double server_p99 = obs::sample_quantile(fin.latency, 0.99);

  const double fd_growth = fin.open_fds - baseline.open_fds;
  const double rss_delta_mb =
      (fin.rss_bytes - baseline.rss_bytes) / (1024.0 * 1024.0);

  std::ostringstream js;
  js << "{\n"
     << "  \"bench\": \"serve\",\n"
     << "  \"mode\": \"soak\",\n"
     << "  \"catalog\": \"" << catalog_name << "\",\n"
     << "  \"in_process_server\": " << (in_process ? "true" : "false")
     << ",\n"
     << "  \"duration_s\": " << svc::wire_number(duration_s) << ",\n"
     << "  \"wall_s\": " << svc::wire_number(wall_s) << ",\n"
     << "  \"rate_per_s\": " << svc::wire_number(rate) << ",\n"
     << "  \"diurnal_period_s\": " << svc::wire_number(period_s) << ",\n"
     << "  \"concurrency\": " << concurrency << ",\n"
     << "  \"scheduler\": \"" << scheduler << "\",\n"
     << "  \"arrivals\": " << arrivals << ",\n"
     << "  \"sessions_ok\": " << sess_ok << ",\n"
     << "  \"sessions_failed\": " << sess_failed << ",\n"
     << "  \"sessions_abandoned\": " << abandoned << ",\n"
     << "  \"tasks_released\": " << tasks << ",\n"
     << "  \"requests\": " << all_ms.size() << ",\n"
     << "  \"latency_ms\": {\"p50\": " << svc::wire_number(client_p50)
     << ", \"p99\": " << svc::wire_number(client_p99) << "},\n"
     << "  \"soak\": {\n"
     << "    \"fd_baseline\": " << svc::wire_number(baseline.open_fds)
     << ",\n"
     << "    \"fd_final\": " << svc::wire_number(fin.open_fds) << ",\n"
     << "    \"fd_growth\": " << svc::wire_number(fd_growth) << ",\n"
     << "    \"rss_baseline_mb\": "
     << svc::wire_number(baseline.rss_bytes / (1024.0 * 1024.0)) << ",\n"
     << "    \"rss_final_mb\": "
     << svc::wire_number(fin.rss_bytes / (1024.0 * 1024.0)) << ",\n"
     << "    \"rss_delta_mb\": " << svc::wire_number(rss_delta_mb) << ",\n"
     << "    \"rss_ceiling_mb\": " << svc::wire_number(rss_ceiling_mb)
     << ",\n"
     << "    \"sessions_reaped\": " << svc::wire_number(reaped_delta)
     << ",\n"
     << "    \"server_latency_ms\": {\"p50\": " << svc::wire_number(server_p50)
     << ", \"p99\": " << svc::wire_number(server_p99) << "},\n"
     << "    \"window_s\": " << svc::wire_number(window_s) << ",\n"
     << "    \"window_p99_min\": " << svc::wire_number(win_p99_min) << ",\n"
     << "    \"window_p99_max\": " << svc::wire_number(win_p99_max) << ",\n"
     << "    \"windows\": [";
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (i > 0) js << ", ";
    js << "{\"t0\": " << svc::wire_number(windows[i].t0)
       << ", \"t1\": " << svc::wire_number(windows[i].t1)
       << ", \"n\": " << windows[i].n
       << ", \"p99_ms\": " << svc::wire_number(windows[i].p99) << "}";
  }
  js << "]\n  },\n"
     << "  \"rejections\": {";
  bool first = true;
  for (const auto& [code, n] : rejections) {
    if (!first) js << ", ";
    first = false;
    js << '"' << code << "\": " << n;
  }
  js << "},\n"
     << "  \"metrics\": "
     << (in_process ? obs::default_registry().to_json(2) : "null") << "\n"
     << "}\n";

  if (server) {
    server->stop();
    server->wait();
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_serve: cannot write " << out_path << '\n';
    return 1;
  }
  out << js.str();
  out.close();

  if (!quiet)
    std::cout << "bench_serve --soak: " << arrivals << " arrivals over "
              << wall_s << " s (" << sess_ok << " ok, " << sess_failed
              << " failed, " << abandoned << " abandoned, "
              << reaped_delta << " reaped), client p99 " << client_p99
              << " ms, server p99 " << server_p99 << " ms, fd growth "
              << fd_growth << ", rss delta " << rss_delta_mb
              << " MB\nwrote " << out_path << '\n';

  // Hard soak invariants.
  int rc = 0;
  if (fd_growth > 0) {
    std::cerr << "bench_serve: fd growth " << fd_growth << " (baseline "
              << baseline.open_fds << ", final " << fin.open_fds << ")\n";
    rc = 1;
  }
  if (rss_delta_mb > rss_ceiling_mb) {
    std::cerr << "bench_serve: RSS delta " << rss_delta_mb
              << " MB exceeds ceiling " << rss_ceiling_mb << " MB\n";
    rc = 1;
  }
  if (reaped_delta < static_cast<double>(abandoned)) {
    std::cerr << "bench_serve: only " << reaped_delta << " of " << abandoned
              << " abandoned sessions were reaped within "
              << reap_deadline - wall_s << " s\n";
    rc = 1;
  }
  if (sess_ok + sess_failed + abandoned != arrivals) {
    std::cerr << "bench_serve: session accounting leak: " << sess_ok
              << " ok + " << sess_failed << " failed + " << abandoned
              << " abandoned != " << arrivals << " arrivals\n";
    rc = 1;
  }
  if (p99_factor > 0 && win_p99_min > 0 &&
      win_p99_max > p99_factor * win_p99_min) {
    std::cerr << "bench_serve: windowed p99 unstable: max " << win_p99_max
              << " ms > " << p99_factor << " x min " << win_p99_min
              << " ms\n";
    rc = 1;
  }
  return rc;
}

int usage(std::ostream& os, int code) {
  os << "usage: bench_serve [options]\n"
        "\n"
        "options:\n"
        "  --host H          target an external server (default: run one\n"
        "                    in process on an ephemeral port)\n"
        "  --port N          external server port (required with --host)\n"
        "  --catalog C       random | workflow | adversary | mixed "
        "(default mixed)\n"
        "  --sessions N      total sessions to replay (default 60)\n"
        "  --concurrency C   client threads, one connection each "
        "(default 8)\n"
        "  --P N             platform size per session (default 48)\n"
        "  --scheduler NAME  scheduler to request (default lpa)\n"
        "  --mu X            LPA parameter (default 0.25)\n"
        "  --seed S          catalog RNG seed (default 1234)\n"
        "  --max-inflight N  in-process server queue bound (default 256)\n"
        "  --overload        provoke admission control: shrink the queue\n"
        "                    bound to 2 and quadruple the offered load\n"
        "  --telemetry       arm the in-process server's telemetry plane\n"
        "                    (phase metrics + 1024-deep flight recorder)\n"
        "  --out FILE        result JSON (default BENCH_serve.json)\n"
        "  --quiet           suppress the progress line\n"
        "\n"
        "soak mode (day-in-the-life replay with leak assertions):\n"
        "  --soak            Poisson arrivals under a diurnal load curve\n"
        "                    from the ingested catalog; asserts zero fd\n"
        "                    growth, bounded RSS delta, and that every\n"
        "                    abandoned session is reaped\n"
        "  --duration S      soak length in seconds (default 60)\n"
        "  --rate R          peak session arrivals per second (default 12)\n"
        "  --diurnal-period S  one day-cycle length (default: duration)\n"
        "  --abandon-pct X   %% of sessions dropped mid-stream (default 3)\n"
        "  --idle-timeout S  in-process reaper timeout (default 2)\n"
        "  --rss-ceiling-mb M  max allowed server RSS delta (default 512)\n"
        "  --p99-window S    client p99 window length (default 10)\n"
        "  --p99-window-factor F  if > 0, fail when max windowed p99\n"
        "                    exceeds F x min windowed p99 (default off)\n"
        "  --admin-port N    external server's admin listener, required\n"
        "                    with --host to scrape fd/RSS/reaper state\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Flags flags(argc, argv);
    if (flags.has("help") || flags.has("h")) return usage(std::cout, 0);
    if (flags.get_bool("soak", false)) return run_soak(flags);

    const std::string catalog_name = flags.get_string("catalog", "mixed");
    const bool overload = flags.get_bool("overload", false);
    int sessions = static_cast<int>(flags.get_int("sessions", 60));
    int concurrency = static_cast<int>(flags.get_int("concurrency", 8));
    if (overload) {
      sessions *= 2;
      concurrency *= 4;
    }
    const int P = static_cast<int>(flags.get_int("P", 48));
    const std::string scheduler = flags.get_string("scheduler", "lpa");
    const double mu = flags.get_double("mu", 0.25);
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1234));
    const std::string out_path =
        flags.get_string("out", "BENCH_serve.json");
    const bool quiet = flags.get_bool("quiet", false);
    std::string host = flags.get_string("host", "");
    int port = static_cast<int>(flags.get_int("port", 0));

    const auto catalog = build_catalog(catalog_name, P, mu, seed);

    // In-process server unless --host names an external one.
    const bool telemetry = flags.get_bool("telemetry", false);
    std::unique_ptr<svc::Server> server;
    const bool in_process = host.empty();
    if (in_process) {
      svc::ServerLimits limits;
      limits.max_in_flight = overload
                                 ? 2
                                 : static_cast<int>(
                                       flags.get_int("max-inflight", 256));
      limits.max_sessions = std::max(64, concurrency * 2);
      svc::ServerTelemetry tele;
      if (telemetry) {
        tele.phases = true;
        tele.flight_capacity = 1024;
      }
      server = std::make_unique<svc::Server>(limits, tele);
      host = "127.0.0.1";
      port = server->listen(host, 0);
    } else if (port == 0) {
      std::cerr << "bench_serve: --host requires --port\n";
      return 2;
    }

    std::atomic<int> next_session{0};
    std::vector<WorkerStats> stats(static_cast<std::size_t>(concurrency));
    const auto t0 = std::chrono::steady_clock::now();

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(concurrency));
    for (int w = 0; w < concurrency; ++w) {
      workers.emplace_back([&, w] {
        WorkerStats& st = stats[static_cast<std::size_t>(w)];
        svc::Client client;
        client.connect(host, port);
        const auto timed = [&st, &client](const std::string& payload) {
          const auto s = std::chrono::steady_clock::now();
          std::string reply = client.roundtrip(payload);
          st.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - s)
                  .count());
          return reply;
        };
        for (;;) {
          const int i = next_session.fetch_add(1);
          if (i >= sessions) return;
          const CatalogEntry& entry =
              catalog[static_cast<std::size_t>(i) % catalog.size()];
          svc::OpenParams open;
          open.scheduler = scheduler;
          open.P = P;
          open.mu = mu;
          bool failed = false;
          const auto note_error = [&st, &failed](const svc::Error& e) {
            ++st.rejections[svc::to_string(e.code)];
            failed = true;
          };
          const svc::OpenReply opened = svc::parse_open_reply(
              timed(svc::open_request_json(open, 1)));
          if (!opened.ok) {
            note_error(opened.error);
            ++st.sessions_failed;
            continue;
          }
          ++st.requests_ok;
          const graph::TaskGraph& g = entry.graph;
          for (graph::TaskId v = 0; v < g.num_tasks() && !failed; ++v) {
            svc::ReleaseParams release;
            release.name = g.name(v);
            release.model = g.model_ptr(v);
            for (const graph::TaskId u : g.predecessors(v))
              release.preds.push_back(u);
            release.expected_task = v;
            const svc::ReleaseReply rr =
                svc::parse_release_reply(timed(svc::release_request_json(
                    opened.session, release, v + 2)));
            if (!rr.ok) {
              note_error(rr.error);
            } else {
              ++st.requests_ok;
              ++st.tasks_released;
            }
          }
          const svc::CloseReply closed = svc::parse_close_reply(
              timed(svc::close_request_json(opened.session, 0)));
          if (!closed.ok)
            note_error(closed.error);
          else
            ++st.requests_ok;
          if (failed)
            ++st.sessions_failed;
          else
            ++st.sessions_ok;
        }
      });
    }
    for (auto& t : workers) t.join();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

    if (server) {
      server->stop();
      server->wait();
    }

    // Merge worker stats.
    std::vector<double> latencies;
    std::uint64_t requests_ok = 0, tasks = 0, sess_ok = 0, sess_failed = 0;
    std::map<std::string, std::uint64_t> rejections;
    for (const auto& st : stats) {
      latencies.insert(latencies.end(), st.latencies_ms.begin(),
                       st.latencies_ms.end());
      requests_ok += st.requests_ok;
      tasks += st.tasks_released;
      sess_ok += st.sessions_ok;
      sess_failed += st.sessions_failed;
      for (const auto& [code, n] : st.rejections) rejections[code] += n;
    }
    std::sort(latencies.begin(), latencies.end());
    const double total_requests = static_cast<double>(latencies.size());
    const double p50 = percentile(latencies, 0.50);
    const double p99 = percentile(latencies, 0.99);
    std::uint64_t rejected = 0;
    for (const auto& [code, n] : rejections) rejected += n;
    const double reject_rate =
        total_requests > 0 ? static_cast<double>(rejected) / total_requests
                           : 0.0;

    // Cross-check the server's log-bucketed latency histogram against
    // the exact client-side order statistic. Only meaningful for an
    // in-process, non-overload run: rejections are answered from the io
    // thread and never reach the histogram, so under overload the two
    // populations diverge by design. The tolerance is one bucket's
    // relative resolution (adjacent log_bounds differ by 10^(1/24))
    // plus loopback slack for the client-only share of the round trip.
    double server_p50 = 0.0, server_p99 = 0.0;
    bool p99_checked = false, p99_ok = true;
    const double bucket_step = std::pow(10.0, 1.0 / 24.0);
    const double slack_ms = 1.0;
    if (in_process) {
      for (const auto& s : obs::default_registry().snapshot()) {
        if (s.name != "svc.request.latency_ms" || s.count == 0) continue;
        server_p50 = obs::sample_quantile(s, 0.50);
        server_p99 = obs::sample_quantile(s, 0.99);
        if (!overload && !latencies.empty()) {
          p99_checked = true;
          p99_ok = server_p99 <= p99 * bucket_step + slack_ms &&
                   server_p99 >= p99 / bucket_step - slack_ms;
        }
      }
    }

    std::ostringstream js;
    js << "{\n"
       << "  \"bench\": \"serve\",\n"
       << "  \"catalog\": \"" << catalog_name << "\",\n"
       << "  \"in_process_server\": " << (in_process ? "true" : "false")
       << ",\n"
       << "  \"overload\": " << (overload ? "true" : "false") << ",\n"
       << "  \"sessions\": " << sessions << ",\n"
       << "  \"concurrency\": " << concurrency << ",\n"
       << "  \"P\": " << P << ",\n"
       << "  \"scheduler\": \"" << scheduler << "\",\n"
       << "  \"wall_s\": " << svc::wire_number(wall_s) << ",\n"
       << "  \"requests\": " << static_cast<std::uint64_t>(total_requests)
       << ",\n"
       << "  \"requests_ok\": " << requests_ok << ",\n"
       << "  \"tasks_released\": " << tasks << ",\n"
       << "  \"sessions_ok\": " << sess_ok << ",\n"
       << "  \"sessions_failed\": " << sess_failed << ",\n"
       << "  \"throughput_rps\": "
       << svc::wire_number(wall_s > 0 ? total_requests / wall_s : 0.0)
       << ",\n"
       << "  \"latency_ms\": {\"p50\": " << svc::wire_number(p50)
       << ", \"p99\": " << svc::wire_number(p99) << ", \"min\": "
       << svc::wire_number(latencies.empty() ? 0.0 : latencies.front())
       << ", \"max\": "
       << svc::wire_number(latencies.empty() ? 0.0 : latencies.back())
       << "},\n"
       << "  \"telemetry\": " << (telemetry ? "true" : "false") << ",\n"
       << "  \"server_latency_ms\": {\"p50\": "
       << svc::wire_number(server_p50)
       << ", \"p99\": " << svc::wire_number(server_p99) << "},\n"
       << "  \"p99_agreement\": {\"checked\": "
       << (p99_checked ? "true" : "false")
       << ", \"client_p99\": " << svc::wire_number(p99)
       << ", \"server_p99\": " << svc::wire_number(server_p99)
       << ", \"bucket_step\": " << svc::wire_number(bucket_step)
       << ", \"slack_ms\": " << svc::wire_number(slack_ms)
       << ", \"ok\": " << (p99_ok ? "true" : "false") << "},\n"
       << "  \"rejected\": " << rejected << ",\n"
       << "  \"reject_rate\": " << svc::wire_number(reject_rate) << ",\n"
       << "  \"rejections\": {";
    bool first = true;
    for (const auto& [code, n] : rejections) {
      if (!first) js << ", ";
      first = false;
      js << '"' << code << "\": " << n;
    }
    js << "},\n"
       << "  \"metrics\": "
       << (in_process ? obs::default_registry().to_json(2) : "null") << "\n"
       << "}\n";

    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "bench_serve: cannot write " << out_path << '\n';
      return 1;
    }
    out << js.str();
    out.close();

    if (!quiet)
      std::cout << "bench_serve: " << sessions << " sessions ("
                << sess_ok << " ok, " << sess_failed << " failed), "
                << static_cast<std::uint64_t>(total_requests)
                << " requests in " << wall_s << " s, p50 " << p50
                << " ms, p99 " << p99 << " ms, rejected " << rejected
                << "\nwrote " << out_path << '\n';

    // Overload runs exist to exercise admission control; finishing with
    // zero rejections means the queue bound never engaged.
    if (overload && rejected == 0) {
      std::cerr << "bench_serve: --overload produced no rejections\n";
      return 1;
    }
    if (p99_checked && !p99_ok) {
      std::cerr << "bench_serve: server-side p99 " << server_p99
                << " ms disagrees with client-side p99 " << p99
                << " ms beyond one log bucket (step " << bucket_step
                << ", slack " << slack_ms << " ms)\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_serve: " << e.what() << '\n';
    return 1;
  }
}
