// bench_serve — load generator for the scheduling service.
//
// Replays a catalog of instances (random DAGs, scientific workflows,
// Section 4.4 adversary graphs, or a mix) against a svc::Server at a
// configurable client concurrency: each worker thread opens its own
// connection, streams one session at a time task by task, and closes it.
// By default the server runs in process on an ephemeral port so the
// binary is self-contained; --host/--port target an external
// moldsched_serve instead.
//
// Output is BENCH_serve.json: request throughput, exact p50/p99 request
// latencies (sorted-sample order statistics, not histogram
// interpolation), per-error-code rejection counts, and — for the
// in-process server — a snapshot of the svc.* metrics registry.
// --overload shrinks the server's in-flight limit and piles on
// concurrency so the admission path (overloaded replies) is the thing
// being measured; the run must finish without hangs, and rejections are
// expected rather than tolerated.
//
// The bench doubles as the telemetry plane's referee: for an in-process
// non-overload run it cross-checks the server's log-bucketed
// svc.request.latency_ms p99 against the client's exact nearest-rank
// p99 and fails if they disagree beyond one bucket's relative
// resolution (plus loopback slack — client time includes the socket
// round trip the server never sees). --telemetry arms phase metrics and
// the flight recorder so with/without-telemetry throughput is
// comparable across two runs of the same command; the "telemetry" field
// in the JSON says which mode produced a given BENCH_serve.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "moldsched/check/wire_check.hpp"
#include "moldsched/graph/adversary.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/obs/metrics.hpp"
#include "moldsched/svc/client.hpp"
#include "moldsched/svc/server.hpp"
#include "moldsched/svc/wire.hpp"
#include "moldsched/util/flags.hpp"
#include "moldsched/util/rng.hpp"

namespace {

using namespace moldsched;

struct CatalogEntry {
  std::string name;
  graph::TaskGraph graph;
};

std::vector<CatalogEntry> build_catalog(const std::string& which, int P,
                                        double mu, std::uint64_t seed) {
  std::vector<CatalogEntry> out;
  util::Rng rng(seed);

  const auto add = [&out](std::string name, graph::TaskGraph g) {
    // Streaming requires id order to be topological; the relabel is the
    // identity for graphs that already are (all but the in-tree).
    out.push_back(
        CatalogEntry{std::move(name), check::relabel_topological(g)});
  };

  if (which == "random" || which == "mixed") {
    const model::ModelKind kinds[] = {
        model::ModelKind::kRoofline, model::ModelKind::kCommunication,
        model::ModelKind::kAmdahl, model::ModelKind::kGeneral};
    int i = 0;
    for (const auto kind : kinds) {
      const model::ModelSampler sampler(kind);
      const auto provider = graph::sampling_provider(sampler, rng, P);
      add("random/layered-" + std::to_string(i),
          graph::layered_random(6, 2, 8, 0.35, rng, provider));
      add("random/erdos-" + std::to_string(i),
          graph::erdos_renyi_dag(40, 0.08, rng, provider));
      add("random/intree-" + std::to_string(i),
          graph::random_in_tree(32, 3, rng, provider));
      add("random/sp-" + std::to_string(i),
          graph::series_parallel(36, rng, provider));
      ++i;
    }
  }
  if (which == "workflow" || which == "mixed") {
    graph::WorkflowModelConfig config;
    config.kind = model::ModelKind::kAmdahl;
    add("workflow/cholesky", graph::cholesky(4, config));
    add("workflow/lu", graph::lu(4, config));
    config.kind = model::ModelKind::kCommunication;
    add("workflow/fft", graph::fft(5, config));
    add("workflow/montage", graph::montage(8, config));
    config.kind = model::ModelKind::kGeneral;
    add("workflow/wavefront", graph::wavefront(6, 6, config));
  }
  if (which == "adversary" || which == "mixed") {
    add("adversary/roofline",
        graph::roofline_adversary(std::max(P, 2), mu).graph);
    add("adversary/communication",
        graph::communication_adversary(std::max(P, 4), mu).graph);
    add("adversary/amdahl", graph::amdahl_adversary(5, mu).graph);
    add("adversary/general", graph::general_adversary(5, mu).graph);
  }
  if (out.empty())
    throw std::invalid_argument(
        "unknown catalog '" + which +
        "' (known: random, workflow, adversary, mixed)");
  return out;
}

struct WorkerStats {
  std::vector<double> latencies_ms;  ///< every request round trip
  std::uint64_t requests_ok = 0;
  std::uint64_t tasks_released = 0;
  std::uint64_t sessions_ok = 0;
  std::uint64_t sessions_failed = 0;
  std::map<std::string, std::uint64_t> rejections;  ///< error code -> count
};

/// Percentile by exact order statistic (nearest-rank) on a sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

int usage(std::ostream& os, int code) {
  os << "usage: bench_serve [options]\n"
        "\n"
        "options:\n"
        "  --host H          target an external server (default: run one\n"
        "                    in process on an ephemeral port)\n"
        "  --port N          external server port (required with --host)\n"
        "  --catalog C       random | workflow | adversary | mixed "
        "(default mixed)\n"
        "  --sessions N      total sessions to replay (default 60)\n"
        "  --concurrency C   client threads, one connection each "
        "(default 8)\n"
        "  --P N             platform size per session (default 48)\n"
        "  --scheduler NAME  scheduler to request (default lpa)\n"
        "  --mu X            LPA parameter (default 0.25)\n"
        "  --seed S          catalog RNG seed (default 1234)\n"
        "  --max-inflight N  in-process server queue bound (default 256)\n"
        "  --overload        provoke admission control: shrink the queue\n"
        "                    bound to 2 and quadruple the offered load\n"
        "  --telemetry       arm the in-process server's telemetry plane\n"
        "                    (phase metrics + 1024-deep flight recorder)\n"
        "  --out FILE        result JSON (default BENCH_serve.json)\n"
        "  --quiet           suppress the progress line\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Flags flags(argc, argv);
    if (flags.has("help") || flags.has("h")) return usage(std::cout, 0);

    const std::string catalog_name = flags.get_string("catalog", "mixed");
    const bool overload = flags.get_bool("overload", false);
    int sessions = static_cast<int>(flags.get_int("sessions", 60));
    int concurrency = static_cast<int>(flags.get_int("concurrency", 8));
    if (overload) {
      sessions *= 2;
      concurrency *= 4;
    }
    const int P = static_cast<int>(flags.get_int("P", 48));
    const std::string scheduler = flags.get_string("scheduler", "lpa");
    const double mu = flags.get_double("mu", 0.25);
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1234));
    const std::string out_path =
        flags.get_string("out", "BENCH_serve.json");
    const bool quiet = flags.get_bool("quiet", false);
    std::string host = flags.get_string("host", "");
    int port = static_cast<int>(flags.get_int("port", 0));

    const auto catalog = build_catalog(catalog_name, P, mu, seed);

    // In-process server unless --host names an external one.
    const bool telemetry = flags.get_bool("telemetry", false);
    std::unique_ptr<svc::Server> server;
    const bool in_process = host.empty();
    if (in_process) {
      svc::ServerLimits limits;
      limits.max_in_flight = overload
                                 ? 2
                                 : static_cast<int>(
                                       flags.get_int("max-inflight", 256));
      limits.max_sessions = std::max(64, concurrency * 2);
      svc::ServerTelemetry tele;
      if (telemetry) {
        tele.phases = true;
        tele.flight_capacity = 1024;
      }
      server = std::make_unique<svc::Server>(limits, tele);
      host = "127.0.0.1";
      port = server->listen(host, 0);
    } else if (port == 0) {
      std::cerr << "bench_serve: --host requires --port\n";
      return 2;
    }

    std::atomic<int> next_session{0};
    std::vector<WorkerStats> stats(static_cast<std::size_t>(concurrency));
    const auto t0 = std::chrono::steady_clock::now();

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(concurrency));
    for (int w = 0; w < concurrency; ++w) {
      workers.emplace_back([&, w] {
        WorkerStats& st = stats[static_cast<std::size_t>(w)];
        svc::Client client;
        client.connect(host, port);
        const auto timed = [&st, &client](const std::string& payload) {
          const auto s = std::chrono::steady_clock::now();
          std::string reply = client.roundtrip(payload);
          st.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - s)
                  .count());
          return reply;
        };
        for (;;) {
          const int i = next_session.fetch_add(1);
          if (i >= sessions) return;
          const CatalogEntry& entry =
              catalog[static_cast<std::size_t>(i) % catalog.size()];
          svc::OpenParams open;
          open.scheduler = scheduler;
          open.P = P;
          open.mu = mu;
          bool failed = false;
          const auto note_error = [&st, &failed](const svc::Error& e) {
            ++st.rejections[svc::to_string(e.code)];
            failed = true;
          };
          const svc::OpenReply opened = svc::parse_open_reply(
              timed(svc::open_request_json(open, 1)));
          if (!opened.ok) {
            note_error(opened.error);
            ++st.sessions_failed;
            continue;
          }
          ++st.requests_ok;
          const graph::TaskGraph& g = entry.graph;
          for (graph::TaskId v = 0; v < g.num_tasks() && !failed; ++v) {
            svc::ReleaseParams release;
            release.name = g.name(v);
            release.model = g.model_ptr(v);
            for (const graph::TaskId u : g.predecessors(v))
              release.preds.push_back(u);
            release.expected_task = v;
            const svc::ReleaseReply rr =
                svc::parse_release_reply(timed(svc::release_request_json(
                    opened.session, release, v + 2)));
            if (!rr.ok) {
              note_error(rr.error);
            } else {
              ++st.requests_ok;
              ++st.tasks_released;
            }
          }
          const svc::CloseReply closed = svc::parse_close_reply(
              timed(svc::close_request_json(opened.session, 0)));
          if (!closed.ok)
            note_error(closed.error);
          else
            ++st.requests_ok;
          if (failed)
            ++st.sessions_failed;
          else
            ++st.sessions_ok;
        }
      });
    }
    for (auto& t : workers) t.join();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

    if (server) {
      server->stop();
      server->wait();
    }

    // Merge worker stats.
    std::vector<double> latencies;
    std::uint64_t requests_ok = 0, tasks = 0, sess_ok = 0, sess_failed = 0;
    std::map<std::string, std::uint64_t> rejections;
    for (const auto& st : stats) {
      latencies.insert(latencies.end(), st.latencies_ms.begin(),
                       st.latencies_ms.end());
      requests_ok += st.requests_ok;
      tasks += st.tasks_released;
      sess_ok += st.sessions_ok;
      sess_failed += st.sessions_failed;
      for (const auto& [code, n] : st.rejections) rejections[code] += n;
    }
    std::sort(latencies.begin(), latencies.end());
    const double total_requests = static_cast<double>(latencies.size());
    const double p50 = percentile(latencies, 0.50);
    const double p99 = percentile(latencies, 0.99);
    std::uint64_t rejected = 0;
    for (const auto& [code, n] : rejections) rejected += n;
    const double reject_rate =
        total_requests > 0 ? static_cast<double>(rejected) / total_requests
                           : 0.0;

    // Cross-check the server's log-bucketed latency histogram against
    // the exact client-side order statistic. Only meaningful for an
    // in-process, non-overload run: rejections are answered from the io
    // thread and never reach the histogram, so under overload the two
    // populations diverge by design. The tolerance is one bucket's
    // relative resolution (adjacent log_bounds differ by 10^(1/24))
    // plus loopback slack for the client-only share of the round trip.
    double server_p50 = 0.0, server_p99 = 0.0;
    bool p99_checked = false, p99_ok = true;
    const double bucket_step = std::pow(10.0, 1.0 / 24.0);
    const double slack_ms = 1.0;
    if (in_process) {
      for (const auto& s : obs::default_registry().snapshot()) {
        if (s.name != "svc.request.latency_ms" || s.count == 0) continue;
        server_p50 = obs::sample_quantile(s, 0.50);
        server_p99 = obs::sample_quantile(s, 0.99);
        if (!overload && !latencies.empty()) {
          p99_checked = true;
          p99_ok = server_p99 <= p99 * bucket_step + slack_ms &&
                   server_p99 >= p99 / bucket_step - slack_ms;
        }
      }
    }

    std::ostringstream js;
    js << "{\n"
       << "  \"bench\": \"serve\",\n"
       << "  \"catalog\": \"" << catalog_name << "\",\n"
       << "  \"in_process_server\": " << (in_process ? "true" : "false")
       << ",\n"
       << "  \"overload\": " << (overload ? "true" : "false") << ",\n"
       << "  \"sessions\": " << sessions << ",\n"
       << "  \"concurrency\": " << concurrency << ",\n"
       << "  \"P\": " << P << ",\n"
       << "  \"scheduler\": \"" << scheduler << "\",\n"
       << "  \"wall_s\": " << svc::wire_number(wall_s) << ",\n"
       << "  \"requests\": " << static_cast<std::uint64_t>(total_requests)
       << ",\n"
       << "  \"requests_ok\": " << requests_ok << ",\n"
       << "  \"tasks_released\": " << tasks << ",\n"
       << "  \"sessions_ok\": " << sess_ok << ",\n"
       << "  \"sessions_failed\": " << sess_failed << ",\n"
       << "  \"throughput_rps\": "
       << svc::wire_number(wall_s > 0 ? total_requests / wall_s : 0.0)
       << ",\n"
       << "  \"latency_ms\": {\"p50\": " << svc::wire_number(p50)
       << ", \"p99\": " << svc::wire_number(p99) << ", \"min\": "
       << svc::wire_number(latencies.empty() ? 0.0 : latencies.front())
       << ", \"max\": "
       << svc::wire_number(latencies.empty() ? 0.0 : latencies.back())
       << "},\n"
       << "  \"telemetry\": " << (telemetry ? "true" : "false") << ",\n"
       << "  \"server_latency_ms\": {\"p50\": "
       << svc::wire_number(server_p50)
       << ", \"p99\": " << svc::wire_number(server_p99) << "},\n"
       << "  \"p99_agreement\": {\"checked\": "
       << (p99_checked ? "true" : "false")
       << ", \"client_p99\": " << svc::wire_number(p99)
       << ", \"server_p99\": " << svc::wire_number(server_p99)
       << ", \"bucket_step\": " << svc::wire_number(bucket_step)
       << ", \"slack_ms\": " << svc::wire_number(slack_ms)
       << ", \"ok\": " << (p99_ok ? "true" : "false") << "},\n"
       << "  \"rejected\": " << rejected << ",\n"
       << "  \"reject_rate\": " << svc::wire_number(reject_rate) << ",\n"
       << "  \"rejections\": {";
    bool first = true;
    for (const auto& [code, n] : rejections) {
      if (!first) js << ", ";
      first = false;
      js << '"' << code << "\": " << n;
    }
    js << "},\n"
       << "  \"metrics\": "
       << (in_process ? obs::default_registry().to_json(2) : "null") << "\n"
       << "}\n";

    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "bench_serve: cannot write " << out_path << '\n';
      return 1;
    }
    out << js.str();
    out.close();

    if (!quiet)
      std::cout << "bench_serve: " << sessions << " sessions ("
                << sess_ok << " ok, " << sess_failed << " failed), "
                << static_cast<std::uint64_t>(total_requests)
                << " requests in " << wall_s << " s, p50 " << p50
                << " ms, p99 " << p99 << " ms, rejected " << rejected
                << "\nwrote " << out_path << '\n';

    // Overload runs exist to exercise admission control; finishing with
    // zero rejections means the queue bound never engaged.
    if (overload && rejected == 0) {
      std::cerr << "bench_serve: --overload produced no rejections\n";
      return 1;
    }
    if (p99_checked && !p99_ok) {
      std::cerr << "bench_serve: server-side p99 " << server_p99
                << " ms disagrees with client-side p99 " << p99
                << " ms beyond one log bucket (step " << bucket_step
                << ", slack " << slack_ms << " ms)\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_serve: " << e.what() << '\n';
    return 1;
  }
}
