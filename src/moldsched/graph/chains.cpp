#include "moldsched/graph/chains.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "moldsched/model/arbitrary_model.hpp"

namespace moldsched::graph {

ChainsInstance make_chains_instance(int K) {
  if (K < 1 || K > 62)
    throw std::invalid_argument("make_chains_instance: K must be in [1, 62]");
  ChainsInstance inst;
  inst.K = K;
  inst.ell = (K & (K - 1)) == 0
                 ? static_cast<int>(std::lround(std::log2(static_cast<double>(K))))
                 : -1;
  inst.P = static_cast<std::int64_t>(K) * (std::int64_t{1} << (K - 1));
  inst.num_chains = (std::int64_t{1} << K) - 1;
  inst.chains_per_group.resize(static_cast<std::size_t>(K));
  inst.total_tasks = 0;
  for (int i = 1; i <= K; ++i) {
    const std::int64_t count = std::int64_t{1} << (K - i);
    inst.chains_per_group[static_cast<std::size_t>(i - 1)] = count;
    inst.total_tasks += static_cast<std::int64_t>(i) * count;
  }
  inst.task_model = model::make_log_speedup_model();
  inst.offline_makespan = 1.0;
  const double lgK = std::log2(static_cast<double>(K));
  double lb = 0.0;
  for (int i = 1; i <= K; ++i) lb += 1.0 / (lgK + static_cast<double>(i));
  inst.online_makespan_lower_bound = lb;
  return inst;
}

TaskGraph chains_graph(const ChainsInstance& inst, std::int64_t max_tasks) {
  if (inst.total_tasks > max_tasks)
    throw std::invalid_argument(
        "chains_graph: instance has " + std::to_string(inst.total_tasks) +
        " tasks, above the cap of " + std::to_string(max_tasks));
  TaskGraph g;
  std::int64_t chain_id = 0;
  for (int i = 1; i <= inst.K; ++i) {
    const std::int64_t count =
        inst.chains_per_group[static_cast<std::size_t>(i - 1)];
    for (std::int64_t c = 0; c < count; ++c) {
      ++chain_id;
      TaskId prev = -1;
      for (int pos = 1; pos <= i; ++pos) {
        const TaskId v =
            g.add_task(inst.task_model, std::to_string(chain_id) + "(" +
                                            std::to_string(pos) + ")");
        if (prev >= 0) g.add_edge(prev, v);
        prev = v;
      }
    }
  }
  return g;
}

}  // namespace moldsched::graph
