#include "moldsched/graph/adversary.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "moldsched/model/general_model.hpp"
#include "moldsched/model/special_models.hpp"

namespace moldsched::graph {

namespace {

constexpr double kMuMax = 0.38196601125010515;  // (3 - sqrt(5)) / 2

int ceil_mu_p(double mu, int P) {
  return static_cast<int>(std::ceil(mu * static_cast<double>(P) - 1e-12));
}

}  // namespace

double delta_of_mu(double mu) {
  if (!(mu > 0.0) || mu > kMuMax + 1e-12)
    throw std::invalid_argument(
        "delta_of_mu: mu must lie in (0, (3-sqrt(5))/2]");
  return (1.0 - 2.0 * mu) / (mu * (1.0 - mu));
}

TaskGraph generic_lower_bound_graph(int X, int Y, const model::ModelPtr& a,
                                    const model::ModelPtr& b,
                                    const model::ModelPtr& c) {
  if (Y < 0 || X < 0)
    throw std::invalid_argument("generic_lower_bound_graph: X, Y must be >= 0");
  if (Y > 0 && (!a || !b))
    throw std::invalid_argument(
        "generic_lower_bound_graph: need A/B models when Y > 0");
  if (!c) throw std::invalid_argument("generic_lower_bound_graph: null C model");

  TaskGraph g;
  TaskId prev_a = -1;
  for (int i = 1; i <= Y; ++i) {
    // B tasks first: smaller ids => revealed and queued before the layer's
    // A task, which realizes the proofs' worst-case priority.
    std::vector<TaskId> layer;
    layer.reserve(static_cast<std::size_t>(X) + 1);
    for (int j = 1; j <= X; ++j) {
      layer.push_back(g.add_task(
          b, "B" + std::to_string(i) + "," + std::to_string(j)));
    }
    const TaskId ai = g.add_task(a, "A" + std::to_string(i));
    layer.push_back(ai);
    if (prev_a >= 0)
      for (const TaskId v : layer) g.add_edge(prev_a, v);
    prev_a = ai;
  }
  const TaskId tc = g.add_task(c, "C");
  if (prev_a >= 0) g.add_edge(prev_a, tc);
  return g;
}

AdversaryInstance roofline_adversary(int P, double mu) {
  if (P < 2) throw std::invalid_argument("roofline_adversary: P must be >= 2");
  AdversaryInstance inst;
  inst.P = P;
  inst.mu = mu;
  inst.delta = delta_of_mu(mu);
  inst.X = 0;
  inst.Y = 0;
  const auto c_model =
      std::make_shared<model::RooflineModel>(static_cast<double>(P), P);
  inst.graph = generic_lower_bound_graph(0, 0, nullptr, nullptr, c_model);
  inst.expected_alloc_c = ceil_mu_p(mu, P);
  inst.predicted_online_makespan = c_model->time(inst.expected_alloc_c);
  inst.t_opt_upper = c_model->time(P);  // == 1
  inst.ratio_limit = 1.0 / mu;
  inst.description = "Theorem 5 roofline instance (single task, w = pbar = P)";
  return inst;
}

AdversaryInstance communication_adversary(int P, double mu) {
  if (P <= 3)
    throw std::invalid_argument("communication_adversary: P must be > 3");
  AdversaryInstance inst;
  inst.P = P;
  inst.mu = mu;
  const double delta = delta_of_mu(mu);
  inst.delta = delta;
  if (!(delta < 3.0))
    throw std::invalid_argument(
        "communication_adversary: construction needs delta < 3");

  inst.X = static_cast<int>(std::floor((1.0 - mu) * static_cast<double>(P) /
                                       2.0)) +
           1;
  inst.Y = P - 3;

  const double w_b =
      6.0 * delta / (3.0 - delta) + 1.0 / static_cast<double>(P);
  const double xwb = static_cast<double>(inst.X) * w_b;

  const auto a_model = std::make_shared<model::RooflineModel>(
      1.0, model::GeneralParams::kUnboundedParallelism);
  const auto b_model = std::make_shared<model::CommunicationModel>(w_b, 1.0);
  const auto c_model = std::make_shared<model::CommunicationModel>(
      delta * xwb, xwb * (0.5 - delta / 6.0));

  inst.graph =
      generic_lower_bound_graph(inst.X, inst.Y, a_model, b_model, c_model);

  inst.expected_alloc_a = ceil_mu_p(mu, P);
  inst.expected_alloc_b = 2;
  inst.expected_alloc_c = 1;
  inst.predicted_online_makespan =
      static_cast<double>(inst.Y) *
          (a_model->time(inst.expected_alloc_a) + b_model->time(2)) +
      c_model->time(1);

  // The proof's alternative schedule: every A with all P processors,
  // sequentially; then C on 3 processors while the X*Y B tasks run on one
  // processor each in batches of P - 3.
  const long total_b = static_cast<long>(inst.X) * static_cast<long>(inst.Y);
  const long batches = (total_b + static_cast<long>(P) - 4) /
                       (static_cast<long>(P) - 3);
  inst.t_opt_upper =
      static_cast<double>(inst.Y) * a_model->time(P) +
      std::max(c_model->time(3),
               static_cast<double>(batches) * b_model->time(1));

  const double w_b_inf = 6.0 * delta / (3.0 - delta);
  inst.ratio_limit =
      1.0 / (1.0 - mu) + 2.0 / ((1.0 - mu) * w_b_inf) + delta;
  inst.description = "Theorem 6 communication instance";
  return inst;
}

namespace {

/// Shared construction of Theorems 7 and 8 (identical instance; the two
/// theorems evaluate it at different mu).
AdversaryInstance amdahl_like_adversary(int K, double mu, bool general_kind) {
  if (K <= 3)
    throw std::invalid_argument("amdahl_adversary: K must be > 3");
  AdversaryInstance inst;
  const int P = K * K;
  inst.P = P;
  inst.mu = mu;
  const double delta = delta_of_mu(mu);
  inst.delta = delta;
  if (!(5.0 * delta - 2.0 * delta * delta - 2.0 <= 1e-9))
    throw std::invalid_argument(
        "amdahl_adversary: construction needs 5*delta - 2*delta^2 - 2 <= 0");

  const double kd = static_cast<double>(K);

  // Allocation the algorithm derives for B tasks: p_B = ceil(p*), where
  // t_B(p*) = delta * t_B^min (continuous relaxation).
  const double p_star = kd / (delta * (1.0 / kd + 1.0) - 1.0);
  const int p_b = static_cast<int>(std::ceil(p_star - 1e-12));

  inst.X = static_cast<int>(std::floor(kd * kd * (1.0 - mu) /
                                       static_cast<double>(p_b))) +
           1;
  inst.Y = static_cast<int>(std::floor(kd * (kd - delta) /
                                       static_cast<double>(inst.X)));
  if (inst.Y < 1)
    throw std::invalid_argument("amdahl_adversary: K too small (Y < 1)");

  model::ModelPtr a_model;
  model::ModelPtr b_model;
  model::ModelPtr c_model;
  if (general_kind) {
    model::GeneralParams pa;
    pa.w = kd;
    a_model = std::make_shared<model::GeneralModel>(pa);
    model::GeneralParams pb;
    pb.w = kd;
    pb.d = 1.0;
    b_model = std::make_shared<model::GeneralModel>(pb);
    model::GeneralParams pc;
    pc.w = (delta - 1.0) * kd;
    pc.d = kd;
    c_model = std::make_shared<model::GeneralModel>(pc);
  } else {
    a_model = std::make_shared<model::RooflineModel>(
        kd, model::GeneralParams::kUnboundedParallelism);
    b_model = std::make_shared<model::AmdahlModel>(kd, 1.0);
    c_model = std::make_shared<model::AmdahlModel>((delta - 1.0) * kd, kd);
  }

  inst.graph =
      generic_lower_bound_graph(inst.X, inst.Y, a_model, b_model, c_model);

  inst.expected_alloc_a = ceil_mu_p(mu, P);
  inst.expected_alloc_b = p_b;
  inst.expected_alloc_c = 1;
  inst.predicted_online_makespan =
      static_cast<double>(inst.Y) *
          (a_model->time(inst.expected_alloc_a) + b_model->time(p_b)) +
      c_model->time(1);

  // Alternative schedule: A tasks sequentially on P processors; then all
  // X*Y B tasks on one processor each, in parallel with C on
  // ceil((delta-1)K) processors. The proof guarantees X*Y + delta*K <= P.
  const int p_c_alt =
      static_cast<int>(std::ceil((delta - 1.0) * kd - 1e-12));
  inst.t_opt_upper = static_cast<double>(inst.Y) * a_model->time(P) +
                     std::max(b_model->time(1), c_model->time(p_c_alt));

  inst.ratio_limit = delta / ((delta - 1.0) * (1.0 - mu)) + delta;
  inst.description = general_kind
                         ? "Theorem 8 general-model instance (P = K^2)"
                         : "Theorem 7 Amdahl instance (P = K^2)";
  return inst;
}

}  // namespace

AdversaryInstance amdahl_adversary(int K, double mu) {
  return amdahl_like_adversary(K, mu, /*general_kind=*/false);
}

AdversaryInstance general_adversary(int K, double mu) {
  return amdahl_like_adversary(K, mu, /*general_kind=*/true);
}

}  // namespace moldsched::graph
