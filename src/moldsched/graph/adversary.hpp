// Adversarial lower-bound instances from Section 4.4 of the paper.
//
// Figure 1's generic graph has Y layers, each of X identical "B" tasks
// plus one "A" task, followed by a single final "C" task:
//   A_i -> A_{i+1},  A_i -> B_{i+1,j},  A_Y -> C.
// Parameters are chosen per speedup model (Theorems 5-8) so that the
// online algorithm serializes each layer (Figure 2a) while an explicit
// alternative schedule stays compact (Figure 2b).
//
// Within each layer, B tasks receive smaller ids than the layer's A task;
// since the online scheduler reveals and queues simultaneously available
// tasks in id order, FIFO list scheduling realizes the proofs'
// worst-case "prioritize T_B first" behaviour.
#pragma once

#include <string>

#include "moldsched/graph/task_graph.hpp"

namespace moldsched::graph {

/// A fully parameterized lower-bound instance.
struct AdversaryInstance {
  TaskGraph graph;
  int P = 0;            ///< platform size the instance targets
  double mu = 0.0;      ///< algorithm parameter the instance is tuned against
  double delta = 0.0;   ///< (1-2mu)/(mu(1-mu))
  int X = 0;            ///< B tasks per layer
  int Y = 0;            ///< number of layers
  /// Makespan of the proof's explicit alternative schedule — an upper
  /// bound on T_opt, computed exactly for this finite instance.
  double t_opt_upper = 0.0;
  /// The proof's predicted makespan of Algorithm 1 on this instance
  /// (exact, given the allocations the proof derives).
  double predicted_online_makespan = 0.0;
  /// Allocations the proof derives for Algorithm 1 (asserted in tests).
  int expected_alloc_a = 0;
  int expected_alloc_b = 0;
  int expected_alloc_c = 0;
  /// Closed-form asymptotic lower bound on the competitive ratio
  /// (the theorem's limit as P or K grows).
  double ratio_limit = 0.0;
  std::string description;
};

/// delta(mu) = (1 - 2 mu) / (mu (1 - mu)), the beta-constraint bound of
/// Algorithm 2. Throws unless 0 < mu <= (3 - sqrt(5))/2.
[[nodiscard]] double delta_of_mu(double mu);

/// Figure 1 skeleton with caller-supplied models for the three groups.
/// Y == 0 degenerates to the single task C.
[[nodiscard]] TaskGraph generic_lower_bound_graph(int X, int Y,
                                                  const model::ModelPtr& a,
                                                  const model::ModelPtr& b,
                                                  const model::ModelPtr& c);

/// Theorem 5: single roofline task (w = P, pbar = P); T_opt = 1 while the
/// algorithm caps the allocation at ceil(mu P). Requires P >= 2.
[[nodiscard]] AdversaryInstance roofline_adversary(int P, double mu);

/// Theorem 6: communication-model instance. Requires P > 3.
[[nodiscard]] AdversaryInstance communication_adversary(int P, double mu);

/// Theorem 7: Amdahl-model instance on P = K^2 processors. Requires K > 3.
[[nodiscard]] AdversaryInstance amdahl_adversary(int K, double mu);

/// Theorem 8: identical construction evaluated at the general-model mu.
/// Requires K > 3.
[[nodiscard]] AdversaryInstance general_adversary(int K, double mu);

}  // namespace moldsched::graph
