// Preprocessing passes over task graphs, in the style of a compiler
// pass pipeline on DAGs: each pass takes a built graph, produces a
// derived structure (or a rewritten graph) and bumps per-pass obs
// counters (`graph.pass.<name>.runs`, plus pass-specific counters) so
// pipeline cost is visible in metrics dumps.
//
// The passes are scheduling-oriented:
//  * transitive_reduction removes every edge implied by a longer path —
//    precedence semantics are unchanged, but the simulator and the
//    online reveal rule then touch the minimum number of edges.
//  * critical_path extracts the longest weighted path, the classic
//    makespan lower bound (with per-task times t_min(P) it is exactly
//    the paper's C_max >= max-path bound).
//  * topological_layers computes ASAP levels, the layer decomposition
//    that level-by-level schedulers and the scale generators speak.
#pragma once

#include <cstddef>
#include <vector>

#include "moldsched/graph/task_graph.hpp"

namespace moldsched::graph::passes {

/// Result of transitive_reduction: the reduced graph (same tasks, same
/// ids, same names/models, minimal edge set) plus what was removed.
struct ReductionResult {
  TaskGraph graph;
  std::size_t edges_removed = 0;
};

/// Removes every edge (u, v) for which another u -> ... -> v path of
/// length >= 2 exists. For a DAG the transitive reduction is unique, so
/// the result does not depend on traversal order. O(V * (V + E)) worst
/// case with a topo-position prune that makes sparse layered graphs
/// closer to O(E). Throws std::logic_error on cyclic graphs.
[[nodiscard]] ReductionResult transitive_reduction(const TaskGraph& g);

/// Longest weighted path through the DAG.
struct CriticalPath {
  double length = 0.0;          ///< sum of times along the path
  std::vector<TaskId> tasks;    ///< source -> sink, never empty
};

/// Critical path under per-task execution times (`times[v]` is task v's
/// weight). Ties follow the deterministic successor rule of
/// graph::critical_path_tasks. Throws std::invalid_argument unless
/// times.size() == num_tasks(), std::logic_error on empty graphs.
[[nodiscard]] CriticalPath critical_path(const TaskGraph& g,
                                         const std::vector<double>& times);

/// Convenience weight vector for the paper's lower bound: times[v] =
/// t_min(P) = model_of(v).min_time(P). critical_path over it
/// lower-bounds every valid P-processor schedule's makespan.
[[nodiscard]] std::vector<double> min_time_weights(const TaskGraph& g, int P);

/// ASAP layer decomposition in CSR-like form.
struct Layering {
  /// layer_of[v]: 0 for sources, else 1 + max over predecessors.
  std::vector<int> layer_of;
  /// offsets.size() == num_layers() + 1; tasks of layer l are
  /// order[offsets[l] .. offsets[l+1]), in ascending id order.
  std::vector<std::size_t> offsets;
  std::vector<TaskId> order;

  [[nodiscard]] int num_layers() const noexcept {
    return offsets.empty() ? 0 : static_cast<int>(offsets.size() - 1);
  }
  /// Tasks of layer l, ascending id.
  [[nodiscard]] std::span<const TaskId> layer(int l) const {
    return {order.data() + offsets[static_cast<std::size_t>(l)],
            offsets[static_cast<std::size_t>(l) + 1] -
                offsets[static_cast<std::size_t>(l)]};
  }
};

/// ASAP levels in O(V + E). Throws std::logic_error on cyclic graphs;
/// returns an empty Layering for the empty graph.
[[nodiscard]] Layering topological_layers(const TaskGraph& g);

}  // namespace moldsched::graph::passes
