// "Realistic workflow" generators: task graphs with the shapes of common
// scientific applications (tiled dense linear algebra, FFT butterflies,
// Montage-style mosaicking, wavefront sweeps). The paper's conclusion
// names an evaluation on realistic workflows as future work; these
// generators supply it synthetically.
//
// Each kernel class gets a speedup model of the configured family whose
// work scales with the kernel's flop count relative to a unit tile.
#pragma once

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/model/speedup_model.hpp"

namespace moldsched::graph {

/// How workflow kernels are mapped onto speedup models.
struct WorkflowModelConfig {
  model::ModelKind kind = model::ModelKind::kAmdahl;
  double base_work = 200.0;    ///< w of a unit (relative work 1) kernel
  double seq_fraction = 0.05;  ///< Amdahl/general: d = seq_fraction * w
  double sweet_spot = 32.0;    ///< comm/general: sqrt(w/c) for a unit kernel;
                               ///< roofline: pbar of a unit kernel
};

/// Builds one kernel model: work = base_work * rel_work; secondary
/// parameters scale so larger kernels parallelize further (the
/// communication sweet spot and roofline pbar grow like sqrt(rel_work)).
/// Throws on rel_work <= 0 or an arbitrary-kind config.
[[nodiscard]] model::ModelPtr make_workflow_model(
    const WorkflowModelConfig& config, double rel_work);

/// Tiled Cholesky factorization DAG on an nt x nt tile grid
/// (POTRF/TRSM/SYRK/GEMM kernels with relative works 1/3, 1, 1, 2).
/// nt >= 1. Task count is nt(nt+1)(nt+2)/6 + O(nt^2).
[[nodiscard]] TaskGraph cholesky(int nt, const WorkflowModelConfig& config);

/// Tiled LU factorization DAG (no pivoting) on an nt x nt tile grid
/// (GETRF/TRSM-row/TRSM-col/GEMM kernels).
[[nodiscard]] TaskGraph lu(int nt, const WorkflowModelConfig& config);

/// FFT butterfly DAG over n = 2^log2n points: log2n stages of n tasks,
/// task (s, i) depending on (s-1, i) and (s-1, i xor 2^(s-1)).
[[nodiscard]] TaskGraph fft(int log2n, const WorkflowModelConfig& config);

/// Montage-style mosaicking workflow: `width` projection tasks, an
/// overlap-difference layer, a global fit, per-tile background
/// corrections and a final co-addition.
[[nodiscard]] TaskGraph montage(int width, const WorkflowModelConfig& config);

/// Wavefront sweep over a rows x cols grid: (r, c) depends on (r-1, c)
/// and (r, c-1). The canonical dynamic-programming / stencil dependency
/// pattern.
[[nodiscard]] TaskGraph wavefront(int rows, int cols,
                                  const WorkflowModelConfig& config);

}  // namespace moldsched::graph
