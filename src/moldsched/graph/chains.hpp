// The Section 5 lower-bound instance (Figure 3): 2^K - 1 independent
// linear chains organized in K groups, group i holding 2^{K-i} chains of
// exactly i tasks each. All tasks are identical with the arbitrary
// speedup model t(p) = 1/(lg p + 1), and the platform has P = K * 2^{K-1}
// processors. The offline optimum finishes at time 1 (group i chains get
// 2^{i-1} processors each); any deterministic online algorithm is forced
// to Omega(ln K) by the adaptive adversary of Lemma 10.
#pragma once

#include <cstdint>
#include <vector>

#include "moldsched/graph/task_graph.hpp"

namespace moldsched::graph {

struct ChainsInstance {
  int K = 0;             ///< number of groups == length of the longest chain (D)
  int ell = -1;          ///< lg K when K is a power of two, else -1
  std::int64_t P = 0;    ///< K * 2^{K-1} processors
  std::int64_t num_chains = 0;  ///< 2^K - 1
  std::int64_t total_tasks = 0; ///< sum_i i * 2^{K-i}
  /// chains_per_group[i-1] = 2^{K-i}: the number of chains of length i.
  std::vector<std::int64_t> chains_per_group;
  /// The common task model t(p) = 1/(lg p + 1).
  model::ModelPtr task_model;
  /// Makespan of the proof's offline schedule (exactly 1).
  double offline_makespan = 1.0;
  /// Lemma 10 bound: sum_{i=1..K} 1/(lg K + i) <= any online makespan.
  double online_makespan_lower_bound = 0.0;
};

/// Builds the instance metadata for any K in [1, 62].
[[nodiscard]] ChainsInstance make_chains_instance(int K);

/// Materializes the instance as an explicit TaskGraph with fixed group
/// assignment (chains of group 1 first, then group 2, ...). Intended for
/// structure statistics and small-K scheduling; throws if total_tasks
/// exceeds `max_tasks`.
[[nodiscard]] TaskGraph chains_graph(const ChainsInstance& inst,
                                     std::int64_t max_tasks = 2'000'000);

}  // namespace moldsched::graph
