#include "moldsched/graph/passes.hpp"

#include <algorithm>
#include <stdexcept>

#include "moldsched/graph/algorithms.hpp"
#include "moldsched/obs/metrics.hpp"

namespace moldsched::graph::passes {

namespace {

/// FIFO-Kahn topological order (no ordering contract — O(V+E)). Throws
/// std::logic_error on cycles so passes fail loudly instead of looping.
std::vector<TaskId> linear_topo_order(const TaskGraph& g) {
  const int n = g.num_tasks();
  std::vector<int> in_deg(static_cast<std::size_t>(n));
  std::vector<TaskId> order;
  order.reserve(static_cast<std::size_t>(n));
  for (TaskId v = 0; v < n; ++v) {
    in_deg[static_cast<std::size_t>(v)] = g.in_degree(v);
    if (in_deg[static_cast<std::size_t>(v)] == 0) order.push_back(v);
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (const TaskId s : g.successors(order[head])) {
      if (--in_deg[static_cast<std::size_t>(s)] == 0) order.push_back(s);
    }
  }
  if (order.size() != static_cast<std::size_t>(n))
    throw std::logic_error("graph::passes: graph contains a cycle");
  return order;
}

}  // namespace

ReductionResult transitive_reduction(const TaskGraph& g) {
  const auto order = linear_topo_order(g);
  const auto n = static_cast<std::size_t>(g.num_tasks());
  std::vector<std::size_t> pos(n);
  for (std::size_t i = 0; i < n; ++i)
    pos[static_cast<std::size_t>(order[i])] = i;

  // For each u: walk its direct successors in ascending topo position,
  // keeping an edge only if its head is not already reachable through a
  // previously kept successor. Reachability is tracked with a per-u
  // stamp array; the DFS prunes at vertices whose topo position exceeds
  // the last direct successor's (nothing beyond it can be one).
  std::vector<TaskId> kept_from;
  std::vector<TaskId> kept_to;
  kept_from.reserve(g.num_edges());
  kept_to.reserve(g.num_edges());
  std::vector<TaskId> stamp(n, -1);
  std::vector<TaskId> kept_stamp(n, -1);
  std::vector<TaskId> stack;
  std::vector<TaskId> direct;
  for (TaskId u = 0; u < g.num_tasks(); ++u) {
    const auto succ = g.successors(u);
    if (succ.empty()) continue;
    direct.assign(succ.begin(), succ.end());
    std::sort(direct.begin(), direct.end(),
              [&pos](TaskId a, TaskId b) {
                return pos[static_cast<std::size_t>(a)] <
                       pos[static_cast<std::size_t>(b)];
              });
    const std::size_t max_pos =
        pos[static_cast<std::size_t>(direct.back())];
    for (const TaskId s : direct) {
      if (stamp[static_cast<std::size_t>(s)] == u) continue;  // implied
      kept_stamp[static_cast<std::size_t>(s)] = u;
      // Mark everything reachable from s (within the position window) as
      // implied for the remaining, topologically later, direct successors.
      stack.assign(1, s);
      stamp[static_cast<std::size_t>(s)] = u;
      while (!stack.empty()) {
        const TaskId v = stack.back();
        stack.pop_back();
        for (const TaskId w : g.successors(v)) {
          const auto wi = static_cast<std::size_t>(w);
          if (stamp[wi] == u || pos[wi] > max_pos) continue;
          stamp[wi] = u;
          stack.push_back(w);
        }
      }
    }
    // Emit kept edges in the original insertion order, so the reduced
    // graph's adjacency (and thus its encodings) is order-faithful to
    // the input rather than to the traversal.
    for (const TaskId s : succ) {
      if (kept_stamp[static_cast<std::size_t>(s)] == u) {
        kept_from.push_back(u);
        kept_to.push_back(s);
      }
    }
  }

  ReductionResult result;
  result.graph.reserve(g.num_tasks(), kept_from.size());
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    // Preserve explicit names only: re-adding the synthesized default
    // would densify a sparse-name graph.
    std::string name = g.name(v);
    if (name == "task" + std::to_string(v)) name.clear();
    result.graph.add_task(g.model_ptr(v), std::move(name));
  }
  for (std::size_t e = 0; e < kept_from.size(); ++e)
    result.graph.add_edge(kept_from[e], kept_to[e]);
  result.edges_removed = g.num_edges() - kept_from.size();

  auto& registry = obs::default_registry();
  registry.counter("graph.pass.transitive_reduction.runs").add(1);
  registry.counter("graph.pass.transitive_reduction.edges_removed")
      .add(result.edges_removed);
  return result;
}

CriticalPath critical_path(const TaskGraph& g,
                           const std::vector<double>& times) {
  if (g.num_tasks() == 0)
    throw std::logic_error("graph::passes::critical_path: empty graph");
  CriticalPath cp;
  cp.length = longest_path_length(g, times);
  cp.tasks = critical_path_tasks(g, times);
  obs::default_registry().counter("graph.pass.critical_path.runs").add(1);
  return cp;
}

std::vector<double> min_time_weights(const TaskGraph& g, int P) {
  if (P < 1)
    throw std::invalid_argument(
        "graph::passes::min_time_weights: P must be >= 1");
  std::vector<double> times(static_cast<std::size_t>(g.num_tasks()));
  for (TaskId v = 0; v < g.num_tasks(); ++v)
    times[static_cast<std::size_t>(v)] = g.model_of(v).min_time(P);
  return times;
}

Layering topological_layers(const TaskGraph& g) {
  Layering out;
  const auto n = static_cast<std::size_t>(g.num_tasks());
  if (n == 0) return out;
  const auto order = linear_topo_order(g);
  out.layer_of.assign(n, 0);
  int num_layers = 0;
  for (const TaskId v : order) {
    int layer = 0;
    for (const TaskId u : g.predecessors(v))
      layer = std::max(layer, out.layer_of[static_cast<std::size_t>(u)] + 1);
    out.layer_of[static_cast<std::size_t>(v)] = layer;
    num_layers = std::max(num_layers, layer + 1);
  }
  // Counting sort by layer; iterating ids ascending makes each layer's
  // slice ascending-id.
  out.offsets.assign(static_cast<std::size_t>(num_layers) + 1, 0);
  for (std::size_t v = 0; v < n; ++v)
    ++out.offsets[static_cast<std::size_t>(out.layer_of[v]) + 1];
  for (std::size_t l = 1; l < out.offsets.size(); ++l)
    out.offsets[l] += out.offsets[l - 1];
  out.order.resize(n);
  std::vector<std::size_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for (std::size_t v = 0; v < n; ++v)
    out.order[cursor[static_cast<std::size_t>(out.layer_of[v])]++] =
        static_cast<TaskId>(v);
  obs::default_registry().counter("graph.pass.topological_layers.runs").add(1);
  return out;
}

}  // namespace moldsched::graph::passes
