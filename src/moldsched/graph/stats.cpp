#include "moldsched/graph/stats.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "moldsched/graph/algorithms.hpp"

namespace moldsched::graph {

GraphStats compute_stats(const TaskGraph& g) {
  g.validate();
  GraphStats s;
  s.num_tasks = g.num_tasks();
  s.num_edges = static_cast<long>(g.num_edges());
  s.num_sources = static_cast<int>(g.sources().size());
  s.num_sinks = static_cast<int>(g.sinks().size());

  long degree_sum = 0;
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    s.max_in_degree = std::max(s.max_in_degree, g.in_degree(v));
    s.max_out_degree = std::max(s.max_out_degree, g.out_degree(v));
    degree_sum += g.in_degree(v) + g.out_degree(v);
  }
  s.avg_degree =
      static_cast<double>(degree_sum) / static_cast<double>(s.num_tasks);

  // Level of a task = longest hop distance from a source (unit weights).
  const std::vector<double> unit(static_cast<std::size_t>(s.num_tasks), 1.0);
  const auto top = top_levels(g, unit);
  std::vector<int> width;
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    const auto level = static_cast<std::size_t>(
        top[static_cast<std::size_t>(v)] + 0.5);
    if (level >= width.size()) width.resize(level + 1, 0);
    ++width[level];
  }
  s.num_levels = static_cast<int>(width.size());
  s.max_level_width = *std::max_element(width.begin(), width.end());
  s.longest_path_tasks = longest_hop_count(g);

  if (s.num_tasks > 1) {
    const double pairs = static_cast<double>(s.num_tasks) *
                         (static_cast<double>(s.num_tasks) - 1.0) / 2.0;
    s.edge_density = static_cast<double>(s.num_edges) / pairs;
  }
  return s;
}

std::string to_string(const GraphStats& s) {
  std::ostringstream os;
  os << s.num_tasks << " tasks, " << s.num_edges << " edges, "
     << s.num_sources << " sources, " << s.num_sinks << " sinks, D="
     << s.longest_path_tasks << ", levels=" << s.num_levels
     << " (max width " << s.max_level_width << "), max deg in/out "
     << s.max_in_degree << "/" << s.max_out_degree;
  return os.str();
}

}  // namespace moldsched::graph
