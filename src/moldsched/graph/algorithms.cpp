#include "moldsched/graph/algorithms.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace moldsched::graph {

namespace {

void check_times(const TaskGraph& g, const std::vector<double>& times) {
  if (static_cast<int>(times.size()) != g.num_tasks())
    throw std::invalid_argument(
        "graph algorithms: times vector size must equal num_tasks");
}

}  // namespace

std::vector<TaskId> topological_order(const TaskGraph& g) {
  const int n = g.num_tasks();
  std::vector<int> in_deg(static_cast<std::size_t>(n));
  // min-heap on id for deterministic order among ready tasks
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (TaskId v = 0; v < n; ++v) {
    in_deg[static_cast<std::size_t>(v)] = g.in_degree(v);
    if (in_deg[static_cast<std::size_t>(v)] == 0) ready.push(v);
  }
  std::vector<TaskId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const TaskId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (const TaskId s : g.successors(v)) {
      if (--in_deg[static_cast<std::size_t>(s)] == 0) ready.push(s);
    }
  }
  if (static_cast<int>(order.size()) != n)
    throw std::logic_error("topological_order: graph contains a cycle");
  return order;
}

bool is_acyclic(const TaskGraph& g) {
  // Plain FIFO Kahn: unlike topological_order there is no ordering
  // contract to honor, so skip the priority queue — this runs inside
  // TaskGraph::validate() on every scheduler construction and must stay
  // O(V+E) at 10^7 tasks.
  const int n = g.num_tasks();
  std::vector<int> in_deg(static_cast<std::size_t>(n));
  std::vector<TaskId> queue;
  queue.reserve(static_cast<std::size_t>(n));
  for (TaskId v = 0; v < n; ++v) {
    in_deg[static_cast<std::size_t>(v)] = g.in_degree(v);
    if (in_deg[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (const TaskId s : g.successors(queue[head])) {
      if (--in_deg[static_cast<std::size_t>(s)] == 0) queue.push_back(s);
    }
  }
  return queue.size() == static_cast<std::size_t>(n);
}

std::vector<double> top_levels(const TaskGraph& g,
                               const std::vector<double>& times) {
  check_times(g, times);
  const auto order = topological_order(g);
  std::vector<double> top(times.size(), 0.0);
  for (const TaskId v : order) {
    for (const TaskId s : g.successors(v)) {
      top[static_cast<std::size_t>(s)] =
          std::max(top[static_cast<std::size_t>(s)],
                   top[static_cast<std::size_t>(v)] +
                       times[static_cast<std::size_t>(v)]);
    }
  }
  return top;
}

std::vector<double> bottom_levels(const TaskGraph& g,
                                  const std::vector<double>& times) {
  check_times(g, times);
  const auto order = topological_order(g);
  std::vector<double> bottom(times.size(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId v = *it;
    double best = 0.0;
    for (const TaskId s : g.successors(v))
      best = std::max(best, bottom[static_cast<std::size_t>(s)]);
    bottom[static_cast<std::size_t>(v)] =
        times[static_cast<std::size_t>(v)] + best;
  }
  return bottom;
}

double longest_path_length(const TaskGraph& g,
                           const std::vector<double>& times) {
  const auto bottom = bottom_levels(g, times);
  double best = 0.0;
  for (const double b : bottom) best = std::max(best, b);
  return best;
}

std::vector<TaskId> critical_path_tasks(const TaskGraph& g,
                                        const std::vector<double>& times) {
  const auto bottom = bottom_levels(g, times);
  // Start from the source of a maximal bottom level, then follow the
  // successor that preserves the remaining path length.
  TaskId cur = 0;
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    if (g.in_degree(v) == 0 &&
        bottom[static_cast<std::size_t>(v)] >
            bottom[static_cast<std::size_t>(cur)])
      cur = v;
  }
  // Ensure start is a source even if task 0 was not.
  if (g.in_degree(cur) != 0) {
    for (TaskId v = 0; v < g.num_tasks(); ++v)
      if (g.in_degree(v) == 0) {
        cur = v;
        break;
      }
  }
  std::vector<TaskId> path{cur};
  while (g.out_degree(cur) != 0) {
    const double remaining = bottom[static_cast<std::size_t>(cur)] -
                             times[static_cast<std::size_t>(cur)];
    TaskId next = g.successors(cur).front();
    for (const TaskId s : g.successors(cur)) {
      if (bottom[static_cast<std::size_t>(s)] >=
          bottom[static_cast<std::size_t>(next)])
        next = s;
    }
    (void)remaining;
    path.push_back(next);
    cur = next;
  }
  return path;
}

int longest_hop_count(const TaskGraph& g) {
  const std::vector<double> unit(static_cast<std::size_t>(g.num_tasks()), 1.0);
  return static_cast<int>(longest_path_length(g, unit) + 0.5);
}

}  // namespace moldsched::graph
