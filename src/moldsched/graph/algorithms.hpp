// Classic DAG algorithms over TaskGraph: topological order, cycle
// detection, longest-path (critical path) dynamic programs.
#pragma once

#include <vector>

#include "moldsched/graph/task_graph.hpp"

namespace moldsched::graph {

/// Kahn's algorithm. Throws std::logic_error if the graph has a cycle.
/// Among simultaneously ready tasks, smaller ids come first, so the order
/// is deterministic.
[[nodiscard]] std::vector<TaskId> topological_order(const TaskGraph& g);

[[nodiscard]] bool is_acyclic(const TaskGraph& g);

/// Longest path ending at each task, *excluding* the task's own time:
/// top[v] = max over predecessors u of (top[u] + times[u]), 0 for sources.
/// `times` must have one entry per task.
[[nodiscard]] std::vector<double> top_levels(const TaskGraph& g,
                                             const std::vector<double>& times);

/// Longest path starting at each task, *including* the task's own time:
/// bottom[v] = times[v] + max over successors s of bottom[s].
[[nodiscard]] std::vector<double> bottom_levels(
    const TaskGraph& g, const std::vector<double>& times);

/// Length of the longest weighted path: max_v (top[v] + times[v]).
[[nodiscard]] double longest_path_length(const TaskGraph& g,
                                         const std::vector<double>& times);

/// Tasks of one longest weighted path, in precedence order.
[[nodiscard]] std::vector<TaskId> critical_path_tasks(
    const TaskGraph& g, const std::vector<double>& times);

/// D: the number of tasks along the longest (hop-count) path. This is the
/// quantity in the Theorem 9 bound Omega(ln D).
[[nodiscard]] int longest_hop_count(const TaskGraph& g);

}  // namespace moldsched::graph
