// Directed acyclic graph of moldable tasks.
//
// Each node carries a speedup model; edges are precedence constraints.
// In the online problem the scheduler discovers a task (and its model)
// only once all its predecessors have completed — the graph object itself
// is "the adversary's script", and the simulator enforces the reveal rule.
//
// Storage is a structure-of-arrays core sized for 10^6-10^7 tasks:
//
//  * Task scalars live in parallel flat vectors (model handle, ModelKind,
//    and — for the Eq. (1) family — w/d/c/pbar mirrored out of the model
//    so hot loops can read them without a virtual call or pointer chase).
//  * Edges append to flat insertion-order arrays (edge_from_/edge_to_)
//    with a per-source forward-star chain (head_out_/edge_prev_) that
//    makes duplicate detection O(out_degree) at add_edge time.
//  * Adjacency queries are served from a CSR view (one offsets array +
//    one edges array, each for predecessors and successors) built lazily
//    in a single counting pass over the edge arrays. The build preserves
//    per-vertex insertion order, so iteration order — and therefore every
//    canonical wire encoding and schedule — is identical to the old
//    vector-of-vectors representation (pinned by CsrMigrationTest).
//  * Names are sparse: only explicitly named tasks occupy an entry; the
//    default "task<id>" is synthesized on demand. A 10^7-task generator
//    graph carries zero bytes of name data.
//
// The CSR view is rebuilt at most once per batch of mutations: add_task /
// add_edge flip a relaxed invalid flag, and the next adjacency query
// rebuilds under a mutex with double-checked locking, so concurrent
// readers of a const TaskGraph (the adversarial search evaluates shared
// start graphs across engine workers) are race-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "moldsched/model/speedup_model.hpp"

namespace moldsched::graph {

/// Dense task identifier: index into the graph's node array, assigned in
/// insertion order. Insertion order doubles as the online reveal order
/// among simultaneously available tasks (see OnlineScheduler).
using TaskId = int;

/// Adjacency view into the graph's CSR arrays. Valid until the next
/// mutation (add_task / add_edge) of the same graph; copy into a vector
/// before mutating if the ids must outlive the edit.
using AdjacencyView = std::span<const TaskId>;

class TaskGraph {
 public:
  TaskGraph() = default;
  TaskGraph(const TaskGraph& other);
  TaskGraph(TaskGraph&& other) noexcept;
  TaskGraph& operator=(const TaskGraph& other);
  TaskGraph& operator=(TaskGraph&& other) noexcept;

  /// Pre-sizes every per-task and per-edge array (including the CSR
  /// arrays the first build_adjacency() will fill), so a build that
  /// stays within the hint performs no reallocation — the 10^7-task
  /// scale path reserves from the generator's exact counts.
  void reserve(int tasks, std::size_t edges);

  /// Adds a task and returns its id. The model must be non-null.
  TaskId add_task(model::ModelPtr model, std::string name = "");

  /// Adds the precedence edge from -> to. Throws on unknown ids,
  /// self-loops, or duplicate edges. Cycle-freedom is *not* checked here
  /// (that is O(V+E) per call); use graph::is_acyclic / validate().
  void add_edge(TaskId from, TaskId to);

  [[nodiscard]] int num_tasks() const noexcept {
    return static_cast<int>(models_.size());
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edge_to_.size();
  }

  [[nodiscard]] const model::SpeedupModel& model_of(TaskId id) const {
    return *models_[checked(id)];
  }
  [[nodiscard]] const model::ModelPtr& model_ptr(TaskId id) const {
    return models_[checked(id)];
  }

  /// Task name; unnamed tasks synthesize the default "task<id>".
  [[nodiscard]] std::string name(TaskId id) const;

  /// ModelKind without the virtual call (mirrored at add_task).
  [[nodiscard]] model::ModelKind kind_of(TaskId id) const {
    return kinds_[checked(id)];
  }
  /// True when the task's model is from the Eq. (1) family, i.e. the
  /// flat w/d/c/pbar mirrors below are meaningful.
  [[nodiscard]] bool has_eq1_params(TaskId id) const {
    return has_eq1_[checked(id)] != 0;
  }
  [[nodiscard]] double w_of(TaskId id) const { return w_[checked(id)]; }
  [[nodiscard]] double d_of(TaskId id) const { return d_[checked(id)]; }
  [[nodiscard]] double c_of(TaskId id) const { return c_[checked(id)]; }
  [[nodiscard]] int pbar_of(TaskId id) const { return pbar_[checked(id)]; }

  /// Predecessors in edge-insertion order (identical to the historical
  /// vector-of-vectors order). Triggers a CSR build if edges changed
  /// since the last one; the view dangles after the next mutation.
  [[nodiscard]] AdjacencyView predecessors(TaskId id) const;
  [[nodiscard]] AdjacencyView successors(TaskId id) const;

  /// Degrees come from incrementally maintained counters — they never
  /// force a CSR build and are safe during construction loops.
  [[nodiscard]] int in_degree(TaskId id) const { return in_deg_[checked(id)]; }
  [[nodiscard]] int out_degree(TaskId id) const {
    return out_deg_[checked(id)];
  }

  /// O(out_degree(from)) via the forward-star chain; no CSR build.
  [[nodiscard]] bool has_edge(TaskId from, TaskId to) const;

  /// Tasks with no predecessors / no successors, in id order.
  [[nodiscard]] std::vector<TaskId> sources() const;
  [[nodiscard]] std::vector<TaskId> sinks() const;

  /// Throws std::logic_error if the graph is empty or contains a cycle.
  void validate() const;

  /// Forces the CSR adjacency build now (it otherwise happens lazily on
  /// the first predecessors()/successors() call after a mutation).
  /// Thread-safe: concurrent callers race to one build under a mutex.
  void build_adjacency() const;

  /// True when the CSR view is current (no mutation since last build).
  [[nodiscard]] bool adjacency_built() const noexcept {
    return csr_valid_.load(std::memory_order_acquire);
  }

  /// Bytes held by this graph's arrays (capacities, excluding the models
  /// themselves and sparse name payloads' heap allocations). Exposed as
  /// the `graph.build.bytes` gauge after each CSR build.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  static constexpr std::int32_t kNoEdge = -1;

  [[nodiscard]] std::size_t checked(TaskId id) const;
  void build_csr_locked() const;
  void copy_from(const TaskGraph& other);
  void move_from(TaskGraph&& other) noexcept;

  // --- per-task parallel arrays (structure-of-arrays) -----------------
  std::vector<model::ModelPtr> models_;
  std::vector<model::ModelKind> kinds_;
  std::vector<std::uint8_t> has_eq1_;
  std::vector<double> w_;
  std::vector<double> d_;
  std::vector<double> c_;
  std::vector<int> pbar_;
  std::vector<int> in_deg_;
  std::vector<int> out_deg_;
  std::vector<std::int32_t> head_out_;  ///< latest out-edge per task
  /// Sparse (id, name) pairs in ascending id order — only explicitly
  /// named tasks appear.
  std::vector<std::pair<TaskId, std::string>> names_;

  // --- per-edge arrays, insertion order -------------------------------
  std::vector<TaskId> edge_from_;
  std::vector<TaskId> edge_to_;
  std::vector<std::int32_t> edge_prev_;  ///< previous out-edge of from

  // --- lazily built CSR view (logically const; guarded) ---------------
  mutable std::vector<std::uint64_t> pred_off_;  ///< size num_tasks()+1
  mutable std::vector<std::uint64_t> succ_off_;
  mutable std::vector<TaskId> pred_adj_;
  mutable std::vector<TaskId> succ_adj_;
  mutable std::atomic<bool> csr_valid_{false};
  mutable std::mutex build_mu_;
};

}  // namespace moldsched::graph
