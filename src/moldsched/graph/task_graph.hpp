// Directed acyclic graph of moldable tasks.
//
// Each node carries a speedup model; edges are precedence constraints.
// In the online problem the scheduler discovers a task (and its model)
// only once all its predecessors have completed — the graph object itself
// is "the adversary's script", and the simulator enforces the reveal rule.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "moldsched/model/speedup_model.hpp"

namespace moldsched::graph {

/// Dense task identifier: index into the graph's node array, assigned in
/// insertion order. Insertion order doubles as the online reveal order
/// among simultaneously available tasks (see OnlineScheduler).
using TaskId = int;

class TaskGraph {
 public:
  /// Adds a task and returns its id. The model must be non-null.
  TaskId add_task(model::ModelPtr model, std::string name = "");

  /// Adds the precedence edge from -> to. Throws on unknown ids,
  /// self-loops, or duplicate edges. Cycle-freedom is *not* checked here
  /// (that is O(V+E) per call); use graph::is_acyclic / validate().
  void add_edge(TaskId from, TaskId to);

  [[nodiscard]] int num_tasks() const noexcept {
    return static_cast<int>(names_.size());
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  [[nodiscard]] const model::SpeedupModel& model_of(TaskId id) const {
    return *models_[checked(id)];
  }
  [[nodiscard]] const model::ModelPtr& model_ptr(TaskId id) const {
    return models_[checked(id)];
  }
  [[nodiscard]] const std::string& name(TaskId id) const {
    return names_[checked(id)];
  }
  [[nodiscard]] const std::vector<TaskId>& predecessors(TaskId id) const {
    return preds_[checked(id)];
  }
  [[nodiscard]] const std::vector<TaskId>& successors(TaskId id) const {
    return succs_[checked(id)];
  }
  [[nodiscard]] int in_degree(TaskId id) const {
    return static_cast<int>(predecessors(id).size());
  }
  [[nodiscard]] int out_degree(TaskId id) const {
    return static_cast<int>(successors(id).size());
  }

  [[nodiscard]] bool has_edge(TaskId from, TaskId to) const;

  /// Tasks with no predecessors / no successors, in id order.
  [[nodiscard]] std::vector<TaskId> sources() const;
  [[nodiscard]] std::vector<TaskId> sinks() const;

  /// Throws std::logic_error if the graph is empty or contains a cycle.
  void validate() const;

 private:
  [[nodiscard]] std::size_t checked(TaskId id) const;

  std::vector<std::string> names_;
  std::vector<model::ModelPtr> models_;
  std::vector<std::vector<TaskId>> preds_;
  std::vector<std::vector<TaskId>> succs_;
  std::size_t num_edges_ = 0;
};

}  // namespace moldsched::graph
