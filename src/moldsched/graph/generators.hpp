// Synthetic task-graph generators: classic shapes used across the
// moldable-scheduling literature. Structure and task models are
// decoupled: every generator takes a ModelProvider that supplies one
// speedup model per created task.
#pragma once

#include <functional>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::graph {

/// Supplies the speedup model for the next task to create.
using ModelProvider = std::function<model::ModelPtr()>;

/// ModelProvider drawing i.i.d. models from a sampler. The rng reference
/// must outlive the provider.
[[nodiscard]] ModelProvider sampling_provider(
    const model::ModelSampler& sampler, util::Rng& rng, int P);

/// ModelProvider returning the same shared model for every task.
[[nodiscard]] ModelProvider constant_provider(model::ModelPtr m);

/// Linear chain of n >= 1 tasks: 0 -> 1 -> ... -> n-1.
[[nodiscard]] TaskGraph chain(int n, const ModelProvider& provider);

/// n >= 1 independent tasks (no edges).
[[nodiscard]] TaskGraph independent(int n, const ModelProvider& provider);

/// `stages` fork-join stages, each a source task fanning out to `width`
/// parallel tasks that join into the next stage's source; a final join
/// task closes the graph. stages >= 1, width >= 1.
[[nodiscard]] TaskGraph fork_join(int stages, int width,
                                  const ModelProvider& provider);

/// Layered random DAG: `layers` layers whose widths are drawn uniformly in
/// [min_width, max_width]; each task gets an edge from each task of the
/// previous layer independently with probability p_edge, plus one forced
/// predecessor so no task is an accidental source (except layer 0).
[[nodiscard]] TaskGraph layered_random(int layers, int min_width,
                                       int max_width, double p_edge,
                                       util::Rng& rng,
                                       const ModelProvider& provider);

/// Erdos-Renyi DAG on n tasks: each forward pair (i < j) is an edge with
/// probability p_edge.
[[nodiscard]] TaskGraph erdos_renyi_dag(int n, double p_edge, util::Rng& rng,
                                        const ModelProvider& provider);

/// Random out-tree (rooted at task 0): each non-root task picks a uniform
/// random parent among earlier tasks with fewer than max_children
/// children. max_children == 0 means unbounded.
[[nodiscard]] TaskGraph random_out_tree(int n, int max_children,
                                        util::Rng& rng,
                                        const ModelProvider& provider);

/// Random in-tree: the reverse of random_out_tree (many sources merging
/// into one sink). Mirrors reduction/aggregation workloads.
[[nodiscard]] TaskGraph random_in_tree(int n, int max_children,
                                       util::Rng& rng,
                                       const ModelProvider& provider);

/// Scale-tier layered DAG: `layers` layers of exactly `width` unnamed
/// tasks; each task in layer l > 0 draws min(degree, width) distinct
/// predecessors uniformly from layer l-1. Deterministic in `seed`, and
/// sized up front — the builder reserves the exact task/edge counts, so
/// construction performs zero reallocation even at 10^7 tasks. Tasks
/// carry no explicit names (the sparse name table stays empty).
[[nodiscard]] TaskGraph layered_uniform(int layers, int width, int degree,
                                        std::uint64_t seed,
                                        const ModelProvider& provider);

/// Edge count of layered_uniform(layers, width, degree, ...): useful for
/// pre-sizing consumers (benches, schedulers) without building twice.
[[nodiscard]] std::size_t layered_uniform_edges(int layers, int width,
                                                int degree) noexcept;

/// Diamond: one source, `width` parallel middle tasks, one sink.
[[nodiscard]] TaskGraph diamond(int width, const ModelProvider& provider);

/// Random series-parallel graph with ~n tasks, built by recursive
/// series/parallel composition; depth-bounded so it terminates.
[[nodiscard]] TaskGraph series_parallel(int n, util::Rng& rng,
                                        const ModelProvider& provider);

}  // namespace moldsched::graph
