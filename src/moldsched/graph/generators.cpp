#include "moldsched/graph/generators.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace moldsched::graph {

namespace {

void require(bool ok, const char* message) {
  if (!ok) throw std::invalid_argument(message);
}

}  // namespace

ModelProvider sampling_provider(const model::ModelSampler& sampler,
                                util::Rng& rng, int P) {
  require(P >= 1, "sampling_provider: P must be >= 1");
  return [&sampler, &rng, P] { return sampler.sample(rng, P); };
}

ModelProvider constant_provider(model::ModelPtr m) {
  require(m != nullptr, "constant_provider: null model");
  return [m] { return m; };
}

TaskGraph chain(int n, const ModelProvider& provider) {
  require(n >= 1, "chain: n must be >= 1");
  TaskGraph g;
  TaskId prev = g.add_task(provider(), "chain0");
  for (int i = 1; i < n; ++i) {
    const TaskId cur = g.add_task(provider(), "chain" + std::to_string(i));
    g.add_edge(prev, cur);
    prev = cur;
  }
  return g;
}

TaskGraph independent(int n, const ModelProvider& provider) {
  require(n >= 1, "independent: n must be >= 1");
  TaskGraph g;
  for (int i = 0; i < n; ++i)
    g.add_task(provider(), "task" + std::to_string(i));
  return g;
}

TaskGraph fork_join(int stages, int width, const ModelProvider& provider) {
  require(stages >= 1, "fork_join: stages must be >= 1");
  require(width >= 1, "fork_join: width must be >= 1");
  TaskGraph g;
  TaskId join = g.add_task(provider(), "fork0");
  for (int s = 0; s < stages; ++s) {
    const TaskId fork = join;
    std::vector<TaskId> mids;
    mids.reserve(static_cast<std::size_t>(width));
    for (int w = 0; w < width; ++w) {
      const TaskId m = g.add_task(
          provider(), "s" + std::to_string(s) + "w" + std::to_string(w));
      g.add_edge(fork, m);
      mids.push_back(m);
    }
    join = g.add_task(provider(), "join" + std::to_string(s));
    for (const TaskId m : mids) g.add_edge(m, join);
  }
  return g;
}

TaskGraph layered_random(int layers, int min_width, int max_width,
                         double p_edge, util::Rng& rng,
                         const ModelProvider& provider) {
  require(layers >= 1, "layered_random: layers must be >= 1");
  require(min_width >= 1 && min_width <= max_width,
          "layered_random: need 1 <= min_width <= max_width");
  require(p_edge >= 0.0 && p_edge <= 1.0,
          "layered_random: p_edge outside [0, 1]");
  TaskGraph g;
  std::vector<TaskId> prev_layer;
  for (int layer = 0; layer < layers; ++layer) {
    const int width =
        static_cast<int>(rng.uniform_int(min_width, max_width));
    std::vector<TaskId> cur_layer;
    cur_layer.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
      const TaskId v = g.add_task(
          provider(), "L" + std::to_string(layer) + "." + std::to_string(i));
      bool has_pred = false;
      for (const TaskId u : prev_layer) {
        if (rng.bernoulli(p_edge)) {
          g.add_edge(u, v);
          has_pred = true;
        }
      }
      if (!has_pred && !prev_layer.empty()) g.add_edge(rng.pick(prev_layer), v);
      cur_layer.push_back(v);
    }
    prev_layer = std::move(cur_layer);
  }
  return g;
}

std::size_t layered_uniform_edges(int layers, int width,
                                 int degree) noexcept {
  if (layers < 1 || width < 1 || degree < 1) return 0;
  return static_cast<std::size_t>(layers - 1) *
         static_cast<std::size_t>(width) *
         static_cast<std::size_t>(std::min(degree, width));
}

TaskGraph layered_uniform(int layers, int width, int degree,
                          std::uint64_t seed,
                          const ModelProvider& provider) {
  require(layers >= 1, "layered_uniform: layers must be >= 1");
  require(width >= 1, "layered_uniform: width must be >= 1");
  require(degree >= 1, "layered_uniform: degree must be >= 1");
  const int deg = std::min(degree, width);
  util::Rng rng(seed);
  TaskGraph g;
  const auto num_tasks =
      static_cast<std::size_t>(layers) * static_cast<std::size_t>(width);
  require(num_tasks <= static_cast<std::size_t>(
                           std::numeric_limits<TaskId>::max()),
          "layered_uniform: layers * width exceeds the task id space");
  g.reserve(static_cast<int>(num_tasks),
            layered_uniform_edges(layers, width, degree));
  // Distinct predecessors per task by rejection over the previous layer:
  // deg is small relative to width in every scale configuration, so the
  // expected number of retries is O(deg^2 / width) — effectively zero.
  std::vector<TaskId> picked(static_cast<std::size_t>(deg));
  for (int layer = 0; layer < layers; ++layer) {
    const TaskId base = layer * width;
    for (int i = 0; i < width; ++i) {
      const TaskId v = g.add_task(provider());
      if (layer == 0) continue;
      for (int k = 0; k < deg; ++k) {
        TaskId u;
        bool fresh;
        do {
          u = base - width +
              static_cast<TaskId>(rng.uniform_int(0, width - 1));
          fresh = true;
          for (int j = 0; j < k; ++j) {
            if (picked[static_cast<std::size_t>(j)] == u) {
              fresh = false;
              break;
            }
          }
        } while (!fresh);
        picked[static_cast<std::size_t>(k)] = u;
        g.add_edge(u, v);
      }
    }
  }
  return g;
}

TaskGraph erdos_renyi_dag(int n, double p_edge, util::Rng& rng,
                          const ModelProvider& provider) {
  require(n >= 1, "erdos_renyi_dag: n must be >= 1");
  require(p_edge >= 0.0 && p_edge <= 1.0,
          "erdos_renyi_dag: p_edge outside [0, 1]");
  TaskGraph g;
  for (int i = 0; i < n; ++i) g.add_task(provider());
  for (TaskId i = 0; i < n; ++i)
    for (TaskId j = i + 1; j < n; ++j)
      if (rng.bernoulli(p_edge)) g.add_edge(i, j);
  return g;
}

namespace {

/// Parent array of a random rooted tree on n nodes with a child cap.
std::vector<TaskId> random_parents(int n, int max_children, util::Rng& rng) {
  std::vector<TaskId> parent(static_cast<std::size_t>(n), -1);
  std::vector<int> child_count(static_cast<std::size_t>(n), 0);
  std::vector<TaskId> eligible{0};
  for (TaskId v = 1; v < n; ++v) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(eligible.size()) - 1));
    const TaskId p = eligible[idx];
    parent[static_cast<std::size_t>(v)] = p;
    if (max_children > 0 &&
        ++child_count[static_cast<std::size_t>(p)] >= max_children) {
      eligible[idx] = eligible.back();
      eligible.pop_back();
    }
    eligible.push_back(v);
  }
  return parent;
}

}  // namespace

TaskGraph random_out_tree(int n, int max_children, util::Rng& rng,
                          const ModelProvider& provider) {
  require(n >= 1, "random_out_tree: n must be >= 1");
  require(max_children >= 0, "random_out_tree: max_children must be >= 0");
  const auto parent = random_parents(n, max_children, rng);
  TaskGraph g;
  for (int i = 0; i < n; ++i) g.add_task(provider());
  for (TaskId v = 1; v < n; ++v)
    g.add_edge(parent[static_cast<std::size_t>(v)], v);
  return g;
}

TaskGraph random_in_tree(int n, int max_children, util::Rng& rng,
                         const ModelProvider& provider) {
  require(n >= 1, "random_in_tree: n must be >= 1");
  require(max_children >= 0, "random_in_tree: max_children must be >= 0");
  const auto parent = random_parents(n, max_children, rng);
  TaskGraph g;
  for (int i = 0; i < n; ++i) g.add_task(provider());
  // Reverse every out-tree edge: children feed their parent, so node 0
  // (the out-tree root) becomes the unique sink.
  for (TaskId v = 1; v < n; ++v)
    g.add_edge(v, parent[static_cast<std::size_t>(v)]);
  return g;
}

TaskGraph diamond(int width, const ModelProvider& provider) {
  require(width >= 1, "diamond: width must be >= 1");
  TaskGraph g;
  const TaskId src = g.add_task(provider(), "source");
  std::vector<TaskId> mids;
  mids.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const TaskId m = g.add_task(provider(), "mid" + std::to_string(i));
    g.add_edge(src, m);
    mids.push_back(m);
  }
  const TaskId sink = g.add_task(provider(), "sink");
  for (const TaskId m : mids) g.add_edge(m, sink);
  return g;
}

namespace {

/// Recursively builds a series-parallel subgraph of ~budget tasks;
/// returns its (entry, exit) pair.
std::pair<TaskId, TaskId> build_sp(TaskGraph& g, int budget, util::Rng& rng,
                                   const ModelProvider& provider) {
  if (budget <= 1) {
    const TaskId v = g.add_task(provider());
    return {v, v};
  }
  if (budget <= 3 || rng.bernoulli(0.5)) {
    // Series composition: split the budget in two.
    const int left = static_cast<int>(rng.uniform_int(1, budget - 1));
    const auto [e1, x1] = build_sp(g, left, rng, provider);
    const auto [e2, x2] = build_sp(g, budget - left, rng, provider);
    g.add_edge(x1, e2);
    return {e1, x2};
  }
  // Parallel composition: dedicated entry/exit plus 2..4 branches.
  const TaskId entry = g.add_task(provider());
  const TaskId exit = g.add_task(provider());
  const int inner = budget - 2;
  const int branches =
      static_cast<int>(rng.uniform_int(2, std::min(4, inner)));
  int remaining = inner;
  for (int b = 0; b < branches; ++b) {
    const int share =
        (b == branches - 1)
            ? remaining
            : std::max(1, remaining / (branches - b));
    remaining -= share;
    const auto [be, bx] = build_sp(g, share, rng, provider);
    g.add_edge(entry, be);
    g.add_edge(bx, exit);
  }
  return {entry, exit};
}

}  // namespace

TaskGraph series_parallel(int n, util::Rng& rng,
                          const ModelProvider& provider) {
  require(n >= 1, "series_parallel: n must be >= 1");
  TaskGraph g;
  (void)build_sp(g, n, rng, provider);
  return g;
}

}  // namespace moldsched::graph
