#include "moldsched/graph/workflows.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <tuple>

#include "moldsched/model/general_model.hpp"
#include "moldsched/model/special_models.hpp"

namespace moldsched::graph {

model::ModelPtr make_workflow_model(const WorkflowModelConfig& config,
                                    double rel_work) {
  if (!(rel_work > 0.0))
    throw std::invalid_argument("make_workflow_model: rel_work must be > 0");
  if (!(config.base_work > 0.0) || !(config.seq_fraction >= 0.0) ||
      !(config.sweet_spot >= 1.0))
    throw std::invalid_argument("make_workflow_model: bad config");

  const double w = config.base_work * rel_work;
  // Larger kernels parallelize further: scale the sweet spot / pbar with
  // sqrt(rel_work), mimicking surface-to-volume scaling of tiled kernels.
  const double scale = config.sweet_spot * std::sqrt(rel_work);

  switch (config.kind) {
    case model::ModelKind::kRoofline:
      return std::make_shared<model::RooflineModel>(
          w, std::max(1, static_cast<int>(std::lround(scale))));
    case model::ModelKind::kCommunication:
      return std::make_shared<model::CommunicationModel>(w, w / (scale * scale));
    case model::ModelKind::kAmdahl:
      return std::make_shared<model::AmdahlModel>(
          w, std::max(1e-9 * w, config.seq_fraction * w));
    case model::ModelKind::kGeneral: {
      model::GeneralParams gp;
      gp.w = w;
      gp.d = config.seq_fraction * w;
      gp.c = w / (scale * scale);
      gp.pbar = model::GeneralParams::kUnboundedParallelism;
      return std::make_shared<model::GeneralModel>(gp);
    }
    case model::ModelKind::kArbitrary:
      break;
  }
  throw std::invalid_argument(
      "make_workflow_model: arbitrary kind has no parameterization");
}

namespace {

// Relative flop counts of the dense linear-algebra kernels (unit = one
// triangular-solve-sized tile operation).
constexpr double kPotrfWork = 1.0 / 3.0;
constexpr double kTrsmWork = 1.0;
constexpr double kSyrkWork = 1.0;
constexpr double kGemmWork = 2.0;

}  // namespace

TaskGraph cholesky(int nt, const WorkflowModelConfig& config) {
  if (nt < 1) throw std::invalid_argument("cholesky: nt must be >= 1");
  TaskGraph g;
  std::map<std::tuple<char, int, int, int>, TaskId> id;
  auto add = [&](char kernel, int k, int i, int j, double rel_work,
                 const std::string& name) {
    const TaskId v = g.add_task(make_workflow_model(config, rel_work), name);
    id[{kernel, k, i, j}] = v;
    return v;
  };
  auto get = [&](char kernel, int k, int i, int j) {
    return id.at({kernel, k, i, j});
  };

  for (int k = 0; k < nt; ++k) {
    const TaskId potrf =
        add('P', k, 0, 0, kPotrfWork, "potrf(" + std::to_string(k) + ")");
    if (k > 0) g.add_edge(get('S', k - 1, k, 0), potrf);

    for (int i = k + 1; i < nt; ++i) {
      const TaskId trsm = add('T', k, i, 0, kTrsmWork,
                              "trsm(" + std::to_string(k) + "," +
                                  std::to_string(i) + ")");
      g.add_edge(potrf, trsm);
      if (k > 0) g.add_edge(get('G', k - 1, i, k), trsm);
    }
    for (int i = k + 1; i < nt; ++i) {
      const TaskId syrk = add('S', k, i, 0, kSyrkWork,
                              "syrk(" + std::to_string(k) + "," +
                                  std::to_string(i) + ")");
      g.add_edge(get('T', k, i, 0), syrk);
      if (k > 0) g.add_edge(get('S', k - 1, i, 0), syrk);
      for (int j = k + 1; j < i; ++j) {
        const TaskId gemm = add('G', k, i, j, kGemmWork,
                                "gemm(" + std::to_string(k) + "," +
                                    std::to_string(i) + "," +
                                    std::to_string(j) + ")");
        g.add_edge(get('T', k, i, 0), gemm);
        g.add_edge(get('T', k, j, 0), gemm);
        if (k > 0) g.add_edge(get('G', k - 1, i, j), gemm);
      }
    }
  }
  return g;
}

TaskGraph lu(int nt, const WorkflowModelConfig& config) {
  if (nt < 1) throw std::invalid_argument("lu: nt must be >= 1");
  TaskGraph g;
  std::map<std::tuple<char, int, int, int>, TaskId> id;
  auto add = [&](char kernel, int k, int i, int j, double rel_work,
                 const std::string& name) {
    const TaskId v = g.add_task(make_workflow_model(config, rel_work), name);
    id[{kernel, k, i, j}] = v;
    return v;
  };
  auto get = [&](char kernel, int k, int i, int j) {
    return id.at({kernel, k, i, j});
  };

  for (int k = 0; k < nt; ++k) {
    const TaskId getrf =
        add('F', k, 0, 0, kPotrfWork, "getrf(" + std::to_string(k) + ")");
    if (k > 0) g.add_edge(get('G', k - 1, k, k), getrf);

    for (int j = k + 1; j < nt; ++j) {  // row panel: U tiles
      const TaskId trsm = add('R', k, j, 0, kTrsmWork,
                              "trsm_row(" + std::to_string(k) + "," +
                                  std::to_string(j) + ")");
      g.add_edge(getrf, trsm);
      if (k > 0) g.add_edge(get('G', k - 1, k, j), trsm);
    }
    for (int i = k + 1; i < nt; ++i) {  // column panel: L tiles
      const TaskId trsm = add('C', k, i, 0, kTrsmWork,
                              "trsm_col(" + std::to_string(k) + "," +
                                  std::to_string(i) + ")");
      g.add_edge(getrf, trsm);
      if (k > 0) g.add_edge(get('G', k - 1, i, k), trsm);
    }
    for (int i = k + 1; i < nt; ++i) {
      for (int j = k + 1; j < nt; ++j) {
        const TaskId gemm = add('G', k, i, j, kGemmWork,
                                "gemm(" + std::to_string(k) + "," +
                                    std::to_string(i) + "," +
                                    std::to_string(j) + ")");
        g.add_edge(get('C', k, i, 0), gemm);
        g.add_edge(get('R', k, j, 0), gemm);
        if (k > 0) g.add_edge(get('G', k - 1, i, j), gemm);
      }
    }
  }
  return g;
}

TaskGraph fft(int log2n, const WorkflowModelConfig& config) {
  if (log2n < 1) throw std::invalid_argument("fft: log2n must be >= 1");
  if (log2n > 20) throw std::invalid_argument("fft: log2n too large");
  const int n = 1 << log2n;
  TaskGraph g;
  std::vector<TaskId> prev(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    prev[static_cast<std::size_t>(i)] = g.add_task(
        make_workflow_model(config, 1.0), "in" + std::to_string(i));
  for (int s = 1; s <= log2n; ++s) {
    std::vector<TaskId> cur(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const TaskId v = g.add_task(
          make_workflow_model(config, 1.0),
          "fft_s" + std::to_string(s) + "_" + std::to_string(i));
      g.add_edge(prev[static_cast<std::size_t>(i)], v);
      g.add_edge(prev[static_cast<std::size_t>(i ^ (1 << (s - 1)))], v);
      cur[static_cast<std::size_t>(i)] = v;
    }
    prev = std::move(cur);
  }
  return g;
}

TaskGraph montage(int width, const WorkflowModelConfig& config) {
  if (width < 2) throw std::invalid_argument("montage: width must be >= 2");
  TaskGraph g;
  // mProject: reproject each input tile (heavy).
  std::vector<TaskId> proj;
  proj.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i)
    proj.push_back(g.add_task(make_workflow_model(config, 4.0),
                              "project" + std::to_string(i)));
  // mDiff: difference of neighbouring overlaps (light).
  std::vector<TaskId> diffs;
  for (int i = 0; i + 1 < width; ++i) {
    const TaskId d = g.add_task(make_workflow_model(config, 1.0),
                                "diff" + std::to_string(i));
    g.add_edge(proj[static_cast<std::size_t>(i)], d);
    g.add_edge(proj[static_cast<std::size_t>(i + 1)], d);
    diffs.push_back(d);
  }
  // mFit/mBgModel: global background fit over all differences.
  const TaskId fit = g.add_task(make_workflow_model(config, 2.0), "bgmodel");
  for (const TaskId d : diffs) g.add_edge(d, fit);
  // mBackground: per-tile correction.
  std::vector<TaskId> bg;
  for (int i = 0; i < width; ++i) {
    const TaskId b = g.add_task(make_workflow_model(config, 1.0),
                                "background" + std::to_string(i));
    g.add_edge(fit, b);
    g.add_edge(proj[static_cast<std::size_t>(i)], b);
    bg.push_back(b);
  }
  // mAdd: final co-addition (heavy).
  const TaskId coadd = g.add_task(
      make_workflow_model(config, 2.0 * static_cast<double>(width)), "coadd");
  for (const TaskId b : bg) g.add_edge(b, coadd);
  return g;
}

TaskGraph wavefront(int rows, int cols, const WorkflowModelConfig& config) {
  if (rows < 1 || cols < 1)
    throw std::invalid_argument("wavefront: rows and cols must be >= 1");
  TaskGraph g;
  std::vector<TaskId> grid(static_cast<std::size_t>(rows) *
                           static_cast<std::size_t>(cols));
  auto at = [&](int r, int c) -> TaskId& {
    return grid[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
                static_cast<std::size_t>(c)];
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      at(r, c) = g.add_task(
          make_workflow_model(config, 1.0),
          "cell(" + std::to_string(r) + "," + std::to_string(c) + ")");
      if (r > 0) g.add_edge(at(r - 1, c), at(r, c));
      if (c > 0) g.add_edge(at(r, c - 1), at(r, c));
    }
  }
  return g;
}

}  // namespace moldsched::graph
