// Structural statistics of task graphs, used by the reports and handy
// when characterizing generated workloads.
#pragma once

#include <string>

#include "moldsched/graph/task_graph.hpp"

namespace moldsched::graph {

struct GraphStats {
  int num_tasks = 0;
  long num_edges = 0;
  int num_sources = 0;
  int num_sinks = 0;
  int longest_path_tasks = 0;   ///< D: hop count of the longest path
  int max_in_degree = 0;
  int max_out_degree = 0;
  double avg_degree = 0.0;      ///< mean total degree (in + out)
  int num_levels = 0;           ///< longest-path layering depth (== D)
  int max_level_width = 0;      ///< max tasks sharing a level — a cheap
                                ///< lower bound on the graph's width
  double edge_density = 0.0;    ///< edges / (n*(n-1)/2)
};

/// Computes all statistics in O(V + E). Throws on an empty or cyclic
/// graph (via validate()).
[[nodiscard]] GraphStats compute_stats(const TaskGraph& g);

/// One-line human-readable rendering.
[[nodiscard]] std::string to_string(const GraphStats& stats);

}  // namespace moldsched::graph
