#include "moldsched/graph/task_graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "moldsched/graph/algorithms.hpp"

namespace moldsched::graph {

TaskId TaskGraph::add_task(model::ModelPtr model, std::string name) {
  if (!model) throw std::invalid_argument("TaskGraph::add_task: null model");
  const TaskId id = num_tasks();
  if (name.empty()) name = "task" + std::to_string(id);
  names_.push_back(std::move(name));
  models_.push_back(std::move(model));
  preds_.emplace_back();
  succs_.emplace_back();
  return id;
}

void TaskGraph::add_edge(TaskId from, TaskId to) {
  const auto f = checked(from);
  (void)checked(to);
  if (from == to)
    throw std::invalid_argument("TaskGraph::add_edge: self-loop on task " +
                                std::to_string(from));
  auto& out = succs_[f];
  if (std::find(out.begin(), out.end(), to) != out.end())
    throw std::invalid_argument("TaskGraph::add_edge: duplicate edge " +
                                std::to_string(from) + " -> " +
                                std::to_string(to));
  out.push_back(to);
  preds_[static_cast<std::size_t>(to)].push_back(from);
  ++num_edges_;
}

bool TaskGraph::has_edge(TaskId from, TaskId to) const {
  const auto& out = succs_[checked(from)];
  (void)checked(to);
  return std::find(out.begin(), out.end(), to) != out.end();
}

std::vector<TaskId> TaskGraph::sources() const {
  std::vector<TaskId> out;
  for (TaskId id = 0; id < num_tasks(); ++id)
    if (preds_[static_cast<std::size_t>(id)].empty()) out.push_back(id);
  return out;
}

std::vector<TaskId> TaskGraph::sinks() const {
  std::vector<TaskId> out;
  for (TaskId id = 0; id < num_tasks(); ++id)
    if (succs_[static_cast<std::size_t>(id)].empty()) out.push_back(id);
  return out;
}

void TaskGraph::validate() const {
  if (num_tasks() == 0)
    throw std::logic_error("TaskGraph::validate: empty graph");
  if (!is_acyclic(*this))
    throw std::logic_error("TaskGraph::validate: graph contains a cycle");
}

std::size_t TaskGraph::checked(TaskId id) const {
  if (id < 0 || id >= num_tasks())
    throw std::out_of_range("TaskGraph: task id " + std::to_string(id) +
                            " out of range [0, " + std::to_string(num_tasks()) +
                            ")");
  return static_cast<std::size_t>(id);
}

}  // namespace moldsched::graph
