#include "moldsched/graph/task_graph.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <type_traits>

#include "moldsched/graph/algorithms.hpp"
#include "moldsched/model/general_model.hpp"
#include "moldsched/obs/metrics.hpp"

namespace moldsched::graph {

TaskGraph::TaskGraph(const TaskGraph& other) { copy_from(other); }

TaskGraph::TaskGraph(TaskGraph&& other) noexcept {
  move_from(std::move(other));
}

TaskGraph& TaskGraph::operator=(const TaskGraph& other) {
  if (this != &other) copy_from(other);
  return *this;
}

TaskGraph& TaskGraph::operator=(TaskGraph&& other) noexcept {
  if (this != &other) move_from(std::move(other));
  return *this;
}

void TaskGraph::copy_from(const TaskGraph& other) {
  models_ = other.models_;
  kinds_ = other.kinds_;
  has_eq1_ = other.has_eq1_;
  w_ = other.w_;
  d_ = other.d_;
  c_ = other.c_;
  pbar_ = other.pbar_;
  in_deg_ = other.in_deg_;
  out_deg_ = other.out_deg_;
  head_out_ = other.head_out_;
  names_ = other.names_;
  edge_from_ = other.edge_from_;
  edge_to_ = other.edge_to_;
  edge_prev_ = other.edge_prev_;
  // The CSR view is not copied: copies are usually made to mutate (the
  // adversarial perturbations clone-then-edit), and skipping it keeps
  // the copy race-free against a concurrent lazy build of `other`.
  pred_off_.clear();
  succ_off_.clear();
  pred_adj_.clear();
  succ_adj_.clear();
  csr_valid_.store(false, std::memory_order_relaxed);
}

void TaskGraph::move_from(TaskGraph&& other) noexcept {
  models_ = std::move(other.models_);
  kinds_ = std::move(other.kinds_);
  has_eq1_ = std::move(other.has_eq1_);
  w_ = std::move(other.w_);
  d_ = std::move(other.d_);
  c_ = std::move(other.c_);
  pbar_ = std::move(other.pbar_);
  in_deg_ = std::move(other.in_deg_);
  out_deg_ = std::move(other.out_deg_);
  head_out_ = std::move(other.head_out_);
  names_ = std::move(other.names_);
  edge_from_ = std::move(other.edge_from_);
  edge_to_ = std::move(other.edge_to_);
  edge_prev_ = std::move(other.edge_prev_);
  pred_off_ = std::move(other.pred_off_);
  succ_off_ = std::move(other.succ_off_);
  pred_adj_ = std::move(other.pred_adj_);
  succ_adj_ = std::move(other.succ_adj_);
  csr_valid_.store(other.csr_valid_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  other.csr_valid_.store(false, std::memory_order_relaxed);
}

void TaskGraph::reserve(int tasks, std::size_t edges) {
  if (tasks < 0) throw std::invalid_argument("TaskGraph::reserve: tasks < 0");
  const auto n = static_cast<std::size_t>(tasks);
  models_.reserve(n);
  kinds_.reserve(n);
  has_eq1_.reserve(n);
  w_.reserve(n);
  d_.reserve(n);
  c_.reserve(n);
  pbar_.reserve(n);
  in_deg_.reserve(n);
  out_deg_.reserve(n);
  head_out_.reserve(n);
  edge_from_.reserve(edges);
  edge_to_.reserve(edges);
  edge_prev_.reserve(edges);
  pred_off_.reserve(n + 1);
  succ_off_.reserve(n + 1);
  pred_adj_.reserve(edges);
  succ_adj_.reserve(edges);
}

TaskId TaskGraph::add_task(model::ModelPtr model, std::string name) {
  if (!model) throw std::invalid_argument("TaskGraph::add_task: null model");
  if (models_.size() >=
      static_cast<std::size_t>(std::numeric_limits<TaskId>::max()))
    throw std::length_error("TaskGraph::add_task: task id space exhausted");
  const TaskId id = num_tasks();
  kinds_.push_back(model->kind());
  if (const auto* eq1 =
          dynamic_cast<const model::GeneralModel*>(model.get())) {
    has_eq1_.push_back(1);
    w_.push_back(eq1->w());
    d_.push_back(eq1->d());
    c_.push_back(eq1->c());
    pbar_.push_back(eq1->pbar());
  } else {
    has_eq1_.push_back(0);
    w_.push_back(0.0);
    d_.push_back(0.0);
    c_.push_back(0.0);
    pbar_.push_back(1);
  }
  models_.push_back(std::move(model));
  in_deg_.push_back(0);
  out_deg_.push_back(0);
  head_out_.push_back(kNoEdge);
  if (!name.empty()) names_.emplace_back(id, std::move(name));
  csr_valid_.store(false, std::memory_order_release);
  return id;
}

void TaskGraph::add_edge(TaskId from, TaskId to) {
  const auto f = checked(from);
  (void)checked(to);
  if (from == to)
    throw std::invalid_argument("TaskGraph::add_edge: self-loop on task " +
                                std::to_string(from));
  for (std::int32_t e = head_out_[f]; e != kNoEdge;
       e = edge_prev_[static_cast<std::size_t>(e)]) {
    if (edge_to_[static_cast<std::size_t>(e)] == to)
      throw std::invalid_argument("TaskGraph::add_edge: duplicate edge " +
                                  std::to_string(from) + " -> " +
                                  std::to_string(to));
  }
  if (edge_to_.size() >= static_cast<std::size_t>(
                             std::numeric_limits<std::int32_t>::max()))
    throw std::length_error("TaskGraph::add_edge: edge index space exhausted");
  const auto idx = static_cast<std::int32_t>(edge_to_.size());
  edge_from_.push_back(from);
  edge_to_.push_back(to);
  edge_prev_.push_back(head_out_[f]);
  head_out_[f] = idx;
  ++out_deg_[f];
  ++in_deg_[static_cast<std::size_t>(to)];
  csr_valid_.store(false, std::memory_order_release);
}

std::string TaskGraph::name(TaskId id) const {
  const auto i = checked(id);
  (void)i;
  const auto it = std::lower_bound(
      names_.begin(), names_.end(), id,
      [](const std::pair<TaskId, std::string>& entry, TaskId key) {
        return entry.first < key;
      });
  if (it != names_.end() && it->first == id) return it->second;
  return "task" + std::to_string(id);
}

AdjacencyView TaskGraph::predecessors(TaskId id) const {
  const auto i = checked(id);
  build_adjacency();
  return {pred_adj_.data() + pred_off_[i],
          static_cast<std::size_t>(in_deg_[i])};
}

AdjacencyView TaskGraph::successors(TaskId id) const {
  const auto i = checked(id);
  build_adjacency();
  return {succ_adj_.data() + succ_off_[i],
          static_cast<std::size_t>(out_deg_[i])};
}

bool TaskGraph::has_edge(TaskId from, TaskId to) const {
  const auto f = checked(from);
  (void)checked(to);
  for (std::int32_t e = head_out_[f]; e != kNoEdge;
       e = edge_prev_[static_cast<std::size_t>(e)]) {
    if (edge_to_[static_cast<std::size_t>(e)] == to) return true;
  }
  return false;
}

std::vector<TaskId> TaskGraph::sources() const {
  std::vector<TaskId> out;
  for (TaskId id = 0; id < num_tasks(); ++id)
    if (in_deg_[static_cast<std::size_t>(id)] == 0) out.push_back(id);
  return out;
}

std::vector<TaskId> TaskGraph::sinks() const {
  std::vector<TaskId> out;
  for (TaskId id = 0; id < num_tasks(); ++id)
    if (out_deg_[static_cast<std::size_t>(id)] == 0) out.push_back(id);
  return out;
}

void TaskGraph::validate() const {
  if (num_tasks() == 0)
    throw std::logic_error("TaskGraph::validate: empty graph");
  if (!is_acyclic(*this))
    throw std::logic_error("TaskGraph::validate: graph contains a cycle");
}

void TaskGraph::build_adjacency() const {
  if (csr_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(build_mu_);
  if (csr_valid_.load(std::memory_order_relaxed)) return;
  build_csr_locked();
  csr_valid_.store(true, std::memory_order_release);
}

void TaskGraph::build_csr_locked() const {
  const auto n = models_.size();
  const auto m = edge_to_.size();
  succ_off_.assign(n + 1, 0);
  pred_off_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    succ_off_[v + 1] =
        succ_off_[v] + static_cast<std::uint64_t>(out_deg_[v]);
    pred_off_[v + 1] =
        pred_off_[v] + static_cast<std::uint64_t>(in_deg_[v]);
  }
  succ_adj_.resize(m);
  pred_adj_.resize(m);
  // Counting-sort fill in edge-insertion order, using the start offsets
  // as write cursors: after the loop, off[v] has advanced to the start
  // of v+1's bucket, so one backward shift restores the start offsets.
  // No scratch allocation — a reserved graph builds with zero allocs.
  for (std::size_t e = 0; e < m; ++e) {
    const auto from = static_cast<std::size_t>(edge_from_[e]);
    const auto to = static_cast<std::size_t>(edge_to_[e]);
    succ_adj_[static_cast<std::size_t>(succ_off_[from]++)] = edge_to_[e];
    pred_adj_[static_cast<std::size_t>(pred_off_[to]++)] = edge_from_[e];
  }
  for (std::size_t v = n; v > 0; --v) {
    succ_off_[v] = succ_off_[v - 1];
    pred_off_[v] = pred_off_[v - 1];
  }
  succ_off_[0] = 0;
  pred_off_[0] = 0;
  // Handles cached once: registry entries are never erased (reset() only
  // zeroes them), so the references stay valid and repeat builds touch no
  // allocator — part of the zero-alloc contract pinned by the alloc tests.
  static obs::Counter& build_count =
      obs::default_registry().counter("graph.build.count");
  static obs::Gauge& build_bytes =
      obs::default_registry().gauge("graph.build.bytes");
  build_count.add(1);
  build_bytes.set(static_cast<double>(memory_bytes()));
}

std::size_t TaskGraph::memory_bytes() const noexcept {
  auto bytes = [](const auto& vec) {
    return vec.capacity() * sizeof(typename std::remove_reference_t<
                                   decltype(vec)>::value_type);
  };
  std::size_t total = bytes(models_) + bytes(kinds_) + bytes(has_eq1_) +
                      bytes(w_) + bytes(d_) + bytes(c_) + bytes(pbar_) +
                      bytes(in_deg_) + bytes(out_deg_) + bytes(head_out_) +
                      bytes(names_) + bytes(edge_from_) + bytes(edge_to_) +
                      bytes(edge_prev_) + bytes(pred_off_) +
                      bytes(succ_off_) + bytes(pred_adj_) + bytes(succ_adj_);
  for (const auto& [id, name] : names_) {
    (void)id;
    total += name.capacity();
  }
  return total;
}

std::size_t TaskGraph::checked(TaskId id) const {
  if (id < 0 || id >= num_tasks())
    throw std::out_of_range("TaskGraph: task id " + std::to_string(id) +
                            " out of range [0, " + std::to_string(num_tasks()) +
                            ")");
  return static_cast<std::size_t>(id);
}

}  // namespace moldsched::graph
