// Simulated-annealing search for adversarial instances (PISA-style,
// arXiv:2403.07120): maximize the makespan ratio
//     target_makespan(g, P) / reference_makespan(g, P)
// over the perturbation grammar of perturb.hpp, starting from the
// paper's fixed adversary constructions (or any caller-supplied
// instances).
//
// Reproducibility contract: restart r draws every random decision from
// Rng(util::derive_seed(options.seed, r)) — a pure function of (seed,
// restart index) — so results are bit-identical whether restarts run
// sequentially or in parallel on engine::Executor, and across runs.
// The only nondeterministic input is a wall-clock cancel token; runs
// without a deadline are fully deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "moldsched/engine/executor.hpp"
#include "moldsched/graph/task_graph.hpp"
#include "moldsched/sched/registry.hpp"

namespace moldsched::adv {

/// One starting instance of the search: a graph plus the platform size
/// it is evaluated on (the perturbation grammar never changes P).
struct StartPoint {
  graph::TaskGraph graph;
  int P = 2;
  std::string label;  ///< e.g. "fig1-roofline"; reporting only
};

struct AnnealOptions {
  int iterations = 80;      ///< proposals per restart
  int restarts = 2;         ///< independent chains; restart r starts from
                            ///< starts[r % starts.size()]. Raised to
                            ///< starts.size() when smaller, so every
                            ///< start anchors at least one chain and the
                            ///< result never falls below the best start.
  double t_initial = 0.10;  ///< relative-delta temperature, geometric
  double t_final = 0.005;   ///< schedule from t_initial down to t_final
  int max_tasks = 240;      ///< growth ops stop proposing past this size
  std::uint64_t seed = 1;
  bool parallel_restarts = true;  ///< run chains on engine::Executor
  /// Optional budget: iterations stop early once cancelled. Determinism
  /// only holds for runs that never hit the deadline.
  engine::CancelToken token;
};

struct AnnealResult {
  graph::TaskGraph best_graph;
  int best_P = 2;
  double best_ratio = 0.0;   ///< target/reference makespan of best_graph
  double start_ratio = 0.0;  ///< best ratio among the starting instances
  std::uint64_t evals = 0;   ///< candidate evaluations across restarts
  std::uint64_t accepts = 0; ///< accepted moves across restarts
  int best_restart = 0;      ///< chain that found best_graph
};

/// target_makespan / reference_makespan on (g, P), or a negative value
/// when either scheduler rejects the instance (the annealer treats that
/// candidate as refused rather than failing the search).
[[nodiscard]] double evaluate_ratio(const graph::TaskGraph& g, int P,
                                    const sched::SchedulerSpec& target,
                                    const sched::SchedulerSpec& reference);

/// Runs `options.restarts` annealing chains over `starts` and merges
/// them deterministically (highest ratio wins; ties go to the lowest
/// restart index). Updates obs counters adv.evals / adv.accepts and the
/// gauge adv.best_ratio. Throws std::invalid_argument on an empty start
/// set or a non-positive/non-monotone temperature schedule.
[[nodiscard]] AnnealResult anneal_search(const std::vector<StartPoint>& starts,
                                         const sched::SchedulerSpec& target,
                                         const sched::SchedulerSpec& reference,
                                         const AnnealOptions& options);

}  // namespace moldsched::adv
