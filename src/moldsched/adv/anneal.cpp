#include "moldsched/adv/anneal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "moldsched/adv/perturb.hpp"
#include "moldsched/obs/metrics.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::adv {

namespace {

/// Outcome of one annealing chain; merged across restarts afterwards.
struct ChainResult {
  graph::TaskGraph best_graph;
  int best_P = 2;
  double best_ratio = -1.0;
  double start_ratio = -1.0;
  std::uint64_t evals = 0;
  std::uint64_t accepts = 0;
};

ChainResult run_chain(const StartPoint& start,
                      const sched::SchedulerSpec& target,
                      const sched::SchedulerSpec& reference,
                      const AnnealOptions& opt, std::uint64_t chain_seed) {
  util::Rng rng(chain_seed);
  ChainResult out;
  out.best_graph = start.graph;
  out.best_P = start.P;

  graph::TaskGraph current = start.graph;
  double current_ratio = evaluate_ratio(current, start.P, target, reference);
  ++out.evals;
  out.start_ratio = current_ratio;
  out.best_ratio = current_ratio;
  if (current_ratio < 0.0) return out;  // start rejected; nothing to climb

  // Geometric cooling: temperature decays t_initial -> t_final over the
  // iteration budget. The acceptance test works on the *relative* ratio
  // change, so the schedule is scale-free in the objective.
  const int denom = std::max(1, opt.iterations - 1);
  const double decay = std::pow(opt.t_final / opt.t_initial, 1.0 / denom);
  double temperature = opt.t_initial;

  for (int it = 0; it < opt.iterations; ++it, temperature *= decay) {
    if (opt.token.cancelled()) break;
    const auto move = propose_perturbation(current, rng, opt.max_tasks);
    if (!move) break;  // no applicable move exists; chain is stuck
    auto candidate = apply_perturbation(current, *move);
    if (!candidate) continue;
    const double ratio =
        evaluate_ratio(*candidate, start.P, target, reference);
    ++out.evals;
    if (ratio < 0.0) continue;  // scheduler refused the candidate
    const double delta = (ratio - current_ratio) /
                         std::max(current_ratio, 1e-12);
    if (delta >= 0.0 || rng.unit() < std::exp(delta / temperature)) {
      current = std::move(*candidate);
      current_ratio = ratio;
      ++out.accepts;
      if (ratio > out.best_ratio) {
        out.best_ratio = ratio;
        out.best_graph = current;
      }
    }
  }
  return out;
}

}  // namespace

double evaluate_ratio(const graph::TaskGraph& g, int P,
                      const sched::SchedulerSpec& target,
                      const sched::SchedulerSpec& reference) {
  try {
    const double t = target.run(g, P).makespan;
    const double r = reference.run(g, P).makespan;
    if (!(t > 0.0) || !(r > 0.0) || !std::isfinite(t) || !std::isfinite(r))
      return -1.0;
    return t / r;
  } catch (const std::exception&) {
    return -1.0;
  }
}

AnnealResult anneal_search(const std::vector<StartPoint>& starts,
                           const sched::SchedulerSpec& target,
                           const sched::SchedulerSpec& reference,
                           const AnnealOptions& options) {
  if (starts.empty())
    throw std::invalid_argument("anneal_search: no starting instances");
  if (options.iterations < 1 || options.restarts < 1)
    throw std::invalid_argument(
        "anneal_search: iterations and restarts must be positive");
  if (!(options.t_final > 0.0) || options.t_initial < options.t_final)
    throw std::invalid_argument(
        "anneal_search: need t_initial >= t_final > 0");
  if (options.max_tasks < 1)
    throw std::invalid_argument("anneal_search: max_tasks must be positive");
  for (const auto& s : starts) s.graph.validate();

  // At least one chain per start point: the merged best can then never
  // fall below the best starting instance (each chain's start ratio
  // seeds its best), which is what lets callers use the fixed
  // constructions as a guaranteed baseline.
  const auto n = std::max(static_cast<std::size_t>(options.restarts),
                          starts.size());
  std::vector<ChainResult> chains(n);
  auto run_one = [&](std::size_t r) {
    const auto& start = starts[r % starts.size()];
    chains[r] = run_chain(start, target, reference, options,
                          util::derive_seed(options.seed, r));
  };
  if (options.parallel_restarts && n > 1) {
    engine::Executor::global().parallel_for(n, run_one);
  } else {
    for (std::size_t r = 0; r < n; ++r) run_one(r);
  }

  // Deterministic merge regardless of chain completion order: the
  // highest ratio wins, ties broken by the lowest restart index.
  AnnealResult result;
  result.best_graph = starts.front().graph;
  result.best_P = starts.front().P;
  result.best_ratio = -1.0;
  for (std::size_t r = 0; r < n; ++r) {
    const ChainResult& c = chains[r];
    result.evals += c.evals;
    result.accepts += c.accepts;
    result.start_ratio = std::max(result.start_ratio, c.start_ratio);
    if (c.best_ratio > result.best_ratio) {
      result.best_ratio = c.best_ratio;
      result.best_graph = c.best_graph;
      result.best_P = c.best_P;
      result.best_restart = static_cast<int>(r);
    }
  }

  auto& reg = obs::default_registry();
  reg.counter("adv.evals").add(result.evals);
  reg.counter("adv.accepts").add(result.accepts);
  if (result.best_ratio > 0.0)
    reg.gauge("adv.best_ratio").set(result.best_ratio);
  return result;
}

}  // namespace moldsched::adv
