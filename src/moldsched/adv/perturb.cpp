#include "moldsched/adv/perturb.hpp"

#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "moldsched/check/shrink.hpp"
#include "moldsched/graph/algorithms.hpp"
#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/special_models.hpp"
#include "moldsched/svc/wire.hpp"

namespace moldsched::adv {

namespace {

constexpr int kNumOps = 10;

const char* op_name(PerturbOp op) {
  switch (op) {
    case PerturbOp::kAddEdge: return "add-edge";
    case PerturbOp::kRemoveEdge: return "remove-edge";
    case PerturbOp::kCloneTask: return "clone-task";
    case PerturbOp::kRemoveTask: return "remove-task";
    case PerturbOp::kSplitTask: return "split-task";
    case PerturbOp::kScaleWork: return "scale-work";
    case PerturbOp::kScaleSeq: return "scale-seq";
    case PerturbOp::kScaleComm: return "scale-comm";
    case PerturbOp::kSetPbar: return "set-pbar";
    case PerturbOp::kScaleTableEntry: return "scale-table-entry";
  }
  throw std::invalid_argument("adv: unknown PerturbOp");
}

/// Rebuilds an Eq. (1)-family model from mutated parameters while
/// keeping the original subclass (and thus ModelKind and analysis
/// constants). Returns nullptr when the parameters violate the
/// subclass's constructor contract.
model::ModelPtr rebuild_eq1(model::ModelKind kind,
                            const model::GeneralParams& p) {
  try {
    switch (kind) {
      case model::ModelKind::kRoofline:
        return std::make_shared<model::RooflineModel>(p.w, p.pbar);
      case model::ModelKind::kCommunication:
        return std::make_shared<model::CommunicationModel>(p.w, p.c);
      case model::ModelKind::kAmdahl:
        return std::make_shared<model::AmdahlModel>(p.w, p.d);
      case model::ModelKind::kGeneral:
        return std::make_shared<model::GeneralModel>(p);
      case model::ModelKind::kArbitrary: break;
    }
  } catch (const std::invalid_argument&) {
    return nullptr;
  }
  return nullptr;
}

/// Copy of g with task `id`'s model replaced.
graph::TaskGraph with_model(const graph::TaskGraph& g, graph::TaskId id,
                            model::ModelPtr replacement) {
  graph::TaskGraph out;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    out.add_task(v == id ? std::move(replacement) : g.model_ptr(v), g.name(v));
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    for (const graph::TaskId s : g.successors(v)) out.add_edge(v, s);
  return out;
}

bool valid_task(const graph::TaskGraph& g, graph::TaskId id) {
  return id >= 0 && id < g.num_tasks();
}

bool usable_factor(double f) {
  return std::isfinite(f) && f > 0.0;
}

/// The Eq. (1) parameter block of task `id`, or nullopt for arbitrary
/// models (TableModel and friends).
std::optional<std::pair<model::ModelKind, model::GeneralParams>> eq1_params(
    const graph::TaskGraph& g, graph::TaskId id) {
  const auto* gen =
      dynamic_cast<const model::GeneralModel*>(&g.model_of(id));
  if (gen == nullptr) return std::nullopt;
  return std::make_pair(gen->kind(), gen->params());
}

std::optional<graph::TaskGraph> apply_add_edge(const graph::TaskGraph& g,
                                               const Perturbation& p) {
  if (!valid_task(g, p.a) || !valid_task(g, p.b) || p.a == p.b) {
    return std::nullopt;
  }
  if (g.has_edge(p.a, p.b)) return std::nullopt;
  graph::TaskGraph out = g;
  out.add_edge(p.a, p.b);
  if (!graph::is_acyclic(out)) return std::nullopt;
  return out;
}

std::optional<graph::TaskGraph> apply_remove_task(const graph::TaskGraph& g,
                                                  graph::TaskId a) {
  if (!valid_task(g, a) || g.num_tasks() < 2) return std::nullopt;
  graph::TaskGraph out;
  std::vector<graph::TaskId> new_id(static_cast<std::size_t>(g.num_tasks()),
                                    -1);
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    if (v == a) continue;
    new_id[static_cast<std::size_t>(v)] =
        out.add_task(g.model_ptr(v), g.name(v));
  }
  auto mapped = [&](graph::TaskId v) {
    return new_id[static_cast<std::size_t>(v)];
  };
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    if (v == a) continue;
    for (const graph::TaskId s : g.successors(v))
      if (s != a) out.add_edge(mapped(v), mapped(s));
  }
  // Preserve transitive precedence through the removed task (the "merge
  // layers" reading: a's predecessors now gate a's successors directly).
  for (const graph::TaskId u : g.predecessors(a))
    for (const graph::TaskId s : g.successors(a))
      if (!out.has_edge(mapped(u), mapped(s)))
        out.add_edge(mapped(u), mapped(s));
  return out;
}

std::optional<graph::TaskGraph> apply_clone_task(const graph::TaskGraph& g,
                                                 graph::TaskId a) {
  if (!valid_task(g, a)) return std::nullopt;
  graph::TaskGraph out = g;
  const graph::TaskId twin =
      out.add_task(g.model_ptr(a), g.name(a).empty() ? "" : g.name(a) + "'");
  for (const graph::TaskId u : g.predecessors(a)) out.add_edge(u, twin);
  for (const graph::TaskId s : g.successors(a)) out.add_edge(twin, s);
  return out;
}

std::optional<graph::TaskGraph> apply_split_task(const graph::TaskGraph& g,
                                                 graph::TaskId a) {
  if (!valid_task(g, a)) return std::nullopt;
  const auto params = eq1_params(g, a);
  if (!params) return std::nullopt;
  model::GeneralParams half = params->second;
  if (!(half.w > 0.0)) return std::nullopt;
  half.w /= 2.0;
  const auto half_model = rebuild_eq1(params->first, half);
  if (half_model == nullptr) return std::nullopt;
  graph::TaskGraph out;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    out.add_task(v == a ? half_model : g.model_ptr(v), g.name(v));
  const graph::TaskId tail = out.add_task(
      half_model, g.name(a).empty() ? "" : g.name(a) + "/2");
  // a keeps its predecessors; its successors move to the chained tail.
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    for (const graph::TaskId s : g.successors(v))
      out.add_edge(v == a ? tail : v, s);
  out.add_edge(a, tail);
  return out;
}

std::optional<graph::TaskGraph> apply_scale(const graph::TaskGraph& g,
                                            const Perturbation& p) {
  if (!valid_task(g, p.a) || !usable_factor(p.factor)) return std::nullopt;
  const auto params = eq1_params(g, p.a);
  if (!params) return std::nullopt;
  model::GeneralParams q = params->second;
  switch (p.op) {
    case PerturbOp::kScaleWork:
      if (!(q.w > 0.0)) return std::nullopt;
      q.w *= p.factor;
      break;
    case PerturbOp::kScaleSeq:
      if (!(q.d > 0.0)) return std::nullopt;
      q.d *= p.factor;
      break;
    case PerturbOp::kScaleComm:
      if (!(q.c > 0.0)) return std::nullopt;
      q.c *= p.factor;
      break;
    default:
      return std::nullopt;
  }
  if (!std::isfinite(q.w) || !std::isfinite(q.d) || !std::isfinite(q.c))
    return std::nullopt;
  auto rebuilt = rebuild_eq1(params->first, q);
  if (rebuilt == nullptr) return std::nullopt;
  return with_model(g, p.a, std::move(rebuilt));
}

std::optional<graph::TaskGraph> apply_set_pbar(const graph::TaskGraph& g,
                                               const Perturbation& p) {
  if (!valid_task(g, p.a) || p.b < 1) return std::nullopt;
  const auto params = eq1_params(g, p.a);
  if (!params) return std::nullopt;
  // Only the families whose analysis carries pbar: roofline and general.
  if (params->first != model::ModelKind::kRoofline &&
      params->first != model::ModelKind::kGeneral)
    return std::nullopt;
  model::GeneralParams q = params->second;
  if (q.pbar == p.b) return std::nullopt;
  q.pbar = p.b;
  auto rebuilt = rebuild_eq1(params->first, q);
  if (rebuilt == nullptr) return std::nullopt;
  return with_model(g, p.a, std::move(rebuilt));
}

std::optional<graph::TaskGraph> apply_scale_table(const graph::TaskGraph& g,
                                                  const Perturbation& p) {
  if (!valid_task(g, p.a) || !usable_factor(p.factor)) return std::nullopt;
  const auto* table =
      dynamic_cast<const model::TableModel*>(&g.model_of(p.a));
  if (table == nullptr || p.b < 0 || p.b >= table->table_size())
    return std::nullopt;
  std::vector<double> times(static_cast<std::size_t>(table->table_size()));
  for (int q = 1; q <= table->table_size(); ++q)
    times[static_cast<std::size_t>(q - 1)] = table->time(q);
  double& entry = times[static_cast<std::size_t>(p.b)];
  entry *= p.factor;
  if (!std::isfinite(entry) || !(entry > 0.0)) return std::nullopt;
  return with_model(g, p.a,
                    std::make_shared<model::TableModel>(std::move(times)));
}

}  // namespace

std::string to_string(PerturbOp op) { return op_name(op); }

std::string Perturbation::to_json() const {
  std::ostringstream os;
  os << "{\"op\":\"" << op_name(op) << "\",\"a\":" << a << ",\"b\":" << b
     << ",\"factor\":" << svc::wire_number(factor) << "}";
  return os.str();
}

Perturbation Perturbation::from_json(const io::JsonValue& v) {
  if (!v.is_object())
    throw std::invalid_argument("Perturbation::from_json: not an object");
  Perturbation p;
  const auto& name = v.at("op");
  if (!name.is_string())
    throw std::invalid_argument("Perturbation::from_json: op must be string");
  bool found = false;
  for (int i = 0; i < kNumOps; ++i) {
    const auto op = static_cast<PerturbOp>(i);
    if (name.string == op_name(op)) {
      p.op = op;
      found = true;
      break;
    }
  }
  if (!found)
    throw std::invalid_argument("Perturbation::from_json: unknown op '" +
                                name.string + "'");
  p.a = static_cast<graph::TaskId>(v.at("a").number);
  p.b = static_cast<int>(v.at("b").number);
  p.factor = v.at("factor").number;
  return p;
}

Perturbation Perturbation::from_json(const std::string& json) {
  return from_json(io::parse_json(json));
}

std::optional<graph::TaskGraph> apply_perturbation(const graph::TaskGraph& g,
                                                   const Perturbation& p) {
  switch (p.op) {
    case PerturbOp::kAddEdge:
      return apply_add_edge(g, p);
    case PerturbOp::kRemoveEdge:
      if (!valid_task(g, p.a) || !valid_task(g, p.b) ||
          !g.has_edge(p.a, p.b))
        return std::nullopt;
      return check::without_edge(g, p.a, p.b);
    case PerturbOp::kCloneTask:
      return apply_clone_task(g, p.a);
    case PerturbOp::kRemoveTask:
      return apply_remove_task(g, p.a);
    case PerturbOp::kSplitTask:
      return apply_split_task(g, p.a);
    case PerturbOp::kScaleWork:
    case PerturbOp::kScaleSeq:
    case PerturbOp::kScaleComm:
      return apply_scale(g, p);
    case PerturbOp::kSetPbar:
      return apply_set_pbar(g, p);
    case PerturbOp::kScaleTableEntry:
      return apply_scale_table(g, p);
  }
  return std::nullopt;
}

std::optional<Perturbation> propose_perturbation(const graph::TaskGraph& g,
                                                 util::Rng& rng, int max_tasks,
                                                 int attempts) {
  const int n = g.num_tasks();
  if (n == 0) return std::nullopt;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    Perturbation p;
    p.op = static_cast<PerturbOp>(rng.uniform_int(0, kNumOps - 1));
    const bool grows =
        p.op == PerturbOp::kCloneTask || p.op == PerturbOp::kSplitTask;
    if (grows && n >= max_tasks) continue;
    p.a = static_cast<graph::TaskId>(rng.uniform_int(0, n - 1));
    switch (p.op) {
      case PerturbOp::kAddEdge:
        p.b = static_cast<int>(rng.uniform_int(0, n - 1));
        break;
      case PerturbOp::kRemoveEdge: {
        if (g.num_edges() == 0) continue;
        // Pick the k-th edge of the deterministic (source id, stored
        // successor order) enumeration.
        auto k = rng.uniform_int(
            0, static_cast<std::int64_t>(g.num_edges()) - 1);
        bool picked = false;
        for (graph::TaskId v = 0; v < n && !picked; ++v) {
          for (const graph::TaskId s : g.successors(v)) {
            if (k-- == 0) {
              p.a = v;
              p.b = s;
              picked = true;
              break;
            }
          }
        }
        break;
      }
      case PerturbOp::kSetPbar:
        p.b = static_cast<int>(rng.uniform_int(1, 256));
        break;
      case PerturbOp::kScaleTableEntry: {
        const auto* table =
            dynamic_cast<const model::TableModel*>(&g.model_of(p.a));
        if (table == nullptr) continue;
        p.b = static_cast<int>(rng.uniform_int(0, table->table_size() - 1));
        p.factor = rng.log_uniform(0.5, 2.0);
        break;
      }
      case PerturbOp::kScaleWork:
      case PerturbOp::kScaleSeq:
      case PerturbOp::kScaleComm:
        p.factor = rng.log_uniform(0.5, 2.0);
        break;
      default:
        break;
    }
    if (apply_perturbation(g, p).has_value()) return p;
  }
  return std::nullopt;
}

}  // namespace moldsched::adv
