#include "moldsched/adv/tournament.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "moldsched/check/corpus.hpp"
#include "moldsched/check/differential.hpp"
#include "moldsched/check/shrink.hpp"
#include "moldsched/graph/adversary.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::adv {

namespace {

// Small instantiations of the Figure 1-4 constructions: large enough to
// exhibit the layered worst-case behaviour, small enough that the
// annealer can afford hundreds of evaluations per pair.
constexpr int kRooflineP = 32;
constexpr int kCommunicationP = 8;
constexpr int kAmdahlK = 6;    // P = K^2 = 36
constexpr int kGeneralK = 6;   // P = K^2 = 36
constexpr int kCorpusP = 32;

constexpr const char* kFixedLabelPrefix = "fig:";

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

bool is_fixed_start(const StartPoint& s) {
  return s.label.rfind(kFixedLabelPrefix, 0) == 0;
}

}  // namespace

std::vector<std::string> tournament_scheduler_names() {
  std::vector<std::string> names;
  for (const auto& spec : sched::standard_suite(0.25))
    names.push_back(spec.name);
  return names;
}

std::vector<StartPoint> tournament_starts(double mu, std::uint64_t seed) {
  std::vector<StartPoint> starts;
  // A construction can be infeasible at extreme mu (the layer count Y
  // shrinks with delta(mu)); skip it rather than losing the whole start
  // set — the remaining constructions still anchor the baseline.
  auto fixed = [&](auto build, const std::string& name) {
    try {
      graph::AdversaryInstance inst = build();
      starts.push_back(
          {std::move(inst.graph), inst.P, kFixedLabelPrefix + name});
    } catch (const std::invalid_argument&) {
    }
  };
  fixed([&] { return graph::roofline_adversary(kRooflineP, mu); },
        "roofline");
  fixed([&] { return graph::communication_adversary(kCommunicationP, mu); },
        "communication");
  fixed([&] { return graph::amdahl_adversary(kAmdahlK, mu); }, "amdahl");
  fixed([&] { return graph::general_adversary(kGeneralK, mu); }, "general");

  // Two random corpus instances widen the search beyond the layered
  // Figure 1 shape: one Eq. (1) general graph, one TableModel graph (the
  // only family the kScaleTableEntry move applies to). Seeded through
  // derive_seed so the start set is a pure function of (mu, seed).
  util::Rng general_rng(util::derive_seed(seed, 0xad50));
  starts.push_back({check::corpus_graph(0, model::ModelKind::kGeneral,
                                        general_rng, kCorpusP),
                    kCorpusP, "corpus:general"});
  util::Rng table_rng(util::derive_seed(seed, 0xad51));
  starts.push_back({check::corpus_graph(1, model::ModelKind::kArbitrary,
                                        table_rng, kCorpusP),
                    kCorpusP, "corpus:table"});
  return starts;
}

PairResult run_pair(const std::string& target, const std::string& reference,
                    const TournamentOptions& options) {
  const auto target_spec = sched::spec_by_name(target, options.mu);
  const auto reference_spec = sched::spec_by_name(reference, options.mu);
  const auto starts = tournament_starts(options.mu, options.seed);

  PairResult pr;
  pr.target = target;
  pr.reference = reference;

  // Baseline: the best the paper's hand-built constructions achieve for
  // this pair. The search must strictly beat this to count as improved.
  pr.fixed_ratio = -1.0;
  for (const auto& s : starts) {
    if (!is_fixed_start(s)) continue;
    pr.fixed_ratio =
        std::max(pr.fixed_ratio,
                 evaluate_ratio(s.graph, s.P, target_spec, reference_spec));
  }

  AnnealOptions anneal;
  anneal.iterations = options.iterations;
  anneal.restarts = options.restarts;
  anneal.max_tasks = options.max_tasks;
  anneal.seed = options.seed;
  anneal.parallel_restarts = options.parallel_restarts;
  anneal.token = options.token;
  const auto search =
      anneal_search(starts, target_spec, reference_spec, anneal);
  pr.evals = search.evals;
  pr.accepts = search.accepts;

  graph::TaskGraph best = search.best_graph;
  const int P = search.best_P;
  pr.improved = search.best_ratio > pr.fixed_ratio;

  if (options.shrink && best.num_tasks() > 1 && search.best_ratio > 0.0) {
    // Preserve the strict improvement through shrinking when there is
    // one; otherwise keep the instance within 2% of the search optimum
    // and never below the fixed baseline (the search covers every start,
    // so best >= fixed going in).
    const double threshold =
        pr.improved ? pr.fixed_ratio
                    : std::max(0.98 * search.best_ratio, pr.fixed_ratio);
    const bool strict = pr.improved;
    auto still_fails = [&](const graph::TaskGraph& g) {
      const double r = evaluate_ratio(g, P, target_spec, reference_spec);
      return strict ? r > threshold : r >= threshold;
    };
    if (still_fails(best))
      best = check::shrink_instance(best, still_fails).graph;
  }

  double target_makespan = 0.0;
  double reference_makespan = 0.0;
  bool schedules_valid = false;
  try {
    const auto t_run = target_spec.run(best, P);
    const auto r_run = reference_spec.run(best, P);
    target_makespan = t_run.makespan;
    reference_makespan = r_run.makespan;
    schedules_valid = sim::validate_schedule(best, t_run.trace, P).ok() &&
                      sim::validate_schedule(best, r_run.trace, P).ok();
  } catch (const std::exception&) {
    schedules_valid = false;
  }
  pr.best_ratio = reference_makespan > 0.0
                      ? target_makespan / reference_makespan
                      : search.best_ratio;
  pr.improved = pr.best_ratio > pr.fixed_ratio;
  pr.validated = schedules_valid &&
                 check::differential_check(best, P, options.mu).ok();

  pr.record.suite = "pisa";
  pr.record.target = target;
  pr.record.reference = reference;
  pr.record.P = P;
  pr.record.mu = options.mu;
  pr.record.seed = options.seed;
  pr.record.ratio = pr.best_ratio;
  pr.record.target_makespan = target_makespan;
  pr.record.reference_makespan = reference_makespan;
  pr.record.fixed_ratio = pr.fixed_ratio;
  // The tournament objective divides by the reference scheduler; record
  // that explicitly so replays verify the ratio against the same
  // denominator even if future producers score against exact-topt.
  pr.record.denominator = reference;
  pr.record.note = "restart=" + std::to_string(search.best_restart) +
                   " evals=" + std::to_string(search.evals);
  pr.record.graph = std::move(best);
  return pr;
}

std::string dominance_matrix_csv(const std::vector<PairResult>& results) {
  const auto names = tournament_scheduler_names();
  std::map<std::pair<std::string, std::string>, double> cell;
  for (const auto& r : results) cell[{r.target, r.reference}] = r.best_ratio;
  std::ostringstream os;
  os << "target\\reference";
  for (const auto& n : names) os << "," << n;
  os << "\n";
  for (const auto& row : names) {
    os << row;
    for (const auto& col : names) {
      os << ",";
      if (row == col) continue;
      const auto it = cell.find({row, col});
      if (it != cell.end()) os << fmt(it->second);
    }
    os << "\n";
  }
  return os.str();
}

std::string pairs_csv(const std::vector<PairResult>& results) {
  std::ostringstream os;
  os << "target,reference,fixed_ratio,best_ratio,improved,validated,"
        "evals,accepts,tasks,P\n";
  for (const auto& r : results) {
    os << r.target << "," << r.reference << "," << fmt(r.fixed_ratio) << ","
       << fmt(r.best_ratio) << "," << (r.improved ? 1 : 0) << ","
       << (r.validated ? 1 : 0) << "," << r.evals << "," << r.accepts << ","
       << r.record.graph.num_tasks() << "," << r.record.P << "\n";
  }
  return os.str();
}

std::string tournament_report_md(const std::vector<PairResult>& results,
                                 const TournamentOptions& options) {
  const auto names = tournament_scheduler_names();
  std::map<std::pair<std::string, std::string>, const PairResult*> cell;
  int improved = 0;
  int validated = 0;
  for (const auto& r : results) {
    cell[{r.target, r.reference}] = &r;
    improved += r.improved ? 1 : 0;
    validated += r.validated ? 1 : 0;
  }

  std::ostringstream os;
  os << "# PISA adversarial tournament\n\n"
     << "Objective per ordered pair: maximize makespan(target) / "
        "makespan(reference)\n"
     << "over the perturbation grammar, annealing from the fixed Figure "
        "1-4\n"
     << "constructions and two random corpus instances.\n\n"
     << "- mu = " << fmt(options.mu) << ", seed = " << options.seed
     << ", iterations = " << options.iterations
     << ", restarts = " << options.restarts << "\n"
     << "- pairs: " << results.size() << ", search beat the fixed "
     << "construction on " << improved << ", archived instance validated "
     << "on " << validated << "\n\n"
     << "## Dominance matrix (best ratio found; target row / reference "
        "column)\n\n";

  os << "| target \\ reference |";
  for (const auto& n : names) os << " " << n << " |";
  os << "\n|---|";
  for (std::size_t i = 0; i < names.size(); ++i) os << "---|";
  os << "\n";
  for (const auto& row : names) {
    os << "| " << row << " |";
    for (const auto& col : names) {
      if (row == col) {
        os << " - |";
        continue;
      }
      const auto it = cell.find({row, col});
      if (it == cell.end()) {
        os << " |";
        continue;
      }
      os << " " << fmt(it->second->best_ratio)
         << (it->second->improved ? "*" : "") << " |";
    }
    os << "\n";
  }
  os << "\n`*` = strictly beats the fixed-construction baseline for that "
        "pair.\n\n## Pairs where the search won\n\n";

  bool any = false;
  for (const auto& r : results) {
    if (!r.improved) continue;
    any = true;
    os << "- **" << r.target << "** vs **" << r.reference
       << "**: " << fmt(r.best_ratio) << " (fixed construction "
       << fmt(r.fixed_ratio) << "), " << r.record.graph.num_tasks()
       << " tasks at P = " << r.record.P
       << (r.validated ? ", validated" : ", VALIDATION FAILED") << "\n";
  }
  if (!any) os << "(none)\n";
  return os.str();
}

}  // namespace moldsched::adv
