#include "moldsched/adv/archive.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/svc/wire.hpp"

namespace moldsched::adv {

namespace {

double require_number(const io::JsonValue& v, const char* key) {
  const auto& field = v.at(key);
  if (!field.is_number())
    throw std::invalid_argument(std::string("ReproRecord: field '") + key +
                                "' must be a number");
  return field.number;
}

std::string require_string(const io::JsonValue& v, const char* key) {
  const auto& field = v.at(key);
  if (!field.is_string())
    throw std::invalid_argument(std::string("ReproRecord: field '") + key +
                                "' must be a string");
  return field.string;
}

std::mutex& buffer_mutex() {
  static std::mutex m;
  return m;
}

std::map<int, std::string>& buffer() {
  static std::map<int, std::string> lines;
  return lines;
}

}  // namespace

std::string encode_record(const ReproRecord& r) {
  std::ostringstream os;
  os << "{\"suite\":\"" << io::json_escape(r.suite) << "\""
     << ",\"target\":\"" << io::json_escape(r.target) << "\""
     << ",\"reference\":\"" << io::json_escape(r.reference) << "\""
     << ",\"P\":" << r.P << ",\"mu\":" << svc::wire_number(r.mu)
     // Seeds are full 64-bit values; JSON numbers are doubles (53-bit
     // mantissa), so the seed travels as a decimal string.
     << ",\"seed\":\"" << r.seed << "\""
     << ",\"ratio\":" << svc::wire_number(r.ratio)
     << ",\"target_makespan\":" << svc::wire_number(r.target_makespan)
     << ",\"reference_makespan\":" << svc::wire_number(r.reference_makespan)
     << ",\"fixed_ratio\":" << svc::wire_number(r.fixed_ratio)
     << ",\"note\":\"" << io::json_escape(r.note) << "\""
     // Always written resolved (never empty), so fresh archives are
     // explicit about their objective even for the default reference
     // denominator; decode tolerates absence for legacy archives.
     << ",\"denominator\":\"" << io::json_escape(r.denominator_scheduler())
     << "\""
     << ",\"graph\":" << svc::encode_graph(r.graph) << "}";
  return os.str();
}

namespace {

ReproRecord decode_fields(const io::JsonValue& v) {
  ReproRecord r;
  r.suite = require_string(v, "suite");
  r.target = require_string(v, "target");
  r.reference = require_string(v, "reference");
  r.P = static_cast<int>(require_number(v, "P"));
  r.mu = require_number(v, "mu");
  const std::string seed = require_string(v, "seed");
  if (seed.empty() ||
      seed.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument("ReproRecord: seed must be a decimal string");
  errno = 0;
  char* end = nullptr;
  r.seed = std::strtoull(seed.c_str(), &end, 10);
  if (errno != 0 || end != seed.c_str() + seed.size())
    throw std::invalid_argument("ReproRecord: seed out of range");
  r.ratio = require_number(v, "ratio");
  r.target_makespan = require_number(v, "target_makespan");
  r.reference_makespan = require_number(v, "reference_makespan");
  r.fixed_ratio = require_number(v, "fixed_ratio");
  r.note = require_string(v, "note");
  if (v.find("denominator") != nullptr)
    r.denominator = require_string(v, "denominator");
  r.graph = svc::decode_graph(v.at("graph"));
  if (r.P < 1) throw std::invalid_argument("ReproRecord: P must be >= 1");
  return r;
}

}  // namespace

ReproRecord decode_record(const io::JsonValue& v) {
  if (!v.is_object())
    throw std::invalid_argument("ReproRecord: line is not a JSON object");
  try {
    return decode_fields(v);
  } catch (const std::out_of_range& e) {
    // JsonValue::at on a missing member; the documented contract is
    // invalid_argument for every malformed record.
    throw std::invalid_argument(std::string("ReproRecord: ") + e.what());
  }
}

ReproRecord decode_record(const std::string& line) {
  return decode_record(io::parse_json(line));
}

std::vector<ReproRecord> read_archive(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read archive file: " + path);
  std::vector<ReproRecord> records;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      records.push_back(decode_record(line));
    } catch (const std::exception& e) {
      throw std::invalid_argument(path + ":" + std::to_string(line_no) +
                                  ": " + e.what());
    }
  }
  return records;
}

ReplayOutcome replay_record(const ReproRecord& r,
                            const std::string& scheduler) {
  ReplayOutcome out;
  out.scheduler = scheduler.empty() ? r.target : scheduler;
  const auto spec = sched::spec_by_name(out.scheduler, r.mu);
  const auto result = spec.run(r.graph, r.P);
  out.makespan = result.makespan;
  out.lower_bound = analysis::optimal_makespan_lower_bound(r.graph, r.P);
  out.ratio_to_lb =
      out.lower_bound > 0.0 ? out.makespan / out.lower_bound : 0.0;
  const auto report = sim::validate_schedule(r.graph, result.trace, r.P);
  out.valid = report.ok();
  if (!out.valid) out.violations = report.to_string();
  if (out.scheduler == r.target) {
    out.checked = true;
    out.recorded_makespan = r.target_makespan;
  } else if (out.scheduler == r.reference) {
    out.checked = true;
    out.recorded_makespan = r.reference_makespan;
  }
  if (out.checked) out.bit_identical = out.makespan == out.recorded_makespan;

  // Ratio verification against the archived objective. Only meaningful
  // when this replay reproduced the numerator; the denominator (which
  // may be the exact oracle rather than the reference scheduler) is
  // re-run here, and determinism of every registry entry makes the
  // archived ratio bit-reproducible.
  if (out.scheduler == r.target && r.ratio > 0.0) {
    out.denominator = r.denominator_scheduler();
    try {
      const auto denom_spec = sched::spec_by_name(out.denominator, r.mu);
      out.denominator_makespan = denom_spec.run(r.graph, r.P).makespan;
      if (out.denominator_makespan > 0.0) {
        out.replayed_ratio = out.makespan / out.denominator_makespan;
        out.ratio_checked = true;
        out.ratio_bit_identical = out.replayed_ratio == r.ratio;
      }
    } catch (const std::exception&) {
      // The denominator refused the instance (e.g. exact-topt over its
      // size caps on a machine where the archive was imported): the
      // ratio simply stays unchecked.
    }
  }
  return out;
}

void archive_buffer_put(int job_id, std::string line) {
  const std::lock_guard<std::mutex> lock(buffer_mutex());
  buffer()[job_id] = std::move(line);
}

std::vector<std::string> archive_buffer_drain() {
  const std::lock_guard<std::mutex> lock(buffer_mutex());
  std::vector<std::string> lines;
  lines.reserve(buffer().size());
  for (auto& [id, line] : buffer()) lines.push_back(std::move(line));
  buffer().clear();
  return lines;
}

}  // namespace moldsched::adv
