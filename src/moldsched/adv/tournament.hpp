// Pairwise adversarial tournament over the scheduler registry.
//
// For every ordered pair (target, reference) of the 8 standard-suite
// schedulers, run_pair anneals the perturbation grammar (anneal.hpp)
// from the paper's fixed Figure 1-4 constructions plus random corpus
// instances, searching for the instance that maximizes
// makespan(target) / makespan(reference). The fixed constructions give
// each pair a baseline ratio; the search is scored against it — "did
// the adversary beat the hand-built worst case?". The worst instance
// found is shrunk with check::shrink_instance (preserving the strict
// improvement when there is one), cross-checked with the differential
// validator, and packaged as a replayable ReproRecord.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "moldsched/adv/anneal.hpp"
#include "moldsched/adv/archive.hpp"

namespace moldsched::adv {

struct TournamentOptions {
  double mu = 0.25;        ///< LPA parameter for schedulers and adversaries
  std::uint64_t seed = 1;  ///< search seed (derive per pair for a suite)
  int iterations = 80;     ///< annealing iterations per restart
  int restarts = 2;
  int max_tasks = 240;
  bool shrink = true;      ///< minimize the worst instance before archiving
  bool parallel_restarts = true;
  engine::CancelToken token;  ///< optional wall-clock budget
};

/// Outcome of one ordered scheduler pair.
struct PairResult {
  std::string target;
  std::string reference;
  double fixed_ratio = 0.0;  ///< best ratio among the fixed constructions
  double best_ratio = 0.0;   ///< best ratio the search found
  bool improved = false;     ///< best_ratio > fixed_ratio (strictly)
  bool validated = false;    ///< worst instance passed check::/sim:: review
  std::uint64_t evals = 0;
  std::uint64_t accepts = 0;
  ReproRecord record;        ///< archived worst instance (post-shrink)
};

/// The tournament's scheduler names: the 8-entry standard suite, in
/// registry order.
[[nodiscard]] std::vector<std::string> tournament_scheduler_names();

/// Starting instances for the search: small Figure 1-4 adversary
/// constructions (labels "fig:*") tuned at mu, plus two random corpus
/// graphs ("corpus:*", one Eq. (1) general, one TableModel) drawn from
/// `seed`. Deterministic in (mu, seed).
[[nodiscard]] std::vector<StartPoint> tournament_starts(double mu,
                                                        std::uint64_t seed);

/// Runs the annealing search for one ordered pair. Both names must be
/// registered (sched::spec_by_name). The result's record is ready for
/// encode_record; its `validated` flag reports sim::validate_schedule on
/// both schedules plus check::differential_check at the pair's mu.
[[nodiscard]] PairResult run_pair(const std::string& target,
                                  const std::string& reference,
                                  const TournamentOptions& options);

/// Square dominance matrix: row = target, column = reference, cell =
/// best ratio found (empty diagonal). First row/column hold names.
[[nodiscard]] std::string dominance_matrix_csv(
    const std::vector<PairResult>& results);

/// Flat per-pair table: target,reference,fixed_ratio,best_ratio,
/// improved,validated,evals,accepts,tasks,P.
[[nodiscard]] std::string pairs_csv(const std::vector<PairResult>& results);

/// Markdown report: dominance matrix plus the per-pair summary with the
/// pairs where the search beat the fixed construction called out.
[[nodiscard]] std::string tournament_report_md(
    const std::vector<PairResult>& results, const TournamentOptions& options);

}  // namespace moldsched::adv
