// Replayable repro archive for adversarial instances.
//
// Each archive line is one self-contained JSON object carrying the full
// instance (graph via svc::encode_graph — lossless, bit-exact doubles),
// the scheduler pair it separates, and the makespans observed when it
// was archived. Because the codec round-trips IEEE-754 exactly and every
// scheduler in the registry is deterministic, a replay must reproduce
// the recorded makespans *bit-identically*; replay_record checks that,
// re-validates the schedule with sim::validate_schedule, and reports the
// T/LB ratio against the Lemma 2 lower bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/io/json.hpp"

namespace moldsched::adv {

/// One archived worst instance for a (target, reference) scheduler pair.
struct ReproRecord {
  std::string suite;       ///< producer, e.g. "pisa"
  std::string target;      ///< scheduler whose makespan is the numerator
  std::string reference;   ///< denominator scheduler
  int P = 2;
  double mu = 0.25;        ///< LPA parameter both schedulers were built with
  std::uint64_t seed = 0;  ///< search seed that produced the instance
  double ratio = 0.0;      ///< target_makespan / reference_makespan
  double target_makespan = 0.0;
  double reference_makespan = 0.0;
  double fixed_ratio = 0.0;  ///< the fixed Figure 1-4 construction's ratio
                             ///< for this pair (search baseline)
  std::string note;          ///< free-form provenance, e.g. start label
  /// Scheduler name whose makespan was the ratio's denominator when the
  /// record was produced — normally the reference scheduler, but
  /// "exact-topt" when the search scored against the exact optimum.
  /// Empty on records from archives written before this field existed;
  /// denominator_scheduler() resolves that to `reference`.
  std::string denominator;
  graph::TaskGraph graph;

  /// The effective denominator: `denominator`, or `reference` for
  /// legacy records that predate the field.
  [[nodiscard]] const std::string& denominator_scheduler() const {
    return denominator.empty() ? reference : denominator;
  }
};

/// One JSONL line (no trailing newline). Doubles use svc::wire_number.
[[nodiscard]] std::string encode_record(const ReproRecord& r);

/// Inverse of encode_record. Throws std::invalid_argument on missing
/// fields or a graph the codec rejects.
[[nodiscard]] ReproRecord decode_record(const io::JsonValue& v);
[[nodiscard]] ReproRecord decode_record(const std::string& line);

/// Parses every non-empty line of a JSONL archive file. Throws
/// std::runtime_error when the file cannot be read, std::invalid_argument
/// (with the line number) on a malformed line.
[[nodiscard]] std::vector<ReproRecord> read_archive(const std::string& path);

/// Result of re-running an archived instance through one scheduler.
struct ReplayOutcome {
  std::string scheduler;      ///< name actually run
  double makespan = 0.0;
  double lower_bound = 0.0;   ///< Lemma 2 bound: max(A_min/P, C_min)
  double ratio_to_lb = 0.0;   ///< makespan / lower_bound
  bool valid = false;         ///< sim::validate_schedule passed
  std::string violations;     ///< validator report when !valid
  /// True when the replayed makespan equals the archived one to the bit.
  /// Only meaningful when the scheduler is the record's target or
  /// reference (checked = false otherwise).
  bool bit_identical = false;
  bool checked = false;
  double recorded_makespan = 0.0;  ///< archived value compared against
  /// Ratio verification, performed only when replaying the record's
  /// target: the denominator scheduler (denominator_scheduler(), which
  /// may be "exact-topt") is re-run and the archived ratio must equal
  /// makespan / denominator_makespan to the bit. ratio_checked stays
  /// false when the denominator cannot be re-run (e.g. the exact oracle
  /// refuses the instance) — that is a skipped check, not a failure.
  std::string denominator;
  double denominator_makespan = 0.0;
  double replayed_ratio = 0.0;
  bool ratio_checked = false;
  bool ratio_bit_identical = false;
};

/// Replays `r` through `scheduler` (empty = the record's target),
/// resolving the name via sched::spec_by_name at the record's mu.
/// Throws std::invalid_argument for unknown scheduler names.
[[nodiscard]] ReplayOutcome replay_record(const ReproRecord& r,
                                          const std::string& scheduler = "");

/// Process-wide buffer carrying archive lines from engine job runners to
/// the suite finalizer (JobRecord itself transports only numeric
/// metrics). Keyed by job id; drained in id order so archive files are
/// deterministic regardless of job execution order.
void archive_buffer_put(int job_id, std::string line);

/// Removes and returns all buffered lines, sorted by job id.
[[nodiscard]] std::vector<std::string> archive_buffer_drain();

}  // namespace moldsched::adv
