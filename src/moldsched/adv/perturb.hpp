// Perturbation grammar over moldable task graphs — the move set of the
// PISA-style adversarial search (Coleman & Krishnamachari,
// arXiv:2403.07120, adapted to the moldable-DAG setting).
//
// A Perturbation is one small, serializable edit of an instance:
// add/remove an edge (acyclicity re-checked via graph::algorithms),
// clone/remove a task (widening or merging layers), split a task into a
// serial chain, or mutate one speedup-model parameter of the Eq. (1)
// family / one TableModel entry. Edits are *bit-exact serializable*:
// to_json() prints the multiplicative factor with svc::wire_number's 17
// significant digits, so a decoded delta applied to the same base graph
// reproduces the byte-identical instance — the property that makes
// annealing trails replayable.
#pragma once

#include <optional>
#include <string>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/io/json.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::adv {

/// The move set. Model mutations preserve the task's ModelKind: scaling
/// d on a roofline task (d == 0) is inapplicable rather than silently
/// changing the family the analysis reasons about.
enum class PerturbOp {
  kAddEdge,          ///< forward edge a -> b (rejected if it closes a cycle)
  kRemoveEdge,       ///< drop the existing edge a -> b
  kCloneTask,        ///< duplicate task a with its predecessors/successors
                     ///< (widens a's layer)
  kRemoveTask,       ///< remove a, reconnecting each pred to each succ
                     ///< (merges a's layer into its neighbours)
  kSplitTask,        ///< replace a's work w with w/2 and append a chained
                     ///< twin carrying the other half (deepens the graph)
  kScaleWork,        ///< w  *= factor (Eq. (1) family)
  kScaleSeq,         ///< d  *= factor (Amdahl / general; requires d > 0)
  kScaleComm,        ///< c  *= factor (communication / general; c > 0)
  kSetPbar,          ///< pbar = b (roofline / general)
  kScaleTableEntry,  ///< times[b] *= factor (TableModel)
};

[[nodiscard]] std::string to_string(PerturbOp op);

/// One edit. Which of a / b / factor are meaningful depends on op; the
/// unused fields keep their defaults and round-trip through JSON.
struct Perturbation {
  PerturbOp op = PerturbOp::kAddEdge;
  graph::TaskId a = 0;   ///< task (or edge source)
  int b = 0;             ///< edge target, pbar value, or table index
  double factor = 1.0;   ///< multiplicative parameter delta

  /// {"op":"scale-work","a":3,"b":0,"factor":1.2345678901234567}.
  /// factor is printed with 17 significant digits (bit-exact round trip).
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] static Perturbation from_json(const io::JsonValue& v);
  [[nodiscard]] static Perturbation from_json(const std::string& json);
};

/// Applies `p` to a copy of `g`. Returns nullopt when the edit is
/// inapplicable: unknown ids, an edge that would close a cycle or
/// already exists, removing the last task, scaling a zero parameter, or
/// a model family the op does not address. Applicable edits always yield
/// a valid (acyclic, positive-time) graph whose models stay losslessly
/// serializable via svc::encode_graph.
[[nodiscard]] std::optional<graph::TaskGraph> apply_perturbation(
    const graph::TaskGraph& g, const Perturbation& p);

/// Draws random perturbations until one is applicable to `g` (at most
/// `attempts` tries; nullopt afterwards — e.g. a single-task graph with
/// a non-mutable model). Growth ops (clone/split) are not proposed once
/// the graph has reached `max_tasks`. Deterministic given the rng state.
[[nodiscard]] std::optional<Perturbation> propose_perturbation(
    const graph::TaskGraph& g, util::Rng& rng, int max_tasks,
    int attempts = 32);

}  // namespace moldsched::adv
