#include "moldsched/sched/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace moldsched::sched {

int MinTimeAllocator::allocate(const model::SpeedupModel& m, int P) const {
  return m.max_useful_procs(P);
}

int SequentialAllocator::allocate(const model::SpeedupModel& m, int P) const {
  (void)m;
  if (P < 1)
    throw std::invalid_argument("SequentialAllocator: P must be >= 1");
  return 1;
}

FixedAllocator::FixedAllocator(int k) : k_(k) {
  if (k < 1) throw std::invalid_argument("FixedAllocator: k must be >= 1");
}

int FixedAllocator::allocate(const model::SpeedupModel& m, int P) const {
  return std::clamp(k_, 1, std::min(P, m.max_useful_procs(P)));
}

std::string FixedAllocator::name() const {
  std::ostringstream os;
  os << "fixed(" << k_ << ")";
  return os.str();
}

FractionAllocator::FractionAllocator(double fraction) : fraction_(fraction) {
  if (!(fraction > 0.0) || fraction > 1.0)
    throw std::invalid_argument(
        "FractionAllocator: fraction must lie in (0, 1]");
}

int FractionAllocator::allocate(const model::SpeedupModel& m, int P) const {
  const int want = static_cast<int>(
      std::lround(fraction_ * static_cast<double>(P)));
  return std::clamp(want, 1, m.max_useful_procs(P));
}

std::string FractionAllocator::name() const {
  std::ostringstream os;
  os << "fraction(" << fraction_ << ")";
  return os.str();
}

int SqrtAllocator::allocate(const model::SpeedupModel& m, int P) const {
  const int want = static_cast<int>(
      std::lround(std::sqrt(static_cast<double>(P))));
  return std::clamp(want, 1, m.max_useful_procs(P));
}

UncappedLpaAllocator::UncappedLpaAllocator(double mu) : lpa_(mu) {}

int UncappedLpaAllocator::allocate(const model::SpeedupModel& m,
                                   int P) const {
  return lpa_.decide(m, P).initial;  // Step 1 only
}

std::string UncappedLpaAllocator::name() const {
  std::ostringstream os;
  os << "uncapped-lpa(mu=" << lpa_.mu() << ")";
  return os.str();
}

CappedMinTimeAllocator::CappedMinTimeAllocator(double mu) : mu_(mu) {
  if (!(mu > 0.0) || mu > 0.38196601125010515 + 1e-12)
    throw std::invalid_argument(
        "CappedMinTimeAllocator: mu must lie in (0, (3-sqrt(5))/2]");
}

int CappedMinTimeAllocator::allocate(const model::SpeedupModel& m,
                                     int P) const {
  const int cap = static_cast<int>(
      std::ceil(mu_ * static_cast<double>(P) - 1e-12));
  return std::min(m.max_useful_procs(P), std::max(1, cap));
}

std::string CappedMinTimeAllocator::name() const {
  std::ostringstream os;
  os << "capped-min-time(mu=" << mu_ << ")";
  return os.str();
}

}  // namespace moldsched::sched
