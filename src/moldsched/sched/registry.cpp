#include "moldsched/sched/registry.hpp"

#include <stdexcept>

#include "moldsched/opt/oracle.hpp"
#include "moldsched/opt/wu_loiseau.hpp"
#include "moldsched/sched/backfill_scheduler.hpp"
#include "moldsched/sched/baselines.hpp"
#include "moldsched/sched/contiguous_scheduler.hpp"
#include "moldsched/sched/improved_lpa.hpp"
#include "moldsched/sched/level_scheduler.hpp"

namespace moldsched::sched {

core::ScheduleResult SchedulerSpec::run(const graph::TaskGraph& g,
                                        int P) const {
  if (runner) return runner(g, P);
  if (!allocator)
    throw std::invalid_argument("SchedulerSpec::run: '" + name +
                                "' has neither a runner nor an allocator");
  return core::schedule_online(g, P, *allocator, policy);
}

SchedulerSpec lpa_spec(double mu) {
  // The production LPA path memoizes its Algorithm 2 decisions in the
  // process-wide store; decision-for-decision identical to the bare
  // allocator (check::differential_check guards this), just faster when
  // a grid revisits (model, P, mu) triples.
  return SchedulerSpec{"lpa",
                       std::make_shared<core::CachingAllocator>(
                           std::make_shared<core::LpaAllocator>(mu),
                           core::DecisionCache::process_wide()),
                       core::QueuePolicy::kFifo, {}};
}

SchedulerSpec improved_lpa_spec() {
  // Parameter-free: the per-kind optima are process-wide constants, so
  // the stable "improved-lpa" cache tag is fully qualifying and the
  // shared store never cross-talks with the lpa(mu=...) entries.
  return SchedulerSpec{"improved-lpa",
                       std::make_shared<core::CachingAllocator>(
                           std::make_shared<ImprovedLpaAllocator>(),
                           core::DecisionCache::process_wide()),
                       core::QueuePolicy::kFifo, {}};
}

std::vector<SchedulerSpec> standard_suite(double mu) {
  std::vector<SchedulerSpec> suite;
  suite.push_back(lpa_spec(mu));
  suite.push_back(improved_lpa_spec());
  suite.push_back({"min-time", std::make_shared<MinTimeAllocator>(),
                   core::QueuePolicy::kFifo, {}});
  suite.push_back({"sequential", std::make_shared<SequentialAllocator>(),
                   core::QueuePolicy::kFifo, {}});
  suite.push_back({"capped-min-time",
                   std::make_shared<CappedMinTimeAllocator>(mu),
                   core::QueuePolicy::kFifo, {}});
  suite.push_back({"uncapped-lpa", std::make_shared<UncappedLpaAllocator>(mu),
                   core::QueuePolicy::kFifo, {}});
  suite.push_back(
      {"sqrt-p", std::make_shared<SqrtAllocator>(), core::QueuePolicy::kFifo, {}});
  suite.push_back({"fraction-1/4", std::make_shared<FractionAllocator>(0.25),
                   core::QueuePolicy::kFifo, {}});
  return suite;
}

std::vector<SchedulerSpec> engine_variants(double mu) {
  std::vector<SchedulerSpec> variants;

  SchedulerSpec level;
  level.name = "level-lpa";
  level.allocator = std::make_shared<core::CachingAllocator>(
      std::make_shared<core::LpaAllocator>(mu),
      core::DecisionCache::process_wide());
  level.runner = [alloc = level.allocator](const graph::TaskGraph& g,
                                           int P) {
    auto r = schedule_level_by_level(g, P, *alloc);
    core::ScheduleResult out;
    out.trace = std::move(r.trace);
    out.makespan = r.makespan;
    out.allocation = std::move(r.allocation);
    out.ready_time.assign(static_cast<std::size_t>(g.num_tasks()), 0.0);
    return out;
  };
  variants.push_back(std::move(level));

  SchedulerSpec contiguous;
  contiguous.name = "contiguous-lpa";
  contiguous.allocator = std::make_shared<core::LpaAllocator>(mu);
  contiguous.runner = [alloc = contiguous.allocator](
                          const graph::TaskGraph& g, int P) {
    auto r = schedule_online_contiguous(g, P, *alloc);
    return std::move(r.base);
  };
  variants.push_back(std::move(contiguous));

  SchedulerSpec backfill;
  backfill.name = "backfill-lpa";
  backfill.allocator = std::make_shared<core::LpaAllocator>(mu);
  backfill.runner = [alloc = backfill.allocator](const graph::TaskGraph& g,
                                                 int P) {
    return schedule_online_backfill(g, P, *alloc);
  };
  variants.push_back(std::move(backfill));

  return variants;
}

std::vector<SchedulerSpec> full_suite(double mu) {
  auto suite = standard_suite(mu);
  for (auto& variant : engine_variants(mu)) suite.push_back(std::move(variant));
  // Offline reference columns (whole graph known up front). The exact
  // oracle is *not* appended here: full_suite runs on corpus instances
  // far beyond its ~20-task cap; resolve it via spec_by_name instead.
  for (auto& reference : opt::offline_reference_suite())
    suite.push_back(std::move(reference));
  return suite;
}

std::vector<std::string> full_suite_names() {
  std::vector<std::string> names;
  for (const auto& spec : full_suite(0.3)) names.push_back(spec.name);
  return names;
}

SchedulerSpec spec_by_name(const std::string& name, double mu) {
  if (name == "exact-topt") return opt::exact_topt_spec();
  auto suite = full_suite(mu);
  for (auto& spec : suite)
    if (spec.name == name) return std::move(spec);
  std::string known;
  for (const auto& spec : suite) {
    if (!known.empty()) known += ", ";
    known += spec.name;
  }
  throw std::invalid_argument("spec_by_name: unknown scheduler '" + name +
                              "' (known: " + known + ", exact-topt)");
}

}  // namespace moldsched::sched
