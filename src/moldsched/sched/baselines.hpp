// Baseline allocation strategies the paper's algorithm is compared
// against. Each plugs into the same Algorithm 1 list scheduler; only the
// per-task processor allocation differs.
#pragma once

#include <string>

#include "moldsched/core/allocator.hpp"

namespace moldsched::sched {

/// Greedy: always the time-minimizing allocation p_max (Eq. (5)).
/// Maximizes per-task speed at the price of area; the classic
/// "selfish task" baseline.
class MinTimeAllocator : public core::Allocator {
 public:
  [[nodiscard]] int allocate(const model::SpeedupModel& m,
                             int P) const override;
  [[nodiscard]] std::string name() const override { return "min-time"; }
};

/// One processor per task: minimum area, maximum critical path.
class SequentialAllocator : public core::Allocator {
 public:
  [[nodiscard]] int allocate(const model::SpeedupModel& m,
                             int P) const override;
  [[nodiscard]] std::string name() const override { return "sequential"; }
};

/// A fixed allocation k, clamped to [1, min(k, P, p_max)].
class FixedAllocator : public core::Allocator {
 public:
  explicit FixedAllocator(int k);
  [[nodiscard]] int allocate(const model::SpeedupModel& m,
                             int P) const override;
  [[nodiscard]] std::string name() const override;

 private:
  int k_;
};

/// A fixed fraction of the machine: p = clamp(round(f*P), 1, p_max).
class FractionAllocator : public core::Allocator {
 public:
  /// Throws unless 0 < fraction <= 1.
  explicit FractionAllocator(double fraction);
  [[nodiscard]] int allocate(const model::SpeedupModel& m,
                             int P) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double fraction_;
};

/// p = clamp(round(sqrt(P)), 1, p_max): the folkloric square-root rule.
class SqrtAllocator : public core::Allocator {
 public:
  [[nodiscard]] int allocate(const model::SpeedupModel& m,
                             int P) const override;
  [[nodiscard]] std::string name() const override { return "sqrt-p"; }
};

/// Algorithm 2 with Step 2 removed: the LPA area/time optimization is
/// kept but the allocation is never capped at ceil(mu P). Isolates the
/// contribution of the cap (which is what guarantees Lemma 4's "any
/// waiting task fits" argument).
class UncappedLpaAllocator : public core::Allocator {
 public:
  /// Throws unless 0 < mu <= (3 - sqrt(5))/2 (mu still sets delta).
  explicit UncappedLpaAllocator(double mu);
  [[nodiscard]] int allocate(const model::SpeedupModel& m,
                             int P) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double mu() const noexcept { return lpa_.mu(); }

 private:
  core::LpaAllocator lpa_;
};

/// min(p_max, ceil(mu P)): Algorithm 2 with Step 1 replaced by the greedy
/// min-time choice — i.e. the Feldmann et al. roofline strategy applied
/// verbatim to other models. Isolates the value of the LPA step.
class CappedMinTimeAllocator : public core::Allocator {
 public:
  /// Throws unless 0 < mu <= (3 - sqrt(5))/2.
  explicit CappedMinTimeAllocator(double mu);
  [[nodiscard]] int allocate(const model::SpeedupModel& m,
                             int P) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double mu() const noexcept { return mu_; }

 private:
  double mu_;
};

}  // namespace moldsched::sched
