#include "moldsched/sched/malleable_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/graph/algorithms.hpp"

namespace moldsched::sched {

MalleableResult schedule_malleable_fluid(const graph::TaskGraph& g, int P) {
  if (P < 1)
    throw std::invalid_argument("schedule_malleable_fluid: P must be >= 1");
  g.validate();
  const int n = g.num_tasks();

  // Static priorities: minimum-time bottom levels.
  const auto priority = graph::bottom_levels(g, analysis::min_times(g, P));

  std::vector<double> remaining(static_cast<std::size_t>(n), 1.0);
  std::vector<int> pending(static_cast<std::size_t>(n));
  std::vector<bool> done(static_cast<std::size_t>(n), false);
  for (graph::TaskId v = 0; v < n; ++v)
    pending[static_cast<std::size_t>(v)] = g.in_degree(v);

  MalleableResult result;
  double now = 0.0;
  int completed = 0;

  while (completed < n) {
    // Ready tasks by descending priority (stable by id).
    std::vector<graph::TaskId> ready;
    for (graph::TaskId v = 0; v < n; ++v)
      if (!done[static_cast<std::size_t>(v)] &&
          pending[static_cast<std::size_t>(v)] == 0)
        ready.push_back(v);
    if (ready.empty())
      throw std::logic_error("schedule_malleable_fluid: no ready task");
    std::stable_sort(ready.begin(), ready.end(),
                     [&](graph::TaskId a, graph::TaskId b) {
                       return priority[static_cast<std::size_t>(a)] >
                              priority[static_cast<std::size_t>(b)];
                     });

    // Greedy allocation: p_max for the front of the queue, then squeeze
    // smaller allocations so no processor idles while tasks wait.
    std::vector<int> alloc(static_cast<std::size_t>(n), 0);
    int free = P;
    for (const graph::TaskId v : ready) {
      if (free == 0) break;
      const int want = g.model_of(v).max_useful_procs(P);
      const int give = std::min(want, free);
      alloc[static_cast<std::size_t>(v)] = give;
      free -= give;
    }

    // Advance to the earliest fluid completion among running tasks.
    double dt = std::numeric_limits<double>::infinity();
    for (const graph::TaskId v : ready) {
      const int a = alloc[static_cast<std::size_t>(v)];
      if (a == 0) continue;
      dt = std::min(dt, remaining[static_cast<std::size_t>(v)] *
                            g.model_of(v).time(a));
    }
    if (!std::isfinite(dt))
      throw std::logic_error("schedule_malleable_fluid: stalled");

    for (const graph::TaskId v : ready) {
      const int a = alloc[static_cast<std::size_t>(v)];
      if (a == 0) continue;
      result.busy_area += static_cast<double>(a) * dt;
      auto& r = remaining[static_cast<std::size_t>(v)];
      r -= dt / g.model_of(v).time(a);
      if (r <= 1e-12) {
        r = 0.0;
        done[static_cast<std::size_t>(v)] = true;
        ++completed;
        for (const graph::TaskId s : g.successors(v))
          --pending[static_cast<std::size_t>(s)];
      }
    }
    now += dt;
    ++result.events;
  }
  result.makespan = now;
  return result;
}

}  // namespace moldsched::sched
