// Exact optimal offline scheduling of small moldable task graphs by
// branch and bound — a ground-truth T_opt oracle for tests and
// small-instance studies.
//
// The search exploits a classical normalization: for makespan
// minimization there is always an optimal schedule in which every task
// starts at time 0 or at the completion time of some task (any other
// start can be shifted left without violating resources or precedence).
// Branching therefore happens only at event times, over the choice of
// (ready task, allocation) to start next — or the decision to leave the
// remaining ready tasks waiting until the next completion.
//
// Complexity is exponential; the constructor enforces conservative
// instance-size caps. Pruning: the Lemma 2 bound of the remaining work
// (remaining minimum area over P, and the remaining critical path from
// every unfinished task) evaluated at the current time.
#pragma once

#include <vector>

#include "moldsched/graph/task_graph.hpp"

namespace moldsched::sched {

struct ExactResult {
  double makespan = 0.0;
  std::vector<int> allocation;     ///< optimal allocation per task
  std::vector<double> start_time;  ///< optimal start per task
  long nodes_explored = 0;         ///< search-tree statistics
};

class ExactScheduler {
 public:
  /// Throws std::invalid_argument if the instance exceeds the caps
  /// (default: 8 tasks, P <= 8) — beyond them the search is impractical —
  /// or if the graph is empty/cyclic.
  ExactScheduler(const graph::TaskGraph& g, int P, int max_tasks = 8,
                 int max_procs = 8);

  /// Exhaustively computes the optimal makespan. Deterministic.
  [[nodiscard]] ExactResult run() const;

 private:
  const graph::TaskGraph& graph_;
  int P_;
};

}  // namespace moldsched::sched
