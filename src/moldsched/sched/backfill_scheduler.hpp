// EASY backfilling, the de-facto HPC queueing policy, adapted to moldable
// DAG scheduling: the head of the FIFO queue gets a *reservation* at the
// earliest instant enough processors will be free (computable because
// running tasks' finish times are known), and later queue entries may
// start out of order only if they cannot delay that reservation.
//
// Plain list scheduling (Algorithm 1) lets small tasks overtake the head
// unconditionally, which can starve wide tasks behind a stream of narrow
// ones; backfilling bounds that effect. Comparing the two quantifies
// what the paper's unconditioned scan costs/gains on DAG workloads.
#pragma once

#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/task_graph.hpp"

namespace moldsched::sched {

/// Runs the backfilling variant. Returns the same result shape as the
/// Algorithm 1 engine. Deterministic; throws under the same conditions.
[[nodiscard]] core::ScheduleResult schedule_online_backfill(
    const graph::TaskGraph& g, int P, const core::Allocator& alloc);

}  // namespace moldsched::sched
