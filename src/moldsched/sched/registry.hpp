// Named scheduler configurations for the experiment harnesses: the
// paper's algorithm plus the baseline suite, each an (allocator, queue
// policy) pair runnable through the same Algorithm 1 engine.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/core/queue_policy.hpp"
#include "moldsched/graph/task_graph.hpp"

namespace moldsched::sched {

struct SchedulerSpec {
  std::string name;
  std::shared_ptr<const core::Allocator> allocator;
  core::QueuePolicy policy = core::QueuePolicy::kFifo;
  /// Optional engine override. When set, run() dispatches here instead of
  /// the Algorithm 1 engine — used to put level-by-level or
  /// contiguous-placement variants into the same comparison tables.
  std::function<core::ScheduleResult(const graph::TaskGraph&, int)> runner;

  /// Executes this scheduler on (g, P). Throws std::invalid_argument if
  /// neither a runner nor an allocator is configured.
  [[nodiscard]] core::ScheduleResult run(const graph::TaskGraph& g,
                                         int P) const;
};

/// The paper's algorithm at parameter mu (FIFO queue, as in Algorithm 1).
[[nodiscard]] SchedulerSpec lpa_spec(double mu);

/// The per-model-aware refinement (sched::ImprovedLpaAllocator): each
/// task is allocated with its own model kind's jointly optimized
/// (mu*, threshold*) pair instead of one global mu. Parameter-free; like
/// lpa_spec it memoizes decisions in the process-wide cache.
[[nodiscard]] SchedulerSpec improved_lpa_spec();

/// The full comparison suite: LPA(mu) plus improved-lpa, min-time,
/// sequential, capped-min-time(mu), uncapped-lpa(mu), sqrt-p and
/// fraction(1/4) baselines.
[[nodiscard]] std::vector<SchedulerSpec> standard_suite(double mu);

/// Engine variants of LPA(mu): level-by-level barriers and contiguous
/// first-fit placement. Append to standard_suite for engine ablations.
[[nodiscard]] std::vector<SchedulerSpec> engine_variants(double mu);

/// standard_suite(mu) followed by engine_variants(mu) and the
/// opt:: offline reference columns (wl-canonical, wl-compress) — every
/// named scheduler configuration the experiment engine can enumerate.
[[nodiscard]] std::vector<SchedulerSpec> full_suite(double mu);

/// Names of full_suite's specs, in suite order.
[[nodiscard]] std::vector<std::string> full_suite_names();

/// The full_suite spec with the given name, rebuilt at parameter mu.
/// Also resolves "exact-topt" (the opt:: branch-and-bound oracle, which
/// is deliberately *not* part of full_suite: it only certifies instances
/// up to ~20 tasks and throws beyond). Throws std::invalid_argument
/// listing the known names otherwise.
[[nodiscard]] SchedulerSpec spec_by_name(const std::string& name, double mu);

}  // namespace moldsched::sched
