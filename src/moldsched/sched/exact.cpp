#include "moldsched/sched/exact.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/graph/algorithms.hpp"
#include "moldsched/sched/offline.hpp"

namespace moldsched::sched {

ExactScheduler::ExactScheduler(const graph::TaskGraph& g, int P,
                               int max_tasks, int max_procs)
    : graph_(g), P_(P) {
  g.validate();
  if (P < 1) throw std::invalid_argument("ExactScheduler: P must be >= 1");
  if (g.num_tasks() > max_tasks)
    throw std::invalid_argument("ExactScheduler: instance has " +
                                std::to_string(g.num_tasks()) +
                                " tasks, above the cap of " +
                                std::to_string(max_tasks));
  if (P > max_procs)
    throw std::invalid_argument("ExactScheduler: P = " + std::to_string(P) +
                                " above the cap of " +
                                std::to_string(max_procs));
}

namespace {

struct Running {
  graph::TaskId task;
  double finish;
  int procs;
};

class Search {
 public:
  Search(const graph::TaskGraph& g, int P) : g_(g), P_(P), free_(P) {
    const int n = g.num_tasks();
    pending_.resize(static_cast<std::size_t>(n));
    started_.assign(static_cast<std::size_t>(n), false);
    start_time_.assign(static_cast<std::size_t>(n), 0.0);
    alloc_.assign(static_cast<std::size_t>(n), 0);
    for (graph::TaskId v = 0; v < n; ++v)
      pending_[static_cast<std::size_t>(v)] = g.in_degree(v);

    // Candidate allocations per task: p is useful iff it is strictly
    // faster than every smaller allocation (anything else is dominated).
    candidates_.resize(static_cast<std::size_t>(n));
    min_area_.assign(static_cast<std::size_t>(n), 0.0);
    for (graph::TaskId v = 0; v < n; ++v) {
      const auto& m = g.model_of(v);
      double best = std::numeric_limits<double>::infinity();
      for (int p = 1; p <= P; ++p) {
        const double t = m.time(p);
        if (t < best - 1e-15) {
          best = t;
          candidates_[static_cast<std::size_t>(v)].push_back(p);
        }
      }
      min_area_[static_cast<std::size_t>(v)] = m.min_area(P);
    }

    // Static tails: minimum remaining critical path from each task.
    tail_min_ = graph::bottom_levels(g, analysis::min_times(g, P));

    // Incumbent from the offline heuristic (always feasible).
    const auto warm = OfflineTradeoffScheduler(g, P).run();
    best_makespan_ = warm.makespan;
    best_alloc_ = warm.allocation;
    best_start_.assign(static_cast<std::size_t>(n), 0.0);
    for (const auto& r : warm.trace.records())
      best_start_[static_cast<std::size_t>(r.task)] = r.start;
  }

  ExactResult run() {
    explore(0.0, 0, 0.0);
    ExactResult result;
    result.makespan = best_makespan_;
    result.allocation = best_alloc_;
    result.start_time = best_start_;
    result.nodes_explored = nodes_;
    return result;
  }

 private:
  [[nodiscard]] double lower_bound(double now, double max_finish) const {
    double bound = max_finish;
    double remaining_area = 0.0;
    for (graph::TaskId v = 0; v < g_.num_tasks(); ++v) {
      const auto idx = static_cast<std::size_t>(v);
      if (!started_[idx]) {
        // Unstarted: cannot complete before now + its minimal tail.
        bound = std::max(bound, now + tail_min_[idx]);
        remaining_area += min_area_[idx];
      }
    }
    for (const auto& r : running_) {
      remaining_area +=
          static_cast<double>(r.procs) * std::max(0.0, r.finish - now);
      // Running: its successors' tails start at its finish.
      for (const graph::TaskId s : g_.successors(r.task)) {
        const auto sidx = static_cast<std::size_t>(s);
        if (!started_[sidx])
          bound = std::max(bound, r.finish + tail_min_[sidx]);
      }
    }
    bound = std::max(bound, now + remaining_area / static_cast<double>(P_));
    return bound;
  }

  void explore(double now, int min_task_id, double max_finish) {
    ++nodes_;
    if (lower_bound(now, max_finish) >= best_makespan_ - 1e-12) return;

    // Option A: start a ready task (id >= min_task_id, canonical order
    // within one time point) with each candidate allocation that fits.
    bool any_ready_startable = false;
    for (graph::TaskId v = min_task_id; v < g_.num_tasks(); ++v) {
      const auto idx = static_cast<std::size_t>(v);
      if (started_[idx] || pending_[idx] != 0) continue;
      for (const int p : candidates_[idx]) {
        if (p > free_) break;  // candidates are increasing in p
        any_ready_startable = true;
        started_[idx] = true;
        start_time_[idx] = now;
        alloc_[idx] = p;
        free_ -= p;
        const double finish = now + g_.model_of(v).time(p);
        running_.push_back({v, finish, p});
        explore(now, v, std::max(max_finish, finish));
        running_.pop_back();
        free_ += p;
        started_[idx] = false;
      }
    }
    (void)any_ready_startable;

    // Option B: advance to the next completion (waiting is only
    // meaningful if something is running).
    if (running_.empty()) {
      // Nothing running: either we are done, or we *must* have started
      // something above (a ready task always fits on an empty machine).
      bool all_done = true;
      for (graph::TaskId v = 0; v < g_.num_tasks(); ++v)
        if (!started_[static_cast<std::size_t>(v)]) all_done = false;
      if (all_done && max_finish < best_makespan_ - 1e-12) {
        best_makespan_ = max_finish;
        best_alloc_ = alloc_;
        best_start_ = start_time_;
      }
      return;
    }

    double next = std::numeric_limits<double>::infinity();
    for (const auto& r : running_) next = std::min(next, r.finish);

    // Complete every task finishing at `next`.
    std::vector<Running> finished;
    for (std::size_t i = 0; i < running_.size();) {
      if (running_[i].finish <= next + 1e-15) {
        finished.push_back(running_[i]);
        running_[i] = running_.back();
        running_.pop_back();
      } else {
        ++i;
      }
    }
    for (const auto& r : finished) {
      free_ += r.procs;
      for (const graph::TaskId s : g_.successors(r.task))
        --pending_[static_cast<std::size_t>(s)];
    }

    explore(next, 0, max_finish);

    for (const auto& r : finished) {
      free_ -= r.procs;
      for (const graph::TaskId s : g_.successors(r.task))
        ++pending_[static_cast<std::size_t>(s)];
      running_.push_back(r);
    }
  }

  const graph::TaskGraph& g_;
  int P_;
  int free_ = 0;

  std::vector<int> pending_;
  std::vector<bool> started_;
  std::vector<double> start_time_;
  std::vector<int> alloc_;
  std::vector<std::vector<int>> candidates_;
  std::vector<double> min_area_;
  std::vector<double> tail_min_;
  std::vector<Running> running_;

  double best_makespan_ = std::numeric_limits<double>::infinity();
  std::vector<int> best_alloc_;
  std::vector<double> best_start_;
  long nodes_ = 0;
};

}  // namespace

ExactResult ExactScheduler::run() const {
  Search search(graph_, P_);
  return search.run();
}

}  // namespace moldsched::sched
