#include "moldsched/sched/chain_scheduler.hpp"

#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>
#include <string>

#include "moldsched/sim/event_queue.hpp"

namespace moldsched::sched {

namespace {

constexpr int kMaxSimK = 22;  // 2^22 chains / ~8M tasks: the practical cap

}  // namespace

EqualAllocationChainScheduler::EqualAllocationChainScheduler(
    const graph::ChainsInstance& inst)
    : inst_(inst) {
  if (inst.K < 1 || inst.K > kMaxSimK)
    throw std::invalid_argument(
        "EqualAllocationChainScheduler: K must be in [1, " +
        std::to_string(kMaxSimK) + "] for simulation");
}

ChainsSimResult EqualAllocationChainScheduler::run() const {
  const std::int64_t n = inst_.num_chains;
  const std::int64_t P = inst_.P;
  const auto& model = *inst_.task_model;

  std::vector<std::int64_t> alloc(static_cast<std::size_t>(n), 0);
  std::vector<int> completed(static_cast<std::size_t>(n), 0);
  // quota[i-1]: how many chains the adversary still terminates at level i.
  std::vector<std::int64_t> quota = inst_.chains_per_group;

  ChainsSimResult result;
  result.milestones.assign(static_cast<std::size_t>(inst_.K),
                           std::numeric_limits<double>::quiet_NaN());
  result.offline_makespan = inst_.offline_makespan;

  sim::EventQueue events;
  std::deque<std::int64_t> waiting;
  for (std::int64_t c = 0; c < n; ++c) waiting.push_back(c);

  std::int64_t alive = n;
  std::int64_t free = P;

  auto serve = [&](double now) {
    while (!waiting.empty() && free > 0) {
      const std::int64_t c = waiting.front();
      waiting.pop_front();
      const auto m = static_cast<std::int64_t>(waiting.size()) + 1;
      std::int64_t share = std::max<std::int64_t>(1, P / alive);
      if (free > share * m) ++share;  // top-up so the machine stays full
      share = std::min(share, free);
      alloc[static_cast<std::size_t>(c)] = share;
      free -= share;
      events.schedule(now + model.time(static_cast<int>(share)), c);
    }
  };

  serve(0.0);
  double makespan = 0.0;
  while (!events.empty()) {
    const auto batch = events.pop_simultaneous();
    const double now = events.now();
    makespan = now;
    for (const auto& ev : batch) {
      const std::int64_t c = ev.payload;
      free += alloc[static_cast<std::size_t>(c)];
      alloc[static_cast<std::size_t>(c)] = 0;
      const int lvl = ++completed[static_cast<std::size_t>(c)];
      ++result.tasks_executed;
      auto& q = quota[static_cast<std::size_t>(lvl - 1)];
      if (q > 0) {
        // Adversary: this chain "was" a group-lvl chain — it ends here.
        --q;
        --alive;
      } else {
        // First surviving completion at this level defines t_lvl.
        auto& milestone = result.milestones[static_cast<std::size_t>(lvl - 1)];
        if (std::isnan(milestone)) milestone = now;
        waiting.push_back(c);
      }
    }
    serve(now);
  }

  if (alive != 0)
    throw std::logic_error(
        "EqualAllocationChainScheduler: chains left alive at the end");
  if (result.tasks_executed != inst_.total_tasks)
    throw std::logic_error(
        "EqualAllocationChainScheduler: executed task count mismatch");

  result.makespan = makespan;
  // t_K: no chain survives level K; the definition sets it to the makespan.
  result.milestones[static_cast<std::size_t>(inst_.K - 1)] = makespan;
  result.ratio = result.makespan / result.offline_makespan;
  return result;
}

double verify_offline_chain_schedule(const graph::ChainsInstance& inst) {
  if (inst.K < 1 || inst.K > 31)
    throw std::invalid_argument(
        "verify_offline_chain_schedule: K must be in [1, 31]");
  const auto& model = *inst.task_model;
  std::int64_t procs_used = 0;
  for (int i = 1; i <= inst.K; ++i) {
    const std::int64_t chains =
        inst.chains_per_group[static_cast<std::size_t>(i - 1)];
    const std::int64_t per_chain = std::int64_t{1} << (i - 1);
    procs_used += chains * per_chain;
    const double task_time = model.time(static_cast<int>(per_chain));
    const double chain_finish = static_cast<double>(i) * task_time;
    if (std::abs(chain_finish - 1.0) > 1e-9)
      throw std::logic_error(
          "verify_offline_chain_schedule: group " + std::to_string(i) +
          " finishes at " + std::to_string(chain_finish) + " != 1");
  }
  if (procs_used != inst.P)
    throw std::logic_error(
        "verify_offline_chain_schedule: schedule uses " +
        std::to_string(procs_used) + " processors, platform has " +
        std::to_string(inst.P));
  return 1.0;
}

}  // namespace moldsched::sched
