#include "moldsched/sched/improved_lpa.hpp"

#include <cmath>
#include <stdexcept>

#include "moldsched/analysis/improved.hpp"

namespace moldsched::sched {

namespace {

// Same boundary slack as LpaAllocator: adversarial instances sit exactly
// on the time-ratio constraint, and rounding noise must not flip the
// Step 1 decision there.
constexpr double kBetaTol = 1e-9;

std::size_t kind_slot(model::ModelKind kind) {
  switch (kind) {
    case model::ModelKind::kRoofline: return 0;
    case model::ModelKind::kCommunication: return 1;
    case model::ModelKind::kAmdahl: return 2;
    case model::ModelKind::kGeneral: return 3;
    case model::ModelKind::kArbitrary:
      return 3;  // borrow the general-model parameters
  }
  throw std::invalid_argument("ImprovedLpaAllocator: unknown model kind");
}

}  // namespace

ImprovedLpaAllocator::ImprovedLpaAllocator() {
  const model::ModelKind kinds[] = {
      model::ModelKind::kRoofline, model::ModelKind::kCommunication,
      model::ModelKind::kAmdahl, model::ModelKind::kGeneral};
  for (const auto kind : kinds) {
    const auto r = analysis::improved_optimal_ratio(kind);
    params_[kind_slot(kind)] = {r.mu_star, r.threshold};
  }
}

ImprovedLpaAllocator::KindParams ImprovedLpaAllocator::params_for(
    model::ModelKind kind) const {
  return params_[kind_slot(kind)];
}

int ImprovedLpaAllocator::cap(model::ModelKind kind, int P) const {
  if (P < 1)
    throw std::invalid_argument("ImprovedLpaAllocator::cap: P must be >= 1");
  return static_cast<int>(
      std::ceil(params_for(kind).mu * static_cast<double>(P) - 1e-12));
}

core::LpaDecision ImprovedLpaAllocator::decide(const model::SpeedupModel& m,
                                               int P) const {
  if (P < 1)
    throw std::invalid_argument(
        "ImprovedLpaAllocator::decide: P must be >= 1");
  const KindParams params = params_for(m.kind());
  core::LpaDecision d;
  d.p_max = m.max_useful_procs(P);
  d.t_min = m.time(d.p_max);
  d.a_min = m.min_area(P);
  const double limit_time = params.threshold * d.t_min * (1.0 + kBetaTol);

  if (m.kind() == model::ModelKind::kArbitrary) {
    // No monotonicity guarantees: exhaustive Step 1 scan over [1, p_max].
    int best = d.p_max;  // t(p_max) = t_min <= limit_time, always feasible
    double best_area = m.area(d.p_max);
    for (int p = 1; p <= d.p_max; ++p) {
      if (m.time(p) <= limit_time && m.area(p) < best_area) {
        best = p;
        best_area = m.area(p);
      }
    }
    d.initial = best;
  } else {
    // Lemma 1 monotonicity: the smallest p with t(p) <= threshold t_min
    // minimizes the area ratio; binary search in O(log P).
    int lo = 1;
    int hi = d.p_max;
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (m.time(mid) <= limit_time)
        hi = mid;
      else
        lo = mid + 1;
    }
    d.initial = lo;
  }

  d.alpha = m.area(d.initial) / d.a_min;
  d.beta = m.time(d.initial) / d.t_min;
  const int limit = cap(m.kind(), P);
  d.final_alloc = d.initial > limit ? limit : d.initial;
  return d;
}

int ImprovedLpaAllocator::allocate(const model::SpeedupModel& m,
                                   int P) const {
  return decide(m, P).final_alloc;
}

std::string ImprovedLpaAllocator::name() const { return "improved-lpa"; }

}  // namespace moldsched::sched
