#include "moldsched/sched/offline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/graph/algorithms.hpp"
#include "moldsched/sim/event_queue.hpp"
#include "moldsched/sim/platform.hpp"

namespace moldsched::sched {

sim::Trace list_schedule_with_allocations(
    const graph::TaskGraph& g, int P, const std::vector<int>& allocations,
    const std::vector<double>& priorities) {
  const int n = g.num_tasks();
  if (P < 1)
    throw std::invalid_argument("list_schedule_with_allocations: P < 1");
  if (static_cast<int>(allocations.size()) != n ||
      static_cast<int>(priorities.size()) != n)
    throw std::invalid_argument(
        "list_schedule_with_allocations: vector sizes must equal num_tasks");
  for (const int a : allocations)
    if (a < 1 || a > P)
      throw std::invalid_argument(
          "list_schedule_with_allocations: allocation outside [1, P]");
  g.validate();

  sim::Trace trace;
  sim::EventQueue events;
  sim::Platform platform(P);
  std::vector<int> pending(static_cast<std::size_t>(n));
  for (graph::TaskId v = 0; v < n; ++v)
    pending[static_cast<std::size_t>(v)] = g.in_degree(v);

  // Ready queue kept sorted by (priority desc, id asc).
  std::vector<graph::TaskId> ready;
  auto insert_ready = [&](graph::TaskId v) {
    auto less = [&](graph::TaskId a, graph::TaskId b) {
      const double pa = priorities[static_cast<std::size_t>(a)];
      const double pb = priorities[static_cast<std::size_t>(b)];
      if (pa != pb) return pa > pb;
      return a < b;
    };
    ready.insert(std::lower_bound(ready.begin(), ready.end(), v, less), v);
  };
  auto try_start_all = [&](double now) {
    auto it = ready.begin();
    while (it != ready.end()) {
      const int alloc = allocations[static_cast<std::size_t>(*it)];
      if (alloc <= platform.available()) {
        platform.acquire(alloc);
        trace.record_start(*it, now, alloc);
        events.schedule(now + g.model_of(*it).time(alloc), *it);
        it = ready.erase(it);
      } else {
        ++it;
      }
    }
  };

  for (graph::TaskId v = 0; v < n; ++v)
    if (pending[static_cast<std::size_t>(v)] == 0) insert_ready(v);
  try_start_all(0.0);

  while (!events.empty()) {
    const auto batch = events.pop_simultaneous();
    const double now = events.now();
    for (const auto& ev : batch) {
      const auto task = static_cast<graph::TaskId>(ev.payload);
      trace.record_end(task, now);
      platform.release(allocations[static_cast<std::size_t>(task)]);
      for (const graph::TaskId s : g.successors(task))
        if (--pending[static_cast<std::size_t>(s)] == 0) insert_ready(s);
    }
    try_start_all(now);
  }

  if (!ready.empty())
    throw std::logic_error("list_schedule_with_allocations: deadlock");
  return trace;
}

std::vector<int> area_minimal_allotment(const graph::TaskGraph& g, int P,
                                        double target) {
  if (P < 1) throw std::invalid_argument("area_minimal_allotment: P < 1");
  const int n = g.num_tasks();
  std::vector<int> alloc(static_cast<std::size_t>(n));
  for (graph::TaskId v = 0; v < n; ++v) {
    const auto& m = g.model_of(v);
    const int p_max = m.max_useful_procs(P);
    int chosen = p_max;
    if (m.time(p_max) <= target) {
      if (m.kind() == model::ModelKind::kArbitrary) {
        // No monotonicity: scan for the smallest-area feasible point;
        // break area ties toward the faster allocation.
        double best_area = m.area(p_max);
        double best_time = m.time(p_max);
        chosen = p_max;
        for (int p = 1; p <= p_max; ++p) {
          const double area = m.area(p);
          const double time = m.time(p);
          if (time > target) continue;
          if (area < best_area * (1.0 - 1e-12) ||
              (area <= best_area * (1.0 + 1e-12) && time < best_time)) {
            best_area = area;
            best_time = time;
            chosen = p;
          }
        }
      } else {
        int lo = 1;
        int hi = p_max;
        while (lo < hi) {
          const int mid = lo + (hi - lo) / 2;
          if (m.time(mid) <= target)
            hi = mid;
          else
            lo = mid + 1;
        }
        chosen = lo;
        // Parallelism that costs no area is free speed: extend while
        // the area stays flat (e.g. the roofline plateau).
        while (chosen < p_max &&
               m.area(chosen + 1) <= m.area(chosen) * (1.0 + 1e-12))
          ++chosen;
      }
    }
    alloc[static_cast<std::size_t>(v)] = chosen;
  }
  return alloc;
}

OfflineTradeoffScheduler::OfflineTradeoffScheduler(const graph::TaskGraph& g,
                                                   int P, int sweep_points)
    : graph_(g), P_(P), sweep_points_(sweep_points) {
  if (P < 1)
    throw std::invalid_argument("OfflineTradeoffScheduler: P must be >= 1");
  if (sweep_points < 2)
    throw std::invalid_argument(
        "OfflineTradeoffScheduler: sweep_points must be >= 2");
  g.validate();
}

OfflineResult OfflineTradeoffScheduler::run() const {
  const int n = graph_.num_tasks();

  // The sweep variable is a *per-task* deadline: every task is given the
  // cheapest (area-minimal) allocation that meets it. Meaningful deadlines
  // range from the fastest any task can run to the slowest sequential
  // task; sweeping that range geometrically visits every allocation
  // regime from "all-parallel" to "all-sequential".
  double lower = std::numeric_limits<double>::infinity();
  double upper = 0.0;
  for (graph::TaskId v = 0; v < n; ++v) {
    const auto& m = graph_.model_of(v);
    lower = std::min(lower, m.min_time(P_));
    upper = std::max(upper, m.time(1));
  }
  upper = std::max(upper, lower * (1.0 + 1e-9));

  OfflineResult best;
  best.makespan = std::numeric_limits<double>::infinity();
  best.sweep_points = sweep_points_;

  const double log_lo = std::log(lower);
  const double log_hi = std::log(upper);
  for (int i = 0; i < sweep_points_; ++i) {
    const double frac = static_cast<double>(i) /
                        static_cast<double>(sweep_points_ - 1);
    const double target = std::exp(log_lo + frac * (log_hi - log_lo));

    // Area-minimal allocation meeting the per-task deadline `target`.
    auto alloc = area_minimal_allotment(graph_, P_, target);
    std::vector<double> times(static_cast<std::size_t>(n));
    for (graph::TaskId v = 0; v < n; ++v)
      times[static_cast<std::size_t>(v)] =
          graph_.model_of(v).time(alloc[static_cast<std::size_t>(v)]);

    const auto priorities = graph::bottom_levels(graph_, times);
    auto trace = list_schedule_with_allocations(graph_, P_, alloc, priorities);
    const double makespan = trace.makespan();
    if (makespan < best.makespan) {
      best.makespan = makespan;
      best.trace = std::move(trace);
      best.allocation = std::move(alloc);
      best.winning_target = target;
    }
  }
  return best;
}

}  // namespace moldsched::sched
