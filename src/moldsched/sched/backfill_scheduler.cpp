#include "moldsched/sched/backfill_scheduler.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "moldsched/sim/event_queue.hpp"
#include "moldsched/sim/platform.hpp"

namespace moldsched::sched {

namespace {

struct RunningTask {
  graph::TaskId task;
  double finish;
  int procs;
};

}  // namespace

core::ScheduleResult schedule_online_backfill(const graph::TaskGraph& g,
                                              int P,
                                              const core::Allocator& alloc) {
  if (P < 1)
    throw std::invalid_argument("schedule_online_backfill: P must be >= 1");
  g.validate();
  const int n = g.num_tasks();

  core::ScheduleResult result;
  result.allocation.assign(static_cast<std::size_t>(n), 0);
  result.ready_time.assign(static_cast<std::size_t>(n), -1.0);

  sim::EventQueue events;
  sim::Platform platform(P);
  std::vector<int> pending(static_cast<std::size_t>(n));
  for (graph::TaskId v = 0; v < n; ++v)
    pending[static_cast<std::size_t>(v)] = g.in_degree(v);

  std::deque<graph::TaskId> queue;  // FIFO reveal order
  std::vector<RunningTask> running;

  auto reveal = [&](graph::TaskId task, double now) {
    const int a = alloc.allocate(g.model_of(task), P);
    if (a < 1 || a > P)
      throw std::logic_error(
          "schedule_online_backfill: allocation outside [1, P] for " +
          g.name(task));
    result.allocation[static_cast<std::size_t>(task)] = a;
    result.ready_time[static_cast<std::size_t>(task)] = now;
    queue.push_back(task);
  };

  auto start = [&](graph::TaskId task, double now) {
    const int a = result.allocation[static_cast<std::size_t>(task)];
    platform.acquire(a);
    result.trace.record_start(task, now, a);
    const double finish = now + g.model_of(task).time(a);
    running.push_back({task, finish, a});
    events.schedule(finish, task);
  };

  auto schedule_round = [&](double now) {
    // 1. Start the queue head while it fits.
    while (!queue.empty()) {
      const graph::TaskId head = queue.front();
      if (result.allocation[static_cast<std::size_t>(head)] >
          platform.available())
        break;
      start(head, now);
      queue.pop_front();
    }
    if (queue.empty()) return;

    // 2. EASY reservation for the (blocked) head: the earliest running
    // completion by which enough processors are free, plus the slack
    // processors at that instant beyond the head's need.
    const int head_alloc =
        result.allocation[static_cast<std::size_t>(queue.front())];
    auto by_finish = running;
    std::sort(by_finish.begin(), by_finish.end(),
              [](const RunningTask& a, const RunningTask& b) {
                return a.finish < b.finish;
              });
    int free_then = platform.available();
    double reservation = std::numeric_limits<double>::infinity();
    for (const auto& r : by_finish) {
      free_then += r.procs;
      if (free_then >= head_alloc) {
        reservation = r.finish;
        break;
      }
    }
    const int extra = free_then - head_alloc;  // slack at the reservation

    // 3. Backfill: later entries may start now iff they fit and cannot
    // delay the reservation — they either finish by it or fit into the
    // reservation-time slack.
    for (auto it = std::next(queue.begin()); it != queue.end();) {
      const graph::TaskId task = *it;
      const int a = result.allocation[static_cast<std::size_t>(task)];
      if (a <= platform.available()) {
        const double finish = now + g.model_of(task).time(a);
        if (finish <= reservation + 1e-12 || a <= extra) {
          start(task, now);
          it = queue.erase(it);
          continue;
        }
      }
      ++it;
    }
  };

  for (graph::TaskId v = 0; v < n; ++v)
    if (pending[static_cast<std::size_t>(v)] == 0) reveal(v, 0.0);
  schedule_round(0.0);

  while (!events.empty()) {
    const auto batch = events.pop_simultaneous();
    const double now = events.now();
    result.num_events += batch.size();
    std::vector<graph::TaskId> newly_ready;
    for (const auto& ev : batch) {
      const auto task = static_cast<graph::TaskId>(ev.payload);
      result.trace.record_end(task, now);
      platform.release(result.allocation[static_cast<std::size_t>(task)]);
      running.erase(std::find_if(running.begin(), running.end(),
                                 [&](const RunningTask& r) {
                                   return r.task == task;
                                 }));
      for (const graph::TaskId s : g.successors(task))
        if (--pending[static_cast<std::size_t>(s)] == 0)
          newly_ready.push_back(s);
    }
    std::sort(newly_ready.begin(), newly_ready.end());
    for (const graph::TaskId v : newly_ready) reveal(v, now);
    schedule_round(now);
  }

  if (!queue.empty())
    throw std::logic_error("schedule_online_backfill: deadlock");
  result.makespan = result.trace.makespan();
  return result;
}

}  // namespace moldsched::sched
