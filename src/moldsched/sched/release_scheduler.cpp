#include "moldsched/sched/release_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "moldsched/sim/event_queue.hpp"
#include "moldsched/sim/platform.hpp"

namespace moldsched::sched {

OnlineReleaseScheduler::OnlineReleaseScheduler(std::vector<ReleasedTask> tasks,
                                               int P,
                                               const core::Allocator& alloc,
                                               core::QueuePolicy policy)
    : tasks_(std::move(tasks)), P_(P), allocator_(alloc), policy_(policy) {
  if (tasks_.empty())
    throw std::invalid_argument("OnlineReleaseScheduler: no tasks");
  if (P < 1)
    throw std::invalid_argument("OnlineReleaseScheduler: P must be >= 1");
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    auto& t = tasks_[i];
    if (!t.model)
      throw std::invalid_argument("OnlineReleaseScheduler: null model");
    if (!(t.release >= 0.0) || !std::isfinite(t.release))
      throw std::invalid_argument(
          "OnlineReleaseScheduler: release times must be finite and >= 0");
    if (t.name.empty()) t.name = "task" + std::to_string(i);
  }
}

namespace {

struct QueueEntry {
  int task;
  double key;
  std::uint64_t seq;
};

}  // namespace

ReleaseScheduleResult OnlineReleaseScheduler::run() const {
  const auto n = static_cast<int>(tasks_.size());
  ReleaseScheduleResult result;
  result.allocation.assign(static_cast<std::size_t>(n), 0);
  result.wait_time.assign(static_cast<std::size_t>(n), 0.0);

  sim::EventQueue events;
  sim::Platform platform(P_);
  // Payloads < n are completions; payload n + i is the release of task i.
  for (int i = 0; i < n; ++i)
    events.schedule(tasks_[static_cast<std::size_t>(i)].release, n + i);

  std::vector<QueueEntry> queue;
  std::uint64_t seq = 0;

  auto reveal = [&](int task) {
    const auto& model = *tasks_[static_cast<std::size_t>(task)].model;
    const int alloc = allocator_.allocate(model, P_);
    if (alloc < 1 || alloc > P_)
      throw std::logic_error(
          "OnlineReleaseScheduler: allocation outside [1, P]");
    result.allocation[static_cast<std::size_t>(task)] = alloc;
    const QueueEntry entry{task, priority_key(policy_, model, alloc, P_),
                           seq++};
    switch (policy_) {
      case core::QueuePolicy::kFifo:
        queue.push_back(entry);
        break;
      case core::QueuePolicy::kLifo:
        queue.insert(queue.begin(), entry);
        break;
      default: {
        auto it = std::find_if(
            queue.begin(), queue.end(),
            [&](const QueueEntry& e) { return e.key < entry.key; });
        queue.insert(it, entry);
        break;
      }
    }
  };

  auto try_start_all = [&](double now) {
    auto it = queue.begin();
    while (it != queue.end()) {
      const int task = it->task;
      const int alloc = result.allocation[static_cast<std::size_t>(task)];
      if (alloc <= platform.available()) {
        platform.acquire(alloc);
        result.trace.record_start(task, now, alloc);
        result.wait_time[static_cast<std::size_t>(task)] =
            now - tasks_[static_cast<std::size_t>(task)].release;
        events.schedule(
            now + tasks_[static_cast<std::size_t>(task)].model->time(alloc),
            task);
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
  };

  while (!events.empty()) {
    const auto batch = events.pop_simultaneous();
    const double now = events.now();
    std::vector<int> released;
    for (const auto& ev : batch) {
      if (ev.payload >= n) {
        released.push_back(static_cast<int>(ev.payload) - n);
      } else {
        const auto task = static_cast<int>(ev.payload);
        result.trace.record_end(task, now);
        platform.release(result.allocation[static_cast<std::size_t>(task)]);
      }
    }
    std::sort(released.begin(), released.end());
    for (const int task : released) reveal(task);
    try_start_all(now);
  }

  if (!queue.empty())
    throw std::logic_error("OnlineReleaseScheduler: deadlock");
  result.makespan = result.trace.makespan();
  return result;
}

double release_makespan_lower_bound(const std::vector<ReleasedTask>& tasks,
                                    int P) {
  if (tasks.empty())
    throw std::invalid_argument("release_makespan_lower_bound: no tasks");
  if (P < 1)
    throw std::invalid_argument("release_makespan_lower_bound: P < 1");

  // Sort tasks by release time; for each distinct release r, the work
  // released at or after r cannot finish before r + (its min area)/P.
  std::vector<std::pair<double, double>> by_release;  // (release, a_min)
  double bound = 0.0;
  by_release.reserve(tasks.size());
  for (const auto& t : tasks) {
    by_release.emplace_back(t.release, t.model->min_area(P));
    bound = std::max(bound, t.release + t.model->min_time(P));
  }
  std::sort(by_release.begin(), by_release.end());
  double suffix_area = 0.0;
  for (auto it = by_release.rbegin(); it != by_release.rend(); ++it) {
    suffix_area += it->second;
    bound = std::max(bound, it->first + suffix_area / static_cast<double>(P));
  }
  return bound;
}

}  // namespace moldsched::sched
