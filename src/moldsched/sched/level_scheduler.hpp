// Level-by-level scheduling: the classic DAG baseline that partitions
// the graph into precedence levels (longest hop distance from a source)
// and schedules each level as a batch of independent moldable tasks with
// a barrier in between. Simple, predictable, and a standard comparator
// for list-scheduling algorithms — the barriers cost utilization, which
// is exactly what Algorithm 1's greedy list scheduling avoids.
#pragma once

#include <vector>

#include "moldsched/core/allocator.hpp"
#include "moldsched/graph/task_graph.hpp"
#include "moldsched/sim/trace.hpp"

namespace moldsched::sched {

struct LevelScheduleResult {
  sim::Trace trace;
  double makespan = 0.0;
  std::vector<int> allocation;        ///< per task
  std::vector<int> level_of;          ///< per task: its precedence level
  std::vector<double> level_finish;   ///< barrier instant per level
};

/// Schedules level k's tasks (allocated via `alloc`) with greedy list
/// scheduling inside the level; level k+1 starts only when level k has
/// fully completed. Throws under the same conditions as the online
/// scheduler.
[[nodiscard]] LevelScheduleResult schedule_level_by_level(
    const graph::TaskGraph& g, int P, const core::Allocator& alloc);

}  // namespace moldsched::sched
