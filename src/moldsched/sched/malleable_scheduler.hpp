// Idealized *malleable* scheduling: allocations may change at every
// event (variable dynamic allocation, Feitelson & Rudolph's taxonomy in
// the paper's introduction). Progress is fluid: a task running dt at
// allocation p completes dt / t(p) of its work. Moldable scheduling
// gives this flexibility up in exchange for implementability; comparing
// Algorithm 1 against this idealization measures the "moldability
// penalty" on real workloads.
//
// Allocation rule at each event: ready tasks are ordered by remaining
// critical path (bottom level with minimum times, scaled by remaining
// fraction) and greedily given their time-minimal allocation p_max
// until the machine is full; ties and leftovers go to smaller
// allocations so the machine never idles while work is ready.
#pragma once

#include <vector>

#include "moldsched/graph/task_graph.hpp"

namespace moldsched::sched {

struct MalleableResult {
  double makespan = 0.0;
  /// Number of reallocation events (granularity of the fluid schedule).
  long events = 0;
  /// Processor-time actually used (fluid area).
  double busy_area = 0.0;
};

/// Simulates the fluid malleable schedule. Deterministic; O(n^2) worst
/// case in the number of tasks. Throws on an empty/cyclic graph or
/// P < 1.
[[nodiscard]] MalleableResult schedule_malleable_fluid(
    const graph::TaskGraph& g, int P);

}  // namespace moldsched::sched
