#include "moldsched/sched/contiguous_scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "moldsched/sim/block_platform.hpp"
#include "moldsched/sim/event_queue.hpp"

namespace moldsched::sched {

namespace {

struct QueueEntry {
  graph::TaskId task;
  double key;
  std::uint64_t seq;
  /// Instant the entry last failed to start only because no contiguous
  /// block was free (fragmentation); -1 when not in that state.
  double frag_since = -1.0;
};

}  // namespace

ContiguousScheduleResult schedule_online_contiguous(
    const graph::TaskGraph& g, int P, const core::Allocator& alloc,
    core::QueuePolicy policy) {
  if (P < 1)
    throw std::invalid_argument(
        "schedule_online_contiguous: P must be >= 1");
  g.validate();

  const int n = g.num_tasks();
  ContiguousScheduleResult result;
  result.base.allocation.assign(static_cast<std::size_t>(n), 0);
  result.base.ready_time.assign(static_cast<std::size_t>(n), -1.0);
  result.first_processor.assign(static_cast<std::size_t>(n), -1);

  sim::EventQueue events;
  sim::BlockPlatform platform(P);
  std::vector<int> pending(static_cast<std::size_t>(n));
  for (graph::TaskId v = 0; v < n; ++v)
    pending[static_cast<std::size_t>(v)] = g.in_degree(v);

  std::vector<QueueEntry> queue;
  std::uint64_t seq = 0;

  auto reveal = [&](graph::TaskId task, double now) {
    const int a = alloc.allocate(g.model_of(task), P);
    if (a < 1 || a > P)
      throw std::logic_error(
          "schedule_online_contiguous: allocation outside [1, P] for " +
          g.name(task));
    result.base.allocation[static_cast<std::size_t>(task)] = a;
    result.base.ready_time[static_cast<std::size_t>(task)] = now;
    const QueueEntry entry{task, priority_key(policy, g.model_of(task), a, P),
                           seq++, -1.0};
    switch (policy) {
      case core::QueuePolicy::kFifo:
        queue.push_back(entry);
        break;
      case core::QueuePolicy::kLifo:
        queue.insert(queue.begin(), entry);
        break;
      default: {
        auto it = std::find_if(
            queue.begin(), queue.end(),
            [&](const QueueEntry& e) { return e.key < entry.key; });
        queue.insert(it, entry);
        break;
      }
    }
  };

  auto try_start_all = [&](double now) {
    auto it = queue.begin();
    while (it != queue.end()) {
      const graph::TaskId task = it->task;
      const int a = result.base.allocation[static_cast<std::size_t>(task)];
      if (a <= platform.available()) {
        const int lo = platform.acquire_block(a);
        if (lo >= 0) {
          if (it->frag_since >= 0.0)
            result.fragmentation_wait += now - it->frag_since;
          result.first_processor[static_cast<std::size_t>(task)] = lo;
          result.base.trace.record_start(task, now, a);
          events.schedule(now + g.model_of(task).time(a), task);
          it = queue.erase(it);
          continue;
        }
        // Enough processors by count but no contiguous block: this wait
        // is pure fragmentation.
        if (it->frag_since < 0.0) it->frag_since = now;
      } else if (it->frag_since >= 0.0) {
        // By-count shortage resumed; close the fragmentation episode.
        result.fragmentation_wait += now - it->frag_since;
        it->frag_since = -1.0;
      }
      ++it;
    }
  };

  for (graph::TaskId v = 0; v < n; ++v)
    if (pending[static_cast<std::size_t>(v)] == 0) reveal(v, 0.0);
  try_start_all(0.0);

  while (!events.empty()) {
    const auto batch = events.pop_simultaneous();
    const double now = events.now();
    result.base.num_events += batch.size();
    std::vector<graph::TaskId> newly_ready;
    for (const auto& ev : batch) {
      const auto task = static_cast<graph::TaskId>(ev.payload);
      result.base.trace.record_end(task, now);
      platform.release_block(
          result.first_processor[static_cast<std::size_t>(task)],
          result.base.allocation[static_cast<std::size_t>(task)]);
      for (const graph::TaskId s : g.successors(task))
        if (--pending[static_cast<std::size_t>(s)] == 0)
          newly_ready.push_back(s);
    }
    std::sort(newly_ready.begin(), newly_ready.end());
    for (const graph::TaskId v : newly_ready) reveal(v, now);
    try_start_all(now);
  }

  if (!queue.empty())
    throw std::logic_error("schedule_online_contiguous: deadlock");
  result.base.makespan = result.base.trace.makespan();
  return result;
}

}  // namespace moldsched::sched
