// Offline scheduling: with the whole graph known in advance, pick
// allocations and priorities globally. Used as the practical stand-in
// for the (intractable) optimal offline scheduler when measuring
// competitive ratios on random and realistic workloads.
#pragma once

#include <vector>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/sim/trace.hpp"

namespace moldsched::sched {

/// Offline list schedule with *given* per-task allocations and priorities
/// (larger priority first among simultaneously ready tasks). Building
/// block for the tradeoff scheduler; also useful on its own in tests.
/// Throws on an allocation outside [1, P] or wrong vector sizes.
[[nodiscard]] sim::Trace list_schedule_with_allocations(
    const graph::TaskGraph& g, int P, const std::vector<int>& allocations,
    const std::vector<double>& priorities);

/// Area-minimal allocation per task subject to the per-task deadline
/// `target`: the cheapest p in [1, max_useful_procs(P)] with
/// t(p) <= target (extended across area-flat plateaus, where extra
/// parallelism is free speed), or the min-time allocation when nothing
/// meets the deadline. This is the canonical allotment gamma(v, d) of
/// the Wu-Loiseau offline algorithms (opt::) and the inner step of
/// OfflineTradeoffScheduler's sweep.
[[nodiscard]] std::vector<int> area_minimal_allotment(
    const graph::TaskGraph& g, int P, double target);

struct OfflineResult {
  sim::Trace trace;
  double makespan = 0.0;
  std::vector<int> allocation;
  /// The makespan target of the sweep iteration that won.
  double winning_target = 0.0;
  int sweep_points = 0;
};

/// Two-phase offline heuristic in the spirit of Lepere-Trystram-Woeginger:
/// sweep a geometric grid of makespan targets M between the Lemma 2 lower
/// bound and the sequential upper bound; for each M allocate every task
/// the smallest (area-minimal) p with t(p) <= M (p_max if none), then
/// list-schedule with bottom-level priorities; keep the best schedule.
class OfflineTradeoffScheduler {
 public:
  /// sweep_points >= 2 controls the grid resolution.
  OfflineTradeoffScheduler(const graph::TaskGraph& g, int P,
                           int sweep_points = 24);

  [[nodiscard]] OfflineResult run() const;

 private:
  const graph::TaskGraph& graph_;
  int P_;
  int sweep_points_;
};

}  // namespace moldsched::sched
