// Algorithm 1 under a contiguity constraint: every task must occupy a
// contiguous block of processor indices (first-fit placement). The
// paper's analysis treats processors as a pure count, which is justified
// on shared-memory machines; on partitionable machines fragmentation can
// delay tasks that *would* fit by count. This scheduler quantifies that
// gap against the unconstrained OnlineScheduler.
#pragma once

#include <vector>

#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/core/queue_policy.hpp"
#include "moldsched/graph/task_graph.hpp"

namespace moldsched::sched {

struct ContiguousScheduleResult {
  core::ScheduleResult base;          ///< same fields as the unconstrained run
  std::vector<int> first_processor;   ///< placement per task (block start)
  /// Extra waiting caused by fragmentation: total task-time spent ready
  /// with enough free processors by count but no contiguous block.
  double fragmentation_wait = 0.0;
};

/// Runs Algorithm 1 with first-fit contiguous placement. Deterministic.
/// Throws under the same conditions as OnlineScheduler.
[[nodiscard]] ContiguousScheduleResult schedule_online_contiguous(
    const graph::TaskGraph& g, int P, const core::Allocator& alloc,
    core::QueuePolicy policy = core::QueuePolicy::kFifo);

}  // namespace moldsched::sched
