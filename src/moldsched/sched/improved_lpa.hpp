// The per-model-aware refinement of Algorithm 2 behind the "improved-lpa"
// registry entry.
//
// LpaAllocator runs every task through one global (mu, delta(mu)) pair,
// so on a mixed workload each model family pays the bound of the worst
// one (the general-model constant). This allocator instead dispatches on
// the task's own ModelKind and applies that kind's jointly optimized
// (mu*, threshold*) from the decoupled two-parameter program of
// analysis/improved.hpp: Step 1 minimizes the area ratio subject to
// t(p) <= threshold* t_min, Step 2 caps at ceil(mu* P). Arbitrary-model
// tasks (no Eq. (1) structure, no constant ratio) reuse the general-model
// parameters with the exhaustive Step 1 scan, exactly as LpaAllocator
// does.
//
// Guarantee (see analysis::improved_mixed_envelope): on a graph whose
// tasks draw from kinds K, the online makespan is at most
// lemma5_ratio(max_k alpha_k, min_k mu_k) times the Lemma 2 lower bound;
// on a single-kind graph this is exactly that kind's optimal constant.
#pragma once

#include <array>
#include <string>

#include "moldsched/core/allocator.hpp"
#include "moldsched/model/speedup_model.hpp"

namespace moldsched::sched {

class ImprovedLpaAllocator : public core::Allocator {
 public:
  /// Parameters of one model kind's allocation rule.
  struct KindParams {
    double mu = 0.0;         ///< Step 2 cap fraction (allocation <= ceil(mu P))
    double threshold = 0.0;  ///< Step 1 time-ratio bound (>= 1)
  };

  /// Loads the per-kind optima from analysis::improved_optimal_ratio
  /// (computed once per process, then cached).
  ImprovedLpaAllocator();

  [[nodiscard]] int allocate(const model::SpeedupModel& m,
                             int P) const override;
  /// Stable name ("improved-lpa"): the parameter set is a process-wide
  /// constant, so the DecisionCache tag needs no further qualification.
  [[nodiscard]] std::string name() const override;

  /// Both steps with every intermediate quantity, as LpaAllocator::decide.
  [[nodiscard]] core::LpaDecision decide(const model::SpeedupModel& m,
                                         int P) const;

  /// The parameters the given kind dispatches to (kArbitrary reports the
  /// general-model pair it borrows).
  [[nodiscard]] KindParams params_for(model::ModelKind kind) const;
  /// ceil(mu_kind P), the Step 2 cap for the given kind.
  [[nodiscard]] int cap(model::ModelKind kind, int P) const;

 private:
  std::array<KindParams, 4> params_{};  // roofline, comm, amdahl, general
};

}  // namespace moldsched::sched
