#include "moldsched/sched/level_scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "moldsched/graph/algorithms.hpp"
#include "moldsched/sim/event_queue.hpp"
#include "moldsched/sim/platform.hpp"

namespace moldsched::sched {

LevelScheduleResult schedule_level_by_level(const graph::TaskGraph& g, int P,
                                            const core::Allocator& alloc) {
  if (P < 1)
    throw std::invalid_argument("schedule_level_by_level: P must be >= 1");
  g.validate();
  const int n = g.num_tasks();

  LevelScheduleResult result;
  result.allocation.assign(static_cast<std::size_t>(n), 0);
  result.level_of.assign(static_cast<std::size_t>(n), 0);

  // Level = longest hop distance from a source.
  const std::vector<double> unit(static_cast<std::size_t>(n), 1.0);
  const auto top = graph::top_levels(g, unit);
  int num_levels = 0;
  for (graph::TaskId v = 0; v < n; ++v) {
    const int level = static_cast<int>(top[static_cast<std::size_t>(v)] + 0.5);
    result.level_of[static_cast<std::size_t>(v)] = level;
    num_levels = std::max(num_levels, level + 1);
  }
  std::vector<std::vector<graph::TaskId>> levels(
      static_cast<std::size_t>(num_levels));
  for (graph::TaskId v = 0; v < n; ++v)
    levels[static_cast<std::size_t>(
               result.level_of[static_cast<std::size_t>(v)])]
        .push_back(v);

  for (graph::TaskId v = 0; v < n; ++v) {
    const int a = alloc.allocate(g.model_of(v), P);
    if (a < 1 || a > P)
      throw std::logic_error(
          "schedule_level_by_level: allocation outside [1, P] for " +
          g.name(v));
    result.allocation[static_cast<std::size_t>(v)] = a;
  }

  double barrier = 0.0;
  result.level_finish.reserve(static_cast<std::size_t>(num_levels));
  for (const auto& level : levels) {
    // Greedy list schedule of independent tasks, starting at `barrier`.
    sim::EventQueue events;
    sim::Platform platform(P);
    std::vector<graph::TaskId> waiting = level;  // id order
    auto try_start = [&](double now) {
      auto it = waiting.begin();
      while (it != waiting.end()) {
        const int a = result.allocation[static_cast<std::size_t>(*it)];
        if (a <= platform.available()) {
          platform.acquire(a);
          result.trace.record_start(*it, now, a);
          events.schedule(now + g.model_of(*it).time(a), *it);
          it = waiting.erase(it);
        } else {
          ++it;
        }
      }
    };
    // EventQueue times are absolute; seed it past the barrier.
    try_start(barrier);
    double level_end = barrier;
    while (!events.empty()) {
      const auto batch = events.pop_simultaneous();
      const double now = events.now();
      level_end = now;
      for (const auto& ev : batch) {
        const auto task = static_cast<graph::TaskId>(ev.payload);
        result.trace.record_end(task, now);
        platform.release(result.allocation[static_cast<std::size_t>(task)]);
      }
      try_start(now);
    }
    if (!waiting.empty())
      throw std::logic_error("schedule_level_by_level: deadlock in level");
    barrier = level_end;
    result.level_finish.push_back(level_end);
  }

  result.makespan = result.trace.makespan();
  return result;
}

}  // namespace moldsched::sched
