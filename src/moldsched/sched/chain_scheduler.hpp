// The Section 5 lower-bound game (Theorem 9 / Figure 4b).
//
// An online scheduler runs the chains instance without knowing which
// chain belongs to which group; the adaptive adversary (Lemma 10) decides
// chain lengths on the fly: among chains still alive, the first 2^{K-i}
// to complete their i-th task are declared to be the group-i chains and
// terminate. Since all tasks are identical, no deterministic online
// scheduler can beat this adversary.
//
// The online strategy simulated here is the paper's Figure 4(b) policy:
// keep allocations (approximately) equal across alive chains, topping up
// early starters with one extra processor so the whole machine is used.
#pragma once

#include <cstdint>
#include <vector>

#include "moldsched/graph/chains.hpp"

namespace moldsched::sched {

struct ChainsSimResult {
  double makespan = 0.0;
  /// t_i of Lemma 10 for i = 1..K: the first instant a *surviving* chain
  /// completes i tasks; t_K is the makespan. Index i-1.
  std::vector<double> milestones;
  std::int64_t tasks_executed = 0;
  double offline_makespan = 1.0;
  double ratio = 0.0;  ///< makespan / offline_makespan
};

class EqualAllocationChainScheduler {
 public:
  explicit EqualAllocationChainScheduler(const graph::ChainsInstance& inst);

  /// Plays the game to completion. Deterministic.
  [[nodiscard]] ChainsSimResult run() const;

 private:
  const graph::ChainsInstance& inst_;
};

/// Feasibility check of the proof's offline schedule: group i chains get
/// 2^{i-1} processors per chain, all chains run concurrently, everything
/// completes at time 1 and exactly P processors are used. Returns the
/// offline makespan (always 1.0); throws std::logic_error if the
/// construction ever failed to verify.
[[nodiscard]] double verify_offline_chain_schedule(
    const graph::ChainsInstance& inst);

}  // namespace moldsched::sched
