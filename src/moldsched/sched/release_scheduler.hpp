// Online scheduling of independent moldable tasks released over time —
// the other online setting surveyed in Section 2 (Ye et al. [23]) and
// named in the paper's future work. A task becomes known to the
// scheduler only at its release time; the same Allocator strategies and
// list-scheduling engine apply.
#pragma once

#include <string>
#include <vector>

#include "moldsched/core/allocator.hpp"
#include "moldsched/core/queue_policy.hpp"
#include "moldsched/model/speedup_model.hpp"
#include "moldsched/sim/trace.hpp"

namespace moldsched::sched {

struct ReleasedTask {
  model::ModelPtr model;
  double release = 0.0;  ///< earliest start time; >= 0
  std::string name;
};

struct ReleaseScheduleResult {
  sim::Trace trace;
  double makespan = 0.0;
  std::vector<int> allocation;   ///< per task (input order)
  std::vector<double> wait_time; ///< start - release, per task
};

class OnlineReleaseScheduler {
 public:
  /// Throws on an empty task list, P < 1, a null model or a negative
  /// release time.
  OnlineReleaseScheduler(std::vector<ReleasedTask> tasks, int P,
                         const core::Allocator& alloc,
                         core::QueuePolicy policy = core::QueuePolicy::kFifo);

  [[nodiscard]] ReleaseScheduleResult run() const;

  [[nodiscard]] const std::vector<ReleasedTask>& tasks() const noexcept {
    return tasks_;
  }

 private:
  std::vector<ReleasedTask> tasks_;
  int P_;
  const core::Allocator& allocator_;
  core::QueuePolicy policy_;
};

/// Lower bound on the optimal makespan with release times: for every
/// task j, T >= r_j + (minimum area of tasks released at or after r_j)/P
/// and T >= r_j + t_min_j. Reduces to Lemma 2's area bound when all
/// releases are 0.
[[nodiscard]] double release_makespan_lower_bound(
    const std::vector<ReleasedTask>& tasks, int P);

}  // namespace moldsched::sched
