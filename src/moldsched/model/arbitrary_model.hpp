// Arbitrary speedup models (Section 5): execution time is any positive
// function of the processor allocation, with no monotonicity guarantees.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "moldsched/model/speedup_model.hpp"

namespace moldsched::model {

/// Speedup model given by an explicit table: times[p-1] is t(p).
/// Allocations beyond the table size are clamped to the last entry
/// (matching the convention that extra processors are simply idle).
class TableModel : public SpeedupModel {
 public:
  /// Throws if the table is empty or any entry is non-positive/non-finite.
  explicit TableModel(std::vector<double> times, std::string name = "table");

  [[nodiscard]] double time(int p) const override;
  [[nodiscard]] ModelKind kind() const override { return ModelKind::kArbitrary; }
  [[nodiscard]] std::string describe() const override;
  /// Cacheable: a 128-bit content hash of the table plus its length,
  /// precomputed at construction (tables are immutable).
  [[nodiscard]] ModelFingerprint fingerprint() const override {
    return fingerprint_;
  }
  [[nodiscard]] std::unique_ptr<SpeedupModel> clone() const override;

  [[nodiscard]] int table_size() const noexcept {
    return static_cast<int>(times_.size());
  }

 private:
  std::vector<double> times_;
  std::string name_;
  ModelFingerprint fingerprint_;
};

/// Speedup model wrapping a user-supplied callable t(p).
/// If `time_nonincreasing` is set, max_useful_procs(P) short-circuits to P
/// (the minimum time is at the largest allocation), which matters for the
/// very large platforms of the Theorem 9 instances.
class FunctionModel : public SpeedupModel {
 public:
  /// Throws if fn is empty.
  FunctionModel(std::function<double(int)> fn, std::string name = "function",
                bool time_nonincreasing = false);

  [[nodiscard]] double time(int p) const override;
  [[nodiscard]] int max_useful_procs(int P) const override;
  [[nodiscard]] ModelKind kind() const override { return ModelKind::kArbitrary; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<SpeedupModel> clone() const override;

 private:
  std::function<double(int)> fn_;
  std::string name_;
  bool time_nonincreasing_;
};

/// The Theorem 9 model: t(p) = 1 / (lg(p) + 1), lg = log base 2.
/// Time is decreasing in p while the area p/(lg(p)+1) is increasing.
[[nodiscard]] std::shared_ptr<const SpeedupModel> make_log_speedup_model();

}  // namespace moldsched::model
