#include "moldsched/model/speedup_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace moldsched::model {

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kRoofline: return "roofline";
    case ModelKind::kCommunication: return "communication";
    case ModelKind::kAmdahl: return "amdahl";
    case ModelKind::kGeneral: return "general";
    case ModelKind::kArbitrary: return "arbitrary";
  }
  throw std::logic_error("to_string: unknown ModelKind");
}

void SpeedupModel::check_procs(int p) {
  if (p < 1)
    throw std::invalid_argument("SpeedupModel::time: p must be >= 1, got " +
                                std::to_string(p));
}

int SpeedupModel::max_useful_procs(int P) const {
  if (P < 1)
    throw std::invalid_argument("max_useful_procs: P must be >= 1");
  // Smallest allocation achieving the minimum time over [1, P]; ties go to
  // fewer processors because extra processors only add area.
  int best_p = 1;
  double best_t = time(1);
  for (int p = 2; p <= P; ++p) {
    const double t = time(p);
    if (t < best_t) {
      best_t = t;
      best_p = p;
    }
  }
  return best_p;
}

double SpeedupModel::min_area(int P) const {
  if (P < 1) throw std::invalid_argument("min_area: P must be >= 1");
  double best = area(1);
  for (int p = 2; p <= P; ++p) best = std::min(best, area(p));
  return best;
}

bool is_time_nonincreasing(const SpeedupModel& m, int p_limit) {
  for (int p = 1; p < p_limit; ++p)
    if (m.time(p) < m.time(p + 1) - 1e-12) return false;
  return true;
}

bool is_area_nondecreasing(const SpeedupModel& m, int p_limit) {
  for (int p = 1; p < p_limit; ++p)
    if (m.area(p) > m.area(p + 1) + 1e-12) return false;
  return true;
}

bool has_no_superlinear_speedup(const SpeedupModel& m, int p_limit) {
  for (int p = 1; p < p_limit; ++p)
    for (int q = p + 1; q <= p_limit; ++q)
      if (m.time(p) / m.time(q) >
          static_cast<double>(q) / static_cast<double>(p) + 1e-9)
        return false;
  return true;
}

}  // namespace moldsched::model
