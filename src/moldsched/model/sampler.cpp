#include "moldsched/model/sampler.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "moldsched/model/general_model.hpp"
#include "moldsched/model/special_models.hpp"

namespace moldsched::model {

ModelSampler::ModelSampler(ModelKind kind, SamplerConfig config)
    : kind_(kind), config_(config) {
  if (kind_ == ModelKind::kArbitrary)
    throw std::invalid_argument(
        "ModelSampler: arbitrary models have no canonical sampler");
  if (!(config_.w_min > 0.0) || config_.w_min > config_.w_max)
    throw std::invalid_argument("ModelSampler: need 0 < w_min <= w_max");
  if (config_.seq_fraction_min < 0.0 ||
      config_.seq_fraction_min > config_.seq_fraction_max)
    throw std::invalid_argument(
        "ModelSampler: need 0 <= seq_fraction_min <= seq_fraction_max");
  if (!(config_.sweet_spot_min >= 1.0) || !(config_.sweet_spot_factor > 0.0))
    throw std::invalid_argument("ModelSampler: bad sweet-spot range");
  if (config_.pbar_min < 1 ||
      (config_.pbar_max != 0 && config_.pbar_max < config_.pbar_min))
    throw std::invalid_argument("ModelSampler: bad pbar range");
}

ModelPtr ModelSampler::sample(util::Rng& rng, int P) const {
  if (P < 1) throw std::invalid_argument("ModelSampler::sample: P must be >= 1");

  const double w = rng.log_uniform(config_.w_min, config_.w_max);

  auto sample_pbar = [&]() -> int {
    const int hi = config_.pbar_max == 0 ? P
                                         : std::min(config_.pbar_max,
                                                    GeneralParams::kUnboundedParallelism);
    const int lo = std::min(config_.pbar_min, hi);
    return static_cast<int>(rng.uniform_int(lo, hi));
  };
  auto sample_d = [&]() -> double {
    return w * rng.uniform(config_.seq_fraction_min, config_.seq_fraction_max);
  };
  auto sample_c = [&]() -> double {
    // Choose the communication overhead through the sweet spot
    // s = sqrt(w/c): sampling s log-uniformly across the machine keeps
    // interesting allocations at every scale; then c = w / s^2.
    const double s_hi = std::max(config_.sweet_spot_min,
                                 config_.sweet_spot_factor *
                                     static_cast<double>(P));
    const double s = rng.log_uniform(config_.sweet_spot_min, s_hi);
    return w / (s * s);
  };

  switch (kind_) {
    case ModelKind::kRoofline:
      return std::make_shared<RooflineModel>(w, sample_pbar());
    case ModelKind::kCommunication:
      return std::make_shared<CommunicationModel>(w, sample_c());
    case ModelKind::kAmdahl: {
      // Guarantee d > 0 as Eq. (4) requires.
      const double d = std::max(sample_d(), 1e-9 * w);
      return std::make_shared<AmdahlModel>(w, d);
    }
    case ModelKind::kGeneral: {
      GeneralParams gp;
      gp.w = w;
      gp.d = sample_d();
      gp.c = sample_c();
      gp.pbar = sample_pbar();
      return std::make_shared<GeneralModel>(gp);
    }
    case ModelKind::kArbitrary:
      break;
  }
  throw std::logic_error("ModelSampler::sample: unreachable");
}

}  // namespace moldsched::model
