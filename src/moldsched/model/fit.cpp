#include "moldsched/model/fit.hpp"

#include <array>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>

namespace moldsched::model {

namespace {

/// Solves the n x n system M x = rhs by Gaussian elimination with
/// partial pivoting. Returns false when the matrix is (numerically)
/// singular.
template <std::size_t N>
bool solve_linear(std::array<std::array<double, N>, N> M,
                  std::array<double, N> rhs, std::array<double, N>& out,
                  std::size_t n) {
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(M[r][col]) > std::abs(M[pivot][col])) pivot = r;
    if (std::abs(M[pivot][col]) < 1e-12) return false;
    std::swap(M[col], M[pivot]);
    std::swap(rhs[col], rhs[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = M[r][col] / M[col][col];
      for (std::size_t c = col; c < n; ++c) M[r][c] -= f * M[col][c];
      rhs[r] -= f * rhs[col];
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    double v = rhs[i];
    for (std::size_t c = i + 1; c < n; ++c) v -= M[i][c] * out[c];
    out[i] = v / M[i][i];
  }
  return true;
}

/// Core exhaustive-active-set NNLS over the parameters whose bit is set
/// in `allowed` (bit 0 = w, bit 1 = d, bit 2 = c). `who` prefixes error
/// messages so the public entry points report their own names.
FitResult fit_masked(const std::vector<std::pair<int, double>>& samples,
                     unsigned allowed, const char* who) {
  if (samples.size() < 3)
    throw std::invalid_argument(std::string(who) + ": need >= 3 samples");
  std::set<int> distinct;
  for (const auto& [p, t] : samples) {
    if (p < 1)
      throw std::invalid_argument(std::string(who) + ": sample with p < 1");
    if (!(t > 0.0) || !std::isfinite(t))
      throw std::invalid_argument(
          std::string(who) + ": times must be positive and finite");
    distinct.insert(p);
  }
  if (distinct.size() < 3)
    throw std::invalid_argument(
        std::string(who) + ": need samples at >= 3 distinct allocations");

  // Basis values per sample: (1/p, 1, p-1) -> coefficients (w, d, c).
  auto basis = [](int p, std::size_t k) -> double {
    switch (k) {
      case 0: return 1.0 / static_cast<double>(p);
      case 1: return 1.0;
      default: return static_cast<double>(p) - 1.0;
    }
  };

  // Exhaustive NNLS over active sets: try every non-empty subset of the
  // allowed parameters, solve unconstrained LS on it, keep the feasible
  // (all-non-negative) solution with the smallest residual. Masks are
  // enumerated in a fixed order and ties keep the earlier (smaller)
  // subset, so near-singular inputs resolve deterministically.
  double best_sse = std::numeric_limits<double>::infinity();
  std::array<double, 3> best{0.0, 0.0, 0.0};
  bool found = false;

  for (unsigned mask = 1; mask < 8; ++mask) {
    if ((mask & ~allowed) != 0) continue;
    std::array<std::size_t, 3> idx{};
    std::size_t n = 0;
    for (std::size_t k = 0; k < 3; ++k)
      if (mask & (1u << k)) idx[n++] = k;

    std::array<std::array<double, 3>, 3> M{};
    std::array<double, 3> rhs{};
    for (const auto& [p, t] : samples) {
      for (std::size_t i = 0; i < n; ++i) {
        const double bi = basis(p, idx[i]);
        rhs[i] += bi * t;
        for (std::size_t j = 0; j < n; ++j)
          M[i][j] += bi * basis(p, idx[j]);
      }
    }
    std::array<double, 3> sol{};
    if (!solve_linear(M, rhs, sol, n)) continue;

    // A numerically degenerate normal system can survive the pivot
    // threshold yet overflow during elimination; such a subset is as
    // useless as a singular one, so it is skipped the same way instead
    // of letting NaN params escape into the result.
    bool finite = true;
    for (std::size_t i = 0; i < n; ++i)
      if (!std::isfinite(sol[i])) finite = false;
    if (!finite) continue;

    std::array<double, 3> full{0.0, 0.0, 0.0};
    bool feasible = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (sol[i] < -1e-9) feasible = false;
      full[idx[i]] = std::max(0.0, sol[i]);
    }
    if (!feasible) continue;

    double sse = 0.0;
    for (const auto& [p, t] : samples) {
      double predicted = 0.0;
      for (std::size_t k = 0; k < 3; ++k) predicted += full[k] * basis(p, k);
      sse += (predicted - t) * (predicted - t);
    }
    if (!std::isfinite(sse)) continue;
    if (sse < best_sse - 1e-15) {
      best_sse = sse;
      best = full;
      found = true;
    }
  }
  if (!found)
    throw std::invalid_argument(
        std::string(who) +
        ": no non-negative fit exists for these samples");

  FitResult result;
  result.params.w = best[0];
  result.params.d = best[1];
  result.params.c = best[2];
  result.params.pbar = GeneralParams::kUnboundedParallelism;
  result.model = std::make_shared<GeneralModel>(result.params);
  result.rmse =
      std::sqrt(best_sse / static_cast<double>(samples.size()));
  for (const auto& [p, t] : samples) {
    const double predicted = result.model->time(p);
    result.max_relative_error = std::max(
        result.max_relative_error, std::abs(predicted - t) / t);
  }
  return result;
}

}  // namespace

FitResult fit_general_model(
    const std::vector<std::pair<int, double>>& samples) {
  return fit_masked(samples, 0b111u, "fit_general_model");
}

FitResult fit_model_family(const std::vector<std::pair<int, double>>& samples,
                           ModelKind family) {
  unsigned allowed = 0;
  switch (family) {
    case ModelKind::kRoofline: allowed = 0b001u; break;
    case ModelKind::kAmdahl: allowed = 0b011u; break;
    case ModelKind::kCommunication: allowed = 0b101u; break;
    case ModelKind::kGeneral: allowed = 0b111u; break;
    case ModelKind::kArbitrary:
      throw std::invalid_argument(
          "fit_model_family: kArbitrary is not an Eq. (1) family");
  }
  return fit_masked(samples, allowed, "fit_model_family");
}

}  // namespace moldsched::model
