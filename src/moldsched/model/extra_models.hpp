// Speedup models beyond the paper's Eq. (1) family. These fall under the
// paper's "arbitrary model" umbrella (Section 5): Algorithm 2 still
// produces feasible allocations for them (via the exhaustive Step 1
// search), but no constant competitive ratio is claimed.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/speedup_model.hpp"

namespace moldsched::model {

/// Power-law (sublinear) speedup: t(p) = w / p^sigma with sigma in (0, 1].
/// A common empirical fit for parallel kernels; monotonic (time strictly
/// decreasing, area p^{1-sigma} w non-decreasing), so the paper's
/// machinery applies even though the model is not an Eq. (1) instance.
class PowerLawModel : public SpeedupModel {
 public:
  /// Throws unless w > 0 and 0 < sigma <= 1.
  PowerLawModel(double w, double sigma);

  [[nodiscard]] double time(int p) const override;
  /// Time strictly decreases, so the whole machine is always useful.
  [[nodiscard]] int max_useful_procs(int P) const override;
  /// Area is non-decreasing, so the minimum is at p = 1.
  [[nodiscard]] double min_area(int /*P*/) const override { return area(1); }
  [[nodiscard]] ModelKind kind() const override {
    return ModelKind::kArbitrary;
  }
  [[nodiscard]] std::string describe() const override;
  /// Cacheable: (w, sigma) bit patterns determine t(p) exactly.
  [[nodiscard]] ModelFingerprint fingerprint() const override;
  [[nodiscard]] std::unique_ptr<SpeedupModel> clone() const override;

  [[nodiscard]] double w() const noexcept { return w_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  double w_;
  double sigma_;
};

/// Builds a TableModel for allocations 1..P from measured (procs, time)
/// samples, linearly interpolating between sample points and clamping
/// outside their range — the bridge from profiling data to a schedulable
/// model. Samples need not be sorted; duplicates (same p) keep the
/// smaller time. Throws unless at least one sample is given, every
/// sample has p >= 1 and time > 0, and P >= 1.
[[nodiscard]] std::shared_ptr<const SpeedupModel> table_from_samples(
    std::vector<std::pair<int, double>> samples, int P,
    std::string name = "profiled");

}  // namespace moldsched::model
