#include "moldsched/model/extra_models.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace moldsched::model {

PowerLawModel::PowerLawModel(double w, double sigma) : w_(w), sigma_(sigma) {
  if (!(w > 0.0))
    throw std::invalid_argument("PowerLawModel: w must be > 0");
  if (!(sigma > 0.0) || sigma > 1.0)
    throw std::invalid_argument("PowerLawModel: sigma must lie in (0, 1]");
}

double PowerLawModel::time(int p) const {
  check_procs(p);
  return w_ / std::pow(static_cast<double>(p), sigma_);
}

int PowerLawModel::max_useful_procs(int P) const {
  if (P < 1) throw std::invalid_argument("max_useful_procs: P must be >= 1");
  return P;
}

std::string PowerLawModel::describe() const {
  std::ostringstream os;
  os << "power-law(w=" << w_ << ", sigma=" << sigma_ << ")";
  return os.str();
}

ModelFingerprint PowerLawModel::fingerprint() const {
  constexpr std::uint64_t kFamilyTag = 0x9013'0001ULL << 32;
  return {true,
          {std::bit_cast<std::uint64_t>(w_), std::bit_cast<std::uint64_t>(sigma_),
           0, kFamilyTag}};
}

std::unique_ptr<SpeedupModel> PowerLawModel::clone() const {
  return std::unique_ptr<SpeedupModel>(new PowerLawModel(*this));
}

std::shared_ptr<const SpeedupModel> table_from_samples(
    std::vector<std::pair<int, double>> samples, int P, std::string name) {
  if (samples.empty())
    throw std::invalid_argument("table_from_samples: no samples");
  if (P < 1) throw std::invalid_argument("table_from_samples: P must be >= 1");
  for (const auto& [p, t] : samples) {
    if (p < 1)
      throw std::invalid_argument("table_from_samples: sample with p < 1");
    if (!(t > 0.0) || !std::isfinite(t))
      throw std::invalid_argument(
          "table_from_samples: sample times must be positive and finite");
  }
  std::sort(samples.begin(), samples.end());
  // Collapse duplicate p, keeping the fastest observation.
  std::vector<std::pair<int, double>> unique;
  for (const auto& s : samples) {
    if (!unique.empty() && unique.back().first == s.first)
      unique.back().second = std::min(unique.back().second, s.second);
    else
      unique.push_back(s);
  }

  std::vector<double> times(static_cast<std::size_t>(P));
  std::size_t hi = 0;  // first sample with p >= current allocation
  for (int p = 1; p <= P; ++p) {
    while (hi < unique.size() && unique[hi].first < p) ++hi;
    double t = 0.0;
    if (hi == 0) {
      t = unique.front().second;  // clamp below the sampled range
    } else if (hi == unique.size()) {
      t = unique.back().second;  // clamp above
    } else if (unique[hi].first == p) {
      t = unique[hi].second;
    } else {
      const auto& [p0, t0] = unique[hi - 1];
      const auto& [p1, t1] = unique[hi];
      const double frac = static_cast<double>(p - p0) /
                          static_cast<double>(p1 - p0);
      t = t0 + frac * (t1 - t0);
    }
    times[static_cast<std::size_t>(p - 1)] = t;
  }
  return std::make_shared<TableModel>(std::move(times), std::move(name));
}

}  // namespace moldsched::model
