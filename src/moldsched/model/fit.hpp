// Calibration: fit the Eq. (1) general model to measured (p, time)
// samples. The execution-time function is *linear in its parameters*,
//   t(p) = w * (1/p) + d + c * (p - 1)    (for p <= pbar),
// so ordinary least squares applies; non-negativity of (w, d, c) is
// enforced by clamping active constraints and re-solving the reduced
// system (an exact method for this 3-parameter case).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "moldsched/model/general_model.hpp"

namespace moldsched::model {

struct FitResult {
  GeneralParams params;
  double rmse = 0.0;            ///< root-mean-square residual of the fit
  double max_relative_error = 0.0;
  std::shared_ptr<const GeneralModel> model;
};

/// Fits w, d, c >= 0 to the samples (pbar is taken as unbounded: the
/// samples are assumed to come from the scalable regime). Requires at
/// least 3 samples at >= 3 distinct allocations, every p >= 1 and every
/// time > 0; throws std::invalid_argument otherwise. Deterministic:
/// near-singular sample sets either resolve to a clamped active set or
/// throw — the result never carries NaN/inf parameters.
[[nodiscard]] FitResult fit_general_model(
    const std::vector<std::pair<int, double>>& samples);

/// Same least-squares machinery restricted to the parameter set of one
/// named Eq. (1) family:
///   kRoofline      -> {w}         t(p) = w/p
///   kAmdahl        -> {w, d}      t(p) = w/p + d
///   kCommunication -> {w, c}      t(p) = w/p + c(p-1)
///   kGeneral       -> {w, d, c}   (identical to fit_general_model)
/// Parameters outside the family are pinned to zero, so candidates are
/// directly comparable by RMSE for model selection. Throws
/// std::invalid_argument for kArbitrary, and under the same sample
/// preconditions as fit_general_model.
[[nodiscard]] FitResult fit_model_family(
    const std::vector<std::pair<int, double>>& samples, ModelKind family);

}  // namespace moldsched::model
