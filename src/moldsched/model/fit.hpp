// Calibration: fit the Eq. (1) general model to measured (p, time)
// samples. The execution-time function is *linear in its parameters*,
//   t(p) = w * (1/p) + d + c * (p - 1)    (for p <= pbar),
// so ordinary least squares applies; non-negativity of (w, d, c) is
// enforced by clamping active constraints and re-solving the reduced
// system (an exact method for this 3-parameter case).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "moldsched/model/general_model.hpp"

namespace moldsched::model {

struct FitResult {
  GeneralParams params;
  double rmse = 0.0;            ///< root-mean-square residual of the fit
  double max_relative_error = 0.0;
  std::shared_ptr<const GeneralModel> model;
};

/// Fits w, d, c >= 0 to the samples (pbar is taken as unbounded: the
/// samples are assumed to come from the scalable regime). Requires at
/// least 3 samples at >= 3 distinct allocations, every p >= 1 and every
/// time > 0; throws std::invalid_argument otherwise. Deterministic.
[[nodiscard]] FitResult fit_general_model(
    const std::vector<std::pair<int, double>>& samples);

}  // namespace moldsched::model
