#include "moldsched/model/special_models.hpp"

#include <stdexcept>

namespace moldsched::model {

namespace {

GeneralParams roofline_params(double w, int pbar) {
  if (!(w > 0.0)) throw std::invalid_argument("RooflineModel: w must be > 0");
  GeneralParams p;
  p.w = w;
  p.pbar = pbar;
  return p;
}

GeneralParams communication_params(double w, double c) {
  if (!(w > 0.0))
    throw std::invalid_argument("CommunicationModel: w must be > 0");
  if (!(c > 0.0))
    throw std::invalid_argument("CommunicationModel: c must be > 0");
  GeneralParams p;
  p.w = w;
  p.c = c;
  return p;
}

GeneralParams amdahl_params(double w, double d) {
  if (!(w > 0.0)) throw std::invalid_argument("AmdahlModel: w must be > 0");
  if (!(d > 0.0)) throw std::invalid_argument("AmdahlModel: d must be > 0");
  GeneralParams p;
  p.w = w;
  p.d = d;
  return p;
}

}  // namespace

RooflineModel::RooflineModel(double w, int pbar)
    : GeneralModel(roofline_params(w, pbar), ModelKind::kRoofline) {}

std::unique_ptr<SpeedupModel> RooflineModel::clone() const {
  return std::unique_ptr<SpeedupModel>(new RooflineModel(*this));
}

CommunicationModel::CommunicationModel(double w, double c)
    : GeneralModel(communication_params(w, c), ModelKind::kCommunication) {}

std::unique_ptr<SpeedupModel> CommunicationModel::clone() const {
  return std::unique_ptr<SpeedupModel>(new CommunicationModel(*this));
}

AmdahlModel::AmdahlModel(double w, double d)
    : GeneralModel(amdahl_params(w, d), ModelKind::kAmdahl) {}

std::unique_ptr<SpeedupModel> AmdahlModel::clone() const {
  return std::unique_ptr<SpeedupModel>(new AmdahlModel(*this));
}

}  // namespace moldsched::model
