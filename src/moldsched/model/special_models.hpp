// The three named special cases of Eq. (1) analysed in Section 4.3.
#pragma once

#include <memory>

#include "moldsched/model/general_model.hpp"

namespace moldsched::model {

/// Roofline model, Eq. (2): t(p) = w / min(p, pbar).
/// Linear speedup up to the maximum degree of parallelism pbar.
class RooflineModel : public GeneralModel {
 public:
  /// Throws unless w > 0 and pbar >= 1.
  RooflineModel(double w, int pbar);
  [[nodiscard]] std::unique_ptr<SpeedupModel> clone() const override;
};

/// Communication model, Eq. (3): t(p) = w/p + c(p-1), c > 0.
/// Perfectly parallelizable work plus a linear communication overhead.
class CommunicationModel : public GeneralModel {
 public:
  /// Throws unless w > 0 and c > 0 (c = 0 degenerates to roofline).
  CommunicationModel(double w, double c);
  [[nodiscard]] std::unique_ptr<SpeedupModel> clone() const override;
};

/// Amdahl's model, Eq. (4): t(p) = w/p + d, d > 0.
/// Perfectly parallelizable fraction w plus sequential fraction d.
class AmdahlModel : public GeneralModel {
 public:
  /// Throws unless w > 0 and d > 0 (d = 0 degenerates to roofline).
  AmdahlModel(double w, double d);
  [[nodiscard]] std::unique_ptr<SpeedupModel> clone() const override;
};

}  // namespace moldsched::model
