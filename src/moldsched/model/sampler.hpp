// Random task-parameter samplers: generate per-task speedup models for the
// randomized workloads of the experiment harnesses (Section 6 of the paper
// names such an empirical evaluation as future work; we provide it).
#pragma once

#include "moldsched/model/speedup_model.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::model {

/// Tunables for ModelSampler. Defaults produce tasks whose work spans
/// three orders of magnitude, with mild sequential fractions and
/// communication overheads whose sweet spot sqrt(w/c) lands inside the
/// machine.
struct SamplerConfig {
  double w_min = 1.0;              ///< work sampled log-uniform in [w_min, w_max]
  double w_max = 1000.0;
  double seq_fraction_min = 0.01;  ///< d = w * U[seq_fraction_min, seq_fraction_max]
  double seq_fraction_max = 0.25;
  double sweet_spot_min = 1.0;     ///< communication c chosen so that
  double sweet_spot_factor = 2.0;  ///< sqrt(w/c) ~ logU[sweet_spot_min, factor*P]
  int pbar_min = 1;                ///< roofline/general parallelism bound
  int pbar_max = 0;                ///< 0 means "use P"
};

/// Draws i.i.d. speedup models of a fixed family.
class ModelSampler {
 public:
  /// Throws std::invalid_argument for ModelKind::kArbitrary (arbitrary
  /// models have no canonical parameterization) or inconsistent config.
  explicit ModelSampler(ModelKind kind, SamplerConfig config = {});

  /// Samples one model appropriate for a platform of P >= 1 processors.
  [[nodiscard]] ModelPtr sample(util::Rng& rng, int P) const;

  [[nodiscard]] ModelKind kind() const noexcept { return kind_; }
  [[nodiscard]] const SamplerConfig& config() const noexcept { return config_; }

 private:
  ModelKind kind_;
  SamplerConfig config_;
};

}  // namespace moldsched::model
