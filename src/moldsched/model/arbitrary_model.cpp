#include "moldsched/model/arbitrary_model.hpp"

#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace moldsched::model {

namespace {

/// Two independent 64-bit FNV-1a passes over the table's bit patterns.
/// 128 bits of content hash make an accidental collision between two
/// distinct tables (which would poison a decision cache) astronomically
/// unlikely; the differential self-check harness guards the remainder.
ModelFingerprint table_fingerprint(const std::vector<double>& times) {
  std::uint64_t h1 = 0xcbf29ce484222325ULL;
  std::uint64_t h2 = 0x84222325cbf29ce4ULL;
  for (const double t : times) {
    const auto bits = std::bit_cast<std::uint64_t>(t);
    for (int shift = 0; shift < 64; shift += 8) {
      const auto byte = (bits >> shift) & 0xffU;
      h1 = (h1 ^ byte) * 0x100000001b3ULL;
      h2 = (h2 ^ byte) * 0x00000100000001b3ULL + 0x9e3779b97f4a7c15ULL;
    }
  }
  constexpr std::uint64_t kFamilyTag = 0x7ab1'0001ULL << 32;
  return {true, {h1, h2, times.size(), kFamilyTag}};
}

}  // namespace

TableModel::TableModel(std::vector<double> times, std::string name)
    : times_(std::move(times)), name_(std::move(name)) {
  if (times_.empty())
    throw std::invalid_argument("TableModel: empty time table");
  for (const double t : times_)
    if (!(t > 0.0) || !std::isfinite(t))
      throw std::invalid_argument(
          "TableModel: all times must be positive and finite");
  fingerprint_ = table_fingerprint(times_);
}

double TableModel::time(int p) const {
  check_procs(p);
  const auto idx = std::min<std::size_t>(static_cast<std::size_t>(p) - 1,
                                         times_.size() - 1);
  return times_[idx];
}

std::string TableModel::describe() const {
  std::ostringstream os;
  os << "arbitrary-table(" << name_ << ", " << times_.size() << " entries)";
  return os.str();
}

std::unique_ptr<SpeedupModel> TableModel::clone() const {
  return std::unique_ptr<SpeedupModel>(new TableModel(*this));
}

FunctionModel::FunctionModel(std::function<double(int)> fn, std::string name,
                             bool time_nonincreasing)
    : fn_(std::move(fn)),
      name_(std::move(name)),
      time_nonincreasing_(time_nonincreasing) {
  if (!fn_) throw std::invalid_argument("FunctionModel: empty callable");
}

double FunctionModel::time(int p) const {
  check_procs(p);
  const double t = fn_(p);
  if (!(t > 0.0) || !std::isfinite(t))
    throw std::logic_error("FunctionModel: t(p) must be positive and finite");
  return t;
}

int FunctionModel::max_useful_procs(int P) const {
  if (P < 1) throw std::invalid_argument("max_useful_procs: P must be >= 1");
  if (time_nonincreasing_) return P;
  return SpeedupModel::max_useful_procs(P);
}

std::string FunctionModel::describe() const {
  return "arbitrary-function(" + name_ + ")";
}

std::unique_ptr<SpeedupModel> FunctionModel::clone() const {
  return std::unique_ptr<SpeedupModel>(new FunctionModel(*this));
}

std::shared_ptr<const SpeedupModel> make_log_speedup_model() {
  return std::make_shared<FunctionModel>(
      [](int p) { return 1.0 / (std::log2(static_cast<double>(p)) + 1.0); },
      "1/(lg p + 1)", /*time_nonincreasing=*/true);
}

}  // namespace moldsched::model
