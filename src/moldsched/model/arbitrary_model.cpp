#include "moldsched/model/arbitrary_model.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace moldsched::model {

TableModel::TableModel(std::vector<double> times, std::string name)
    : times_(std::move(times)), name_(std::move(name)) {
  if (times_.empty())
    throw std::invalid_argument("TableModel: empty time table");
  for (const double t : times_)
    if (!(t > 0.0) || !std::isfinite(t))
      throw std::invalid_argument(
          "TableModel: all times must be positive and finite");
}

double TableModel::time(int p) const {
  check_procs(p);
  const auto idx = std::min<std::size_t>(static_cast<std::size_t>(p) - 1,
                                         times_.size() - 1);
  return times_[idx];
}

std::string TableModel::describe() const {
  std::ostringstream os;
  os << "arbitrary-table(" << name_ << ", " << times_.size() << " entries)";
  return os.str();
}

std::unique_ptr<SpeedupModel> TableModel::clone() const {
  return std::unique_ptr<SpeedupModel>(new TableModel(*this));
}

FunctionModel::FunctionModel(std::function<double(int)> fn, std::string name,
                             bool time_nonincreasing)
    : fn_(std::move(fn)),
      name_(std::move(name)),
      time_nonincreasing_(time_nonincreasing) {
  if (!fn_) throw std::invalid_argument("FunctionModel: empty callable");
}

double FunctionModel::time(int p) const {
  check_procs(p);
  const double t = fn_(p);
  if (!(t > 0.0) || !std::isfinite(t))
    throw std::logic_error("FunctionModel: t(p) must be positive and finite");
  return t;
}

int FunctionModel::max_useful_procs(int P) const {
  if (P < 1) throw std::invalid_argument("max_useful_procs: P must be >= 1");
  if (time_nonincreasing_) return P;
  return SpeedupModel::max_useful_procs(P);
}

std::string FunctionModel::describe() const {
  return "arbitrary-function(" + name_ + ")";
}

std::unique_ptr<SpeedupModel> FunctionModel::clone() const {
  return std::unique_ptr<SpeedupModel>(new FunctionModel(*this));
}

std::shared_ptr<const SpeedupModel> make_log_speedup_model() {
  return std::make_shared<FunctionModel>(
      [](int p) { return 1.0 / (std::log2(static_cast<double>(p)) + 1.0); },
      "1/(lg p + 1)", /*time_nonincreasing=*/true);
}

}  // namespace moldsched::model
