// Speedup models for moldable tasks.
//
// A moldable task's execution time t(p) is a function of the (integral)
// number of processors p chosen at launch. The paper analyzes the general
// model of Eq. (1),
//     t(p) = w / min(p, pbar) + d + c * (p - 1),
// together with its three named special cases (roofline, communication,
// Amdahl) and, in Section 5, arbitrary functions t(p).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

namespace moldsched::model {

/// Model families distinguished by the paper's analysis.
enum class ModelKind {
  kRoofline,       // Eq. (2): t(p) = w / min(p, pbar)
  kCommunication,  // Eq. (3): t(p) = w/p + c(p-1)
  kAmdahl,         // Eq. (4): t(p) = w/p + d
  kGeneral,        // Eq. (1)
  kArbitrary,      // any t(p); Section 5
};

[[nodiscard]] std::string to_string(ModelKind kind);

/// Identity token for memoizing allocator decisions (core::DecisionCache).
/// A model that reports cacheable == true guarantees that any two models
/// with equal (kind(), words) compute bit-identical time(p) for every p —
/// the words must therefore encode the model's parameters exactly (bit
/// patterns, not formatted decimals). Models that cannot give that
/// guarantee return the default (cacheable == false) and memoizing
/// allocators fall through to the wrapped allocator.
struct ModelFingerprint {
  bool cacheable = false;
  std::array<std::uint64_t, 4> words{};
};

/// Interface for a task's execution-time function.
///
/// Implementations must guarantee t(p) > 0 for all p in [1, P] for every
/// platform size P they will be used with, and must be deterministic and
/// side-effect free: the scheduler calls time() many times per task.
class SpeedupModel {
 public:
  virtual ~SpeedupModel() = default;

  /// Execution time with p >= 1 processors. Throws std::invalid_argument
  /// for p < 1.
  [[nodiscard]] virtual double time(int p) const = 0;

  /// Area (processor-time product) a(p) = p * t(p).
  [[nodiscard]] double area(int p) const {
    return static_cast<double>(p) * time(p);
  }

  /// Speedup over sequential execution: s(p) = t(1) / t(p).
  [[nodiscard]] double speedup(int p) const { return time(1) / time(p); }

  /// Parallel efficiency: e(p) = s(p) / p, in (0, 1] for monotonic
  /// models (Eq. (6) rules out superlinear speedup).
  [[nodiscard]] double efficiency(int p) const {
    return speedup(p) / static_cast<double>(p);
  }

  /// p_max of Eq. (5): the largest allocation worth considering on a
  /// platform with P processors. Allocating more than this never decreases
  /// execution time and only increases area. Always in [1, P].
  /// The default implementation scans [1, P]; closed-form overrides exist
  /// for the Eq. (1) family.
  [[nodiscard]] virtual int max_useful_procs(int P) const;

  /// t_min = t(p_max): the minimum achievable execution time on P procs.
  [[nodiscard]] double min_time(int P) const { return time(max_useful_procs(P)); }

  /// a_min: the minimum achievable area with an allocation in [1, P].
  /// Equals a(1) for all monotonic models (Lemma 1); the default scans.
  [[nodiscard]] virtual double min_area(int P) const;

  [[nodiscard]] virtual ModelKind kind() const = 0;

  /// Human-readable parameter dump for traces and error messages.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Cache identity (see ModelFingerprint). Default: not cacheable.
  [[nodiscard]] virtual ModelFingerprint fingerprint() const { return {}; }

  /// Deep copy (models are immutable; the copy shares no state).
  [[nodiscard]] virtual std::unique_ptr<SpeedupModel> clone() const = 0;

 protected:
  /// Shared precondition check for time(p) implementations.
  static void check_procs(int p);
};

using ModelPtr = std::shared_ptr<const SpeedupModel>;

/// True iff t is non-increasing on [1, p_limit] (first monotonic property).
[[nodiscard]] bool is_time_nonincreasing(const SpeedupModel& m, int p_limit);

/// True iff a is non-decreasing on [1, p_limit] (second monotonic property).
[[nodiscard]] bool is_area_nondecreasing(const SpeedupModel& m, int p_limit);

/// True iff t(p)/t(q) <= q/p for all 1 <= p < q <= p_limit (Eq. (6):
/// no superlinear speedup). Implied by area monotonicity; checked
/// directly for test purposes.
[[nodiscard]] bool has_no_superlinear_speedup(const SpeedupModel& m,
                                              int p_limit);

}  // namespace moldsched::model
