// The general speedup model of Eq. (1):
//     t(p) = w / min(p, pbar) + d + c * (p - 1).
#pragma once

#include <limits>
#include <memory>
#include <string>

#include "moldsched/model/speedup_model.hpp"

namespace moldsched::model {

/// Parameters of Eq. (1). `pbar` is the maximum degree of parallelism of
/// the parallelizable part; use kUnboundedParallelism when the model
/// places no cap (the paper's communication/Amdahl cases assume
/// pbar >= P).
struct GeneralParams {
  double w = 1.0;   ///< total parallelizable work, w >= 0
  double d = 0.0;   ///< inherently sequential work, d >= 0
  double c = 0.0;   ///< per-processor communication overhead, c >= 0
  int pbar = kUnboundedParallelism;  ///< max degree of parallelism, >= 1

  static constexpr int kUnboundedParallelism =
      std::numeric_limits<int>::max();
};

class GeneralModel : public SpeedupModel {
 public:
  /// Throws std::invalid_argument unless w >= 0, d >= 0, c >= 0,
  /// pbar >= 1 and w + d + c > 0 (a task must take positive time).
  explicit GeneralModel(GeneralParams params);

  [[nodiscard]] double time(int p) const override;

  /// Closed-form Eq. (5): p_max = min(P, pbar, p_tilde) where p_tilde is
  /// the integer neighbour of s = sqrt(w/c) with the smaller time
  /// (p_tilde = +inf when c = 0).
  [[nodiscard]] int max_useful_procs(int P) const override;

  /// Monotonic on [1, p_max] (Lemma 1), so the minimum area is a(1).
  [[nodiscard]] double min_area(int /*P*/) const override { return area(1); }

  [[nodiscard]] ModelKind kind() const override { return kind_tag_; }
  [[nodiscard]] std::string describe() const override;
  /// Cacheable: (w, d, c, pbar) bit patterns determine t(p) exactly.
  [[nodiscard]] ModelFingerprint fingerprint() const override;
  [[nodiscard]] std::unique_ptr<SpeedupModel> clone() const override;

  [[nodiscard]] const GeneralParams& params() const noexcept { return params_; }
  [[nodiscard]] double w() const noexcept { return params_.w; }
  [[nodiscard]] double d() const noexcept { return params_.d; }
  [[nodiscard]] double c() const noexcept { return params_.c; }
  [[nodiscard]] int pbar() const noexcept { return params_.pbar; }

 protected:
  /// For the named special-case subclasses that reuse the Eq. (1) maths
  /// but report their own ModelKind.
  GeneralModel(GeneralParams params, ModelKind kind);

 private:
  GeneralParams params_;
  ModelKind kind_tag_;
};

}  // namespace moldsched::model
