#include "moldsched/model/general_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace moldsched::model {

namespace {

void validate(const GeneralParams& p) {
  if (p.w < 0.0) throw std::invalid_argument("GeneralModel: w must be >= 0");
  if (p.d < 0.0) throw std::invalid_argument("GeneralModel: d must be >= 0");
  if (p.c < 0.0) throw std::invalid_argument("GeneralModel: c must be >= 0");
  if (p.pbar < 1) throw std::invalid_argument("GeneralModel: pbar must be >= 1");
  if (!(p.w + p.d + p.c > 0.0))
    throw std::invalid_argument("GeneralModel: task must take positive time");
  if (!std::isfinite(p.w) || !std::isfinite(p.d) || !std::isfinite(p.c))
    throw std::invalid_argument("GeneralModel: parameters must be finite");
}

}  // namespace

GeneralModel::GeneralModel(GeneralParams params)
    : GeneralModel(params, ModelKind::kGeneral) {}

GeneralModel::GeneralModel(GeneralParams params, ModelKind kind)
    : params_(params), kind_tag_(kind) {
  validate(params_);
}

double GeneralModel::time(int p) const {
  check_procs(p);
  const double parallel = static_cast<double>(std::min(p, params_.pbar));
  return params_.w / parallel + params_.d +
         params_.c * (static_cast<double>(p) - 1.0);
}

int GeneralModel::max_useful_procs(int P) const {
  if (P < 1) throw std::invalid_argument("max_useful_procs: P must be >= 1");
  int p_tilde = GeneralParams::kUnboundedParallelism;
  if (params_.c > 0.0) {
    // t restricted to p <= pbar is convex with real minimizer s = sqrt(w/c);
    // the best integer is one of the two neighbours (Eq. (5)).
    const double s = std::sqrt(params_.w / params_.c);
    const int lo = std::max(1, static_cast<int>(std::floor(s)));
    const int hi = std::max(lo, static_cast<int>(std::ceil(s)));
    p_tilde = (time(lo) <= time(hi)) ? lo : hi;
  }
  return std::max(1, std::min({P, params_.pbar, p_tilde}));
}

std::string GeneralModel::describe() const {
  std::ostringstream os;
  os << to_string(kind()) << "(w=" << params_.w << ", d=" << params_.d
     << ", c=" << params_.c << ", pbar=";
  if (params_.pbar == GeneralParams::kUnboundedParallelism)
    os << "inf";
  else
    os << params_.pbar;
  os << ")";
  return os.str();
}

ModelFingerprint GeneralModel::fingerprint() const {
  // The family tag in the high bits of words[3] keeps Eq. (1) fingerprints
  // disjoint from those of other cacheable model classes.
  constexpr std::uint64_t kFamilyTag = 0x4571'0001ULL << 32;
  return {true,
          {std::bit_cast<std::uint64_t>(params_.w),
           std::bit_cast<std::uint64_t>(params_.d),
           std::bit_cast<std::uint64_t>(params_.c),
           kFamilyTag | static_cast<std::uint32_t>(params_.pbar)}};
}

std::unique_ptr<SpeedupModel> GeneralModel::clone() const {
  return std::unique_ptr<SpeedupModel>(new GeneralModel(*this));
}

}  // namespace moldsched::model
