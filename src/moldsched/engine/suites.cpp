#include "moldsched/engine/suites.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "moldsched/adv/tournament.hpp"
#include "moldsched/analysis/bounds.hpp"
#include "moldsched/analysis/curves.hpp"
#include "moldsched/analysis/improved.hpp"
#include "moldsched/analysis/experiment.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/analysis/report.hpp"
#include "moldsched/check/corpus.hpp"
#include "moldsched/check/differential.hpp"
#include "moldsched/check/shrink.hpp"
#include "moldsched/check/wire_check.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/engine/runner.hpp"
#include "moldsched/graph/adversary.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/ingest/catalog.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/obs/obs.hpp"
#include "moldsched/opt/bnb.hpp"
#include "moldsched/opt/oracle.hpp"
#include "moldsched/resilience/resilient_scheduler.hpp"
#include "moldsched/sched/baselines.hpp"
#include "moldsched/sched/improved_lpa.hpp"
#include "moldsched/sched/level_scheduler.hpp"
#include "moldsched/sched/malleable_scheduler.hpp"
#include "moldsched/sched/offline.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/sched/release_scheduler.hpp"
#include "moldsched/util/parallel.hpp"
#include "moldsched/util/stats.hpp"
#include "moldsched/util/table.hpp"

namespace moldsched::engine {

namespace {

const std::vector<model::ModelKind> kAllModels = {
    model::ModelKind::kRoofline, model::ModelKind::kCommunication,
    model::ModelKind::kAmdahl, model::ModelKind::kGeneral};

std::size_t kind_index(model::ModelKind kind) {
  switch (kind) {
    case model::ModelKind::kRoofline: return 0;
    case model::ModelKind::kCommunication: return 1;
    case model::ModelKind::kAmdahl: return 2;
    case model::ModelKind::kGeneral: return 3;
    case model::ModelKind::kArbitrary: break;
  }
  throw std::invalid_argument("kind_index: arbitrary model");
}

/// Stable 64-bit hash of a string (FNV-1a); used to fold axis labels
/// into derived seeds without depending on std::hash's implementation.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

JobRecord cancelled_record(const JobSpec& spec) {
  JobRecord rec;
  rec.spec = spec;
  rec.status = "cancelled";
  rec.error = "cancelled before completion";
  return rec;
}

std::vector<const JobRecord*> ok_records(
    const std::vector<JobRecord>& records) {
  std::vector<const JobRecord*> out;
  for (const auto& r : records)
    if (r.status == "ok") out.push_back(&r);
  return out;
}

struct SuiteDef {
  SuiteInfo info;
  int default_repeats = 1;
  std::function<std::vector<JobSpec>(const SuiteOptions&)> build;
  JobRunner run;
  /// Writes the suite's CSVs / prints its legacy tables; returns paths.
  std::function<std::vector<std::string>(const std::vector<JobRecord>&,
                                         const SuiteOptions&)>
      finalize;
};

int effective_repeats(const SuiteOptions& options, int fallback) {
  if (options.repeats < 0)
    throw std::invalid_argument("SuiteOptions: repeats must be >= 0");
  return options.repeats == 0 ? fallback : options.repeats;
}

// ---------------------------------------------------------------------------
// table1 — numeric Table 1 derivation, measured adversary lower bounds,
// baselines on the adversarial instances.

const char* const kAdversaryPrefix = "adversary/";

struct AdversarySize {
  const char* label;
  int param;  // P for roofline/communication, K for amdahl/general
};

const std::vector<AdversarySize>& adversary_sizes(model::ModelKind kind) {
  static const std::vector<AdversarySize> roofline = {
      {"P=64", 64}, {"P=1024", 1024}, {"P=8192", 8192}};
  static const std::vector<AdversarySize> comm = {
      {"P=64", 64}, {"P=256", 256}, {"P=512", 512}};
  static const std::vector<AdversarySize> amdahl = {
      {"K=12 (P=144)", 12}, {"K=24 (P=576)", 24}, {"K=48 (P=2304)", 48}};
  switch (kind) {
    case model::ModelKind::kRoofline: return roofline;
    case model::ModelKind::kCommunication: return comm;
    default: return amdahl;  // amdahl and general share K sizes
  }
}

graph::AdversaryInstance build_adversary(model::ModelKind kind, int param,
                                         double mu) {
  switch (kind) {
    case model::ModelKind::kRoofline:
      return graph::roofline_adversary(param, mu);
    case model::ModelKind::kCommunication:
      return graph::communication_adversary(param, mu);
    case model::ModelKind::kAmdahl:
      return graph::amdahl_adversary(param, mu);
    case model::ModelKind::kGeneral:
      return graph::general_adversary(param, mu);
    case model::ModelKind::kArbitrary: break;
  }
  throw std::invalid_argument("build_adversary: arbitrary model");
}

std::vector<JobSpec> table1_jobs(const SuiteOptions& options) {
  std::vector<JobSpec> jobs;
  auto push = [&](JobSpec spec) {
    spec.job_id = jobs.size();
    spec.suite = "table1";
    spec.seed = JobGrid::derive_seed(options.base_seed, spec.job_id);
    jobs.push_back(std::move(spec));
  };
  for (const auto kind : kAllModels) {
    JobSpec s;
    s.instance = "derive";
    s.scheduler = "analytic";
    s.model = kind;
    push(std::move(s));
  }
  for (const auto kind : kAllModels) {
    for (const auto& size : adversary_sizes(kind)) {
      JobSpec s;
      s.instance = std::string(kAdversaryPrefix) + size.label;
      s.scheduler = "lpa";
      s.model = kind;
      s.param = size.param;
      push(std::move(s));
    }
  }
  // Baselines on the worst-case instances, all parameterized at the
  // communication model's mu (as in the legacy bench).
  for (const auto kind :
       {model::ModelKind::kCommunication, model::ModelKind::kAmdahl}) {
    for (const auto& spec : sched::standard_suite(0.3)) {
      JobSpec s;
      s.instance = kind == model::ModelKind::kCommunication
                       ? "comm-adversary"
                       : "amdahl-adversary";
      s.scheduler = spec.name;
      s.model = kind;
      s.param = kind == model::ModelKind::kCommunication ? 256 : 24;
      push(std::move(s));
    }
  }
  return jobs;
}

JobRecord table1_run(const JobSpec& spec, const CancelToken& token) {
  JobRecord rec;
  rec.spec = spec;
  if (token.cancelled()) return cancelled_record(spec);

  if (spec.instance == "derive") {
    const auto row = analysis::optimal_ratio(spec.model);
    rec.set("upper_bound", row.upper_bound);
    rec.set("lower_bound", row.lower_bound);
    rec.set("mu_star", row.mu_star);
    rec.set("x_star", row.x_star);
    return rec;
  }
  if (spec.instance.rfind(kAdversaryPrefix, 0) == 0) {
    const auto row = analysis::optimal_ratio(spec.model);
    const auto inst = build_adversary(spec.model, spec.param, row.mu_star);
    if (token.cancelled()) return cancelled_record(spec);
    const core::LpaAllocator alloc(inst.mu);

    // When the run is being observed, watch this simulation: feed the
    // default registry and/or render it as its own process lane group
    // in the Chrome trace. Unobserved runs pass a null observer and
    // take the uninstrumented path through the scheduler.
    obs::TraceWriter* tracer = obs::global_tracer();
    std::unique_ptr<obs::MetricsObserver> metrics_obs;
    std::unique_ptr<obs::SimTraceObserver> trace_obs;
    std::vector<obs::Observer*> sinks;
    if (obs::metrics_collection_enabled()) {
      metrics_obs = std::make_unique<obs::MetricsObserver>(
          obs::default_registry());
      sinks.push_back(metrics_obs.get());
    }
    if (tracer != nullptr) {
      const int pid = tracer->new_process("sim " + spec.key());
      trace_obs =
          std::make_unique<obs::SimTraceObserver>(*tracer, pid, inst.P);
      sinks.push_back(trace_obs.get());
    }
    obs::FanoutObserver fanout(sinks);
    obs::Observer* observer = sinks.empty() ? nullptr : &fanout;

    const auto result = core::schedule_online(
        inst.graph, inst.P, alloc, core::QueuePolicy::kFifo, observer);
    rec.set("simulated_ratio", result.makespan / inst.t_opt_upper);
    rec.set("ratio_limit", inst.ratio_limit);
    rec.set("upper_bound", row.upper_bound);
    rec.set("P", static_cast<double>(inst.P));
    return rec;
  }
  // Baseline-on-adversary jobs.
  const double mu_c = analysis::optimal_mu(model::ModelKind::kCommunication);
  const double mu_own = analysis::optimal_mu(spec.model);
  const auto inst = build_adversary(spec.model, spec.param, mu_own);
  if (token.cancelled()) return cancelled_record(spec);
  const auto sched_spec = sched::spec_by_name(spec.scheduler, mu_c);
  const auto result = sched_spec.run(inst.graph, inst.P);
  rec.set("ratio", result.makespan / inst.t_opt_upper);
  return rec;
}

std::vector<std::string> table1_finalize(const std::vector<JobRecord>& records,
                                         const SuiteOptions& options) {
  std::vector<std::string> outputs;
  const auto ok = ok_records(records);

  // Part 1 — the derived Table 1 (byte-identical to the legacy CSV).
  std::vector<analysis::OptimalRatio> rows;
  for (const auto kind : kAllModels) {
    for (const auto* rec : ok) {
      if (rec->spec.instance != "derive" || rec->spec.model != kind) continue;
      analysis::OptimalRatio row;
      row.kind = kind;
      row.upper_bound = rec->metric("upper_bound").value_or(0.0);
      row.lower_bound = rec->metric("lower_bound").value_or(0.0);
      row.mu_star = rec->metric("mu_star").value_or(0.0);
      row.x_star = rec->metric("x_star").value_or(0.0);
      rows.push_back(row);
      break;
    }
  }
  if (rows.size() == kAllModels.size()) {
    const auto table = analysis::table1_table(rows);
    const std::string path = options.results_dir + "/table1.csv";
    analysis::write_file(path, table.to_csv());
    outputs.push_back(path);
    if (options.human_out) {
      table.print(*options.human_out,
                  "Table 1 — competitive ratios of Algorithm 1 (numerically "
                  "derived)");
      *options.human_out << "paper reports: upper 2.62 / 3.61 / 4.74 / 5.72, "
                            "lower 2.61 / 3.51 / 4.73 / 5.25\n\n";
    }
  }

  // Part 2 — measured adversary lower bounds.
  util::Table adversaries({"Model", "instance size", "simulated T/T_alt",
                           "closed-form limit", "upper bound"});
  for (const auto* rec : ok) {
    if (rec->spec.instance.rfind(kAdversaryPrefix, 0) != 0) continue;
    adversaries.new_row()
        .cell(model::to_string(rec->spec.model))
        .cell(rec->spec.instance.substr(std::string(kAdversaryPrefix).size()))
        .cell(rec->metric("simulated_ratio").value_or(0.0), 3)
        .cell(rec->metric("ratio_limit").value_or(0.0), 3)
        .cell(rec->metric("upper_bound").value_or(0.0), 3);
  }
  if (adversaries.num_rows() > 0) {
    const std::string path = options.results_dir + "/table1_adversary_ratios.csv";
    analysis::write_file(path, adversaries.to_csv());
    outputs.push_back(path);
    if (options.human_out) {
      adversaries.print(
          *options.human_out,
          "Table 1 lower bounds, measured on the Section 4.4 adversarial "
          "instances (ratio climbs toward the limit as size grows)");
      *options.human_out << '\n';
    }
  }

  // Part 3 — baselines on the adversarial instances (print only, as in
  // the legacy bench).
  if (options.human_out) {
    util::Table baselines({"scheduler", "comm adversary T/T_alt",
                           "amdahl adversary T/T_alt"});
    for (const auto& spec : sched::standard_suite(0.3)) {
      const JobRecord* comm = nullptr;
      const JobRecord* amd = nullptr;
      for (const auto* rec : ok) {
        if (rec->spec.scheduler != spec.name) continue;
        if (rec->spec.instance == "comm-adversary") comm = rec;
        if (rec->spec.instance == "amdahl-adversary") amd = rec;
      }
      if (!comm || !amd) continue;
      baselines.new_row()
          .cell(spec.name)
          .cell(comm->metric("ratio").value_or(0.0), 3)
          .cell(amd->metric("ratio").value_or(0.0), 3);
    }
    if (baselines.num_rows() > 0) {
      baselines.print(
          *options.human_out,
          "baseline schedulers on the adversarial instances (LPA's Table 1 "
          "guarantee holds by design; baselines have no such bound)");
      *options.human_out << '\n';
    }
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// random-dags — the practical-performance study over the random-DAG
// catalog, one job per (model, case, scheduler, repetition).

const std::vector<std::string>& random_dag_cases() {
  static const std::vector<std::string> cases = {
      "layered",   "erdos-renyi", "fork-join",       "out-tree", "in-tree",
      "series-parallel", "chain", "independent", "diamond"};
  return cases;
}

/// Catalogs are shared by every (scheduler, case) job of one
/// (model, repetition) pair, memoized under a deterministic key so the
/// graphs are identical no matter which job materializes them first.
std::shared_ptr<const std::vector<analysis::GraphCase>> dag_catalog(
    model::ModelKind kind, int P, int repeat, std::uint64_t base_seed) {
  static std::mutex mutex;
  static std::map<std::string,
                  std::shared_ptr<const std::vector<analysis::GraphCase>>>
      cache;
  const std::string key = model::to_string(kind) + "|" + std::to_string(P) +
                          "|" + std::to_string(repeat) + "|" +
                          std::to_string(base_seed);
  const std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  const std::uint64_t seed = JobGrid::derive_seed(
      base_seed ^ 0xDA65u,
      kind_index(kind) * 1009 + static_cast<std::uint64_t>(repeat));
  util::Rng rng(seed);
  auto catalog = std::make_shared<const std::vector<analysis::GraphCase>>(
      analysis::random_graph_catalog(kind, P, rng));
  cache.emplace(key, catalog);
  if (cache.size() > 256) cache.clear();  // bound memory across huge sweeps
  return catalog;
}

std::vector<JobSpec> random_dags_jobs(const SuiteOptions& options) {
  JobGrid grid;
  grid.suite = "random-dags";
  grid.instances = random_dag_cases();
  grid.schedulers = sched::full_suite_names();
  grid.models = kAllModels;
  grid.procs = {32};
  grid.repeats = effective_repeats(options, 3);
  grid.base_seed = options.base_seed;
  return grid.jobs_matching(options.filter);
}

JobRunner random_dags_runner(const SuiteOptions& options) {
  const std::uint64_t base_seed = options.base_seed;
  return [base_seed](const JobSpec& spec, const CancelToken& token) {
    JobRecord rec;
    rec.spec = spec;
    if (token.cancelled()) return cancelled_record(spec);
    const auto catalog =
        dag_catalog(spec.model, spec.P, spec.repeat, base_seed);
    const analysis::GraphCase* gc = nullptr;
    for (const auto& c : *catalog)
      if (c.name == spec.instance) gc = &c;
    if (!gc)
      throw std::invalid_argument("random-dags: unknown case '" +
                                  spec.instance + "'");
    if (token.cancelled()) return cancelled_record(spec);
    const double mu = analysis::optimal_mu(spec.model);
    const auto m = analysis::measure_scheduler(
        gc->graph, spec.P, sched::spec_by_name(spec.scheduler, mu));
    rec.set("makespan", m.makespan);
    rec.set("lower_bound", m.lower_bound);
    rec.set("ratio", m.ratio_vs_lb);
    rec.set("utilization", m.avg_utilization);
    rec.set("tasks", static_cast<double>(gc->graph.num_tasks()));
    return rec;
  };
}

std::vector<std::string> random_dags_finalize(
    const std::vector<JobRecord>& records, const SuiteOptions& options) {
  std::vector<std::string> outputs;
  const auto ok = ok_records(records);
  for (const auto kind : kAllModels) {
    std::vector<analysis::AggregateRow> rows;
    for (const auto& name : sched::full_suite_names()) {
      std::vector<double> ratios;
      util::Accumulator utilization;
      for (const auto* rec : ok) {
        if (rec->spec.model != kind || rec->spec.scheduler != name) continue;
        ratios.push_back(rec->metric("ratio").value_or(0.0));
        utilization.add(rec->metric("utilization").value_or(0.0));
      }
      if (ratios.empty()) continue;
      analysis::AggregateRow row;
      row.scheduler = name;
      row.ratio = util::summarize(ratios);
      row.mean_utilization = utilization.mean();
      rows.push_back(std::move(row));
    }
    if (rows.empty()) continue;
    const auto table = analysis::suite_table(rows);
    const std::string path =
        options.results_dir + "/random_dags_" + model::to_string(kind) + ".csv";
    analysis::write_file(path, table.to_csv());
    outputs.push_back(path);
    if (options.human_out) {
      table.print(*options.human_out,
                  "model = " + model::to_string(kind) +
                      ", P = 32 (ratio = makespan / Lemma-2 LB; theorem "
                      "bound = " +
                      util::format_double(
                          analysis::optimal_ratio(kind).upper_bound, 2) +
                      ")");
      *options.human_out << '\n';
    }
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// workflows — realistic workflow study: online LPA vs offline tradeoff,
// level-by-level and fluid malleable references.

const std::vector<std::string>& workflow_cases() {
  static const std::vector<std::string> cases = {"cholesky", "lu", "fft",
                                                 "montage", "wavefront"};
  return cases;
}

const std::vector<std::string>& workflow_schedulers() {
  static const std::vector<std::string> names = {"lpa", "offline", "level-lpa",
                                                 "malleable-fluid"};
  return names;
}

std::shared_ptr<const std::vector<analysis::GraphCase>> workflow_cache(
    model::ModelKind kind) {
  static std::mutex mutex;
  static std::map<std::size_t,
                  std::shared_ptr<const std::vector<analysis::GraphCase>>>
      cache;
  const std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(kind_index(kind));
  if (it != cache.end()) return it->second;
  auto catalog = std::make_shared<const std::vector<analysis::GraphCase>>(
      analysis::workflow_catalog(kind, 2));
  cache.emplace(kind_index(kind), catalog);
  return catalog;
}

std::vector<JobSpec> workflows_jobs(const SuiteOptions& options) {
  JobGrid grid;
  grid.suite = "workflows";
  grid.instances = workflow_cases();
  grid.schedulers = workflow_schedulers();
  grid.models = kAllModels;
  grid.procs = {48};
  grid.repeats = 1;  // fully deterministic; repetition adds nothing
  grid.base_seed = options.base_seed;
  return grid.jobs_matching(options.filter);
}

JobRecord workflows_run(const JobSpec& spec, const CancelToken& token) {
  JobRecord rec;
  rec.spec = spec;
  if (token.cancelled()) return cancelled_record(spec);
  const auto catalog = workflow_cache(spec.model);
  const analysis::GraphCase* gc = nullptr;
  for (const auto& c : *catalog)
    if (c.name == spec.instance) gc = &c;
  if (!gc)
    throw std::invalid_argument("workflows: unknown case '" + spec.instance +
                                "'");
  const int P = spec.P;
  const double mu = analysis::optimal_mu(spec.model);
  double makespan = 0.0;
  if (spec.scheduler == "lpa") {
    const core::LpaAllocator lpa(mu);
    const core::CachingAllocator cached(lpa, core::DecisionCache::process_wide());
    makespan = core::schedule_online(gc->graph, P, cached).makespan;
  } else if (spec.scheduler == "offline") {
    makespan = sched::OfflineTradeoffScheduler(gc->graph, P).run().makespan;
  } else if (spec.scheduler == "level-lpa") {
    const core::LpaAllocator lpa(mu);
    const core::CachingAllocator cached(lpa, core::DecisionCache::process_wide());
    makespan =
        sched::schedule_level_by_level(gc->graph, P, cached).makespan;
  } else if (spec.scheduler == "malleable-fluid") {
    makespan = sched::schedule_malleable_fluid(gc->graph, P).makespan;
  } else {
    throw std::invalid_argument("workflows: unknown scheduler '" +
                                spec.scheduler + "'");
  }
  rec.set("makespan", makespan);
  rec.set("lower_bound", analysis::optimal_makespan_lower_bound(gc->graph, P));
  rec.set("tasks", static_cast<double>(gc->graph.num_tasks()));
  return rec;
}

std::vector<std::string> workflows_finalize(
    const std::vector<JobRecord>& records, const SuiteOptions& options) {
  std::vector<std::string> outputs;
  const auto ok = ok_records(records);
  for (const auto kind : kAllModels) {
    util::Table t({"workflow", "tasks", "LB (Lemma 2)", "online T",
                   "offline T", "level T", "malleable T", "T/LB",
                   "T/malleable"});
    for (const auto& case_name : workflow_cases()) {
      std::map<std::string, const JobRecord*> by_sched;
      for (const auto* rec : ok)
        if (rec->spec.model == kind && rec->spec.instance == case_name)
          by_sched[rec->spec.scheduler] = rec;
      if (by_sched.size() < workflow_schedulers().size()) continue;
      const double online = by_sched["lpa"]->metric("makespan").value_or(0.0);
      const double fluid =
          by_sched["malleable-fluid"]->metric("makespan").value_or(0.0);
      const double lb = by_sched["lpa"]->metric("lower_bound").value_or(0.0);
      t.new_row()
          .cell(case_name)
          .cell(static_cast<long>(
              by_sched["lpa"]->metric("tasks").value_or(0.0)))
          .cell(lb, 2)
          .cell(online, 2)
          .cell(by_sched["offline"]->metric("makespan").value_or(0.0), 2)
          .cell(by_sched["level-lpa"]->metric("makespan").value_or(0.0), 2)
          .cell(fluid, 2)
          .cell(online / lb, 3)
          .cell(online / fluid, 3);
    }
    if (t.num_rows() == 0) continue;
    const std::string path =
        options.results_dir + "/workflows_" + model::to_string(kind) + ".csv";
    analysis::write_file(path, t.to_csv());
    outputs.push_back(path);
    if (options.human_out) {
      t.print(*options.human_out,
              "model = " + model::to_string(kind) + ", P = 48 (theorem "
              "bound = " +
                  util::format_double(
                      analysis::optimal_ratio(kind).upper_bound, 2) +
                  ")");
      *options.human_out << '\n';
    }
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// ratio-curves — per-model optimum plus the dense mu-sweep CSV.

std::vector<JobSpec> ratio_curves_jobs(const SuiteOptions& options) {
  JobGrid grid;
  grid.suite = "ratio-curves";
  grid.instances = {"curve"};
  grid.schedulers = {"analytic"};
  grid.models = kAllModels;
  grid.base_seed = options.base_seed;
  return grid.jobs_matching(options.filter);
}

JobRecord ratio_curves_run(const JobSpec& spec, const CancelToken& token) {
  JobRecord rec;
  rec.spec = spec;
  if (token.cancelled()) return cancelled_record(spec);
  const auto row = analysis::optimal_ratio(spec.model);
  rec.set("mu_star", row.mu_star);
  rec.set("upper_bound", row.upper_bound);
  rec.set("lower_bound", row.lower_bound);
  return rec;
}

std::vector<std::string> ratio_curves_finalize(
    const std::vector<JobRecord>& records, const SuiteOptions& options) {
  std::vector<std::string> outputs;
  if (ok_records(records).empty()) return outputs;
  const std::string path = options.results_dir + "/ratio_curves.csv";
  analysis::write_file(path, analysis::ratio_curves_csv(400));
  outputs.push_back(path);
  if (options.human_out) {
    *options.human_out << "dense ratio-vs-mu curves (400 samples) written to "
                       << path << "\n\n";
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// resilience — re-execution under Bernoulli / Poisson failures.

const std::vector<double>& resilience_intensities() {
  static const std::vector<double> xs = {0.0, 0.1, 0.2, 0.4, 0.6};
  return xs;
}

std::string intensity_label(const std::string& family, double intensity) {
  std::ostringstream os;
  os << family << '@' << intensity;
  return os.str();
}

double parse_intensity(const std::string& instance) {
  const auto at = instance.find('@');
  if (at == std::string::npos)
    throw std::invalid_argument("resilience: malformed instance '" + instance +
                                "'");
  return std::strtod(instance.c_str() + at + 1, nullptr);
}

std::vector<JobSpec> resilience_jobs(const SuiteOptions& options) {
  JobGrid grid;
  grid.suite = "resilience";
  for (const char* family : {"bernoulli", "poisson"})
    for (const double x : resilience_intensities())
      grid.instances.push_back(intensity_label(family, x));
  grid.schedulers = {"lpa", "min-time"};
  grid.models = {model::ModelKind::kCommunication};
  grid.procs = {32};
  grid.repeats = effective_repeats(options, 5);
  grid.base_seed = options.base_seed;
  return grid.jobs_matching(options.filter);
}

const graph::TaskGraph& resilience_workload(int P) {
  static std::mutex mutex;
  static std::unique_ptr<graph::TaskGraph> workload;
  const std::lock_guard<std::mutex> lock(mutex);
  if (!workload) {
    util::Rng rng(77);
    static const model::ModelSampler sampler(
        model::ModelKind::kCommunication);
    workload = std::make_unique<graph::TaskGraph>(graph::layered_random(
        8, 3, 10, 0.3, rng, graph::sampling_provider(sampler, rng, P)));
  }
  return *workload;
}

JobRecord resilience_run(const JobSpec& spec, const CancelToken& token) {
  JobRecord rec;
  rec.spec = spec;
  if (token.cancelled()) return cancelled_record(spec);
  const auto& g = resilience_workload(spec.P);
  const double intensity = parse_intensity(spec.instance);
  resilience::FailureModelPtr failures;
  if (spec.instance.rfind("poisson", 0) == 0)
    failures =
        std::make_shared<resilience::PoissonAreaFailures>(intensity * 0.002);
  else
    failures = std::make_shared<resilience::BernoulliFailures>(intensity);

  const double mu = analysis::optimal_mu(model::ModelKind::kCommunication);
  const core::LpaAllocator lpa(mu);
  const sched::MinTimeAllocator greedy;
  const core::Allocator& alloc =
      spec.scheduler == "lpa" ? static_cast<const core::Allocator&>(lpa)
                              : greedy;
  const auto result =
      resilience::ResilientOnlineScheduler(g, spec.P, alloc, failures,
                                           spec.seed)
          .run();
  double total_attempts = 0.0;
  for (const int a : result.attempts_per_task)
    total_attempts += static_cast<double>(a);
  rec.set("makespan", result.makespan);
  rec.set("attempts_per_task",
          total_attempts / static_cast<double>(g.num_tasks()));
  rec.set("waste_fraction", result.wasted_area / result.total_area);
  rec.set("intensity", intensity);
  return rec;
}

std::vector<std::string> resilience_finalize(
    const std::vector<JobRecord>& records, const SuiteOptions& options) {
  std::vector<std::string> outputs;
  const auto ok = ok_records(records);
  util::Table csv({"failure_model", "intensity", "scheduler",
                   "mean makespan", "mean attempts/task", "mean waste"});
  for (const char* family : {"bernoulli", "poisson"}) {
    util::Table t({"intensity", "lpa makespan", "lpa attempts/task",
                   "lpa waste", "min-time makespan",
                   "min-time attempts/task", "min-time waste"});
    for (const double intensity : resilience_intensities()) {
      const std::string label = intensity_label(family, intensity);
      std::map<std::string, std::array<util::Accumulator, 3>> by_sched;
      for (const auto* rec : ok) {
        if (rec->spec.instance != label) continue;
        auto& acc = by_sched[rec->spec.scheduler];
        acc[0].add(rec->metric("makespan").value_or(0.0));
        acc[1].add(rec->metric("attempts_per_task").value_or(0.0));
        acc[2].add(rec->metric("waste_fraction").value_or(0.0));
      }
      if (by_sched.count("lpa") == 0 || by_sched.count("min-time") == 0)
        continue;
      auto& l = by_sched["lpa"];
      auto& m = by_sched["min-time"];
      t.new_row()
          .cell(intensity, 3)
          .cell(l[0].mean(), 2)
          .cell(l[1].mean(), 3)
          .cell(l[2].mean(), 3)
          .cell(m[0].mean(), 2)
          .cell(m[1].mean(), 3)
          .cell(m[2].mean(), 3);
      for (const char* sched_name : {"lpa", "min-time"}) {
        auto& acc = by_sched[sched_name];
        csv.new_row()
            .cell(family)
            .cell(intensity, 3)
            .cell(sched_name)
            .cell(acc[0].mean(), 4)
            .cell(acc[1].mean(), 4)
            .cell(acc[2].mean(), 4);
      }
    }
    if (options.human_out && t.num_rows() > 0) {
      t.print(*options.human_out,
              std::string(family) +
                  " failures, model = communication, P = 32 (means over "
                  "failure seeds)");
      *options.human_out << '\n';
    }
  }
  if (csv.num_rows() > 0) {
    const std::string path = options.results_dir + "/resilience.csv";
    analysis::write_file(path, csv.to_csv());
    outputs.push_back(path);
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// release — independent tasks released over time.

const std::vector<double>& release_rates() {
  static const std::vector<double> xs = {0.0, 0.05, 0.2, 1.0};
  return xs;
}

std::vector<JobSpec> release_jobs(const SuiteOptions& options) {
  JobGrid grid;
  grid.suite = "release";
  for (const double rate : release_rates())
    grid.instances.push_back(intensity_label("rate", rate));
  grid.schedulers = {"lpa", "min-time", "sequential"};
  grid.models = kAllModels;
  grid.procs = {32};
  grid.repeats = effective_repeats(options, 3);
  grid.base_seed = options.base_seed;
  return grid.jobs_matching(options.filter);
}

JobRunner release_runner(const SuiteOptions& options) {
  const std::uint64_t base_seed = options.base_seed;
  return [base_seed](const JobSpec& spec, const CancelToken& token) {
    JobRecord rec;
    rec.spec = spec;
    if (token.cancelled()) return cancelled_record(spec);
    const int n = 150;
    const double rate = parse_intensity(spec.instance);
    // Arrival streams are shared by the three schedulers of one
    // (model, rate, repetition) point so their ratios are comparable —
    // the seed therefore omits the scheduler axis.
    const std::uint64_t arrival_seed = JobGrid::derive_seed(
        base_seed ^ fnv1a(spec.instance),
        kind_index(spec.model) * 131 + static_cast<std::uint64_t>(spec.repeat));
    util::Rng rng(arrival_seed);
    const model::ModelSampler sampler(spec.model);
    std::vector<sched::ReleasedTask> tasks;
    tasks.reserve(static_cast<std::size_t>(n));
    double t = 0.0;
    for (int i = 0; i < n; ++i) {
      if (rate > 0.0) t += rng.exponential(rate);
      tasks.push_back({sampler.sample(rng, spec.P), t, "t" + std::to_string(i)});
    }
    if (token.cancelled()) return cancelled_record(spec);

    const double mu = analysis::optimal_mu(spec.model);
    const core::LpaAllocator lpa(mu);
    const sched::MinTimeAllocator greedy;
    const sched::SequentialAllocator sequential;
    const core::Allocator* alloc = nullptr;
    if (spec.scheduler == "lpa") alloc = &lpa;
    else if (spec.scheduler == "min-time") alloc = &greedy;
    else if (spec.scheduler == "sequential") alloc = &sequential;
    else
      throw std::invalid_argument("release: unknown scheduler '" +
                                  spec.scheduler + "'");

    const double lb = sched::release_makespan_lower_bound(tasks, spec.P);
    const double makespan =
        sched::OnlineReleaseScheduler(tasks, spec.P, *alloc).run().makespan;
    rec.set("lower_bound", lb);
    rec.set("makespan", makespan);
    rec.set("ratio", makespan / lb);
    return rec;
  };
}

std::vector<std::string> release_finalize(const std::vector<JobRecord>& records,
                                          const SuiteOptions& options) {
  std::vector<std::string> outputs;
  const auto ok = ok_records(records);
  util::Table csv(
      {"model", "arrival_rate", "scheduler", "lb_mean", "ratio_mean"});
  for (const auto kind : kAllModels) {
    util::Table t({"arrival rate", "LB", "lpa T/LB", "min-time T/LB",
                   "sequential T/LB"});
    for (const double rate : release_rates()) {
      const std::string label = intensity_label("rate", rate);
      std::map<std::string, std::pair<util::Accumulator, util::Accumulator>>
          by_sched;  // scheduler -> (lb, ratio)
      for (const auto* rec : ok) {
        if (rec->spec.model != kind || rec->spec.instance != label) continue;
        auto& acc = by_sched[rec->spec.scheduler];
        acc.first.add(rec->metric("lower_bound").value_or(0.0));
        acc.second.add(rec->metric("ratio").value_or(0.0));
      }
      if (by_sched.size() < 3) continue;
      t.new_row()
          .cell(rate, 2)
          .cell(by_sched["lpa"].first.mean(), 1)
          .cell(by_sched["lpa"].second.mean(), 3)
          .cell(by_sched["min-time"].second.mean(), 3)
          .cell(by_sched["sequential"].second.mean(), 3);
      for (const auto& [name, acc] : by_sched) {
        csv.new_row()
            .cell(model::to_string(kind))
            .cell(rate, 3)
            .cell(name)
            .cell(acc.first.mean(), 4)
            .cell(acc.second.mean(), 4);
      }
    }
    if (options.human_out && t.num_rows() > 0) {
      t.print(*options.human_out,
              "model = " + model::to_string(kind) +
                  ", n = 150, P = 32 (rate 0 = all released at t=0; Ye et "
                  "al. worst case 16.74)");
      *options.human_out << '\n';
    }
  }
  if (csv.num_rows() > 0) {
    const std::string path = options.results_dir + "/release.csv";
    analysis::write_file(path, csv.to_csv());
    outputs.push_back(path);
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// selfcheck — differential verification of the hot-path optimizations:
// every corpus instance must schedule byte-identically with the decision
// cache off, cold, and warm, and never beat the Lemma 2 bound. Failures
// carry a shrunken minimal repro in the error field.

std::vector<JobSpec> selfcheck_jobs(const SuiteOptions& options) {
  JobGrid grid;
  grid.suite = "selfcheck";
  grid.instances = check::corpus_families();
  grid.schedulers = {"differential"};
  grid.models = check::corpus_model_kinds();
  grid.repeats = effective_repeats(options, 6);
  grid.base_seed = options.base_seed;
  return grid.jobs_matching(options.filter);
}

JobRecord selfcheck_run(const JobSpec& spec, const CancelToken& token) {
  JobRecord rec;
  rec.spec = spec;
  if (token.cancelled()) return cancelled_record(spec);
  const auto& families = check::corpus_families();
  int family = -1;
  for (std::size_t i = 0; i < families.size(); ++i)
    if (families[i] == spec.instance) family = static_cast<int>(i);
  if (family < 0)
    throw std::invalid_argument("selfcheck: unknown family '" +
                                spec.instance + "'");

  util::Rng rng(spec.seed);
  // Mirror check::corpus_instance's platform draw: the slice above 100
  // collapses to the degenerate P = 1 unit platform so the serial path
  // stays under differential fuzzing too.
  const auto p_raw = rng.uniform_int(1, 107);
  const int P = p_raw > 100 ? 1 : static_cast<int>(p_raw);
  const double mu = rng.uniform(0.05, 0.38);
  static const std::vector<core::QueuePolicy> policies = {
      core::QueuePolicy::kFifo, core::QueuePolicy::kLifo,
      core::QueuePolicy::kLargestWorkFirst,
      core::QueuePolicy::kLongestMinTimeFirst,
      core::QueuePolicy::kSmallestAllocFirst};
  const auto policy =
      policies[static_cast<std::size_t>(rng.uniform_int(0, 4))];
  const auto g = check::corpus_graph(family, spec.model, rng, P);
  if (token.cancelled()) return cancelled_record(spec);

  // Both online families go through the same differential harness: the
  // reference allocator, a cold cache, and a warm cache must produce
  // byte-identical schedules, validator-clean and above the Lemma 2
  // bound. The improved allocator shares one instance across all jobs —
  // its parameter set is a process-wide constant.
  const core::LpaAllocator lpa(mu);
  static const sched::ImprovedLpaAllocator improved;
  check::DifferentialReport lpa_report;
  const core::Allocator* const allocators[] = {&lpa, &improved};
  for (const core::Allocator* alloc : allocators) {
    const auto report = check::differential_check(g, P, *alloc, policy);
    if (alloc == &lpa) lpa_report = report;
    if (report.ok()) continue;
    // Reduce before reporting: the error field carries a minimal repro.
    const auto still_fails = [&](const graph::TaskGraph& candidate) {
      try {
        return !check::differential_check(candidate, P, *alloc, policy).ok();
      } catch (...) {
        return true;  // a crash is also a failure worth minimizing
      }
    };
    std::string repro;
    try {
      const auto shrunk = check::shrink_instance(g, still_fails);
      repro = check::describe_instance(shrunk.graph, P, mu, spec.key());
    } catch (const std::exception& e) {
      repro = std::string("(shrink failed: ") + e.what() + ")";
    }
    rec.status = "error";
    rec.error = alloc->name() + ": " + report.to_string() + "\n" + repro;
    return rec;
  }
  // The wire path must be equally indistinguishable: graph codec round
  // trip plus a streamed svc::Session, against the same instance. (Runs
  // after all RNG draws, so the corpus stream stays aligned with the
  // gtest fuzzer's.)
  const auto wire_report = check::wire_roundtrip_check(g, P, "lpa", mu, policy);
  if (!wire_report.ok()) {
    rec.status = "error";
    rec.error = "wire: " + wire_report.to_string();
    return rec;
  }

  rec.set("mismatches", 0.0);
  rec.set("wire_relabeled", wire_report.relabeled ? 1.0 : 0.0);
  rec.set("makespan", lpa_report.makespan);
  rec.set("lower_bound", lpa_report.lower_bound);
  rec.set("cache_hits", static_cast<double>(lpa_report.cache_hits));
  rec.set("cache_misses", static_cast<double>(lpa_report.cache_misses));
  rec.set("tasks", static_cast<double>(g.num_tasks()));
  return rec;
}

std::vector<std::string> selfcheck_finalize(
    const std::vector<JobRecord>& records, const SuiteOptions& options) {
  std::vector<std::string> outputs;
  const auto ok = ok_records(records);
  util::Table t({"model", "instances", "tasks", "cache_hits", "cache_misses",
                 "warm_hit_rate"});
  for (const auto kind : check::corpus_model_kinds()) {
    long long count = 0;
    double tasks = 0.0, hits = 0.0, misses = 0.0;
    for (const auto* rec : ok) {
      if (rec->spec.model != kind) continue;
      ++count;
      tasks += rec->metric("tasks").value_or(0.0);
      hits += rec->metric("cache_hits").value_or(0.0);
      misses += rec->metric("cache_misses").value_or(0.0);
    }
    if (count == 0) continue;
    const double total = hits + misses;
    t.new_row()
        .cell(model::to_string(kind))
        .cell(count)
        .cell(tasks, 0)
        .cell(hits, 0)
        .cell(misses, 0)
        .cell(total > 0.0 ? hits / total : 0.0, 3);
  }
  if (t.num_rows() > 0) {
    const std::string path = options.results_dir + "/selfcheck.csv";
    analysis::write_file(path, t.to_csv());
    outputs.push_back(path);
    if (options.human_out) {
      t.print(*options.human_out,
              "selfcheck: cache off/cold/warm schedules byte-identical on "
              "every instance (errors above would carry minimal repros)");
      *options.human_out << '\n';
    }
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// improved — head-to-head study of the per-model-aware improved family
// against LPA: the side-by-side constants table, both schedulers on the
// Figure 1-4 adversary instances, and both over the shared check corpus.

const char* const kCorpusPrefix = "corpus/";

const std::vector<std::string>& improved_schedulers() {
  static const std::vector<std::string> names = {"lpa", "improved-lpa"};
  return names;
}

std::vector<JobSpec> improved_jobs(const SuiteOptions& options) {
  std::vector<JobSpec> jobs;
  auto push = [&](JobSpec spec) {
    spec.job_id = jobs.size();
    spec.suite = "improved";
    spec.seed = JobGrid::derive_seed(options.base_seed, spec.job_id);
    jobs.push_back(std::move(spec));
  };
  for (const auto kind : kAllModels) {
    JobSpec s;
    s.instance = "derive";
    s.scheduler = "analytic";
    s.model = kind;
    push(std::move(s));
  }
  for (const auto kind : kAllModels) {
    for (const auto& size : adversary_sizes(kind)) {
      for (const auto& scheduler : improved_schedulers()) {
        JobSpec s;
        s.instance = std::string(kAdversaryPrefix) + size.label;
        s.scheduler = scheduler;
        s.model = kind;
        s.param = size.param;
        push(std::move(s));
      }
    }
  }
  const int repeats = effective_repeats(options, 2);
  for (const auto kind : check::corpus_model_kinds()) {
    for (const auto& family : check::corpus_families()) {
      for (int rep = 0; rep < repeats; ++rep) {
        for (const auto& scheduler : improved_schedulers()) {
          JobSpec s;
          s.instance = std::string(kCorpusPrefix) + family;
          s.scheduler = scheduler;
          s.model = kind;
          s.repeat = rep;
          push(std::move(s));
        }
      }
    }
  }
  if (options.filter.empty()) return jobs;
  std::vector<JobSpec> kept;
  for (auto& spec : jobs)
    if (spec.key().find(options.filter) != std::string::npos)
      kept.push_back(std::move(spec));
  return kept;
}

/// mu for the plain-LPA arm: the kind's own optimum where one exists,
/// the general-model optimum for kArbitrary (the only analytic fallback,
/// as in the mixed-family property tests).
double lpa_mu_for(model::ModelKind kind) {
  return analysis::optimal_mu(kind == model::ModelKind::kArbitrary
                                  ? model::ModelKind::kGeneral
                                  : kind);
}

JobRunner improved_runner(const SuiteOptions& options) {
  const std::uint64_t base_seed = options.base_seed;
  return [base_seed](const JobSpec& spec, const CancelToken& token) {
    JobRecord rec;
    rec.spec = spec;
    if (token.cancelled()) return cancelled_record(spec);

    if (spec.instance == "derive") {
      const auto coupled = analysis::optimal_ratio(spec.model);
      const auto refined = analysis::improved_optimal_ratio(spec.model);
      rec.set("lpa_upper_bound", coupled.upper_bound);
      rec.set("lpa_mu_star", coupled.mu_star);
      rec.set("improved_upper_bound", refined.upper_bound);
      rec.set("improved_mu_star", refined.mu_star);
      rec.set("improved_nu_star", refined.nu_star);
      rec.set("improved_threshold", refined.threshold);
      rec.set("improved_alpha", refined.alpha_star);
      return rec;
    }
    if (spec.instance.rfind(kAdversaryPrefix, 0) == 0) {
      const auto coupled = analysis::optimal_ratio(spec.model);
      const auto inst = build_adversary(spec.model, spec.param,
                                        coupled.mu_star);
      if (token.cancelled()) return cancelled_record(spec);
      double makespan = 0.0;
      double bound = 0.0;
      if (spec.scheduler == "improved-lpa") {
        static const sched::ImprovedLpaAllocator improved;
        makespan = core::schedule_online(inst.graph, inst.P, improved).makespan;
        bound = analysis::improved_optimal_ratio(spec.model).upper_bound;
      } else {
        const core::LpaAllocator lpa(inst.mu);
        makespan = core::schedule_online(inst.graph, inst.P, lpa).makespan;
        bound = coupled.upper_bound;
      }
      rec.set("simulated_ratio", makespan / inst.t_opt_upper);
      rec.set("ratio_limit", inst.ratio_limit);
      rec.set("upper_bound", bound);
      rec.set("P", static_cast<double>(inst.P));
      return rec;
    }
    if (spec.instance.rfind(kCorpusPrefix, 0) != 0)
      throw std::invalid_argument("improved: unknown instance '" +
                                  spec.instance + "'");
    const auto& families = check::corpus_families();
    const std::string family_name =
        spec.instance.substr(std::string(kCorpusPrefix).size());
    int family = -1;
    for (std::size_t i = 0; i < families.size(); ++i)
      if (families[i] == family_name) family = static_cast<int>(i);
    if (family < 0)
      throw std::invalid_argument("improved: unknown corpus family '" +
                                  family_name + "'");
    // Both schedulers of one (kind, family, repetition) point must see
    // the same graph, so the instance seed omits the scheduler axis.
    const std::uint64_t kind_tag =
        spec.model == model::ModelKind::kArbitrary
            ? 4
            : static_cast<std::uint64_t>(kind_index(spec.model));
    const std::uint64_t instance_seed = JobGrid::derive_seed(
        base_seed ^ fnv1a(spec.instance),
        kind_tag * 271 + static_cast<std::uint64_t>(spec.repeat));
    util::Rng rng(instance_seed);
    const auto p_raw = rng.uniform_int(1, 107);
    const int P = p_raw > 100 ? 1 : static_cast<int>(p_raw);
    const auto g = check::corpus_graph(family, spec.model, rng, P);
    if (token.cancelled()) return cancelled_record(spec);

    const auto sched_spec = spec.scheduler == "improved-lpa"
                                ? sched::improved_lpa_spec()
                                : sched::lpa_spec(lpa_mu_for(spec.model));
    const auto m = analysis::measure_scheduler(g, P, sched_spec);
    rec.set("makespan", m.makespan);
    rec.set("lower_bound", m.lower_bound);
    rec.set("ratio", m.ratio_vs_lb);
    rec.set("tasks", static_cast<double>(g.num_tasks()));
    if (spec.model != model::ModelKind::kArbitrary &&
        spec.scheduler == "improved-lpa") {
      rec.set("envelope",
              analysis::improved_optimal_ratio(spec.model).upper_bound);
    }
    return rec;
  };
}

std::vector<std::string> improved_finalize(
    const std::vector<JobRecord>& records, const SuiteOptions& options) {
  std::vector<std::string> outputs;
  const auto ok = ok_records(records);

  // Part 1 — Table-1-style side-by-side constants.
  util::Table side({"Model", "LPA mu*", "LPA bound", "improved mu*",
                    "improved nu*", "threshold", "improved bound"});
  for (const auto kind : kAllModels) {
    for (const auto* rec : ok) {
      if (rec->spec.instance != "derive" || rec->spec.model != kind) continue;
      side.new_row()
          .cell(model::to_string(kind))
          .cell(rec->metric("lpa_mu_star").value_or(0.0), 3)
          .cell(rec->metric("lpa_upper_bound").value_or(0.0), 3)
          .cell(rec->metric("improved_mu_star").value_or(0.0), 3)
          .cell(rec->metric("improved_nu_star").value_or(0.0), 3)
          .cell(rec->metric("improved_threshold").value_or(0.0), 3)
          .cell(rec->metric("improved_upper_bound").value_or(0.0), 3);
      break;
    }
  }
  if (side.num_rows() > 0) {
    const std::string path = options.results_dir + "/improved_table1.csv";
    analysis::write_file(path, side.to_csv());
    outputs.push_back(path);
    if (options.human_out) {
      side.print(*options.human_out,
                 "Improved vs LPA — per-model constants (decoupled "
                 "(mu, nu) program, numerically re-derived)");
      *options.human_out << '\n';
    }
  }

  // Part 2 — both families on the Figure 1-4 adversary instances.
  util::Table adv({"Model", "instance size", "lpa T/T_alt", "lpa bound",
                   "improved T/T_alt", "improved bound"});
  for (const auto kind : kAllModels) {
    for (const auto& size : adversary_sizes(kind)) {
      const std::string inst = std::string(kAdversaryPrefix) + size.label;
      const JobRecord* lpa = nullptr;
      const JobRecord* imp = nullptr;
      for (const auto* rec : ok) {
        if (rec->spec.model != kind || rec->spec.instance != inst) continue;
        if (rec->spec.scheduler == "lpa") lpa = rec;
        if (rec->spec.scheduler == "improved-lpa") imp = rec;
      }
      if (!lpa || !imp) continue;
      adv.new_row()
          .cell(model::to_string(kind))
          .cell(size.label)
          .cell(lpa->metric("simulated_ratio").value_or(0.0), 3)
          .cell(lpa->metric("upper_bound").value_or(0.0), 3)
          .cell(imp->metric("simulated_ratio").value_or(0.0), 3)
          .cell(imp->metric("upper_bound").value_or(0.0), 3);
    }
  }
  if (adv.num_rows() > 0) {
    const std::string path = options.results_dir + "/improved_adversary.csv";
    analysis::write_file(path, adv.to_csv());
    outputs.push_back(path);
    if (options.human_out) {
      adv.print(*options.human_out,
                "Section 4.4 adversarial instances, both algorithm families "
                "(each simulated ratio must stay below its own bound)");
      *options.human_out << '\n';
    }
  }

  // Part 3 — mean corpus ratios, per model kind.
  util::Table corpus({"model", "instances", "lpa mean T/LB",
                      "improved mean T/LB", "improved envelope"});
  for (const auto kind : check::corpus_model_kinds()) {
    util::Accumulator lpa_ratio;
    util::Accumulator imp_ratio;
    double envelope = 0.0;
    for (const auto* rec : ok) {
      if (rec->spec.model != kind ||
          rec->spec.instance.rfind(kCorpusPrefix, 0) != 0)
        continue;
      if (rec->spec.scheduler == "lpa")
        lpa_ratio.add(rec->metric("ratio").value_or(0.0));
      else
        imp_ratio.add(rec->metric("ratio").value_or(0.0));
      envelope = std::max(envelope, rec->metric("envelope").value_or(0.0));
    }
    if (lpa_ratio.count() == 0 && imp_ratio.count() == 0) continue;
    corpus.new_row()
        .cell(model::to_string(kind))
        .cell(static_cast<long>(imp_ratio.count()))
        .cell(lpa_ratio.mean(), 3)
        .cell(imp_ratio.mean(), 3)
        .cell(envelope, 3);
  }
  if (corpus.num_rows() > 0) {
    const std::string path = options.results_dir + "/improved_corpus.csv";
    analysis::write_file(path, corpus.to_csv());
    outputs.push_back(path);
    if (options.human_out) {
      corpus.print(*options.human_out,
                   "shared check corpus, mean makespan / Lemma-2 LB "
                   "(arbitrary kind has no constant envelope)");
      *options.human_out << '\n';
    }
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// pisa — pairwise adversarial tournament: for every ordered pair of the
// standard suite, anneal the perturbation grammar for the instance that
// maximizes makespan(target)/makespan(reference), score it against the
// fixed Figure 1-4 construction, shrink and archive the worst instance.

const char* const kVsPrefix = "vs/";

std::vector<JobSpec> pisa_jobs(const SuiteOptions& options) {
  // A previous (aborted or bench-mode) run may have left archived lines
  // behind; a fresh job list starts from an empty buffer.
  (void)adv::archive_buffer_drain();
  const auto names = adv::tournament_scheduler_names();
  std::vector<JobSpec> jobs;
  for (const auto& target : names) {
    for (const auto& reference : names) {
      if (target == reference) continue;
      JobSpec s;
      s.job_id = jobs.size();
      s.suite = "pisa";
      s.instance = kVsPrefix + reference;
      s.scheduler = target;
      s.model = model::ModelKind::kGeneral;
      s.seed = JobGrid::derive_seed(options.base_seed, s.job_id);
      jobs.push_back(std::move(s));
    }
  }
  if (options.filter.empty()) return jobs;
  std::vector<JobSpec> kept;
  for (auto& spec : jobs)
    if (spec.key().find(options.filter) != std::string::npos)
      kept.push_back(std::move(spec));
  return kept;
}

JobRunner pisa_runner(const SuiteOptions& options) {
  // --repeats scales search depth: each repeat adds another annealing
  // restart (and its iteration budget) to every pair.
  const int restarts = 2 * effective_repeats(options, 1);
  return [restarts](const JobSpec& spec, const CancelToken& token) {
    JobRecord rec;
    rec.spec = spec;
    if (token.cancelled()) return cancelled_record(spec);
    const std::string reference =
        spec.instance.substr(std::string(kVsPrefix).size());

    adv::TournamentOptions opt;
    opt.seed = spec.seed;
    opt.iterations = 40;
    opt.restarts = restarts;
    opt.token = token;
    const auto pair = adv::run_pair(spec.scheduler, reference, opt);

    rec.set("fixed_ratio", pair.fixed_ratio);
    rec.set("best_ratio", pair.best_ratio);
    rec.set("improved", pair.improved ? 1.0 : 0.0);
    rec.set("validated", pair.validated ? 1.0 : 0.0);
    rec.set("evals", static_cast<double>(pair.evals));
    rec.set("accepts", static_cast<double>(pair.accepts));
    rec.set("tasks", static_cast<double>(pair.record.graph.num_tasks()));
    rec.set("P", static_cast<double>(pair.record.P));
    adv::archive_buffer_put(static_cast<int>(spec.job_id),
                            adv::encode_record(pair.record));
    return rec;
  };
}

std::vector<std::string> pisa_finalize(const std::vector<JobRecord>& records,
                                       const SuiteOptions& options) {
  std::vector<std::string> outputs;
  const auto ok = ok_records(records);

  // The runners parked each pair's worst instance in the archive buffer
  // (JobRecord carries only numeric metrics); drain it — sorted by job
  // id, so the file layout is independent of execution order — and
  // rebuild the PairResults the reporting helpers want.
  const auto lines = adv::archive_buffer_drain();
  std::map<std::pair<std::string, std::string>, adv::ReproRecord> worst;
  std::string archive_text;
  for (const auto& line : lines) {
    auto repro = adv::decode_record(line);
    archive_text += line;
    archive_text += '\n';
    worst.emplace(std::make_pair(repro.target, repro.reference),
                  std::move(repro));
  }

  std::vector<adv::PairResult> pairs;
  for (const auto* rec : ok) {
    if (rec->spec.instance.rfind(kVsPrefix, 0) != 0) continue;
    adv::PairResult pr;
    pr.target = rec->spec.scheduler;
    pr.reference = rec->spec.instance.substr(std::string(kVsPrefix).size());
    pr.fixed_ratio = rec->metric("fixed_ratio").value_or(0.0);
    pr.best_ratio = rec->metric("best_ratio").value_or(0.0);
    pr.improved = rec->metric("improved").value_or(0.0) > 0.5;
    pr.validated = rec->metric("validated").value_or(0.0) > 0.5;
    pr.evals =
        static_cast<std::uint64_t>(rec->metric("evals").value_or(0.0));
    pr.accepts =
        static_cast<std::uint64_t>(rec->metric("accepts").value_or(0.0));
    const auto it = worst.find({pr.target, pr.reference});
    if (it != worst.end()) pr.record = it->second;
    pairs.push_back(std::move(pr));
  }
  if (pairs.empty()) return outputs;

  adv::TournamentOptions shown;  // defaults the runner used, for the report
  shown.seed = options.base_seed;
  shown.restarts = 2 * effective_repeats(options, 1);
  shown.iterations = 40;

  const std::string dominance = options.results_dir + "/pisa_dominance.csv";
  analysis::write_file(dominance, adv::dominance_matrix_csv(pairs));
  outputs.push_back(dominance);
  const std::string per_pair = options.results_dir + "/pisa_pairs.csv";
  analysis::write_file(per_pair, adv::pairs_csv(pairs));
  outputs.push_back(per_pair);
  const std::string report = options.results_dir + "/pisa_report.md";
  analysis::write_file(report, adv::tournament_report_md(pairs, shown));
  outputs.push_back(report);
  if (!archive_text.empty()) {
    const std::string archive = options.results_dir + "/pisa_worst.jsonl";
    analysis::write_file(archive, archive_text);
    outputs.push_back(archive);
  }

  if (options.human_out) {
    util::Table t({"target", "reference", "fixed ratio", "best ratio",
                   "beat fixed?", "validated", "tasks"});
    for (const auto& pr : pairs) {
      t.new_row()
          .cell(pr.target)
          .cell(pr.reference)
          .cell(pr.fixed_ratio, 3)
          .cell(pr.best_ratio, 3)
          .cell(pr.improved ? "yes" : "no")
          .cell(pr.validated ? "yes" : "NO")
          .cell(static_cast<long>(pr.record.graph.num_tasks()));
    }
    t.print(*options.human_out,
            "PISA adversarial tournament (ratio = makespan(target) / "
            "makespan(reference); fixed = best Figure 1-4 construction)");
    *options.human_out << "replay an archived instance with: moldsched_run "
                          "--replay results/pisa_worst.jsonl\n\n";
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// exact — the true-ratio tier: every registry scheduler over the frozen
// opt::small_corpus(), scored against the branch-and-bound exact optimum
// instead of (only) the Lemma 2 proxy.

const char* const kOracleScheduler = "oracle";

std::shared_ptr<const std::vector<opt::SmallInstance>> exact_corpus() {
  static std::mutex mutex;
  static std::shared_ptr<const std::vector<opt::SmallInstance>> corpus;
  const std::lock_guard<std::mutex> lock(mutex);
  if (!corpus) {
    corpus = std::make_shared<const std::vector<opt::SmallInstance>>(
        opt::small_corpus());
  }
  return corpus;
}

std::vector<JobSpec> exact_jobs(const SuiteOptions& options) {
  std::vector<JobSpec> jobs;
  auto schedulers = sched::full_suite_names();
  schedulers.push_back(kOracleScheduler);
  for (const auto& inst : *exact_corpus()) {
    for (const auto& scheduler : schedulers) {
      JobSpec s;
      s.job_id = jobs.size();
      s.suite = "exact";
      s.instance = inst.name;
      s.scheduler = scheduler;
      s.model = model::ModelKind::kGeneral;  // corpus mixes kinds per task
      s.P = inst.P;
      s.seed = JobGrid::derive_seed(options.base_seed, s.job_id);
      jobs.push_back(std::move(s));
    }
  }
  if (options.filter.empty()) return jobs;
  std::vector<JobSpec> kept;
  for (auto& spec : jobs)
    if (spec.key().find(options.filter) != std::string::npos)
      kept.push_back(std::move(spec));
  return kept;
}

JobRecord exact_run(const JobSpec& spec, const CancelToken& token) {
  JobRecord rec;
  rec.spec = spec;
  if (token.cancelled()) return cancelled_record(spec);
  const auto corpus = exact_corpus();
  const opt::SmallInstance* inst = nullptr;
  for (const auto& c : *corpus)
    if (c.name == spec.instance) inst = &c;
  if (!inst)
    throw std::invalid_argument("exact: unknown instance '" + spec.instance +
                                "'");
  if (spec.scheduler == kOracleScheduler) {
    auto opts = opt::oracle_defaults();
    opts.token = token;
    const auto r = opt::branch_and_bound_topt(inst->graph, inst->P, opts);
    rec.set("certified", r.status == opt::BnbStatus::kExact ? 1.0 : 0.0);
    rec.set("t_opt", r.makespan);
    rec.set("t_opt_lb", r.lower_bound);
    rec.set("lower_bound",
            analysis::optimal_makespan_lower_bound(inst->graph, inst->P));
    rec.set("nodes", static_cast<double>(r.nodes));
    rec.set("tasks", static_cast<double>(inst->graph.num_tasks()));
    return rec;
  }
  const auto m = analysis::measure_scheduler(
      inst->graph, inst->P, sched::spec_by_name(spec.scheduler, inst->mu));
  rec.set("makespan", m.makespan);
  rec.set("lower_bound", m.lower_bound);
  rec.set("ratio", m.ratio_vs_lb);
  rec.set("utilization", m.avg_utilization);
  rec.set("tasks", static_cast<double>(inst->graph.num_tasks()));
  return rec;
}

std::vector<std::string> exact_finalize(const std::vector<JobRecord>& records,
                                        const SuiteOptions& options) {
  std::vector<std::string> outputs;
  const auto ok = ok_records(records);

  // Certified optima per instance (uncertified instances keep 0 and are
  // excluded from every T/T_opt figure).
  std::map<std::string, double> t_opt_of;
  std::map<std::string, const JobRecord*> oracle_of;
  for (const auto* rec : ok) {
    if (rec->spec.scheduler != kOracleScheduler) continue;
    oracle_of[rec->spec.instance] = rec;
    if (rec->metric("certified").value_or(0.0) > 0.5)
      t_opt_of[rec->spec.instance] = rec->metric("t_opt").value_or(0.0);
  }

  // Part 1 — the per-(instance, scheduler) true-ratio corpus CSV.
  util::Table corpus_csv({"instance", "scheduler", "makespan", "lemma2_lb",
                          "t_opt", "ratio_vs_lb", "ratio_vs_opt"});
  for (const auto* rec : ok) {
    if (rec->spec.scheduler == kOracleScheduler) continue;
    const auto it = t_opt_of.find(rec->spec.instance);
    const double t_opt = it != t_opt_of.end() ? it->second : 0.0;
    const double makespan = rec->metric("makespan").value_or(0.0);
    corpus_csv.new_row()
        .cell(rec->spec.instance)
        .cell(rec->spec.scheduler)
        .cell(makespan, 9)
        .cell(rec->metric("lower_bound").value_or(0.0), 9)
        .cell(t_opt, 9)
        .cell(rec->metric("ratio").value_or(0.0), 6)
        .cell(t_opt > 0.0 ? makespan / t_opt : 0.0, 6);
  }
  if (corpus_csv.num_rows() > 0) {
    const std::string path = options.results_dir + "/exact_true_ratios.csv";
    analysis::write_file(path, corpus_csv.to_csv());
    outputs.push_back(path);
  }

  // Part 2 — per-scheduler aggregate with both denominators, through the
  // same AggregateRow/suite_table path the other tiers use.
  std::vector<analysis::AggregateRow> rows;
  for (const auto& name : sched::full_suite_names()) {
    std::vector<double> ratios;
    std::vector<double> true_ratios;
    util::Accumulator utilization;
    for (const auto* rec : ok) {
      if (rec->spec.scheduler != name) continue;
      ratios.push_back(rec->metric("ratio").value_or(0.0));
      utilization.add(rec->metric("utilization").value_or(0.0));
      const auto it = t_opt_of.find(rec->spec.instance);
      if (it != t_opt_of.end())
        true_ratios.push_back(rec->metric("makespan").value_or(0.0) /
                              it->second);
    }
    if (ratios.empty()) continue;
    analysis::AggregateRow row;
    row.scheduler = name;
    row.ratio = util::summarize(ratios);
    row.mean_utilization = utilization.mean();
    if (!true_ratios.empty()) {
      row.true_ratio = util::summarize(true_ratios);
      row.has_true_ratio = true;
    }
    rows.push_back(std::move(row));
  }

  // Part 3 — markdown report contrasting T/LB with T/T_opt, plus the
  // per-instance LB slack the proxy ratios silently carry.
  if (!rows.empty()) {
    std::ostringstream md;
    md << "# Exact suite: true competitive ratios\n\n"
       << "Every registry scheduler over the frozen small-instance corpus,\n"
       << "scored twice: against the Lemma 2 lower bound (the only\n"
       << "denominator available at scale) and against the exact optimum\n"
       << "T_opt certified by opt::branch_and_bound_topt. The gap between\n"
       << "the two columns is the LB's slack, not scheduler behavior.\n\n";
    md << analysis::suite_table(rows).to_markdown() << '\n';
    util::Table slack({"instance", "tasks", "Lemma 2 LB", "T_opt",
                       "T_opt/LB (LB slack)", "bnb nodes"});
    for (const auto& inst : *exact_corpus()) {
      const auto it = oracle_of.find(inst.name);
      if (it == oracle_of.end()) continue;
      const auto* rec = it->second;
      const double lb = rec->metric("lower_bound").value_or(0.0);
      const double t_opt = rec->metric("t_opt").value_or(0.0);
      const bool certified = rec->metric("certified").value_or(0.0) > 0.5;
      slack.new_row()
          .cell(inst.name)
          .cell(static_cast<long>(rec->metric("tasks").value_or(0.0)))
          .cell(lb, 6)
          .cell(certified ? util::format_double(t_opt, 6) : "(uncertified)")
          .cell(certified && lb > 0.0 ? util::format_double(t_opt / lb, 4)
                                      : "-")
          .cell(static_cast<long>(rec->metric("nodes").value_or(0.0)));
    }
    md << "\n## Lower-bound slack per instance\n\n"
       << "A T/LB pin can stay green while a scheduler regresses by up to\n"
       << "the slack factor below; the T/T_opt pins close that blind spot.\n\n"
       << slack.to_markdown();
    const std::string path = options.results_dir + "/exact_report.md";
    analysis::write_file(path, md.str());
    outputs.push_back(path);
    if (options.human_out) {
      analysis::suite_table(rows).print(
          *options.human_out,
          "exact suite: ratio columns use the Lemma 2 LB, T/T_opt columns "
          "use the certified optimum (" +
              std::to_string(t_opt_of.size()) + "/" +
              std::to_string(exact_corpus()->size()) +
              " instances certified)");
      *options.human_out << '\n';
    }
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// ingest — the bundled workload catalog (data/workloads/*.dot|*.json)
// imported, per-task model-fitted and scheduled by the full registry.
// Everything is deterministic: the catalog order is the sorted filename
// order, the fitter is bit-exact, and the graphs are fixed — so the
// ratio CSV and the fit-quality CSV must be identical across runs.

std::shared_ptr<const std::vector<ingest::Workload>> ingest_catalog() {
  static std::mutex mutex;
  static std::shared_ptr<const std::vector<ingest::Workload>> cache;
  const std::lock_guard<std::mutex> lock(mutex);
  if (!cache)
    cache = std::make_shared<const std::vector<ingest::Workload>>(
        ingest::load_bundled_workloads());
  return cache;
}

std::vector<JobSpec> ingest_jobs(const SuiteOptions& options) {
  JobGrid grid;
  grid.suite = "ingest";
  for (const auto& w : *ingest_catalog()) grid.instances.push_back(w.name);
  grid.schedulers = sched::full_suite_names();
  grid.repeats = 1;  // imported graphs are fixed; repetition adds nothing
  grid.base_seed = options.base_seed;
  return grid.jobs_matching(options.filter);
}

JobRecord ingest_run(const JobSpec& spec, const CancelToken& token) {
  JobRecord rec;
  rec.spec = spec;
  if (token.cancelled()) return cancelled_record(spec);
  const auto catalog = ingest_catalog();
  const ingest::Workload* w = nullptr;
  for (const auto& c : *catalog)
    if (c.name == spec.instance) w = &c;
  if (!w)
    throw std::invalid_argument("ingest: unknown workload '" + spec.instance +
                                "'");
  // The catalogs mix all Eq. (1) kinds plus tables, so schedulers get
  // the mu tuned for the general model, the least-assuming choice.
  const double mu = analysis::optimal_mu(model::ModelKind::kGeneral);
  const auto m = analysis::measure_scheduler(
      w->graph, w->P, sched::spec_by_name(spec.scheduler, mu));
  rec.set("makespan", m.makespan);
  rec.set("lower_bound", m.lower_bound);
  rec.set("ratio", m.ratio_vs_lb);
  rec.set("utilization", m.avg_utilization);
  rec.set("tasks", static_cast<double>(w->graph.num_tasks()));
  rec.set("P", static_cast<double>(w->P));
  return rec;
}

std::vector<std::string> ingest_finalize(const std::vector<JobRecord>& records,
                                         const SuiteOptions& options) {
  std::vector<std::string> outputs;
  const auto ok = ok_records(records);
  const auto catalog = ingest_catalog();

  // Per-workload detail table: every scheduler's ratio side by side.
  util::Table detail({"workload", "tasks", "P", "scheduler", "makespan",
                      "LB (Lemma 2)", "ratio", "utilization"});
  for (const auto& w : *catalog) {
    for (const auto& name : sched::full_suite_names()) {
      const JobRecord* found = nullptr;
      for (const auto* rec : ok)
        if (rec->spec.instance == w.name && rec->spec.scheduler == name)
          found = rec;
      if (!found) continue;
      detail.new_row()
          .cell(w.name)
          .cell(static_cast<long>(w.graph.num_tasks()))
          .cell(static_cast<long>(w.P))
          .cell(name)
          .cell(found->metric("makespan").value_or(0.0), 6)
          .cell(found->metric("lower_bound").value_or(0.0), 6)
          .cell(found->metric("ratio").value_or(0.0), 6)
          .cell(found->metric("utilization").value_or(0.0), 6);
    }
  }
  if (detail.num_rows() > 0) {
    const std::string path = options.results_dir + "/ingest_detail.csv";
    analysis::write_file(path, detail.to_csv());
    outputs.push_back(path);
  }

  // Aggregate ratio table over the whole catalog, registry order.
  std::vector<analysis::AggregateRow> rows;
  for (const auto& name : sched::full_suite_names()) {
    std::vector<double> ratios;
    util::Accumulator utilization;
    for (const auto* rec : ok) {
      if (rec->spec.scheduler != name) continue;
      ratios.push_back(rec->metric("ratio").value_or(0.0));
      utilization.add(rec->metric("utilization").value_or(0.0));
    }
    if (ratios.empty()) continue;
    analysis::AggregateRow row;
    row.scheduler = name;
    row.ratio = util::summarize(ratios);
    row.mean_utilization = utilization.mean();
    rows.push_back(std::move(row));
  }
  if (!rows.empty()) {
    const auto table = analysis::suite_table(rows);
    const std::string path = options.results_dir + "/ingest_ratios.csv";
    analysis::write_file(path, table.to_csv());
    outputs.push_back(path);
    if (options.human_out) {
      table.print(*options.human_out,
                  "ingested catalog (" + std::to_string(catalog->size()) +
                      " workloads from " + ingest::default_workloads_dir() +
                      "), per-file P, ratio = makespan / Lemma-2 LB");
      *options.human_out << '\n';
    }
  }

  // Fit-quality CSV straight off the cached catalog: the fitter is
  // deterministic and the numbers are printed at 17 significant digits,
  // so two runs must produce bit-identical bytes.
  {
    const std::string path = options.results_dir + "/ingest_fit_quality.csv";
    analysis::write_file(path, ingest::fit_quality_csv(*catalog));
    outputs.push_back(path);
    if (options.human_out) {
      std::size_t fitted = 0, fallbacks = 0, explicit_n = 0;
      for (const auto& w : *catalog) {
        fitted += w.fit.fitted();
        fallbacks += w.fit.fallbacks();
        for (const auto& t : w.fit.tasks)
          if (t.source == "params" || t.source == "times") ++explicit_n;
      }
      *options.human_out << "fit quality: " << fitted << " tasks fitted, "
                         << fallbacks << " table fallbacks, " << explicit_n
                         << " explicit -> " << path << "\n\n";
    }
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// registry + run_suite

const std::vector<SuiteDef>& suite_defs() {
  static const std::vector<SuiteDef> defs = [] {
    std::vector<SuiteDef> out;
    out.push_back({{"table1",
                    "Table 1: derived bounds, measured adversary ratios, "
                    "baselines on the worst-case instances"},
                   1,
                   table1_jobs,
                   table1_run,
                   table1_finalize});
    out.push_back({{"ratio-curves",
                    "per-model optimal mu plus the dense ratio-vs-mu sweep"},
                   1,
                   ratio_curves_jobs,
                   ratio_curves_run,
                   ratio_curves_finalize});
    out.push_back({{"random-dags",
                    "scheduler suite over the random-DAG catalog, all four "
                    "speedup models"},
                   3,
                   random_dags_jobs,
                   {},  // runner built per-options below
                   random_dags_finalize});
    out.push_back({{"workflows",
                    "realistic workflows (Cholesky, LU, FFT, Montage, "
                    "wavefront) vs offline/level/malleable references"},
                   1,
                   workflows_jobs,
                   workflows_run,
                   workflows_finalize});
    out.push_back({{"resilience",
                    "re-execution under Bernoulli/Poisson failures, LPA vs "
                    "min-time"},
                   5,
                   resilience_jobs,
                   resilience_run,
                   resilience_finalize});
    out.push_back({{"selfcheck",
                    "differential self-check: cached vs reference LPA "
                    "schedules must be byte-identical over the random "
                    "corpus, plus validator and Lemma 2 oracles"},
                   6,
                   selfcheck_jobs,
                   selfcheck_run,
                   selfcheck_finalize});
    out.push_back({{"release",
                    "independent tasks released over time, three allocators "
                    "across arrival rates"},
                   3,
                   release_jobs,
                   {},  // runner built per-options below
                   release_finalize});
    out.push_back({{"improved",
                    "improved-lpa vs lpa side by side: decoupled (mu, nu) "
                    "constants, Figure 1-4 adversaries, shared check corpus"},
                   2,
                   improved_jobs,
                   {},  // runner built per-options below
                   improved_finalize});
    out.push_back({{"pisa",
                    "PISA-style adversarial tournament: annealing search "
                    "for instances separating every ordered scheduler "
                    "pair, scored against the fixed Figure 1-4 "
                    "constructions, worst instances archived as repro "
                    "JSONL"},
                   1,
                   pisa_jobs,
                   {},  // runner built per-options below
                   pisa_finalize});
    out.push_back({{"ingest",
                    "bundled workload catalog (data/workloads DOT + JSON "
                    "files) imported, per-task model-fitted, and scheduled "
                    "by the full registry; emits the deterministic "
                    "fit-quality CSV"},
                   1,
                   ingest_jobs,
                   ingest_run,
                   ingest_finalize});
    out.push_back({{"exact",
                    "true-ratio tier: every registry scheduler on the "
                    "frozen small-instance corpus, scored against the "
                    "branch-and-bound exact optimum T_opt as well as the "
                    "Lemma 2 lower bound"},
                   1,
                   exact_jobs,
                   exact_run,
                   exact_finalize});
    return out;
  }();
  return defs;
}

const SuiteDef& find_suite(const std::string& name) {
  for (const auto& def : suite_defs())
    if (def.info.name == name) return def;
  std::string known;
  for (const auto& def : suite_defs()) {
    if (!known.empty()) known += ", ";
    known += def.info.name;
  }
  throw std::invalid_argument("unknown suite '" + name + "' (known: " + known +
                              ")");
}

JobRunner suite_runner(const SuiteDef& def, const SuiteOptions& options) {
  if (def.info.name == "random-dags") return random_dags_runner(options);
  if (def.info.name == "release") return release_runner(options);
  if (def.info.name == "improved") return improved_runner(options);
  if (def.info.name == "pisa") return pisa_runner(options);
  return def.run;
}

double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
  }
#endif
  return 0.0;
}

}  // namespace

const std::vector<SuiteInfo>& suites() {
  static const std::vector<SuiteInfo> infos = [] {
    std::vector<SuiteInfo> out;
    for (const auto& def : suite_defs()) out.push_back(def.info);
    return out;
  }();
  return infos;
}

bool has_suite(const std::string& name) {
  for (const auto& def : suite_defs())
    if (def.info.name == name) return true;
  return false;
}

std::vector<JobSpec> suite_jobs(const std::string& name,
                                const SuiteOptions& options) {
  return find_suite(name).build(options);
}

SuiteReport run_suite(const std::string& name, const SuiteOptions& options) {
  const auto& def = find_suite(name);
  const auto started = std::chrono::steady_clock::now();

  auto jobs = def.build(options);
  if (!options.filter.empty() && def.info.name == "table1") {
    // table1 builds its heterogeneous job list by hand; apply the
    // generic filter here instead of inside the builder.
    std::vector<JobSpec> kept;
    for (auto& spec : jobs)
      if (spec.key().find(options.filter) != std::string::npos)
        kept.push_back(std::move(spec));
    jobs = std::move(kept);
  }

  const std::string jsonl = options.jsonl_path.empty()
                                ? options.results_dir + "/" + name + ".jsonl"
                                : options.jsonl_path;

  // --resume: collect completed job ids from a previous (possibly
  // crashed) run and skip them; their records come from the file.
  std::vector<JobRecord> resumed;
  if (options.resume) {
    std::ifstream in(jsonl);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (validate_record_line(line)) continue;  // skip damaged tail lines
      auto rec = parse_record_line(line);
      if (rec.status == "ok") resumed.push_back(std::move(rec));
    }
  }
  std::set<std::uint64_t> done_ids;
  for (const auto& rec : resumed) done_ids.insert(rec.spec.job_id);
  std::vector<JobSpec> pending;
  for (auto& spec : jobs)
    if (done_ids.count(spec.job_id) == 0) pending.push_back(std::move(spec));

  JsonlSink sink(jsonl, /*truncate=*/!options.resume);

  RunOptions run_options;
  run_options.threads = options.threads;
  run_options.job_timeout_s = options.job_timeout_s;
  run_options.total_budget_s = options.total_budget_s;
  run_options.progress = options.progress;
  run_options.sink = &sink;

  SuiteReport report;
  report.suite = name;
  report.records = run_jobs(pending, suite_runner(def, options), run_options);
  for (auto& rec : resumed) report.records.push_back(std::move(rec));
  std::sort(report.records.begin(), report.records.end(),
            [](const JobRecord& a, const JobRecord& b) {
              return a.spec.job_id < b.spec.job_id;
            });

  report.outputs.push_back(jsonl);
  if (options.write_outputs) {
    for (auto& path : def.finalize(report.records, options))
      report.outputs.push_back(std::move(path));
  }

  for (const auto& rec : report.records) {
    if (rec.status == "ok") ++report.ok;
    else if (rec.status == "error") ++report.errors;
    else if (rec.status == "timeout") ++report.timeouts;
    else ++report.cancelled;
  }
  report.resumed = resumed.size();
  report.threads = options.threads == 0 ? util::default_parallelism()
                                        : options.threads;
  report.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - started)
                      .count();
  report.jobs_per_s = report.wall_s > 0.0
                          ? static_cast<double>(report.records.size()) /
                                report.wall_s
                          : 0.0;
  return report;
}

std::string bench_json(const SuiteReport& report) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  os << "{\n"
     << "  \"suite\": \"" << report.suite << "\",\n"
     << "  \"jobs\": " << report.records.size() << ",\n"
     << "  \"ok\": " << report.ok << ",\n"
     << "  \"error\": " << report.errors << ",\n"
     << "  \"timeout\": " << report.timeouts << ",\n"
     << "  \"cancelled\": " << report.cancelled << ",\n"
     << "  \"resumed\": " << report.resumed << ",\n"
     << "  \"threads\": " << report.threads << ",\n"
     << "  \"wall_s\": " << report.wall_s << ",\n"
     << "  \"jobs_per_sec\": " << report.jobs_per_s << ",\n"
     << "  \"peak_rss_mb\": " << peak_rss_mb() << ",\n"
     << "  \"metrics\": " << obs::default_registry().to_json(2) << "\n"
     << "}\n";
  return os.str();
}

}  // namespace moldsched::engine
