#include "moldsched/engine/job.hpp"

#include <stdexcept>

#include "moldsched/util/rng.hpp"

namespace moldsched::engine {

std::string JobSpec::key() const {
  return instance + "/" + scheduler + " model=" + model::to_string(model) +
         " P=" + std::to_string(P) + " rep=" + std::to_string(repeat);
}

namespace {

template <typename T>
std::size_t axis_size(const std::vector<T>& axis) {
  return axis.empty() ? 1 : axis.size();
}

template <typename T>
const T* axis_value(const std::vector<T>& axis, std::size_t index) {
  return axis.empty() ? nullptr : &axis[index];
}

}  // namespace

std::size_t JobGrid::size() const {
  if (repeats < 1)
    throw std::invalid_argument("JobGrid::size: repeats must be >= 1");
  return axis_size(models) * axis_size(instances) * axis_size(schedulers) *
         axis_size(procs) * static_cast<std::size_t>(repeats);
}

JobSpec JobGrid::at(std::size_t id) const {
  if (id >= size()) throw std::out_of_range("JobGrid::at: id out of range");
  const std::size_t n_rep = static_cast<std::size_t>(repeats);
  const std::size_t n_p = axis_size(procs);
  const std::size_t n_sched = axis_size(schedulers);
  const std::size_t n_inst = axis_size(instances);

  std::size_t rest = id;
  const std::size_t i_rep = rest % n_rep;
  rest /= n_rep;
  const std::size_t i_p = rest % n_p;
  rest /= n_p;
  const std::size_t i_sched = rest % n_sched;
  rest /= n_sched;
  const std::size_t i_inst = rest % n_inst;
  rest /= n_inst;
  const std::size_t i_model = rest;

  JobSpec spec;
  spec.job_id = id;
  spec.suite = suite;
  if (const auto* inst = axis_value(instances, i_inst)) spec.instance = *inst;
  if (const auto* sched = axis_value(schedulers, i_sched))
    spec.scheduler = *sched;
  if (const auto* kind = axis_value(models, i_model)) spec.model = *kind;
  if (const auto* p = axis_value(procs, i_p)) spec.P = *p;
  spec.repeat = static_cast<int>(i_rep);
  spec.seed = derive_seed(base_seed, id);
  return spec;
}

std::vector<JobSpec> JobGrid::jobs() const {
  const std::size_t n = size();
  std::vector<JobSpec> out;
  out.reserve(n);
  for (std::size_t id = 0; id < n; ++id) out.push_back(at(id));
  return out;
}

std::vector<JobSpec> JobGrid::jobs_matching(const std::string& filter) const {
  if (filter.empty()) return jobs();
  std::vector<JobSpec> out;
  const std::size_t n = size();
  for (std::size_t id = 0; id < n; ++id) {
    auto spec = at(id);
    if (spec.key().find(filter) != std::string::npos)
      out.push_back(std::move(spec));
  }
  return out;
}

std::uint64_t JobGrid::derive_seed(std::uint64_t base, std::uint64_t job_id) {
  // One canonical mix for the whole library (bit-identical to the
  // historical local implementation): util::derive_seed.
  return util::derive_seed(base, job_id);
}

}  // namespace moldsched::engine
