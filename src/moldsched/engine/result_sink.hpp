// Structured per-job results and the JSONL pipeline.
//
// Every job produces one JobRecord; records stream to a JSONL file with
// crash-safe append (one flushed line per record — a killed run loses at
// most the line being written) and aggregate into the mean/min/max/CI
// tables the legacy results/*.csv formats use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "moldsched/engine/job.hpp"
#include "moldsched/util/table.hpp"

namespace moldsched::engine {

/// Outcome of one job. `metrics` is an ordered list of named doubles
/// (makespan, ratio, utilization, ...); order is part of the record's
/// canonical form so serialization is deterministic.
struct JobRecord {
  JobSpec spec;
  std::string status = "ok";  ///< ok | error | timeout | cancelled
  std::string error;          ///< what() of the escaping exception
  std::vector<std::pair<std::string, double>> metrics;
  double queue_ms = 0.0;  ///< time from batch submission to worker pickup
  double wall_ms = 0.0;   ///< measured run wall time (volatile across runs)

  void set(const std::string& name, double value);
  [[nodiscard]] std::optional<double> metric(const std::string& name) const;

  /// One JSON object, single line. `include_timing` == false omits the
  /// queue_ms/wall_ms fields — the canonical form used by determinism
  /// checks, identical across thread counts and execution orders.
  [[nodiscard]] std::string to_json(bool include_timing = true) const;
  [[nodiscard]] std::string canonical_json() const { return to_json(false); }
};

/// Validates one JSONL line against the record schema (required keys,
/// types, known status). Returns std::nullopt when valid, else a
/// description of the first violation.
[[nodiscard]] std::optional<std::string> validate_record_line(
    const std::string& line);

/// Parses a line produced by JobRecord::to_json. Throws
/// std::invalid_argument (with the validate_record_line diagnosis) on
/// malformed input.
[[nodiscard]] JobRecord parse_record_line(const std::string& line);

/// Canonical JSONL of a record batch: sorted by job_id, no timing
/// fields, one line each with trailing '\n'. Byte-identical for
/// byte-identical results.
[[nodiscard]] std::string sorted_canonical_jsonl(
    const std::vector<JobRecord>& records);

/// Crash-safe JSONL appender: opens in append mode (creating parent
/// directories), writes one line per record and flushes after each.
/// Thread-safe.
class JsonlSink {
 public:
  /// Throws std::runtime_error when the file cannot be opened.
  explicit JsonlSink(const std::string& path, bool truncate = false);

  void write(const JobRecord& record);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::size_t lines_written() const noexcept { return lines_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::mutex mutex_;
  std::size_t lines_ = 0;
};

/// Per-group summary of one metric across records (mean/min/max plus a
/// normal-approximation 95% confidence half-width).
struct MetricSummary {
  std::string group;
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double ci95 = 0.0;  ///< 1.96 * stddev / sqrt(count); 0 below 2 samples
};

/// Groups `ok` records by scheduler name and summarizes `metric`.
/// Groups appear in first-seen (job id) order.
[[nodiscard]] std::vector<MetricSummary> summarize_metric(
    const std::vector<JobRecord>& records, const std::string& metric);

/// Renders summaries as a table: group, count, mean, ci95, min, max.
[[nodiscard]] util::Table summary_table(
    const std::vector<MetricSummary>& summaries,
    const std::string& group_header, const std::string& metric_header);

}  // namespace moldsched::engine
