#include "moldsched/engine/result_sink.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <stdexcept>

namespace moldsched::engine {

namespace {

std::string format_number(double v) {
  // %.17g round-trips every finite double, keeping canonical JSONL
  // byte-identical across runs that computed identical values.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

model::ModelKind kind_from_string(const std::string& s) {
  for (const auto kind :
       {model::ModelKind::kRoofline, model::ModelKind::kCommunication,
        model::ModelKind::kAmdahl, model::ModelKind::kGeneral,
        model::ModelKind::kArbitrary}) {
    if (model::to_string(kind) == s) return kind;
  }
  throw std::invalid_argument("unknown model kind '" + s + "'");
}

// --- minimal JSON scanner for the flat record schema -----------------------

struct Scanner {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  }
  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!eat(c))
      throw std::invalid_argument(std::string("expected '") + c +
                                  "' at offset " + std::to_string(i));
  }
  [[nodiscard]] std::string string_value() {
    expect('"');
    std::string out;
    while (i < s.size() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\') {
        if (i >= s.size())
          throw std::invalid_argument("truncated escape sequence");
        const char e = s[i++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            if (i + 4 > s.size())
              throw std::invalid_argument("truncated \\u escape");
            c = static_cast<char>(
                std::strtoul(s.substr(i, 4).c_str(), nullptr, 16));
            i += 4;
            break;
          }
          default:
            throw std::invalid_argument("unsupported escape");
        }
      }
      out += c;
    }
    expect('"');
    return out;
  }
  /// Raw numeric token; converted per-field so 64-bit seeds keep full
  /// precision instead of passing through a double.
  [[nodiscard]] std::string number_token() {
    skip_ws();
    const std::size_t start = i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '-' ||
            s[i] == '+' || s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
            s[i] == 'i' || s[i] == 'n' || s[i] == 'f' || s[i] == 'a'))
      ++i;
    if (i == start)
      throw std::invalid_argument("expected number at offset " +
                                  std::to_string(start));
    return s.substr(start, i - start);
  }
};

double to_double(const std::string& token) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size())
    throw std::invalid_argument("malformed number '" + token + "'");
  return v;
}

JobRecord parse_impl(const std::string& line) {
  Scanner sc{line};
  JobRecord rec;
  bool saw_job_id = false, saw_suite = false, saw_status = false,
       saw_metrics = false, saw_seed = false, saw_scheduler = false,
       saw_instance = false, saw_model = false;
  sc.expect('{');
  if (!sc.eat('}')) {
    do {
      const std::string k = sc.string_value();
      sc.expect(':');
      if (k == "job_id") {
        rec.spec.job_id = std::strtoull(sc.number_token().c_str(), nullptr, 10);
        saw_job_id = true;
      } else if (k == "suite") {
        rec.spec.suite = sc.string_value();
        saw_suite = true;
      } else if (k == "instance") {
        rec.spec.instance = sc.string_value();
        saw_instance = true;
      } else if (k == "scheduler") {
        rec.spec.scheduler = sc.string_value();
        saw_scheduler = true;
      } else if (k == "model") {
        rec.spec.model = kind_from_string(sc.string_value());
        saw_model = true;
      } else if (k == "P") {
        rec.spec.P = static_cast<int>(std::strtol(sc.number_token().c_str(),
                                                  nullptr, 10));
      } else if (k == "param") {
        rec.spec.param = static_cast<int>(
            std::strtol(sc.number_token().c_str(), nullptr, 10));
      } else if (k == "repeat") {
        rec.spec.repeat = static_cast<int>(
            std::strtol(sc.number_token().c_str(), nullptr, 10));
      } else if (k == "seed") {
        rec.spec.seed = std::strtoull(sc.number_token().c_str(), nullptr, 10);
        saw_seed = true;
      } else if (k == "status") {
        rec.status = sc.string_value();
        saw_status = true;
      } else if (k == "error") {
        rec.error = sc.string_value();
      } else if (k == "queue_ms") {
        rec.queue_ms = to_double(sc.number_token());
      } else if (k == "wall_ms") {
        rec.wall_ms = to_double(sc.number_token());
      } else if (k == "metrics") {
        saw_metrics = true;
        sc.expect('{');
        if (!sc.eat('}')) {
          do {
            const std::string name = sc.string_value();
            sc.expect(':');
            rec.metrics.emplace_back(name, to_double(sc.number_token()));
          } while (sc.eat(','));
          sc.expect('}');
        }
      } else {
        throw std::invalid_argument("unknown key '" + k + "'");
      }
    } while (sc.eat(','));
    sc.expect('}');
  }
  sc.skip_ws();
  if (sc.i != line.size())
    throw std::invalid_argument("trailing characters after record");
  if (!saw_job_id) throw std::invalid_argument("missing key 'job_id'");
  if (!saw_suite) throw std::invalid_argument("missing key 'suite'");
  if (!saw_instance) throw std::invalid_argument("missing key 'instance'");
  if (!saw_scheduler) throw std::invalid_argument("missing key 'scheduler'");
  if (!saw_model) throw std::invalid_argument("missing key 'model'");
  if (!saw_seed) throw std::invalid_argument("missing key 'seed'");
  if (!saw_status) throw std::invalid_argument("missing key 'status'");
  if (!saw_metrics) throw std::invalid_argument("missing key 'metrics'");
  if (rec.status != "ok" && rec.status != "error" && rec.status != "timeout" &&
      rec.status != "cancelled")
    throw std::invalid_argument("unknown status '" + rec.status + "'");
  return rec;
}

}  // namespace

void JobRecord::set(const std::string& name, double value) {
  for (auto& [k, v] : metrics) {
    if (k == name) {
      v = value;
      return;
    }
  }
  metrics.emplace_back(name, value);
}

std::optional<double> JobRecord::metric(const std::string& name) const {
  for (const auto& [k, v] : metrics)
    if (k == name) return v;
  return std::nullopt;
}

std::string JobRecord::to_json(bool include_timing) const {
  std::string out = "{";
  out += "\"job_id\":" + std::to_string(spec.job_id);
  out += ",\"suite\":\"" + escape(spec.suite) + '"';
  out += ",\"instance\":\"" + escape(spec.instance) + '"';
  out += ",\"scheduler\":\"" + escape(spec.scheduler) + '"';
  out += ",\"model\":\"" + escape(model::to_string(spec.model)) + '"';
  out += ",\"P\":" + std::to_string(spec.P);
  out += ",\"param\":" + std::to_string(spec.param);
  out += ",\"repeat\":" + std::to_string(spec.repeat);
  out += ",\"seed\":" + std::to_string(spec.seed);
  out += ",\"status\":\"" + escape(status) + '"';
  if (!error.empty()) out += ",\"error\":\"" + escape(error) + '"';
  out += ",\"metrics\":{";
  bool first = true;
  for (const auto& [k, v] : metrics) {
    if (!first) out += ',';
    first = false;
    out += '"' + escape(k) + "\":" + format_number(v);
  }
  out += '}';
  if (include_timing) {
    out += ",\"queue_ms\":" + format_number(queue_ms);
    out += ",\"wall_ms\":" + format_number(wall_ms);
  }
  out += '}';
  return out;
}

std::optional<std::string> validate_record_line(const std::string& line) {
  try {
    (void)parse_impl(line);
    return std::nullopt;
  } catch (const std::exception& e) {
    return e.what();
  }
}

JobRecord parse_record_line(const std::string& line) {
  try {
    return parse_impl(line);
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string("parse_record_line: ") + e.what());
  }
}

std::string sorted_canonical_jsonl(const std::vector<JobRecord>& records) {
  std::vector<const JobRecord*> sorted;
  sorted.reserve(records.size());
  for (const auto& r : records) sorted.push_back(&r);
  std::sort(sorted.begin(), sorted.end(),
            [](const JobRecord* a, const JobRecord* b) {
              return a->spec.job_id < b->spec.job_id;
            });
  std::string out;
  for (const auto* r : sorted) {
    out += r->canonical_json();
    out += '\n';
  }
  return out;
}

JsonlSink::JsonlSink(const std::string& path, bool truncate) : path_(path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  out_.open(path, truncate ? std::ios::trunc : std::ios::app);
  if (!out_) throw std::runtime_error("JsonlSink: cannot open " + path);
}

void JsonlSink::write(const JobRecord& record) {
  const std::string line = record.to_json() + '\n';
  const std::lock_guard<std::mutex> lock(mutex_);
  out_ << line;
  out_.flush();  // crash-safe: at most the in-flight line is lost
  if (!out_) throw std::runtime_error("JsonlSink: write failed on " + path_);
  ++lines_;
}

std::vector<MetricSummary> summarize_metric(
    const std::vector<JobRecord>& records, const std::string& metric) {
  std::vector<std::string> order;
  std::map<std::string, std::vector<double>> groups;
  for (const auto& rec : records) {
    if (rec.status != "ok") continue;
    const auto value = rec.metric(metric);
    if (!value) continue;
    auto [it, inserted] = groups.try_emplace(rec.spec.scheduler);
    if (inserted) order.push_back(rec.spec.scheduler);
    it->second.push_back(*value);
  }
  std::vector<MetricSummary> out;
  out.reserve(order.size());
  for (const auto& name : order) {
    const auto& xs = groups[name];
    MetricSummary s;
    s.group = name;
    s.count = xs.size();
    s.min = s.max = xs.front();
    double sum = 0.0;
    for (const double x : xs) {
      sum += x;
      s.min = std::min(s.min, x);
      s.max = std::max(s.max, x);
    }
    s.mean = sum / static_cast<double>(xs.size());
    if (xs.size() > 1) {
      double sq = 0.0;
      for (const double x : xs) sq += (x - s.mean) * (x - s.mean);
      const double sd = std::sqrt(sq / static_cast<double>(xs.size() - 1));
      s.ci95 = 1.96 * sd / std::sqrt(static_cast<double>(xs.size()));
    }
    out.push_back(std::move(s));
  }
  return out;
}

util::Table summary_table(const std::vector<MetricSummary>& summaries,
                          const std::string& group_header,
                          const std::string& metric_header) {
  util::Table t({group_header, "count", metric_header + " mean", "ci95",
                 "min", "max"});
  for (const auto& s : summaries) {
    t.new_row()
        .cell(s.group)
        .cell(static_cast<unsigned long>(s.count))
        .cell(s.mean, 3)
        .cell(s.ci95, 3)
        .cell(s.min, 3)
        .cell(s.max, 3);
  }
  return t;
}

}  // namespace moldsched::engine
