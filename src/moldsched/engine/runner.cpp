#include "moldsched/engine/runner.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>

#include "moldsched/obs/metrics.hpp"
#include "moldsched/obs/trace_writer.hpp"

namespace moldsched::engine {

namespace {

/// Trace lane for the calling thread: its worker index, or one lane
/// past the pool (the caller participates in parallel_for).
int trace_lane(obs::TraceWriter& tracer) {
  const Executor& pool = Executor::global();
  const std::size_t worker = pool.current_worker();
  const int tid = worker == Executor::npos
                      ? static_cast<int>(pool.thread_count())
                      : static_cast<int>(worker);
  tracer.set_thread_name(obs::TraceWriter::kEnginePid, tid,
                         worker == Executor::npos
                             ? "caller"
                             : "worker " + std::to_string(worker));
  return tid;
}

}  // namespace

std::vector<JobRecord> run_jobs(const std::vector<JobSpec>& jobs,
                                const JobRunner& runner,
                                const RunOptions& options) {
  if (!runner) throw std::invalid_argument("run_jobs: empty runner");
  std::vector<JobRecord> records(jobs.size());
  if (jobs.empty()) return records;

  const CancelToken budget =
      options.total_budget_s > 0.0
          ? CancelToken::deadline_in(options.total_budget_s)
          : CancelToken();

  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;

  auto& registry = obs::default_registry();
  obs::Counter& jobs_total = registry.counter("engine.jobs.total");
  obs::Counter& jobs_ok = registry.counter("engine.jobs.ok");
  obs::Counter& jobs_error = registry.counter("engine.jobs.error");
  obs::Counter& jobs_timeout = registry.counter("engine.jobs.timeout");
  obs::Counter& jobs_cancelled = registry.counter("engine.jobs.cancelled");
  obs::Histogram& wall_hist = registry.histogram("engine.job.wall_ms");
  obs::Histogram& queue_hist = registry.histogram("engine.job.queue_ms");

  const auto batch_start = std::chrono::steady_clock::now();

  Executor::global().parallel_for(
      jobs.size(),
      [&](std::size_t i) {
        const JobSpec& spec = jobs[i];
        JobRecord& rec = records[i];
        rec.spec = spec;
        rec.queue_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - batch_start)
                           .count();
        if (options.observer)
          options.observer->on_job_start(spec.job_id, spec.key(),
                                         rec.queue_ms);
        obs::TraceWriter* tracer = obs::global_tracer();
        const double span_ts = tracer ? tracer->now_us() : 0.0;

        if (budget.cancelled()) {
          rec.status = "cancelled";
          rec.error = "run budget exhausted before start";
          if (tracer)
            tracer->instant(obs::TraceWriter::kEnginePid, trace_lane(*tracer),
                            "cancelled", "engine", tracer->now_us(),
                            {{"job", spec.key()}});
        } else {
          const CancelToken token =
              options.job_timeout_s > 0.0
                  ? CancelToken::deadline_in(options.job_timeout_s, budget)
                  : budget;
          const auto start = std::chrono::steady_clock::now();
          try {
            rec = runner(spec, token);
            rec.spec = spec;  // runner must not rewrite identity fields
          } catch (const std::exception& e) {
            rec.status = "error";
            rec.error = e.what();
          } catch (...) {
            rec.status = "error";
            rec.error = "unknown exception";
          }
          rec.wall_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
          rec.queue_ms = std::chrono::duration<double, std::milli>(
                             start - batch_start)
                             .count();
          // A job that outlived its own deadline reports "timeout" even
          // if the runner managed to finish: its budget was exceeded.
          if (rec.status == "ok" && options.job_timeout_s > 0.0 &&
              rec.wall_ms > options.job_timeout_s * 1e3)
            rec.status = "timeout";
          if (tracer) {
            const int tid = trace_lane(*tracer);
            tracer->complete_span(obs::TraceWriter::kEnginePid, tid,
                                  spec.key(), "engine", span_ts,
                                  rec.wall_ms * 1e3,
                                  {{"status", rec.status},
                                   {"queue_ms", std::to_string(rec.queue_ms)}});
            if (rec.status == "timeout")
              tracer->instant(obs::TraceWriter::kEnginePid, tid, "timeout",
                              "engine", tracer->now_us(),
                              {{"job", spec.key()}});
          }
        }

        jobs_total.add();
        if (rec.status == "ok") jobs_ok.add();
        else if (rec.status == "error") jobs_error.add();
        else if (rec.status == "timeout") jobs_timeout.add();
        else if (rec.status == "cancelled") jobs_cancelled.add();
        wall_hist.observe(rec.wall_ms);
        queue_hist.observe(rec.queue_ms);
        if (options.observer)
          options.observer->on_job_end(spec.job_id, spec.key(), rec.status,
                                       rec.wall_ms);

        if (options.sink) options.sink->write(rec);
        const std::size_t finished =
            done.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (options.progress) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          options.progress(rec, finished, jobs.size());
        }
      },
      options.threads, /*chunk=*/1);

  return records;
}

}  // namespace moldsched::engine
