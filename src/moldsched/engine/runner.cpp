#include "moldsched/engine/runner.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>

namespace moldsched::engine {

std::vector<JobRecord> run_jobs(const std::vector<JobSpec>& jobs,
                                const JobRunner& runner,
                                const RunOptions& options) {
  if (!runner) throw std::invalid_argument("run_jobs: empty runner");
  std::vector<JobRecord> records(jobs.size());
  if (jobs.empty()) return records;

  const CancelToken budget =
      options.total_budget_s > 0.0
          ? CancelToken::deadline_in(options.total_budget_s)
          : CancelToken();

  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;

  Executor::global().parallel_for(
      jobs.size(),
      [&](std::size_t i) {
        const JobSpec& spec = jobs[i];
        JobRecord& rec = records[i];
        rec.spec = spec;

        if (budget.cancelled()) {
          rec.status = "cancelled";
          rec.error = "run budget exhausted before start";
        } else {
          const CancelToken token =
              options.job_timeout_s > 0.0
                  ? CancelToken::deadline_in(options.job_timeout_s, budget)
                  : budget;
          const auto start = std::chrono::steady_clock::now();
          try {
            rec = runner(spec, token);
            rec.spec = spec;  // runner must not rewrite identity fields
          } catch (const std::exception& e) {
            rec.status = "error";
            rec.error = e.what();
          } catch (...) {
            rec.status = "error";
            rec.error = "unknown exception";
          }
          rec.wall_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
          // A job that outlived its own deadline reports "timeout" even
          // if the runner managed to finish: its budget was exceeded.
          if (rec.status == "ok" && options.job_timeout_s > 0.0 &&
              rec.wall_ms > options.job_timeout_s * 1e3)
            rec.status = "timeout";
        }

        if (options.sink) options.sink->write(rec);
        const std::size_t finished =
            done.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (options.progress) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          options.progress(rec, finished, jobs.size());
        }
      },
      options.threads, /*chunk=*/1);

  return records;
}

}  // namespace moldsched::engine
