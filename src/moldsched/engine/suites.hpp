// Named experiment suites on top of the job engine.
//
// A suite turns a name ("table1", "random-dags", ...) into a declarative
// job list, a runner mapping each JobSpec to a JobRecord, and a
// finalizer that writes the legacy results/*.csv outputs from the
// record stream. The moldsched_run CLI and the thin bench wrappers are
// both built on run_suite().
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "moldsched/engine/job.hpp"
#include "moldsched/engine/result_sink.hpp"

namespace moldsched::engine {

struct SuiteOptions {
  unsigned threads = 0;      ///< 0 = util::default_parallelism()
  int repeats = 0;           ///< 0 = the suite's default repetition count
  std::uint64_t base_seed = 1234;
  std::string filter;        ///< substring filter on JobSpec::key()
  std::string results_dir = "results";
  std::string jsonl_path;    ///< "" = <results_dir>/<suite>.jsonl
  double job_timeout_s = 0.0;
  double total_budget_s = 0.0;
  bool write_outputs = true; ///< run the suite's CSV finalizer
  bool resume = false;       ///< skip jobs already "ok" in the JSONL file
  std::ostream* human_out = nullptr;  ///< legacy tables printed here
  std::function<void(const JobRecord&, std::size_t done, std::size_t total)>
      progress;
};

struct SuiteReport {
  std::string suite;
  std::vector<JobRecord> records;     ///< sorted by job_id
  std::vector<std::string> outputs;   ///< files written (JSONL first)
  double wall_s = 0.0;
  double jobs_per_s = 0.0;
  std::size_t ok = 0;
  std::size_t errors = 0;
  std::size_t timeouts = 0;
  std::size_t cancelled = 0;
  std::size_t resumed = 0;            ///< jobs skipped via --resume
  unsigned threads = 0;
};

struct SuiteInfo {
  std::string name;
  std::string description;
};

/// All registered suites, in presentation order.
[[nodiscard]] const std::vector<SuiteInfo>& suites();

[[nodiscard]] bool has_suite(const std::string& name);

/// Builds the suite's (possibly filtered) job list without running it.
[[nodiscard]] std::vector<JobSpec> suite_jobs(const std::string& name,
                                              const SuiteOptions& options = {});

/// Runs one suite end to end: enumerate jobs, execute them on the
/// persistent executor (streaming records to JSONL), then finalize the
/// CSV outputs. Throws std::invalid_argument for an unknown suite name,
/// listing the known ones.
[[nodiscard]] SuiteReport run_suite(const std::string& name,
                                    const SuiteOptions& options = {});

/// Machine-readable perf record of one suite run (jobs/sec, wall time,
/// status counts, peak RSS) — the BENCH_<suite>.json payload.
[[nodiscard]] std::string bench_json(const SuiteReport& report);

}  // namespace moldsched::engine
