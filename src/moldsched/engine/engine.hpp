// Umbrella header for the parallel experiment engine: declarative job
// grids, the persistent work-stealing executor, the JSONL result
// pipeline and the named experiment suites behind moldsched_run.
#pragma once

#include "moldsched/engine/executor.hpp"
#include "moldsched/engine/job.hpp"
#include "moldsched/engine/result_sink.hpp"
#include "moldsched/engine/runner.hpp"
#include "moldsched/engine/suites.hpp"
