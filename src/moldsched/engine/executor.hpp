// Persistent work-stealing executor for the experiment engine.
//
// One pool outlives all experiment suites (no per-call thread spawning):
// each worker owns a deque, pushes/pops its own work LIFO and steals
// FIFO from its peers. Cooperative cancellation is carried by
// CancelToken — compute jobs poll it at natural boundaries (between
// repetitions, between instances), which is how per-job wall-clock
// timeouts and whole-run budgets are enforced without preemption.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace moldsched::engine {

/// Shared cancellation state. Copies observe the same flag; a token is
/// "cancelled" once request_cancel() was called, its deadline passed, or
/// its parent token is cancelled. Default-constructed tokens never
/// cancel, so hot loops can poll unconditionally.
class CancelToken {
 public:
  CancelToken();

  /// A token that cancels `seconds` from now (and whenever `parent`
  /// does). Pass a negative value for "already expired".
  [[nodiscard]] static CancelToken deadline_in(double seconds);
  [[nodiscard]] static CancelToken deadline_in(double seconds,
                                               const CancelToken& parent);

  /// Manually cancels this token (and every copy of it).
  void request_cancel() const noexcept;

  [[nodiscard]] bool cancelled() const noexcept;

  /// Seconds until the deadline; +inf when none, <= 0 when passed.
  [[nodiscard]] double seconds_left() const noexcept;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// Fixed-size pool of worker threads with per-worker deques and work
/// stealing. Threads are started once and live until destruction, so
/// repeated parallel sections pay no spawn cost.
class Executor {
 public:
  /// `threads` == 0 picks util::default_parallelism().
  explicit Executor(unsigned threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Process-wide pool, created on first use with default parallelism.
  [[nodiscard]] static Executor& global();

  [[nodiscard]] unsigned thread_count() const noexcept;

  /// Enqueues a fire-and-forget task. From a worker thread the task goes
  /// to that worker's own deque (LIFO, cache-friendly); from outside it
  /// is injected round-robin. Tasks must not throw; escaped exceptions
  /// are swallowed.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by
  /// tasks) has finished.
  void wait_idle();

  /// Runs fn(i) for all i in [0, count), using at most `max_workers`
  /// concurrent executors (0 = util::default_parallelism(); the calling
  /// thread is one of them, so this never deadlocks when invoked from a
  /// worker). Iterations are claimed in chunks of `chunk` (0 = derived
  /// from count and worker count) through a shared counter, which
  /// load-balances uneven iteration costs.
  ///
  /// If any iteration throws, the first exception in iteration order is
  /// rethrown after all claimed work finishes; remaining iterations may
  /// or may not run.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn,
                    unsigned max_workers = 0, std::size_t chunk = 0);

  /// True when called from one of this pool's worker threads.
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// Index in [0, thread_count()) of the calling worker thread, or npos
  /// when the caller is not one of this pool's workers. Stable for the
  /// thread's lifetime, so it doubles as a trace lane id.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t current_worker() const noexcept;

  /// Total tasks + chunks executed so far (heartbeat/diagnostics).
  [[nodiscard]] std::uint64_t tasks_executed() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace moldsched::engine
