// Parallel execution of job batches on the persistent executor, with
// per-job wall-clock timeouts, a whole-run budget, and a serialized
// progress/heartbeat callback.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "moldsched/engine/executor.hpp"
#include "moldsched/engine/job.hpp"
#include "moldsched/engine/result_sink.hpp"
#include "moldsched/obs/observer.hpp"

namespace moldsched::engine {

/// Computes one job. Implementations poll `token` at natural boundaries
/// (between repetitions, instances, sweep points) and return early when
/// it fires; the engine stamps the final status. Exceptions are caught
/// by the engine and recorded as status "error".
using JobRunner = std::function<JobRecord(const JobSpec&, const CancelToken&)>;

struct RunOptions {
  unsigned threads = 0;        ///< 0 = util::default_parallelism()
  double job_timeout_s = 0.0;  ///< 0 = no per-job timeout
  double total_budget_s = 0.0; ///< 0 = no whole-run budget; jobs that
                               ///< would start after it are "cancelled"
  /// Called after each job completes (serialized; done counts finished
  /// jobs). Doubles as a heartbeat: it fires even for cancelled jobs.
  std::function<void(const JobRecord&, std::size_t done, std::size_t total)>
      progress;
  JsonlSink* sink = nullptr;  ///< optional streaming sink (thread-safe)
  /// Optional lifecycle observer: on_job_start fires when a worker picks
  /// the job up (queue_ms = time spent waiting since batch submission),
  /// on_job_end when its record is final. Must be thread-safe; called
  /// concurrently from worker threads.
  obs::Observer* observer = nullptr;
};

/// Runs every job through `runner` on the global executor and returns
/// records in job order (records[i] belongs to jobs[i] regardless of
/// which thread ran it). Result fields are thread-count independent;
/// only wall_ms and statuses produced by timeouts/budgets vary.
[[nodiscard]] std::vector<JobRecord> run_jobs(const std::vector<JobSpec>& jobs,
                                              const JobRunner& runner,
                                              const RunOptions& options = {});

}  // namespace moldsched::engine
