#include "moldsched/engine/executor.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "moldsched/obs/metrics.hpp"
#include "moldsched/obs/trace_writer.hpp"
#include "moldsched/util/parallel.hpp"

namespace moldsched::engine {

// ---------------------------------------------------------------------------
// CancelToken

struct CancelToken::State {
  std::atomic<bool> flag{false};
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  std::shared_ptr<State> parent;

  [[nodiscard]] bool cancelled() const noexcept {
    if (flag.load(std::memory_order_relaxed)) return true;
    if (has_deadline && std::chrono::steady_clock::now() >= deadline)
      return true;
    return parent && parent->cancelled();
  }
};

CancelToken::CancelToken() : state_(std::make_shared<State>()) {}

CancelToken CancelToken::deadline_in(double seconds) {
  CancelToken t;
  t.state_->has_deadline = true;
  t.state_->deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  return t;
}

CancelToken CancelToken::deadline_in(double seconds,
                                     const CancelToken& parent) {
  CancelToken t = deadline_in(seconds);
  t.state_->parent = parent.state_;
  return t;
}

void CancelToken::request_cancel() const noexcept {
  state_->flag.store(true, std::memory_order_relaxed);
}

bool CancelToken::cancelled() const noexcept { return state_->cancelled(); }

double CancelToken::seconds_left() const noexcept {
  double left = std::numeric_limits<double>::infinity();
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->flag.load(std::memory_order_relaxed)) return 0.0;
    if (s->has_deadline) {
      const double mine =
          std::chrono::duration<double>(s->deadline -
                                        std::chrono::steady_clock::now())
              .count();
      left = std::min(left, mine);
    }
  }
  return left;
}

// ---------------------------------------------------------------------------
// Executor

namespace {

struct WorkerQueue {
  std::mutex mutex;
  std::deque<std::function<void()>> tasks;
};

thread_local const Executor* tl_pool = nullptr;
thread_local std::size_t tl_worker = 0;

}  // namespace

struct Executor::Impl {
  std::vector<std::unique_ptr<WorkerQueue>> queues;
  std::vector<std::thread> threads;

  std::mutex sleep_mutex;
  std::condition_variable sleep_cv;

  std::mutex idle_mutex;
  std::condition_variable idle_cv;

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> queued{0};   // tasks sitting in deques
  std::atomic<std::size_t> pending{0};  // queued + currently running
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::size_t> round_robin{0};

  const Executor* owner = nullptr;

  // Sharded counters from the process registry: one relaxed atomic
  // add per pop/steal, so instrumentation does not serialize workers.
  obs::Counter& submits = obs::default_registry().counter(
      "engine.executor.submitted");
  obs::Counter& pops = obs::default_registry().counter(
      "engine.executor.pops");
  obs::Counter& steals = obs::default_registry().counter(
      "engine.executor.steals");

  void push(std::size_t worker, std::function<void()> task) {
    {
      const std::lock_guard<std::mutex> lock(queues[worker]->mutex);
      queues[worker]->tasks.push_back(std::move(task));
    }
    queued.fetch_add(1, std::memory_order_release);
    sleep_cv.notify_one();
  }

  /// Own deque back (LIFO), then steal peers' fronts (FIFO).
  [[nodiscard]] std::function<void()> take(std::size_t self) {
    {
      auto& q = *queues[self];
      const std::lock_guard<std::mutex> lock(q.mutex);
      if (!q.tasks.empty()) {
        auto task = std::move(q.tasks.back());
        q.tasks.pop_back();
        queued.fetch_sub(1, std::memory_order_relaxed);
        pops.add();
        return task;
      }
    }
    const std::size_t n = queues.size();
    for (std::size_t k = 1; k < n; ++k) {
      const std::size_t victim = (self + k) % n;
      auto& q = *queues[victim];
      const std::lock_guard<std::mutex> lock(q.mutex);
      if (!q.tasks.empty()) {
        auto task = std::move(q.tasks.front());
        q.tasks.pop_front();
        queued.fetch_sub(1, std::memory_order_relaxed);
        steals.add();
        if (obs::TraceWriter* tracer = obs::global_tracer())
          tracer->instant(obs::TraceWriter::kEnginePid,
                          static_cast<int>(self), "steal", "engine",
                          tracer->now_us(),
                          {{"victim", std::to_string(victim)}});
        return task;
      }
    }
    return {};
  }

  void run_task(std::function<void()>& task) {
    try {
      task();
    } catch (...) {
      // submit() documents fire-and-forget tasks as non-throwing;
      // anything that escapes is dropped rather than terminating.
    }
    executed.fetch_add(1, std::memory_order_relaxed);
    if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::lock_guard<std::mutex> lock(idle_mutex);
      idle_cv.notify_all();
    }
  }

  void worker_main(std::size_t index) {
    tl_pool = owner;
    tl_worker = index;
    for (;;) {
      auto task = take(index);
      if (task) {
        run_task(task);
        continue;
      }
      std::unique_lock<std::mutex> lock(sleep_mutex);
      sleep_cv.wait(lock, [&] {
        return stop.load(std::memory_order_relaxed) ||
               queued.load(std::memory_order_acquire) > 0;
      });
      if (stop.load(std::memory_order_relaxed) &&
          queued.load(std::memory_order_acquire) == 0)
        return;
    }
  }
};

Executor::Executor(unsigned threads) : impl_(std::make_unique<Impl>()) {
  if (threads == 0) threads = util::default_parallelism();
  impl_->owner = this;
  impl_->queues.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    impl_->queues.push_back(std::make_unique<WorkerQueue>());
  impl_->threads.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    impl_->threads.emplace_back([this, i] { impl_->worker_main(i); });
}

Executor::~Executor() {
  {
    const std::lock_guard<std::mutex> lock(impl_->sleep_mutex);
    impl_->stop.store(true, std::memory_order_relaxed);
  }
  impl_->sleep_cv.notify_all();
  for (auto& t : impl_->threads) t.join();
}

Executor& Executor::global() {
  static Executor pool;
  return pool;
}

unsigned Executor::thread_count() const noexcept {
  return static_cast<unsigned>(impl_->threads.size());
}

bool Executor::on_worker_thread() const noexcept { return tl_pool == this; }

std::size_t Executor::current_worker() const noexcept {
  return tl_pool == this ? tl_worker : npos;
}

std::uint64_t Executor::tasks_executed() const noexcept {
  return impl_->executed.load(std::memory_order_relaxed);
}

void Executor::submit(std::function<void()> task) {
  if (!task) throw std::invalid_argument("Executor::submit: empty task");
  impl_->pending.fetch_add(1, std::memory_order_acq_rel);
  impl_->submits.add();
  const std::size_t target =
      on_worker_thread()
          ? tl_worker
          : impl_->round_robin.fetch_add(1, std::memory_order_relaxed) %
                impl_->queues.size();
  impl_->push(target, std::move(task));
}

void Executor::wait_idle() {
  std::unique_lock<std::mutex> lock(impl_->idle_mutex);
  impl_->idle_cv.wait(lock, [&] {
    return impl_->pending.load(std::memory_order_acquire) == 0;
  });
}

namespace {

/// Shared state of one parallel_for call. Helpers hold it by shared_ptr
/// so a helper scheduled after the call returned exits cleanly; `fn` is
/// only dereferenced while at least one chunk is unfinished, which the
/// caller's completion wait guarantees to outlive.
struct ForLoop {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t count = 0;
  std::size_t chunk = 1;
  std::size_t total_chunks = 0;
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> done_chunks{0};

  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = std::numeric_limits<std::size_t>::max();

  std::mutex done_mutex;
  std::condition_variable done_cv;

  void record_error(std::size_t index) {
    const std::lock_guard<std::mutex> lock(error_mutex);
    if (index < first_error_index) {
      first_error_index = index;
      first_error = std::current_exception();
    }
  }

  /// Claims and runs chunks until none are left.
  void drain() {
    for (;;) {
      const std::size_t c =
          next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= total_chunks) return;
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(count, lo + chunk);
      for (std::size_t i = lo; i < hi; ++i) {
        try {
          (*fn)(i);
        } catch (...) {
          record_error(i);
        }
      }
      if (done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          total_chunks) {
        const std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

void Executor::parallel_for(std::size_t count,
                            const std::function<void(std::size_t)>& fn,
                            unsigned max_workers, std::size_t chunk) {
  if (!fn)
    throw std::invalid_argument("Executor::parallel_for: empty function");
  if (count == 0) return;
  if (max_workers == 0) max_workers = util::default_parallelism();
  const std::size_t workers =
      std::min<std::size_t>(max_workers, count);

  if (workers <= 1 || count == 1) {
    // Serial path: propagate immediately, as a plain loop would.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto loop = std::make_shared<ForLoop>();
  loop->fn = &fn;
  loop->count = count;
  if (chunk == 0) chunk = std::max<std::size_t>(1, count / (workers * 8));
  loop->chunk = chunk;
  loop->total_chunks = (count + chunk - 1) / chunk;

  // The caller participates, so at most workers-1 helpers are needed —
  // and never more than there are chunks to claim.
  const std::size_t helpers =
      std::min(workers - 1, loop->total_chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h)
    submit([loop] { loop->drain(); });

  loop->drain();

  {
    std::unique_lock<std::mutex> lock(loop->done_mutex);
    loop->done_cv.wait(lock, [&] {
      return loop->done_chunks.load(std::memory_order_acquire) ==
             loop->total_chunks;
    });
  }
  if (loop->first_error) std::rethrow_exception(loop->first_error);
}

}  // namespace moldsched::engine
