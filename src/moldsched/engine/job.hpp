// Declarative experiment jobs: a JobGrid is the cartesian product of
// instance names x scheduler names x speedup models x processor counts
// x repetitions, enumerated in a fixed order. Each job derives its RNG
// seed from (base_seed, job_id) alone, so results are independent of
// which thread runs the job and in what order — the property the
// determinism tests pin down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "moldsched/model/speedup_model.hpp"

namespace moldsched::engine {

/// One fully specified unit of work: "run scheduler S on instance I
/// under model M at processor count P with seed r, repetition k".
struct JobSpec {
  std::uint64_t job_id = 0;  ///< index in the grid's enumeration order
  std::string suite;
  std::string instance;   ///< generator / instance name within the suite
  std::string scheduler;  ///< sched::SchedulerSpec name (or suite-defined)
  model::ModelKind model = model::ModelKind::kRoofline;
  int P = 0;      ///< platform size
  int param = 0;  ///< suite-specific knob (e.g. adversary size K)
  int repeat = 0;
  std::uint64_t seed = 0;  ///< derived: splitmix64(base_seed, job_id)

  /// "instance/scheduler model=... P=... rep=..." — the string --filter
  /// substring-matches against, also used as a stable sort key.
  [[nodiscard]] std::string key() const;
};

/// Cartesian product over the five axes. Axes left empty contribute a
/// single neutral value so small suites can use only the axes they need.
struct JobGrid {
  std::string suite;
  std::vector<std::string> instances;
  std::vector<std::string> schedulers;
  std::vector<model::ModelKind> models;
  std::vector<int> procs;
  int repeats = 1;
  std::uint64_t base_seed = 0;

  /// Number of jobs in the product. Throws std::invalid_argument on
  /// repeats < 1.
  [[nodiscard]] std::size_t size() const;

  /// Decodes job `id` (mixed-radix: model is the slowest axis, repeat
  /// the fastest). Pure: at(i) never depends on prior calls.
  [[nodiscard]] JobSpec at(std::size_t id) const;

  /// All jobs in enumeration order.
  [[nodiscard]] std::vector<JobSpec> jobs() const;

  /// Jobs whose key() contains `filter` (all jobs when empty). Job ids
  /// and seeds are those of the full grid, so filtering never changes
  /// the surviving jobs' results.
  [[nodiscard]] std::vector<JobSpec> jobs_matching(
      const std::string& filter) const;

  /// splitmix64-style mix of (base, job_id); stable across platforms,
  /// distinct for distinct ids, independent of execution order.
  [[nodiscard]] static std::uint64_t derive_seed(std::uint64_t base,
                                                 std::uint64_t job_id);
};

}  // namespace moldsched::engine
