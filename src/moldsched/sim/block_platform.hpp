// Processor management with *contiguous* block allocation: tasks occupy
// an interval [lo, lo+k) of processor indices, as required by torus/mesh
// machines and by allocators that avoid fragmenting the interconnect.
// The paper's theory treats processors as a pure count; this platform
// variant supports the contiguity ablation that measures what that
// abstraction gives away.
#pragma once

#include <map>

namespace moldsched::sim {

class BlockPlatform {
 public:
  /// Throws std::invalid_argument unless P >= 1.
  explicit BlockPlatform(int P);

  [[nodiscard]] int total() const noexcept { return total_; }
  [[nodiscard]] int in_use() const noexcept { return in_use_; }
  [[nodiscard]] int available() const noexcept { return total_ - in_use_; }

  /// Size of the largest free contiguous block (0 if the machine is full).
  [[nodiscard]] int largest_free_block() const;

  /// First-fit: claims the lowest-indexed free block of k processors.
  /// Returns the block's first processor index, or -1 if no contiguous
  /// block of size k exists (even when k <= available(): that is
  /// fragmentation). Throws on k < 1.
  int acquire_block(int k);

  /// Releases a block previously returned by acquire_block. Throws
  /// std::logic_error if [lo, lo+k) is not exactly an allocated block
  /// suffix/prefix-consistent with a prior acquire.
  void release_block(int lo, int k);

 private:
  int total_;
  int in_use_ = 0;
  std::map<int, int> free_;  // lo -> length, disjoint, non-adjacent
};

}  // namespace moldsched::sim
