// Post-hoc schedule validation: every property a feasible moldable-DAG
// schedule must satisfy, checked independently of the scheduler that
// produced the trace. Tests run every simulated schedule through this.
#pragma once

#include <string>
#include <vector>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/sim/trace.hpp"

namespace moldsched::sim {

struct ValidationReport {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Checks, for the given graph and platform size:
///  * every task of the graph appears exactly once in the trace;
///  * every allocation p is an integer in [1, P];
///  * every task runs for exactly t_j(p) (within tolerance) — moldable,
///    non-preemptive, no restarts;
///  * precedence: no task starts before all its predecessors ended;
///  * capacity: at every instant the running tasks use at most P procs.
[[nodiscard]] ValidationReport validate_schedule(const graph::TaskGraph& g,
                                                 const Trace& trace, int P,
                                                 double tolerance = 1e-9);

/// Convenience for tests: throws std::logic_error with the full report if
/// validation fails.
void expect_valid_schedule(const graph::TaskGraph& g, const Trace& trace,
                           int P, double tolerance = 1e-9);

}  // namespace moldsched::sim
