// Discrete-event core: a stable, time-ordered event queue.
//
// Events carry an opaque int64 payload (typically a task or chain id).
// Ties in time are broken by insertion sequence number, which makes every
// simulation deterministic regardless of heap internals.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "moldsched/obs/observer.hpp"

namespace moldsched::sim {

using Time = double;

struct Event {
  Time time = 0.0;
  std::uint64_t seq = 0;  ///< insertion sequence; breaks time ties FIFO
  std::int64_t payload = 0;
};

class EventQueue {
 public:
  /// Schedules an event. Throws std::invalid_argument on a non-finite or
  /// negative time, and std::logic_error if time is before now() (the
  /// simulation cannot travel backwards).
  void schedule(Time time, std::int64_t payload);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event. Throws std::logic_error if empty.
  [[nodiscard]] Time next_time() const;

  /// Pops and returns the earliest event, advancing now() to its time.
  /// Throws std::logic_error if empty.
  Event pop();

  /// Pops every event scheduled at exactly next_time(); the batch is in
  /// insertion order. Throws std::logic_error if empty.
  [[nodiscard]] std::vector<Event> pop_simultaneous();

  /// Current simulation time: the time of the last popped event.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Attaches an instrumentation observer (nullptr detaches; the
  /// default). The observer sees every insertion
  /// (on_event_scheduled) and every simultaneous batch about to be
  /// processed (on_event_batch); it must outlive the queue or be
  /// detached first.
  void set_observer(obs::Observer* observer) noexcept {
    observer_ = observer;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  Time now_ = 0.0;
  obs::Observer* observer_ = nullptr;
};

}  // namespace moldsched::sim
