// Discrete-event core: a stable, time-ordered event queue.
//
// Events carry an opaque int64 payload (typically a task or chain id).
// Ties in time are broken by insertion sequence number, which makes every
// simulation deterministic regardless of heap internals.
//
// The heap is an explicit binary heap over a std::vector (rather than
// std::priority_queue) so callers on the simulation hot path can
// reserve() capacity up front and batch-pop time-tied events into a
// reusable buffer without per-batch allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "moldsched/obs/observer.hpp"

namespace moldsched::sim {

using Time = double;

struct Event {
  Time time = 0.0;
  std::uint64_t seq = 0;  ///< insertion sequence; breaks time ties FIFO
  std::int64_t payload = 0;
};

class EventQueue {
 public:
  /// Schedules an event. Throws std::invalid_argument on a non-finite or
  /// negative time, and std::logic_error if time is before now() (the
  /// simulation cannot travel backwards).
  void schedule(Time time, std::int64_t payload);

  /// Pre-allocates heap capacity for `n` pending events.
  void reserve(std::size_t n) { heap_.reserve(n); }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event. Throws std::logic_error if empty.
  [[nodiscard]] Time next_time() const;

  /// Pops and returns the earliest event, advancing now() to its time.
  /// Throws std::logic_error if empty.
  Event pop();

  /// Pops every event scheduled at exactly next_time(); the batch is in
  /// insertion order. Throws std::logic_error if empty.
  [[nodiscard]] std::vector<Event> pop_simultaneous();

  /// Allocation-free variant for hot loops: clears `out` and fills it
  /// with the batch (insertion order). `out` keeps its capacity across
  /// calls, so a loop that reuses one buffer allocates at most once.
  void pop_simultaneous_into(std::vector<Event>& out);

  /// Current simulation time: the time of the last popped event.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Attaches an instrumentation observer (nullptr detaches; the
  /// default). The observer sees every insertion
  /// (on_event_scheduled) and every simultaneous batch about to be
  /// processed (on_event_batch); it must outlive the queue or be
  /// detached first.
  void set_observer(obs::Observer* observer) noexcept {
    observer_ = observer;
  }

 private:
  /// Min-heap order on (time, seq): true when a should sit BELOW b.
  static bool later(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  Event pop_top();

  std::vector<Event> heap_;  // binary min-heap on later()
  std::uint64_t next_seq_ = 0;
  Time now_ = 0.0;
  obs::Observer* observer_ = nullptr;
};

}  // namespace moldsched::sim
