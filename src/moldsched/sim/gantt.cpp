#include "moldsched/sim/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace moldsched::sim {

namespace {

char label_for(int task) {
  static const std::string kAlphabet =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  return kAlphabet[static_cast<std::size_t>(task) % kAlphabet.size()];
}

}  // namespace

std::string render_gantt(const Trace& trace, const graph::TaskGraph& g,
                         int P, int width) {
  if (P < 1 || P > 128)
    throw std::invalid_argument("render_gantt: P must be in [1, 128]");
  if (width < 10)
    throw std::invalid_argument("render_gantt: width must be >= 10");

  const auto& recs = trace.records();
  const Time makespan = trace.makespan();
  std::vector<std::string> rows(static_cast<std::size_t>(P),
                                std::string(static_cast<std::size_t>(width),
                                            '.'));
  if (makespan > 0.0) {
    // Assign rows with a sweep: at each start, claim the lowest free rows.
    struct Ev {
      Time t;
      int delta;  // +1 start, -1 end
      std::size_t rec;
    };
    std::vector<Ev> evs;
    evs.reserve(recs.size() * 2);
    for (std::size_t i = 0; i < recs.size(); ++i) {
      evs.push_back({recs[i].start, +1, i});
      evs.push_back({recs[i].end, -1, i});
    }
    std::sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
      if (a.t != b.t) return a.t < b.t;
      return a.delta < b.delta;  // ends before starts at equal times
    });
    std::vector<bool> row_busy(static_cast<std::size_t>(P), false);
    std::vector<std::vector<int>> rows_of(recs.size());
    auto col_of = [&](Time t) {
      const auto c = static_cast<int>(std::floor(
          t / makespan * static_cast<double>(width)));
      return std::clamp(c, 0, width - 1);
    };
    for (const auto& ev : evs) {
      if (ev.delta < 0) {
        for (const int r : rows_of[ev.rec])
          row_busy[static_cast<std::size_t>(r)] = false;
        continue;
      }
      const auto& rec = recs[ev.rec];
      auto& assigned = rows_of[ev.rec];
      for (int r = 0; r < P && static_cast<int>(assigned.size()) < rec.procs;
           ++r) {
        if (!row_busy[static_cast<std::size_t>(r)]) {
          row_busy[static_cast<std::size_t>(r)] = true;
          assigned.push_back(r);
        }
      }
      const int c0 = col_of(rec.start);
      const int c1 = std::max(c0, col_of(rec.end) - 1);
      const char label = label_for(rec.task);
      for (const int r : assigned)
        for (int c = c0; c <= c1; ++c)
          rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
              label;
    }
  }

  std::ostringstream os;
  os << "Gantt (P=" << P << ", makespan=" << makespan << ")\n";
  for (int r = P - 1; r >= 0; --r)
    os << "p" << r << (r < 10 ? "  |" : " |")
       << rows[static_cast<std::size_t>(r)] << "|\n";
  os << "legend:";
  std::size_t shown = 0;
  for (const auto& rec : recs) {
    if (shown++ >= 16) {
      os << " ...";
      break;
    }
    os << ' ' << label_for(rec.task) << '=' << g.name(rec.task);
  }
  os << '\n';
  return os.str();
}

std::string render_utilization(const Trace& trace, int P, int width) {
  if (P < 1) throw std::invalid_argument("render_utilization: P must be >= 1");
  if (width < 10)
    throw std::invalid_argument("render_utilization: width must be >= 10");
  std::ostringstream os;
  os << "utilization profile (P=" << P << ")\n";
  for (const auto& iv : trace.utilization_profile()) {
    const auto bar = static_cast<std::size_t>(std::lround(
        static_cast<double>(iv.procs_in_use) / static_cast<double>(P) *
        static_cast<double>(width)));
    os.setf(std::ios::fixed);
    os.precision(4);
    os << '[' << iv.begin << ", " << iv.end << ")  " << iv.procs_in_use
       << "/" << P << "  " << std::string(bar, '#') << '\n';
  }
  return os.str();
}

}  // namespace moldsched::sim
