#include "moldsched/sim/block_platform.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace moldsched::sim {

BlockPlatform::BlockPlatform(int P) : total_(P) {
  if (P < 1) throw std::invalid_argument("BlockPlatform: P must be >= 1");
  free_[0] = P;
}

int BlockPlatform::largest_free_block() const {
  int best = 0;
  for (const auto& [lo, len] : free_) best = std::max(best, len);
  return best;
}

int BlockPlatform::acquire_block(int k) {
  if (k < 1)
    throw std::invalid_argument("BlockPlatform::acquire_block: k must be >= 1");
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const auto [lo, len] = *it;
    if (len < k) continue;
    free_.erase(it);
    if (len > k) free_[lo + k] = len - k;
    in_use_ += k;
    return lo;
  }
  return -1;
}

void BlockPlatform::release_block(int lo, int k) {
  if (k < 1 || lo < 0 || lo + k > total_)
    throw std::logic_error("BlockPlatform::release_block: bad block [" +
                           std::to_string(lo) + ", " +
                           std::to_string(lo + k) + ")");
  // The released block must not overlap any free block.
  auto next = free_.lower_bound(lo);
  if (next != free_.end() && next->first < lo + k)
    throw std::logic_error(
        "BlockPlatform::release_block: block overlaps free space");
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second > lo)
      throw std::logic_error(
          "BlockPlatform::release_block: block overlaps free space");
  }

  in_use_ -= k;
  // Insert and coalesce with neighbours.
  int new_lo = lo;
  int new_len = k;
  if (next != free_.end() && next->first == lo + k) {
    new_len += next->second;
    free_.erase(next);
  }
  auto after = free_.lower_bound(new_lo);
  if (after != free_.begin()) {
    auto prev = std::prev(after);
    if (prev->first + prev->second == new_lo) {
      new_lo = prev->first;
      new_len += prev->second;
      free_.erase(prev);
    }
  }
  free_[new_lo] = new_len;
}

}  // namespace moldsched::sim
