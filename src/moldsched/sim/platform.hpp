// The machine: P identical processors managed as a counted resource.
//
// The theory never depends on *which* processors a task occupies, only on
// how many, so the platform tracks counts; display-oriented row placement
// is computed after the fact by the Gantt renderer.
#pragma once

namespace moldsched::sim {

class Platform {
 public:
  /// Throws std::invalid_argument unless P >= 1.
  explicit Platform(int P);

  [[nodiscard]] int total() const noexcept { return total_; }
  [[nodiscard]] int in_use() const noexcept { return in_use_; }
  [[nodiscard]] int available() const noexcept { return total_ - in_use_; }

  /// Claims k processors. Throws std::invalid_argument if k < 1 and
  /// std::logic_error if k > available() — callers must check first;
  /// over-subscription is a scheduler bug, never a recoverable state.
  void acquire(int k);

  /// Returns k processors. Throws std::logic_error if k < 1 or more than
  /// in_use() would be released.
  void release(int k);

 private:
  int total_;
  int in_use_ = 0;
};

}  // namespace moldsched::sim
