#include "moldsched/sim/event_queue.hpp"

#include <cmath>
#include <stdexcept>

namespace moldsched::sim {

void EventQueue::schedule(Time time, std::int64_t payload) {
  if (!std::isfinite(time) || time < 0.0)
    throw std::invalid_argument(
        "EventQueue::schedule: time must be finite and non-negative");
  if (time < now_)
    throw std::logic_error("EventQueue::schedule: time is in the past");
  heap_.push(Event{time, next_seq_++, payload});
  if (observer_ != nullptr)
    observer_->on_event_scheduled(now_, time, payload, heap_.size());
}

Time EventQueue::next_time() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty");
  return heap_.top().time;
}

Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
  const Event e = heap_.top();
  heap_.pop();
  now_ = e.time;
  return e;
}

std::vector<Event> EventQueue::pop_simultaneous() {
  if (heap_.empty())
    throw std::logic_error("EventQueue::pop_simultaneous: empty");
  const Time t = heap_.top().time;
  std::vector<Event> batch;
  while (!heap_.empty() && heap_.top().time == t) {
    batch.push_back(heap_.top());
    heap_.pop();
  }
  now_ = t;
  if (observer_ != nullptr)
    observer_->on_event_batch(t, batch.size(), heap_.size());
  // The heap pops ties in seq order already (Later comparator), so the
  // batch is in insertion order by construction.
  return batch;
}

}  // namespace moldsched::sim
