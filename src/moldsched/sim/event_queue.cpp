#include "moldsched/sim/event_queue.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace moldsched::sim {

void EventQueue::sift_up(std::size_t i) noexcept {
  const Event e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], e)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  const Event e = heap_[i];
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && later(heap_[child], heap_[child + 1])) ++child;
    if (!later(e, heap_[child])) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = e;
}

void EventQueue::schedule(Time time, std::int64_t payload) {
  if (!std::isfinite(time) || time < 0.0)
    throw std::invalid_argument(
        "EventQueue::schedule: time must be finite and non-negative");
  if (time < now_)
    throw std::logic_error("EventQueue::schedule: time is in the past");
  heap_.push_back(Event{time, next_seq_++, payload});
  sift_up(heap_.size() - 1);
  if (observer_ != nullptr)
    observer_->on_event_scheduled(now_, time, payload, heap_.size());
}

Time EventQueue::next_time() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty");
  return heap_.front().time;
}

Event EventQueue::pop_top() {
  const Event e = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return e;
}

Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
  const Event e = pop_top();
  now_ = e.time;
  return e;
}

std::vector<Event> EventQueue::pop_simultaneous() {
  std::vector<Event> batch;
  pop_simultaneous_into(batch);
  return batch;
}

void EventQueue::pop_simultaneous_into(std::vector<Event>& out) {
  if (heap_.empty())
    throw std::logic_error("EventQueue::pop_simultaneous: empty");
  out.clear();
  const Time t = heap_.front().time;
  while (!heap_.empty() && heap_.front().time == t) out.push_back(pop_top());
  now_ = t;
  if (observer_ != nullptr)
    observer_->on_event_batch(t, out.size(), heap_.size());
  // The heap pops ties in seq order (later() breaks time ties by seq),
  // so the batch is in insertion order by construction.
}

}  // namespace moldsched::sim
