#include "moldsched/sim/platform.hpp"

#include <stdexcept>
#include <string>

namespace moldsched::sim {

Platform::Platform(int P) : total_(P) {
  if (P < 1) throw std::invalid_argument("Platform: P must be >= 1");
}

void Platform::acquire(int k) {
  if (k < 1) throw std::invalid_argument("Platform::acquire: k must be >= 1");
  if (k > available())
    throw std::logic_error("Platform::acquire: requested " +
                           std::to_string(k) + " processors but only " +
                           std::to_string(available()) + " available");
  in_use_ += k;
}

void Platform::release(int k) {
  if (k < 1) throw std::logic_error("Platform::release: k must be >= 1");
  if (k > in_use_)
    throw std::logic_error("Platform::release: releasing " +
                           std::to_string(k) + " processors but only " +
                           std::to_string(in_use_) + " in use");
  in_use_ -= k;
}

}  // namespace moldsched::sim
