#include "moldsched/sim/validator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace moldsched::sim {

std::string ValidationReport::to_string() const {
  if (ok()) return "schedule valid";
  std::ostringstream os;
  os << violations.size() << " violation(s):";
  for (const auto& v : violations) os << "\n  - " << v;
  return os.str();
}

ValidationReport validate_schedule(const graph::TaskGraph& g,
                                   const Trace& trace, int P,
                                   double tolerance) {
  ValidationReport report;
  auto fail = [&](const std::string& message) {
    report.violations.push_back(message);
  };
  if (P < 1) {
    fail("platform size must be >= 1");
    return report;
  }

  const auto& recs = trace.records();
  const auto n = static_cast<std::size_t>(g.num_tasks());
  std::vector<int> seen(n, 0);
  std::vector<Time> end_of(n, 0.0);

  for (const auto& r : recs) {
    if (r.task < 0 || static_cast<std::size_t>(r.task) >= n) {
      fail("record for unknown task id " + std::to_string(r.task));
      continue;
    }
    const auto idx = static_cast<std::size_t>(r.task);
    if (++seen[idx] > 1)
      fail("task " + g.name(r.task) + " scheduled more than once");
    end_of[idx] = r.end;

    if (r.procs < 1 || r.procs > P)
      fail("task " + g.name(r.task) + " allocation " +
           std::to_string(r.procs) + " outside [1, " + std::to_string(P) +
           "]");
    const double expect = g.model_of(r.task).time(std::clamp(r.procs, 1, P));
    const double got = r.end - r.start;
    if (std::abs(got - expect) >
        tolerance * std::max({1.0, expect, std::abs(got)}))
      fail("task " + g.name(r.task) + " duration " + std::to_string(got) +
           " != t(p) = " + std::to_string(expect));
  }
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    if (seen[static_cast<std::size_t>(v)] == 0)
      fail("task " + g.name(v) + " never scheduled");

  // Precedence (only meaningful for tasks scheduled exactly once).
  for (const auto& r : recs) {
    if (r.task < 0 || static_cast<std::size_t>(r.task) >= n) continue;
    for (const graph::TaskId u : g.predecessors(r.task)) {
      const auto uidx = static_cast<std::size_t>(u);
      if (seen[uidx] != 1) continue;
      if (r.start < end_of[uidx] - tolerance)
        fail("task " + g.name(r.task) + " starts at " +
             std::to_string(r.start) + " before predecessor " + g.name(u) +
             " ends at " + std::to_string(end_of[uidx]));
    }
  }

  // Capacity: sweep over the utilization profile.
  for (const auto& iv : trace.utilization_profile()) {
    if (iv.procs_in_use > P) {
      fail("capacity exceeded: " + std::to_string(iv.procs_in_use) + " > " +
           std::to_string(P) + " processors in use during [" +
           std::to_string(iv.begin) + ", " + std::to_string(iv.end) + ")");
      break;  // one witness is enough
    }
  }
  return report;
}

void expect_valid_schedule(const graph::TaskGraph& g, const Trace& trace,
                           int P, double tolerance) {
  const auto report = validate_schedule(g, trace, P, tolerance);
  if (!report.ok()) throw std::logic_error(report.to_string());
}

}  // namespace moldsched::sim
