// ASCII rendering of simulated schedules: a processor x time Gantt chart
// and a utilization histogram. Display-only; row placement is synthesized
// here and has no bearing on feasibility.
#pragma once

#include <string>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/sim/trace.hpp"

namespace moldsched::sim {

/// Renders one character row per processor, time on the horizontal axis
/// scaled to `width` columns. Each task is drawn with a cycling label
/// character; '.' marks idle processors. Throws if P > 128 (unreadable)
/// or width < 10.
[[nodiscard]] std::string render_gantt(const Trace& trace,
                                       const graph::TaskGraph& g, int P,
                                       int width = 80);

/// Renders the utilization profile as one line per interval:
///   [begin, end)  procs  bar
[[nodiscard]] std::string render_utilization(const Trace& trace, int P,
                                             int width = 60);

}  // namespace moldsched::sim
