#include "moldsched/sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace moldsched::sim {

void Trace::record_start(int task, Time start, int procs) {
  if (task < 0)
    throw std::invalid_argument("Trace::record_start: negative task id");
  if (procs < 1)
    throw std::invalid_argument("Trace::record_start: procs must be >= 1");
  if (!std::isfinite(start) || start < 0.0)
    throw std::invalid_argument("Trace::record_start: bad start time");
  const auto idx = static_cast<std::size_t>(task);
  if (idx >= open_index_of_task_.size())
    open_index_of_task_.resize(idx + 1, -1);
  if (open_index_of_task_[idx] != -1)
    throw std::logic_error("Trace::record_start: task " +
                           std::to_string(task) +
                           " started twice (tasks are non-preemptive and "
                           "run exactly once)");
  open_index_of_task_[idx] = static_cast<std::int64_t>(records_.size());
  records_.push_back(TaskRecord{task, start,
                                std::numeric_limits<Time>::quiet_NaN(),
                                procs});
  ++open_count_;
}

void Trace::record_end(int task, Time end) {
  if (task < 0 ||
      static_cast<std::size_t>(task) >= open_index_of_task_.size())
    throw std::logic_error("Trace::record_end: task " + std::to_string(task) +
                           " was never started");
  const auto idx = static_cast<std::size_t>(task);
  const std::int64_t rec = open_index_of_task_[idx];
  if (rec < 0)
    throw std::logic_error("Trace::record_end: task " + std::to_string(task) +
                           " is not running");
  TaskRecord& r = records_[static_cast<std::size_t>(rec)];
  if (!std::isnan(r.end))
    throw std::logic_error("Trace::record_end: task already ended");
  if (!std::isfinite(end) || end < r.start)
    throw std::invalid_argument("Trace::record_end: end before start");
  r.end = end;
  open_index_of_task_[idx] = -1;
  // Keep the index entry so double-starts stay detectable: mark as closed
  // with a sentinel distinct from "never started".
  open_index_of_task_[idx] = std::numeric_limits<std::int64_t>::min();
  --open_count_;
}

void Trace::ensure_complete() const {
  if (open_count_ != 0)
    throw std::logic_error("Trace: " + std::to_string(open_count_) +
                           " task(s) still running");
}

const std::vector<TaskRecord>& Trace::records() const {
  ensure_complete();
  return records_;
}

Time Trace::makespan() const {
  ensure_complete();
  Time m = 0.0;
  for (const auto& r : records_) m = std::max(m, r.end);
  return m;
}

double Trace::total_area() const {
  ensure_complete();
  double a = 0.0;
  for (const auto& r : records_)
    a += static_cast<double>(r.procs) * (r.end - r.start);
  return a;
}

std::vector<UtilizationInterval> Trace::utilization_profile() const {
  ensure_complete();
  // Sweep line over start/end events.
  struct Edge {
    Time t;
    int delta;
  };
  std::vector<Edge> edges;
  edges.reserve(records_.size() * 2);
  for (const auto& r : records_) {
    edges.push_back({r.start, r.procs});
    edges.push_back({r.end, -r.procs});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;  // releases before acquisitions at the same t
  });
  std::vector<UtilizationInterval> out;
  int usage = 0;
  std::size_t i = 0;
  Time prev = 0.0;
  while (i < edges.size()) {
    const Time t = edges[i].t;
    if (t > prev && (usage > 0 || !out.empty()))
      out.push_back(UtilizationInterval{prev, t, usage});
    while (i < edges.size() && edges[i].t == t) {
      usage += edges[i].delta;
      ++i;
    }
    prev = t;
  }
  return out;
}

double Trace::idle_area(int P) const {
  if (P < 1)
    throw std::invalid_argument("Trace::idle_area: P must be >= 1");
  return static_cast<double>(P) * makespan() - total_area();
}

int Trace::max_concurrency() const {
  int peak = 0;
  for (const auto& iv : utilization_profile())
    peak = std::max(peak, iv.procs_in_use);
  return peak;
}

Time Trace::total_gap_time() const {
  Time gap = 0.0;
  for (const auto& iv : utilization_profile())
    if (iv.procs_in_use == 0) gap += iv.duration();
  return gap;
}

double Trace::average_utilization(int P) const {
  if (P < 1)
    throw std::invalid_argument("Trace::average_utilization: P must be >= 1");
  const Time m = makespan();
  if (m <= 0.0) return 0.0;
  return total_area() / (static_cast<double>(P) * m);
}

}  // namespace moldsched::sim
