// Execution trace of a simulated schedule: one record per task, plus the
// derived utilization profile (the paper's interval set I of Section 4.2).
#pragma once

#include <vector>

#include "moldsched/sim/event_queue.hpp"

namespace moldsched::sim {

struct TaskRecord {
  int task = -1;      ///< TaskId in the scheduled graph
  Time start = 0.0;
  Time end = 0.0;     ///< NaN while running; finalized by record_end
  int procs = 0;      ///< fixed allocation (moldable: chosen at start)
};

/// A maximal time span during which the set of running tasks — and hence
/// the processor utilization — is constant.
struct UtilizationInterval {
  Time begin = 0.0;
  Time end = 0.0;
  int procs_in_use = 0;

  [[nodiscard]] Time duration() const noexcept { return end - begin; }
};

class Trace {
 public:
  /// Records a task start. Throws if the task was already started or
  /// procs < 1 or start < 0.
  void record_start(int task, Time start, int procs);

  /// Records the matching completion. Throws if the task was never
  /// started, already ended, or end < start.
  void record_end(int task, Time end);

  [[nodiscard]] std::size_t num_records() const noexcept {
    return records_.size();
  }
  /// All records in start order (ties by insertion). Throws
  /// std::logic_error if any task is still running.
  [[nodiscard]] const std::vector<TaskRecord>& records() const;

  /// Latest completion time (0 for an empty trace).
  [[nodiscard]] Time makespan() const;

  /// Total processor-time actually consumed: sum procs * (end - start).
  [[nodiscard]] double total_area() const;

  /// The utilization profile: consecutive intervals between schedule
  /// events, with constant processor usage inside each. Zero-length
  /// intervals are dropped; intervals with zero running tasks in the
  /// middle of the schedule are kept (they witness idle gaps).
  [[nodiscard]] std::vector<UtilizationInterval> utilization_profile() const;

  /// Time-averaged utilization over [0, makespan] divided by P.
  [[nodiscard]] double average_utilization(int P) const;

  /// Idle processor-time: P * makespan - total_area().
  [[nodiscard]] double idle_area(int P) const;

  /// Peak number of processors simultaneously in use.
  [[nodiscard]] int max_concurrency() const;

  /// Total interior time with zero running tasks (always 0 for list
  /// schedules; nonzero e.g. between releases in the release setting).
  [[nodiscard]] Time total_gap_time() const;

 private:
  void ensure_complete() const;

  std::vector<TaskRecord> records_;
  std::vector<std::int64_t> open_index_of_task_;  // -1 = none
  std::size_t open_count_ = 0;
};

}  // namespace moldsched::sim
