// Deterministic pseudo-random number generation for all moldsched
// experiments. Every stochastic component of the library draws from an
// explicitly seeded Rng so that simulations are bit-reproducible across
// runs and machines; no code path may consult wall-clock time or
// std::random_device.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace moldsched::util {

/// xoshiro256** 1.0 by Blackman & Vigna, seeded through splitmix64.
/// Satisfies UniformRandomBitGenerator so it can drive <random>
/// distributions, but the member helpers below are preferred: they are
/// guaranteed stable across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state by iterating splitmix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Throws if lo > hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi). Throws if lo > hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double unit();

  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p);

  /// Exponential variate with rate lambda > 0.
  [[nodiscard]] double exponential(double lambda);

  /// Standard normal variate (Box-Muller, one value per call).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-uniform in [lo, hi], lo > 0: uniform in the exponent. Useful for
  /// sampling task work sizes spanning several orders of magnitude.
  [[nodiscard]] double log_uniform(double lo, double hi);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) {
    if (v.empty()) throw std::invalid_argument("Rng::pick: empty vector");
    return v[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

  /// Derives an independent child generator; used to give each experiment
  /// repetition its own stream without coupling to iteration order.
  /// NOTE: split() advances this generator's stream, so the child depends
  /// on how many draws preceded it. When children must be reproducible
  /// regardless of creation order (parallel restarts, job grids), derive
  /// them from derive_seed(base, index) instead.
  [[nodiscard]] Rng split();

 private:
  std::uint64_t s_[4];
};

/// Order-independent child-seed derivation: a splitmix64 finalizer over
/// (base, index). Pure function — deriving child 7 never depends on
/// whether children 0..6 were derived first — which is the guarantee
/// engine::JobGrid gives per job and adv::anneal_search gives per
/// restart. Stable across platforms; distinct indices give distinct
/// seeds.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base,
                                        std::uint64_t index) noexcept;

}  // namespace moldsched::util
