#include "moldsched/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace moldsched::util {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  if (samples.empty())
    throw std::invalid_argument("percentile: empty sample set");
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("percentile: q outside [0, 1]");
  std::sort(samples.begin(), samples.end());
  const double idx = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

Summary summarize(const std::vector<double>& samples) {
  if (samples.empty()) throw std::invalid_argument("summarize: empty input");
  Accumulator acc;
  for (const double x : samples) acc.add(x);
  Summary s;
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.p25 = percentile(samples, 0.25);
  s.median = percentile(samples, 0.50);
  s.p75 = percentile(samples, 0.75);
  s.p95 = percentile(samples, 0.95);
  return s;
}

double geometric_mean(const std::vector<double>& samples) {
  if (samples.empty())
    throw std::invalid_argument("geometric_mean: empty input");
  double log_sum = 0.0;
  for (const double x : samples) {
    if (!(x > 0.0))
      throw std::invalid_argument("geometric_mean: non-positive sample");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

}  // namespace moldsched::util
