// Minimal command-line flag parser for the example binaries.
// Supports `--name=value`, `--name value` and boolean `--name`.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace moldsched::util {

class Flags {
 public:
  /// Parses argv. Unrecognized positional arguments are collected in
  /// positional(). Throws std::invalid_argument on malformed flags
  /// (e.g. a lone "--").
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& name, long fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  /// A bare `--name` counts as true; `--name=false/0/no` as false.
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  [[nodiscard]] const std::string& program_name() const noexcept {
    return program_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace moldsched::util
