// Minimal data-parallel helper for the experiment harnesses: runs
// independent simulations across threads. Simulations are deterministic
// given their inputs, so parallel execution never changes results — only
// wall-clock time.
#pragma once

#include <cstddef>
#include <functional>

namespace moldsched::util {

/// Invokes fn(i) for every i in [0, count), distributing iterations over
/// up to `threads` workers (0 = hardware concurrency) of the process-wide
/// persistent executor (engine::Executor::global()). The calling thread
/// participates, so calls may be nested — including from inside executor
/// workers — without deadlock. Blocks until all iterations finish. If any
/// invocation throws, the first exception (in iteration order) is
/// rethrown after all iterations complete or are abandoned; remaining
/// iterations may or may not have run.
///
/// fn must be safe to call concurrently for distinct i.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

/// The worker count parallel_for(..., 0) would use.
[[nodiscard]] unsigned default_parallelism();

}  // namespace moldsched::util
