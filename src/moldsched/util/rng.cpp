#include "moldsched/util/rng.hpp"

#include <cmath>
#include <numbers>

namespace moldsched::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // consecutive zeros, but guard anyway for defence in depth.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  return lo + (hi - lo) * unit();
}

double Rng::unit() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("Rng::bernoulli: p outside [0, 1]");
  return unit() < p;
}

double Rng::exponential(double lambda) {
  if (lambda <= 0.0)
    throw std::invalid_argument("Rng::exponential: lambda must be positive");
  double u = unit();
  // unit() can return exactly 0; log(0) is -inf, so nudge away.
  if (u == 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

double Rng::normal(double mean, double stddev) {
  if (stddev < 0.0)
    throw std::invalid_argument("Rng::normal: stddev must be non-negative");
  double u1 = unit();
  if (u1 == 0.0) u1 = 0x1.0p-53;
  const double u2 = unit();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::log_uniform(double lo, double hi) {
  if (!(lo > 0.0) || lo > hi)
    throw std::invalid_argument("Rng::log_uniform: need 0 < lo <= hi");
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

Rng Rng::split() { return Rng((*this)()); }

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept {
  // splitmix64 finalizer over the combined state; the golden-ratio
  // stride decorrelates consecutive indices. Must stay bit-identical to
  // the historical engine::JobGrid::derive_seed (which now delegates
  // here): recorded job seeds are part of the JSONL resume contract.
  std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace moldsched::util
