// Lightweight text-table builder used by the benchmark harnesses to print
// the paper's tables/figures as aligned ASCII, Markdown or CSV.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace moldsched::util {

/// A simple row/column table of strings with typed cell helpers.
/// Columns are fixed at construction; rows are appended cell by cell.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Cells are appended to the latest row.
  Table& new_row();

  Table& cell(const std::string& text);
  Table& cell(const char* text);
  Table& cell(double value, int precision = 3);
  Table& cell(int value);
  Table& cell(long value);
  Table& cell(long long value);
  Table& cell(unsigned long value);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept { return headers_.size(); }

  /// Aligned, boxed ASCII rendering (for terminal output).
  [[nodiscard]] std::string to_ascii() const;
  /// GitHub-flavoured Markdown rendering.
  [[nodiscard]] std::string to_markdown() const;
  /// RFC-4180-ish CSV rendering (quotes cells containing commas/quotes).
  [[nodiscard]] std::string to_csv() const;

  /// Convenience: writes `title` then the ASCII table to `os`.
  void print(std::ostream& os, const std::string& title = "") const;

 private:
  void append_cell(std::string text);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision, trimming to "n/a" for NaN.
[[nodiscard]] std::string format_double(double value, int precision = 3);

}  // namespace moldsched::util
