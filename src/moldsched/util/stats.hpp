// Streaming and batch statistics used by the experiment harnesses to
// aggregate competitive ratios, makespans and utilization figures.
#pragma once

#include <cstddef>
#include <vector>

namespace moldsched::util {

/// Numerically stable streaming accumulator (Welford's algorithm).
class Accumulator {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary of a batch of samples.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Linear-interpolated percentile of a sample set, q in [0, 1].
/// Throws on an empty sample set or q outside [0, 1].
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// Builds a Summary from a batch of samples. Throws on empty input.
[[nodiscard]] Summary summarize(const std::vector<double>& samples);

/// Geometric mean; all samples must be positive. Throws otherwise.
[[nodiscard]] double geometric_mean(const std::vector<double>& samples);

}  // namespace moldsched::util
