#include "moldsched/util/flags.hpp"

#include <algorithm>
#include <stdexcept>

namespace moldsched::util {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    if (arg.size() == 2)
      throw std::invalid_argument("Flags: bare '--' is not a valid flag");
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is itself a flag (or absent),
    // in which case treat as boolean `--name`.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long Flags::get_int(const std::string& name, long fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stol(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("Flags: flag --" + name +
                                " expects an integer, got '" + it->second + "'");
  }
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("Flags: flag --" + name +
                                " expects a number, got '" + it->second + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string v = lower(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Flags: flag --" + name +
                              " expects a boolean, got '" + it->second + "'");
}

}  // namespace moldsched::util
