#include "moldsched/util/parallel.hpp"

#include <stdexcept>
#include <thread>

#include "moldsched/engine/executor.hpp"

namespace moldsched::util {

unsigned default_parallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  if (!fn) throw std::invalid_argument("parallel_for: empty function");
  if (count == 0) return;
  // Delegates to the persistent work-stealing executor instead of
  // spawning a thread pool per call; the calling thread participates, so
  // nested parallel_for from inside a worker cannot deadlock.
  engine::Executor::global().parallel_for(count, fn, threads);
}

}  // namespace moldsched::util
