#include "moldsched/util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace moldsched::util {

unsigned default_parallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  if (!fn) throw std::invalid_argument("parallel_for: empty function");
  if (count == 0) return;
  if (threads == 0) threads = default_parallelism();
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, count));

  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = count;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace moldsched::util
