#include "moldsched/util/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace moldsched::util {

std::string format_double(double value, int precision) {
  if (std::isnan(value)) return "n/a";
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty())
    throw std::invalid_argument("Table: need at least one column");
}

Table& Table::new_row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

void Table::append_cell(std::string text) {
  if (rows_.empty()) new_row();
  if (rows_.back().size() >= headers_.size())
    throw std::logic_error("Table: row already has all its cells");
  rows_.back().push_back(std::move(text));
}

Table& Table::cell(const std::string& text) {
  append_cell(text);
  return *this;
}

Table& Table::cell(const char* text) {
  append_cell(std::string(text));
  return *this;
}

Table& Table::cell(double value, int precision) {
  append_cell(format_double(value, precision));
  return *this;
}

Table& Table::cell(int value) {
  append_cell(std::to_string(value));
  return *this;
}

Table& Table::cell(long value) {
  append_cell(std::to_string(value));
  return *this;
}

Table& Table::cell(long long value) {
  append_cell(std::to_string(value));
  return *this;
}

Table& Table::cell(unsigned long value) {
  append_cell(std::to_string(value));
  return *this;
}

namespace {

std::vector<std::size_t> column_widths(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  return widths;
}

void pad_to(std::ostringstream& os, const std::string& text, std::size_t w) {
  os << text;
  for (std::size_t i = text.size(); i < w; ++i) os << ' ';
}

}  // namespace

std::string Table::to_ascii() const {
  const auto widths = column_widths(headers_, rows_);
  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (const auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << ' ';
      pad_to(os, c < cells.size() ? cells[c] : "", widths[c]);
      os << " |";
    }
    os << '\n';
  };
  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

std::string Table::to_markdown() const {
  const auto widths = column_widths(headers_, rows_);
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << ' ';
      pad_to(os, c < cells.size() ? cells[c] : "", widths[c]);
      os << " |";
    }
    os << '\n';
  };
  emit(headers_);
  os << '|';
  for (const auto w : widths) {
    for (std::size_t i = 0; i < w + 2; ++i) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) os << ',';
      os << quote(c < cells.size() ? cells[c] : "");
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << title << '\n';
  os << to_ascii();
}

}  // namespace moldsched::util
