#include "moldsched/svc/flight_recorder.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>

#include "moldsched/io/json.hpp"
#include "moldsched/svc/wire.hpp"

namespace moldsched::svc {

namespace {

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

// Ops and outcomes come from closed sets, so records store small codes
// instead of strings. Unknown values collapse to "other" — the recorder
// is diagnostics, not a codec.
constexpr const char* kOps[] = {"session.open", "task.release",
                                "session.close", "server.stop", "other"};

std::uint64_t encode_op(const std::string& op) {
  for (std::uint64_t i = 0; i + 1 < std::size(kOps); ++i)
    if (op == kOps[i]) return i;
  return std::size(kOps) - 1;
}

constexpr const char* kOutcomes[] = {
    "ok",           "parse_error",    "bad_request", "unknown_op",
    "unknown_session", "overloaded",  "quota_exceeded", "shutting_down",
    "forbidden",    "internal",       "other"};

std::uint64_t encode_outcome(const std::string& outcome) {
  for (std::uint64_t i = 0; i + 1 < std::size(kOutcomes); ++i)
    if (outcome == kOutcomes[i]) return i;
  return std::size(kOutcomes) - 1;
}

/// Server-minted session ids are "s<N>"; anything else (empty session
/// on opens, client typos on release) stores as 0 = none.
std::uint64_t encode_session(const std::string& session) {
  if (session.size() < 2 || session[0] != 's') return 0;
  std::uint64_t n = 0;
  for (std::size_t i = 1; i < session.size(); ++i) {
    if (session[i] < '0' || session[i] > '9') return 0;
    n = n * 10 + static_cast<std::uint64_t>(session[i] - '0');
    if (n > 0xffffffffull - 1) return 0;
  }
  return n + 1;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(round_up_pow2(capacity)), mask_(slots_.size() - 1) {}

void FlightRecorder::record(const obs::RequestSpan& span) noexcept {
  const std::uint64_t ticket =
      tickets_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  std::uint64_t version = slot.version.load(std::memory_order_relaxed);
  if ((version & 1) != 0 ||
      !slot.version.compare_exchange_strong(version, version + 1,
                                            std::memory_order_acquire)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const std::size_t trace_len =
      std::min(span.trace_id.size(), kMaxTraceIdBytes);
  std::uint64_t words[kWords] = {};
  words[0] = span.request_id;
  words[1] = static_cast<std::uint64_t>(span.seq);
  words[2] = double_bits(span.start_us);
  words[3] = double_bits(span.total_us);
  words[4] = double_bits(span.queue_us);
  words[5] = double_bits(span.parse_us);
  words[6] = double_bits(span.schedule_us);
  words[7] = double_bits(span.serialize_us);
  words[8] = double_bits(span.write_us);
  words[9] = (encode_session(span.session) << 32) |
             (encode_op(span.op) << 16) |
             (encode_outcome(span.outcome) << 8) |
             static_cast<std::uint64_t>(trace_len);
  for (std::size_t i = 0; i < trace_len; ++i) {
    const auto b = static_cast<std::uint64_t>(
        static_cast<unsigned char>(span.trace_id[i]));
    words[10 + i / 8] |= b << (8 * (i % 8));
  }

  for (std::size_t i = 0; i < kWords; ++i)
    slot.words[i].store(words[i], std::memory_order_relaxed);
  slot.version.store(version + 2, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<obs::RequestSpan> FlightRecorder::snapshot() const {
  std::vector<obs::RequestSpan> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const std::uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 == 0 || (v1 & 1) != 0) continue;  // never written / mid-write
    std::uint64_t words[kWords];
    for (std::size_t i = 0; i < kWords; ++i)
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_relaxed) != v1)
      continue;  // torn by a concurrent writer

    obs::RequestSpan span;
    span.request_id = words[0];
    span.seq = static_cast<std::int64_t>(words[1]);
    span.start_us = bits_double(words[2]);
    span.total_us = bits_double(words[3]);
    span.queue_us = bits_double(words[4]);
    span.parse_us = bits_double(words[5]);
    span.schedule_us = bits_double(words[6]);
    span.serialize_us = bits_double(words[7]);
    span.write_us = bits_double(words[8]);
    const std::uint64_t session = words[9] >> 32;
    if (session != 0) span.session = "s" + std::to_string(session - 1);
    span.op = kOps[std::min<std::uint64_t>((words[9] >> 16) & 0xff,
                                           std::size(kOps) - 1)];
    span.outcome =
        kOutcomes[std::min<std::uint64_t>((words[9] >> 8) & 0xff,
                                          std::size(kOutcomes) - 1)];
    const auto trace_len =
        std::min<std::uint64_t>(words[9] & 0xff, kMaxTraceIdBytes);
    for (std::uint64_t i = 0; i < trace_len; ++i)
      span.trace_id +=
          static_cast<char>((words[10 + i / 8] >> (8 * (i % 8))) & 0xff);
    out.push_back(std::move(span));
  }
  std::sort(out.begin(), out.end(),
            [](const obs::RequestSpan& a, const obs::RequestSpan& b) {
              return a.request_id < b.request_id;
            });
  return out;
}

std::string FlightRecorder::to_jsonl() const {
  std::string out;
  for (const obs::RequestSpan& s : snapshot()) {
    out += "{\"id\":" + std::to_string(s.request_id) +
           ",\"seq\":" + std::to_string(s.seq) + ",\"session\":\"" +
           s.session + "\",\"op\":\"" + s.op + "\",\"trace_id\":\"" +
           io::json_escape(s.trace_id) + "\",\"outcome\":\"" + s.outcome +
           "\",\"start_us\":" + wire_number(s.start_us) +
           ",\"total_us\":" + wire_number(s.total_us) +
           ",\"phases_us\":{\"queue\":" + wire_number(s.queue_us) +
           ",\"parse\":" + wire_number(s.parse_us) +
           ",\"schedule\":" + wire_number(s.schedule_us) +
           ",\"serialize\":" + wire_number(s.serialize_us) +
           ",\"write\":" + wire_number(s.write_us) + "}}\n";
  }
  return out;
}

}  // namespace moldsched::svc
