#include "moldsched/svc/admin.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstring>
#include <stdexcept>

#include "moldsched/obs/exposition.hpp"
#include "moldsched/svc/server.hpp"
#include "moldsched/svc/wire.hpp"

namespace moldsched::svc {

namespace {

constexpr int kPollTimeoutMs = 200;
constexpr int kClientTimeoutMs = 2000;
constexpr std::size_t kMaxRequestBytes = 4096;

/// First whitespace-delimited tokens of the request line; empty method
/// on anything that is not "METHOD PATH ...".
void parse_request_line(const std::string& request, std::string& method,
                        std::string& path) {
  const std::size_t eol = request.find("\r\n");
  const std::string line =
      eol == std::string::npos ? request : request.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  method = line.substr(0, sp1);
  path = sp2 == std::string::npos ? line.substr(sp1 + 1)
                                  : line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Scrapers may append query strings (?t=...); routing ignores them.
  const std::size_t q = path.find('?');
  if (q != std::string::npos) path.resize(q);
}

[[nodiscard]] std::string http_response(int status, const char* reason,
                                        const std::string& content_type,
                                        const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// Blocking-with-deadline write of the whole buffer to a non-blocking fd.
void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  int budget_ms = kClientTimeoutMs;
  while (off < data.size() && budget_ms > 0) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, 100);
      budget_ms -= 100;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // peer went away; nothing to salvage
  }
}

}  // namespace

AdminServer::AdminServer(obs::MetricRegistry& registry, const Server* server)
    : registry_(registry), server_(server), proc_sampler_(registry) {}

AdminServer::~AdminServer() { stop(); }

int AdminServer::listen(const std::string& host, int port) {
  if (listen_fd_ >= 0)
    throw std::logic_error("AdminServer::listen called twice");
  int bound_port = 0;
  listen_fd_ = tcp_listen(host, port, bound_port);
  port_ = bound_port;
  thread_ = std::thread([this] { serve_loop(); });
  return port_;
}

void AdminServer::stop() {
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool AdminServer::route(const std::string& path, std::string& body,
                        std::string& content_type) {
  if (path == "/metrics") {
    proc_sampler_.sample();
    body = obs::to_prometheus_text(registry_);
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    return true;
  }
  if (path == "/metrics.json") {
    proc_sampler_.sample();
    body = registry_.to_json() + "\n";
    content_type = "application/json";
    return true;
  }
  if (path == "/flight") {
    body = server_ != nullptr ? server_->flight_jsonl() : std::string();
    content_type = "application/x-ndjson";
    return true;
  }
  if (path == "/healthz") {
    body = "ok\n";
    content_type = "text/plain";
    return true;
  }
  return false;
}

void AdminServer::serve_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kPollTimeoutMs);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN / transient
      set_nonblocking(fd);
      handle_client(fd);
      ::close(fd);
    }
  }
}

void AdminServer::handle_client(int fd) {
  // Read until the header terminator, EOF, or the deadline. Admin
  // requests are tiny GETs; anything bigger is answered from what
  // arrived (or dropped as malformed).
  std::string request;
  int budget_ms = kClientTimeoutMs;
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes && budget_ms > 0) {
    char buf[1024];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      request.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{fd, POLLIN, 0};
      ::poll(&pfd, 1, 100);
      budget_ms -= 100;
      continue;
    }
    if (errno == EINTR) continue;
    return;
  }

  std::string method, path;
  parse_request_line(request, method, path);
  if (method != "GET") {
    send_all(fd, http_response(405, "Method Not Allowed", "text/plain",
                               "only GET is supported\n"));
    return;
  }
  std::string body, content_type;
  if (!route(path, body, content_type)) {
    send_all(fd, http_response(404, "Not Found", "text/plain",
                               "unknown path '" + path + "'\n"));
    return;
  }
  send_all(fd, http_response(200, "OK", content_type, body));
}

}  // namespace moldsched::svc
