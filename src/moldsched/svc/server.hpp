// TCP front end of the scheduling service.
//
// One io thread owns the listening socket and every connection: it
// accepts, reads, deframes and runs admission control. Decoded requests
// are handed to an engine::Executor; per connection they are processed
// strictly in arrival order (a connection acts as a serial queue on the
// pool), so a lockstep client always reads the reply to its last
// request. Replies the io thread writes itself — overload rejections and
// framing errors — can overtake queued work; every reply echoes the
// request's seq so pipelining clients can correlate.
//
// Admission control, outermost first:
//   - stopping            -> shutting_down
//   - in-flight requests across all connections >= max_in_flight
//                         -> overloaded (the bounded queue's backpressure)
//   - session.open with max_sessions live sessions -> overloaded
//   - task.release beyond max_tasks_per_session    -> quota_exceeded
// Sessions idle longer than idle_timeout_s are reaped by the io thread;
// later requests against them answer unknown_session.
//
// Instrumentation goes to an obs::MetricRegistry under svc.* names
// (request/rejection/session counters, svc.queue.depth gauge,
// svc.request.latency_ms log-bucketed histogram measured enqueue ->
// reply written). With a ServerTelemetry config the server additionally
// produces one obs::RequestSpan per request — phase decomposition into
// queue/parse/schedule/serialize/write — fanned out to the svc.phase.*
// histograms, an optional SpanObserver, and a lock-free flight recorder
// retaining the last N requests for post-hoc dumps. When telemetry is
// not armed the request path takes exactly the same number of clock
// reads as before: spans cost nothing unless asked for.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "moldsched/engine/executor.hpp"
#include "moldsched/obs/metrics.hpp"
#include "moldsched/obs/span.hpp"
#include "moldsched/svc/flight_recorder.hpp"
#include "moldsched/svc/session.hpp"
#include "moldsched/svc/wire.hpp"

namespace moldsched::svc {

struct ServerLimits {
  int max_sessions = 64;            ///< live sessions across the server
  int max_tasks_per_session = 100000;
  int max_in_flight = 256;          ///< queued+running requests, all conns
  double idle_timeout_s = 300.0;    ///< reap sessions idle this long
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  bool allow_remote_stop = false;   ///< honor the server.stop op
};

/// Opt-in request telemetry. The server is "armed" when any field asks
/// for something; an armed server times every request's phases (a few
/// extra steady_clock reads per request) and fans the resulting
/// RequestSpan out to every configured sink.
struct ServerTelemetry {
  bool phases = false;                 ///< svc.phase.* histograms
  obs::SpanObserver* spans = nullptr;  ///< optional sink; must outlive
                                       ///< the server
  std::size_t flight_capacity = 0;     ///< 0 = no flight recorder
  double slow_ms = 0.0;                ///< >0: auto-dump the flight
                                       ///< recorder on slower requests
  std::string slow_dump_path;          ///< JSONL target for auto-dumps

  [[nodiscard]] bool armed() const noexcept {
    return phases || spans != nullptr || flight_capacity > 0 || slow_ms > 0;
  }
};

class Server {
 public:
  /// The executor runs request compute; the registry receives svc.*
  /// metrics. Both must outlive the server. Defaults share the
  /// process-wide instances.
  explicit Server(ServerLimits limits = {},
                  engine::Executor& executor = engine::Executor::global(),
                  obs::MetricRegistry& registry = obs::default_registry());

  /// As above, with request telemetry armed per `telemetry`.
  Server(ServerLimits limits, ServerTelemetry telemetry,
         engine::Executor& executor = engine::Executor::global(),
         obs::MetricRegistry& registry = obs::default_registry());

  /// Stops, drains in-flight work and closes every connection.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds `host:port` (port 0 picks an ephemeral port), starts the io
  /// thread and returns the bound port. Throws std::runtime_error on
  /// socket errors; callable once.
  int listen(const std::string& host = "127.0.0.1", int port = 0);

  [[nodiscard]] int port() const noexcept { return port_; }

  /// Initiates shutdown: stops accepting, rejects queued work with
  /// shutting_down, wakes the io thread. Returns immediately.
  void stop();

  /// Blocks until the io thread exited and every submitted request
  /// finished. Implies nothing about stop() — call that first (or let a
  /// remote server.stop do it).
  void wait();

  /// wait() with a timeout; true when fully stopped.
  bool wait_for(double seconds);

  [[nodiscard]] bool stopped() const noexcept {
    return stopped_.load(std::memory_order_acquire);
  }

  /// Live session count (for tests and the serve tool's status line).
  [[nodiscard]] int num_sessions() const;

  /// The flight recorder, or nullptr when telemetry.flight_capacity == 0.
  [[nodiscard]] const FlightRecorder* flight() const noexcept {
    return flight_.get();
  }

  /// JSONL dump of the flight recorder's retained records (empty string
  /// when no recorder is configured). Safe to call while serving.
  [[nodiscard]] std::string flight_jsonl() const {
    return flight_ ? flight_->to_jsonl() : std::string();
  }

 private:
  struct PendingRequest {
    std::string payload;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// One TCP connection. The io thread owns fd lifecycle and the reader;
  /// worker jobs only write (under write_mu) and pop the queue (under
  /// queue_mu). The fd closes when the last shared_ptr drops, so a
  /// worker mid-reply never races a close.
  struct Conn {
    Conn(int fd_in, std::size_t max_frame) : fd(fd_in), reader(max_frame) {}
    ~Conn();
    Conn(const Conn&) = delete;
    Conn& operator=(const Conn&) = delete;

    int fd;
    FrameReader reader;
    std::mutex write_mu;
    std::mutex queue_mu;
    std::deque<PendingRequest> queue;  // guarded by queue_mu
    bool draining = false;             // guarded by queue_mu
    std::atomic<bool> open{true};
  };

  struct SessionEntry {
    explicit SessionEntry(Session s) : session(std::move(s)) {}
    std::mutex mu;
    Session session;  // guarded by mu
  };

  struct HandleResult {
    std::string reply;
    bool stop_server = false;
  };

  void io_loop();
  void accept_ready(std::map<int, std::shared_ptr<Conn>>& conns);
  /// Reads everything available; false = connection is done.
  bool read_ready(const std::shared_ptr<Conn>& c);
  void admit(const std::shared_ptr<Conn>& c, std::string payload);
  void drain(const std::shared_ptr<Conn>& c);
  /// `span` is null when telemetry is off; when set, handle() fills the
  /// parse/schedule/serialize phase timings plus op/session/seq/
  /// trace_id/outcome.
  [[nodiscard]] HandleResult handle(const std::string& payload,
                                    obs::RequestSpan* span);
  [[nodiscard]] std::string handle_open(const Request& req,
                                        obs::RequestSpan* span);
  [[nodiscard]] std::string handle_release(const Request& req,
                                           obs::RequestSpan* span);
  [[nodiscard]] std::string handle_close(const Request& req,
                                         obs::RequestSpan* span);
  void write_frame(Conn& c, const std::string& payload);
  void wake_io();
  /// Fans a finished span out to the phase histograms, the flight
  /// recorder, the SpanObserver, and the slow-request dump trigger.
  void emit_span(const obs::RequestSpan& span);
  void maybe_dump_slow(const obs::RequestSpan& span);

  ServerLimits limits_;
  ServerTelemetry telemetry_;
  bool telemetry_armed_ = false;
  engine::Executor& executor_;

  // Cached instrument references (stable for the registry's lifetime).
  obs::Counter& m_accepted_;
  obs::Counter& m_requests_;
  obs::Counter& m_rejected_overloaded_;
  obs::Counter& m_errors_;
  obs::Counter& m_sessions_opened_;
  obs::Counter& m_sessions_closed_;
  obs::Counter& m_sessions_reaped_;
  obs::Gauge& m_sessions_active_;
  obs::Gauge& m_queue_depth_;
  obs::Histogram& m_latency_ms_;
  // Phase histograms (same log-bucketed bounds as the latency
  // histogram); only observed when telemetry is armed.
  obs::Histogram& m_phase_queue_ms_;
  obs::Histogram& m_phase_parse_ms_;
  obs::Histogram& m_phase_schedule_ms_;
  obs::Histogram& m_phase_serialize_ms_;
  obs::Histogram& m_phase_write_ms_;

  std::unique_ptr<FlightRecorder> flight_;
  std::chrono::steady_clock::time_point epoch_;  // set in the ctor
  std::atomic<std::uint64_t> next_request_id_{1};
  std::atomic<std::int64_t> last_slow_dump_us_{-1};  // rate limit, vs epoch_

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [read, write]
  int port_ = 0;
  std::thread io_thread_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<int> in_flight_{0};

  mutable std::mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<SessionEntry>> sessions_;
  std::uint64_t next_session_ = 0;  // guarded by sessions_mu_

  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  int jobs_outstanding_ = 0;  // drain jobs submitted but not finished
};

}  // namespace moldsched::svc
