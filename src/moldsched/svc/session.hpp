// One scheduling session: the server-side state machine behind the
// session.open / task.release / session.close protocol.
//
// A session accumulates the streamed instance into a TaskGraph and
// answers each release with the task's final allocation plus its
// start/finish in the schedule of the prefix revealed so far. Re-running
// the *actual* Algorithm 1 engine on the prefix — rather than keeping a
// bespoke incremental simulator — is what makes the close reply
// byte-identical to an in-process run by construction: the same
// SchedulerSpec executes the same graph. The prefix re-runs stay cheap
// because registry specs memoize their Algorithm 2 decisions in the
// process-wide DecisionCache, so only the event simulation repeats.
//
// Sessions are not thread-safe; the server serializes access per session.
#pragma once

#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>

#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/task_graph.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/svc/protocol.hpp"

namespace moldsched::svc {

/// Application error raised by Session; the server turns it into an
/// error reply with the carried code.
class SessionError : public std::runtime_error {
 public:
  SessionError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

class Session {
 public:
  /// Resolves `params.scheduler` through sched::spec_by_name at
  /// `params.mu`. Throws SessionError(kBadRequest) for unknown scheduler
  /// names or an out-of-range mu.
  Session(std::string id, const OpenParams& params);

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] int P() const noexcept { return params_.P; }
  [[nodiscard]] const std::string& scheduler_name() const noexcept {
    return spec_.name;
  }
  [[nodiscard]] int num_tasks() const noexcept { return graph_.num_tasks(); }
  [[nodiscard]] const graph::TaskGraph& graph() const noexcept {
    return graph_;
  }

  /// Adds the released task and reports its allocation and projected
  /// start/finish under the prefix instance. Throws SessionError
  /// (kBadRequest) on a missing model, an id mismatch (duplicate or
  /// reordered release), or predecessors that were never released.
  [[nodiscard]] ReleaseReply release(const ReleaseParams& params);

  /// The authoritative result: schedules the full accumulated instance
  /// (reusing the last prefix run — the prefix *is* the full instance
  /// after the final release) and reports makespan, the Lemma 2 lower
  /// bound, their ratio, allocations, trace records and session stats.
  /// A zero-task session closes with makespan 0 and ratio 1.
  [[nodiscard]] CloseReply close();

  /// Seconds since the last release/close touched this session
  /// (monotonic clock); drives the server's idle reaper.
  [[nodiscard]] double idle_seconds() const;

 private:
  void touch();
  const core::ScheduleResult& run_prefix();

  std::string id_;
  OpenParams params_;
  sched::SchedulerSpec spec_;
  graph::TaskGraph graph_;
  /// Schedule of the first `result_tasks_` tasks; reused when no release
  /// happened in between (close after release re-runs nothing).
  core::ScheduleResult last_result_;
  int result_tasks_ = -1;
  SessionStats stats_;
  std::chrono::steady_clock::time_point last_active_;
};

}  // namespace moldsched::svc
