// Wire layer of the scheduling service: length-prefixed framing and the
// JSON codec for speedup models and task graphs.
//
// Every frame is a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON. The codec is *round-trip exact*: doubles are
// printed with 17 significant digits (lossless for IEEE-754 binary64) and
// re-parsed by strtod, so a decoded model carries bit-identical
// parameters — and therefore an identical ModelFingerprint — to the one
// that was encoded. That property is what makes scheduling a streamed
// instance byte-for-byte equal to scheduling it in process
// (check::wire_roundtrip_check asserts it over the corpus).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/io/json.hpp"
#include "moldsched/model/speedup_model.hpp"

namespace moldsched::svc {

/// Default cap on one frame's payload; a peer announcing more is a
/// protocol error, not an allocation.
inline constexpr std::size_t kDefaultMaxFrameBytes = 8u << 20;

/// Prepends the 4-byte big-endian length header to `payload`.
/// Throws std::invalid_argument if payload exceeds max_frame.
[[nodiscard]] std::string encode_frame(
    const std::string& payload,
    std::size_t max_frame = kDefaultMaxFrameBytes);

/// Incremental decoder for a stream of frames. Feed raw bytes in any
/// fragmentation (TCP gives no message boundaries); next() pops complete
/// payloads in order. A header announcing more than max_frame bytes
/// throws std::invalid_argument — the connection is then unrecoverable
/// and must be closed, since the stream position is poisoned.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame = kDefaultMaxFrameBytes)
      : max_frame_(max_frame) {}

  void feed(const char* data, std::size_t n);

  /// The next complete payload, or nullopt if more bytes are needed.
  [[nodiscard]] std::optional<std::string> next();

  /// Bytes buffered but not yet returned (header + partial payloads).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  std::size_t max_frame_;
  std::string buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
};

// ---------------------------------------------------------------------------
// Socket plumbing shared by every listener in the service (the RPC
// server and the admin/metrics listener): IPv4 bind + listen with
// SO_REUSEADDR, returning a non-blocking fd.

/// Binds and listens on `host:port` (port 0 picks an ephemeral port),
/// stores the bound port into `bound_port` and returns the listening
/// fd, already non-blocking. Throws std::invalid_argument on a bad
/// host/port and std::runtime_error on socket errors.
[[nodiscard]] int tcp_listen(const std::string& host, int port,
                             int& bound_port, int backlog = 64);

/// Sets O_NONBLOCK on an fd (best effort).
void set_nonblocking(int fd) noexcept;

/// Formats a double with enough digits (precision 17) that strtod
/// recovers the exact bit pattern. The wire format's number printer.
[[nodiscard]] std::string wire_number(double v);

/// JSON object for one speedup model:
///   Eq. (1) family:  {"kind":"roofline|communication|amdahl|general",
///                     "w":..,"d":..,"c":..[,"pbar":..]}
///   arbitrary:       {"kind":"arbitrary","times":[..]}
/// Only GeneralModel subtypes and TableModel are serializable; other
/// arbitrary models (FunctionModel) throw std::invalid_argument.
[[nodiscard]] std::string encode_model(const model::SpeedupModel& m);

/// Inverse of encode_model. Throws std::invalid_argument on unknown
/// kinds, missing parameters, or values the model constructors reject.
[[nodiscard]] model::ModelPtr decode_model(const io::JsonValue& v);

/// {"tasks":[{"id":..,"name":..,"model":{..}},..],"edges":[[u,v],..]}
/// with tasks in id order — unlike io::graph_to_json, every model is
/// encoded losslessly so the graph can be reconstructed.
[[nodiscard]] std::string encode_graph(const graph::TaskGraph& g);

/// Inverse of encode_graph. Task ids must be dense and ascending.
[[nodiscard]] graph::TaskGraph decode_graph(const io::JsonValue& v);
[[nodiscard]] graph::TaskGraph decode_graph(const std::string& json);

}  // namespace moldsched::svc
