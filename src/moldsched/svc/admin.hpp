// Admin/metrics listener: a tiny HTTP endpoint next to the RPC server.
//
// The scheduling service speaks a length-prefixed JSON protocol that
// curl and Prometheus cannot; the admin listener bridges that gap with
// a deliberately minimal HTTP/1.0 responder (GET only, one request per
// connection, Connection: close) on its own thread:
//
//   GET /metrics       registry in Prometheus text format 0.0.4
//   GET /metrics.json  registry as MetricRegistry::to_json
//   GET /flight        the server's flight recorder as JSONL
//   GET /healthz       "ok" (liveness probe)
//
// Every /metrics* scrape refreshes the proc.* gauges first, so RSS / fd
// / uptime curves are observable live. The listener shares the socket
// plumbing of the RPC server (tcp_listen) and serves strictly read-only
// views — it can be exposed more widely than the RPC port.
#pragma once

#include <atomic>
#include <string>
#include <thread>

#include "moldsched/obs/metrics.hpp"
#include "moldsched/obs/process_stats.hpp"

namespace moldsched::svc {

class Server;

class AdminServer {
 public:
  /// `registry` backs /metrics and /metrics.json; `server` (optional)
  /// backs /flight. Both must outlive the admin server.
  explicit AdminServer(obs::MetricRegistry& registry,
                       const Server* server = nullptr);

  /// Stops and joins the serving thread.
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds `host:port` (port 0 picks an ephemeral port), starts the
  /// serving thread and returns the bound port. Callable once.
  int listen(const std::string& host = "127.0.0.1", int port = 0);

  [[nodiscard]] int port() const noexcept { return port_; }

  /// Stops accepting and joins the thread. Idempotent.
  void stop();

  /// Routes one request path to a response body + content type; exposed
  /// for tests that want the payloads without a socket. Returns false
  /// for unknown paths (the caller answers 404).
  [[nodiscard]] bool route(const std::string& path, std::string& body,
                           std::string& content_type);

 private:
  void serve_loop();
  void handle_client(int fd);

  obs::MetricRegistry& registry_;
  const Server* server_;
  obs::ProcessSampler proc_sampler_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
};

}  // namespace moldsched::svc
