// RPC protocol of the scheduling service.
//
// One request frame carries one JSON object with an "op" discriminator
// and an optional client-chosen "seq" echoed back in the reply:
//
//   session.open   pick a scheduler from sched::registry, a platform
//                  size P and (for mu-parameterized schedulers) mu;
//                  returns a server-assigned session id.
//   task.release   stream one task arrival: name, speedup model (wire
//                  codec), predecessor ids among already-released tasks.
//                  The reply carries the task's dense id, its final LPA
//                  allocation, and its start/finish times in the
//                  schedule of the instance revealed so far.
//   session.close  returns the authoritative schedule of the full
//                  instance — makespan, the Lemma 2 lower bound, their
//                  ratio, per-task allocations and trace records — plus
//                  per-session counters and (if requested at open) a
//                  Chrome trace-event JSON of the final schedule.
//   server.stop    graceful remote shutdown; only honored when the
//                  server was started with allow_remote_stop.
//
// Timing semantics: the allocation in a task.release reply is final (LPA
// depends only on the task's own model and P — Algorithm 2 is local by
// design), while the start/finish times are *projections* under the
// prefix revealed so far: a later release with an earlier ready time can
// still claim processors first and shift them. The session.close reply
// is the authority, and is byte-identical to running the accumulated
// graph through the same SchedulerSpec in process.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "moldsched/core/queue_policy.hpp"
#include "moldsched/io/json.hpp"
#include "moldsched/model/speedup_model.hpp"
#include "moldsched/sim/trace.hpp"

namespace moldsched::svc {

/// Application-level error codes carried in {"error":{"code":..}}.
enum class ErrorCode {
  kParseError,      ///< frame payload is not valid JSON / not an object
  kBadRequest,      ///< missing or invalid fields
  kUnknownOp,       ///< unrecognized "op"
  kUnknownSession,  ///< session id never existed, closed, or reaped
  kOverloaded,      ///< admission control: queue full or session limit
  kQuotaExceeded,   ///< per-session task quota exhausted
  kShuttingDown,    ///< server is draining; no new work accepted
  kForbidden,       ///< op disabled by server configuration
  kInternal,        ///< unexpected exception while serving the request
};

[[nodiscard]] std::string to_string(ErrorCode code);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] ErrorCode error_code_from_string(const std::string& s);

/// Parsed error payload of a failed reply.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

struct OpenParams {
  std::string scheduler = "lpa";  ///< name from sched::full_suite_names()
  int P = 1;
  double mu = 0.25;               ///< LPA parameter for mu-family schedulers
  core::QueuePolicy policy = core::QueuePolicy::kFifo;
  bool trace = false;             ///< ship a Chrome trace in the close reply
};

struct ReleaseParams {
  std::string name;                   ///< task label (may be empty)
  model::ModelPtr model;              ///< required
  std::vector<int> preds;             ///< ids of already-released tasks
  std::optional<int> expected_task;   ///< client's intended id; mismatch =
                                      ///< duplicate or reordered release
};

/// One parsed request, server side.
struct Request {
  enum class Op { kOpen, kRelease, kClose, kStop };
  Op op = Op::kOpen;
  std::int64_t seq = 0;        ///< echoed verbatim; 0 when absent
  std::string session;         ///< open: empty; others: target session
  std::string trace_id;        ///< optional client-chosen correlation id,
                               ///< carried into spans and flight records
  OpenParams open;
  ReleaseParams release;
};

/// Parses one request payload. Throws std::invalid_argument with a
/// message suitable for a kBadRequest / kUnknownOp / kParseError reply.
[[nodiscard]] Request parse_request(const std::string& payload);

/// Request serializers (client side). A non-empty `trace_id` rides the
/// request as "trace_id" and shows up in the server's request spans and
/// flight-recorder records, correlating client-side activity with
/// server-side telemetry.
[[nodiscard]] std::string open_request_json(const OpenParams& p,
                                            std::int64_t seq,
                                            const std::string& trace_id = "");
[[nodiscard]] std::string release_request_json(
    const std::string& session, const ReleaseParams& p, std::int64_t seq,
    const std::string& trace_id = "");
[[nodiscard]] std::string close_request_json(const std::string& session,
                                             std::int64_t seq,
                                             const std::string& trace_id = "");
[[nodiscard]] std::string stop_request_json(std::int64_t seq);

// ---------------------------------------------------------------------------
// Replies. Each struct has ok/error plus op-specific payload; the
// *_reply_json builders are used by the server, parse_*_reply by the
// client. Builders print doubles via wire_number, so every time the
// client reads back is the server's bit pattern.

struct OpenReply {
  bool ok = false;
  Error error;
  std::int64_t seq = 0;
  std::string session;
  std::string scheduler;
  int P = 0;
};

struct ReleaseReply {
  bool ok = false;
  Error error;
  std::int64_t seq = 0;
  int task = -1;       ///< dense id assigned by the session
  int alloc = 0;       ///< final processor allocation
  double ready = 0.0;  ///< reveal instant in the prefix schedule
  double start = 0.0;  ///< projected start under the prefix
  double end = 0.0;    ///< projected finish under the prefix
  double projected_makespan = 0.0;
};

struct SessionStats {
  std::uint64_t releases = 0;
  std::uint64_t reschedules = 0;  ///< prefix simulations run
  double schedule_ms = 0.0;       ///< total time spent in spec.run
};

struct CloseReply {
  bool ok = false;
  Error error;
  std::int64_t seq = 0;
  double makespan = 0.0;
  double lower_bound = 0.0;  ///< Lemma 2: max(A_min / P, C_min)
  double ratio = 0.0;        ///< makespan / lower_bound (1 when both 0)
  int num_tasks = 0;
  std::uint64_t num_events = 0;
  std::vector<int> allocation;
  std::vector<sim::TaskRecord> records;
  SessionStats stats;
  std::string trace_json;    ///< Chrome trace; empty unless requested
};

struct StopReply {
  bool ok = false;
  Error error;
  std::int64_t seq = 0;
};

[[nodiscard]] std::string error_reply_json(std::int64_t seq, ErrorCode code,
                                           const std::string& message);
[[nodiscard]] std::string open_reply_json(const OpenReply& r);
[[nodiscard]] std::string release_reply_json(const ReleaseReply& r);
[[nodiscard]] std::string close_reply_json(const CloseReply& r);
[[nodiscard]] std::string stop_reply_json(const StopReply& r);

[[nodiscard]] OpenReply parse_open_reply(const std::string& payload);
[[nodiscard]] ReleaseReply parse_release_reply(const std::string& payload);
[[nodiscard]] CloseReply parse_close_reply(const std::string& payload);
[[nodiscard]] StopReply parse_stop_reply(const std::string& payload);

}  // namespace moldsched::svc
