// Slow-request flight recorder: a lock-free ring buffer retaining the
// last N request spans (ids, phase timings, outcome) so a loaded server
// can answer "what just happened" without logging every request.
//
// Writers are the server's worker threads, one record() per finished
// request; readers are rare (a SIGUSR1 dump, an admin /flight scrape, a
// slow-request auto-dump). Each slot is a word-granular seqlock: the
// writer claims the slot by CAS-ing its version to odd, publishes the
// record as relaxed stores into per-word atomics, and releases with an
// even version; a reader that observes a version change mid-copy simply
// discards the slot. A writer that finds its slot mid-write (another
// writer lapped the ring) drops the record and counts it — recording
// never blocks and never spins, which is what lets it sit on the reply
// path unconditionally when armed.
//
// Records are fixed-size: the span's strings are compressed to small
// codes (ops and outcomes come from closed sets, session ids are the
// server-minted "s<N>") and the client trace_id keeps its first 24
// bytes. snapshot() returns surviving records oldest-first by request
// id; to_jsonl() renders one JSON object per line, the dump format the
// serve tool writes on SIGUSR1.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "moldsched/obs/span.hpp"

namespace moldsched::svc {

class FlightRecorder {
 public:
  /// Longest trace_id prefix a record preserves.
  static constexpr std::size_t kMaxTraceIdBytes = 24;

  /// `capacity` is rounded up to a power of two, minimum 8.
  explicit FlightRecorder(std::size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Publishes one finished request. Wait-free: a slot still being
  /// written by a lapping writer drops the record instead of waiting.
  void record(const obs::RequestSpan& span) noexcept;

  /// Readable records, oldest first (by request id). Concurrent writes
  /// may hide the slots they are touching.
  [[nodiscard]] std::vector<obs::RequestSpan> snapshot() const;

  /// snapshot() rendered as JSONL: one object per record with id, seq,
  /// session, op, trace_id, outcome, start_us, total_us and a phases_us
  /// sub-object (queue/parse/schedule/serialize/write).
  [[nodiscard]] std::string to_jsonl() const;

  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size();
  }
  /// Total records accepted / dropped to slot collisions.
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return recorded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kWords = 13;

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> version{0};  ///< odd = write in progress
    std::array<std::atomic<std::uint64_t>, kWords> words{};
  };

  std::vector<Slot> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> tickets_{0};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace moldsched::svc
