#include "moldsched/svc/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace moldsched::svc {

namespace {

[[nodiscard]] std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Client::~Client() { disconnect(); }

void Client::connect(const std::string& host, int port) {
  if (fd_ >= 0) throw std::logic_error("Client::connect: already connected");
  if (port < 1 || port > 65535)
    throw std::invalid_argument("Client::connect: port out of range");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::invalid_argument("Client::connect: bad IPv4 host '" + host +
                                "'");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error(errno_message("socket"));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string msg = errno_message("connect");
    ::close(fd);
    throw std::runtime_error(msg);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
}

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send_all(const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(errno_message("Client send"));
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string Client::read_frame() {
  for (;;) {
    if (auto payload = reader_.next()) return *payload;
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0)
      throw std::runtime_error("Client: server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(errno_message("Client recv"));
    }
    reader_.feed(buf, static_cast<std::size_t>(n));
  }
}

std::string Client::roundtrip(const std::string& payload) {
  if (fd_ < 0) throw std::logic_error("Client: not connected");
  send_all(encode_frame(payload, max_frame_));
  return read_frame();
}

OpenReply Client::open(const OpenParams& params) {
  return parse_open_reply(
      roundtrip(open_request_json(params, ++next_seq_, trace_id_)));
}

ReleaseReply Client::release(const std::string& session,
                             const ReleaseParams& params) {
  return parse_release_reply(
      roundtrip(release_request_json(session, params, ++next_seq_,
                                     trace_id_)));
}

CloseReply Client::close_session(const std::string& session) {
  return parse_close_reply(
      roundtrip(close_request_json(session, ++next_seq_, trace_id_)));
}

StopReply Client::stop_server() {
  return parse_stop_reply(roundtrip(stop_request_json(++next_seq_)));
}

}  // namespace moldsched::svc
