// Blocking TCP client of the scheduling service.
//
// One Client wraps one connection and speaks the protocol in lockstep:
// each call sends a frame and blocks for the matching reply. Transport
// failures (connect/read/write errors, oversized frames, a server that
// hangs up) throw std::runtime_error; application-level failures come
// back inside the reply structs with ok == false and the error code set,
// so callers can distinguish "the network broke" from "the server said
// no". Not thread-safe; use one Client per thread (the load generator
// does exactly that).
#pragma once

#include <cstdint>
#include <string>

#include "moldsched/svc/protocol.hpp"
#include "moldsched/svc/wire.hpp"

namespace moldsched::svc {

class Client {
 public:
  explicit Client(std::size_t max_frame = kDefaultMaxFrameBytes)
      : reader_(max_frame), max_frame_(max_frame) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to an IPv4 host. Throws std::runtime_error on failure.
  void connect(const std::string& host, int port);
  void disconnect();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Correlation id attached to every subsequent open/release/close
  /// request ("" = stop sending one). The server carries it into its
  /// request spans and flight-recorder records, so client-side activity
  /// can be matched against server-side telemetry.
  void set_trace_id(std::string trace_id) { trace_id_ = std::move(trace_id); }
  [[nodiscard]] const std::string& trace_id() const noexcept {
    return trace_id_;
  }

  /// session.open. On ok, reply.session is the id for release/close.
  [[nodiscard]] OpenReply open(const OpenParams& params);

  /// task.release for the next task. `expected_task` in params guards
  /// against duplicated or reordered streams (server checks it).
  [[nodiscard]] ReleaseReply release(const std::string& session,
                                     const ReleaseParams& params);

  [[nodiscard]] CloseReply close_session(const std::string& session);

  /// server.stop; the server must run with allow_remote_stop.
  [[nodiscard]] StopReply stop_server();

  /// Sends a raw payload and returns the raw reply payload — the escape
  /// hatch for protocol tests (malformed requests, unknown ops).
  [[nodiscard]] std::string roundtrip(const std::string& payload);

 private:
  void send_all(const std::string& bytes);
  [[nodiscard]] std::string read_frame();
  std::int64_t next_seq_ = 0;
  std::string trace_id_;

  int fd_ = -1;
  FrameReader reader_;
  std::size_t max_frame_;
};

}  // namespace moldsched::svc
