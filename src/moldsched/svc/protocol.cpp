#include "moldsched/svc/protocol.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "moldsched/svc/wire.hpp"

namespace moldsched::svc {

namespace {

[[nodiscard]] const io::JsonValue& member(const io::JsonValue& v,
                                          const std::string& key,
                                          const char* who) {
  const auto* f = v.find(key);
  if (f == nullptr)
    throw std::invalid_argument(std::string(who) + ": missing '" + key +
                                "'");
  return *f;
}

[[nodiscard]] std::string string_field(const io::JsonValue& v,
                                       const std::string& key,
                                       const char* who) {
  const auto& f = member(v, key, who);
  if (!f.is_string())
    throw std::invalid_argument(std::string(who) + ": '" + key +
                                "' must be a string");
  return f.string;
}

[[nodiscard]] int int_field(const io::JsonValue& v, const std::string& key,
                            const char* who) {
  const auto& f = member(v, key, who);
  if (!f.is_number() || f.number != std::floor(f.number) ||
      std::abs(f.number) > 2147483647.0)
    throw std::invalid_argument(std::string(who) + ": '" + key +
                                "' must be a 32-bit integer");
  return static_cast<int>(f.number);
}

[[nodiscard]] core::QueuePolicy policy_from_string(const std::string& s) {
  if (s == "fifo") return core::QueuePolicy::kFifo;
  if (s == "lifo") return core::QueuePolicy::kLifo;
  if (s == "largest-work") return core::QueuePolicy::kLargestWorkFirst;
  if (s == "longest-min-time")
    return core::QueuePolicy::kLongestMinTimeFirst;
  if (s == "smallest-alloc") return core::QueuePolicy::kSmallestAllocFirst;
  throw std::invalid_argument(
      "unknown queue policy '" + s +
      "' (known: fifo, lifo, largest-work, longest-min-time, "
      "smallest-alloc)");
}

void append_error(std::ostringstream& os, const Error& e) {
  os << "\"ok\":false,\"error\":{\"code\":\"" << to_string(e.code)
     << "\",\"message\":\"" << io::json_escape(e.message) << "\"}";
}

/// Shared ok/error head of every reply parse.
void parse_reply_head(const io::JsonValue& v, bool& ok, Error& error,
                      std::int64_t& seq) {
  if (!v.is_object())
    throw std::invalid_argument("svc reply: payload is not an object");
  const auto* okf = v.find("ok");
  if (okf == nullptr || !okf->is_bool())
    throw std::invalid_argument("svc reply: missing boolean 'ok'");
  ok = okf->boolean;
  const auto* seqf = v.find("seq");
  seq = seqf != nullptr && seqf->is_number()
            ? static_cast<std::int64_t>(seqf->number)
            : 0;
  if (!ok) {
    const auto* err = v.find("error");
    if (err == nullptr || !err->is_object())
      throw std::invalid_argument("svc reply: error reply without 'error'");
    error.code = error_code_from_string(
        string_field(*err, "code", "svc reply"));
    const auto* msg = err->find("message");
    if (msg != nullptr && msg->is_string()) error.message = msg->string;
  }
}

}  // namespace

std::string to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownOp: return "unknown_op";
    case ErrorCode::kUnknownSession: return "unknown_session";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kQuotaExceeded: return "quota_exceeded";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kForbidden: return "forbidden";
    case ErrorCode::kInternal: return "internal";
  }
  throw std::logic_error("to_string: unknown ErrorCode");
}

ErrorCode error_code_from_string(const std::string& s) {
  if (s == "parse_error") return ErrorCode::kParseError;
  if (s == "bad_request") return ErrorCode::kBadRequest;
  if (s == "unknown_op") return ErrorCode::kUnknownOp;
  if (s == "unknown_session") return ErrorCode::kUnknownSession;
  if (s == "overloaded") return ErrorCode::kOverloaded;
  if (s == "quota_exceeded") return ErrorCode::kQuotaExceeded;
  if (s == "shutting_down") return ErrorCode::kShuttingDown;
  if (s == "forbidden") return ErrorCode::kForbidden;
  if (s == "internal") return ErrorCode::kInternal;
  throw std::invalid_argument("error_code_from_string: unknown code '" + s +
                              "'");
}

// ---------------------------------------------------------------------------
// Request parsing (server side)

Request parse_request(const std::string& payload) {
  io::JsonValue doc;
  try {
    doc = io::parse_json(payload);
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string("parse_error: ") + e.what());
  }
  if (!doc.is_object())
    throw std::invalid_argument("parse_error: request is not an object");

  Request req;
  const auto* seq = doc.find("seq");
  if (seq != nullptr && seq->is_number())
    req.seq = static_cast<std::int64_t>(seq->number);
  const auto* trace_id = doc.find("trace_id");
  if (trace_id != nullptr) {
    if (!trace_id->is_string())
      throw std::invalid_argument("request: 'trace_id' must be a string");
    req.trace_id = trace_id->string;
  }

  const std::string op = string_field(doc, "op", "request");
  if (op == "session.open") {
    req.op = Request::Op::kOpen;
    const auto* sched = doc.find("scheduler");
    if (sched != nullptr) {
      if (!sched->is_string())
        throw std::invalid_argument("request: 'scheduler' must be a string");
      req.open.scheduler = sched->string;
    }
    req.open.P = int_field(doc, "P", "request");
    if (req.open.P < 1)
      throw std::invalid_argument("request: P must be >= 1");
    const auto* mu = doc.find("mu");
    if (mu != nullptr) {
      if (!mu->is_number())
        throw std::invalid_argument("request: 'mu' must be a number");
      req.open.mu = mu->number;
    }
    const auto* policy = doc.find("policy");
    if (policy != nullptr) {
      if (!policy->is_string())
        throw std::invalid_argument("request: 'policy' must be a string");
      req.open.policy = policy_from_string(policy->string);
    }
    const auto* trace = doc.find("trace");
    if (trace != nullptr) {
      if (!trace->is_bool())
        throw std::invalid_argument("request: 'trace' must be a boolean");
      req.open.trace = trace->boolean;
    }
    return req;
  }
  if (op == "task.release") {
    req.op = Request::Op::kRelease;
    req.session = string_field(doc, "session", "request");
    const auto* name = doc.find("name");
    if (name != nullptr && name->is_string()) req.release.name = name->string;
    req.release.model = decode_model(member(doc, "model", "request"));
    const auto* preds = doc.find("preds");
    if (preds != nullptr) {
      if (!preds->is_array())
        throw std::invalid_argument("request: 'preds' must be an array");
      for (const auto& p : preds->array) {
        if (!p.is_number() || p.number != std::floor(p.number) || p.number < 0)
          throw std::invalid_argument(
              "request: 'preds' entries must be non-negative integers");
        req.release.preds.push_back(static_cast<int>(p.number));
      }
    }
    const auto* expected = doc.find("task");
    if (expected != nullptr)
      req.release.expected_task = int_field(doc, "task", "request");
    return req;
  }
  if (op == "session.close") {
    req.op = Request::Op::kClose;
    req.session = string_field(doc, "session", "request");
    return req;
  }
  if (op == "server.stop") {
    req.op = Request::Op::kStop;
    return req;
  }
  throw std::invalid_argument("unknown_op: '" + op + "'");
}

// ---------------------------------------------------------------------------
// Request building (client side)

namespace {

void append_trace_id(std::ostringstream& os, const std::string& trace_id) {
  if (!trace_id.empty())
    os << ",\"trace_id\":\"" << io::json_escape(trace_id) << '"';
}

}  // namespace

std::string open_request_json(const OpenParams& p, std::int64_t seq,
                              const std::string& trace_id) {
  std::ostringstream os;
  os << "{\"op\":\"session.open\",\"seq\":" << seq << ",\"scheduler\":\""
     << io::json_escape(p.scheduler) << "\",\"P\":" << p.P
     << ",\"mu\":" << wire_number(p.mu) << ",\"policy\":\""
     << core::to_string(p.policy) << "\",\"trace\":"
     << (p.trace ? "true" : "false");
  append_trace_id(os, trace_id);
  os << '}';
  return os.str();
}

std::string release_request_json(const std::string& session,
                                 const ReleaseParams& p, std::int64_t seq,
                                 const std::string& trace_id) {
  if (!p.model)
    throw std::invalid_argument("release_request_json: model is required");
  std::ostringstream os;
  os << "{\"op\":\"task.release\",\"seq\":" << seq << ",\"session\":\""
     << io::json_escape(session) << "\",\"name\":\""
     << io::json_escape(p.name) << "\",\"model\":" << encode_model(*p.model)
     << ",\"preds\":[";
  for (std::size_t i = 0; i < p.preds.size(); ++i) {
    if (i > 0) os << ',';
    os << p.preds[i];
  }
  os << ']';
  if (p.expected_task) os << ",\"task\":" << *p.expected_task;
  append_trace_id(os, trace_id);
  os << '}';
  return os.str();
}

std::string close_request_json(const std::string& session, std::int64_t seq,
                               const std::string& trace_id) {
  std::ostringstream os;
  os << "{\"op\":\"session.close\",\"seq\":" << seq << ",\"session\":\""
     << io::json_escape(session) << '"';
  append_trace_id(os, trace_id);
  os << '}';
  return os.str();
}

std::string stop_request_json(std::int64_t seq) {
  return "{\"op\":\"server.stop\",\"seq\":" + std::to_string(seq) + "}";
}

// ---------------------------------------------------------------------------
// Reply building (server side)

std::string error_reply_json(std::int64_t seq, ErrorCode code,
                             const std::string& message) {
  std::ostringstream os;
  os << "{\"seq\":" << seq << ',';
  append_error(os, Error{code, message});
  os << '}';
  return os.str();
}

std::string open_reply_json(const OpenReply& r) {
  if (!r.ok) return error_reply_json(r.seq, r.error.code, r.error.message);
  std::ostringstream os;
  os << "{\"seq\":" << r.seq << ",\"ok\":true,\"session\":\""
     << io::json_escape(r.session) << "\",\"scheduler\":\""
     << io::json_escape(r.scheduler) << "\",\"P\":" << r.P << '}';
  return os.str();
}

std::string release_reply_json(const ReleaseReply& r) {
  if (!r.ok) return error_reply_json(r.seq, r.error.code, r.error.message);
  std::ostringstream os;
  os << "{\"seq\":" << r.seq << ",\"ok\":true,\"task\":" << r.task
     << ",\"alloc\":" << r.alloc << ",\"ready\":" << wire_number(r.ready)
     << ",\"start\":" << wire_number(r.start)
     << ",\"end\":" << wire_number(r.end) << ",\"projected_makespan\":"
     << wire_number(r.projected_makespan) << '}';
  return os.str();
}

std::string close_reply_json(const CloseReply& r) {
  if (!r.ok) return error_reply_json(r.seq, r.error.code, r.error.message);
  std::ostringstream os;
  os << "{\"seq\":" << r.seq << ",\"ok\":true,\"makespan\":"
     << wire_number(r.makespan) << ",\"lower_bound\":"
     << wire_number(r.lower_bound) << ",\"ratio\":" << wire_number(r.ratio)
     << ",\"num_tasks\":" << r.num_tasks << ",\"num_events\":" << r.num_events
     << ",\"allocation\":[";
  for (std::size_t i = 0; i < r.allocation.size(); ++i) {
    if (i > 0) os << ',';
    os << r.allocation[i];
  }
  os << "],\"records\":[";
  for (std::size_t i = 0; i < r.records.size(); ++i) {
    if (i > 0) os << ',';
    const auto& rec = r.records[i];
    os << "{\"task\":" << rec.task << ",\"start\":" << wire_number(rec.start)
       << ",\"end\":" << wire_number(rec.end) << ",\"procs\":" << rec.procs
       << '}';
  }
  os << "],\"stats\":{\"releases\":" << r.stats.releases
     << ",\"reschedules\":" << r.stats.reschedules << ",\"schedule_ms\":"
     << wire_number(r.stats.schedule_ms) << '}';
  if (!r.trace_json.empty())
    os << ",\"trace_json\":\"" << io::json_escape(r.trace_json) << '"';
  os << '}';
  return os.str();
}

std::string stop_reply_json(const StopReply& r) {
  if (!r.ok) return error_reply_json(r.seq, r.error.code, r.error.message);
  return "{\"seq\":" + std::to_string(r.seq) + ",\"ok\":true}";
}

// ---------------------------------------------------------------------------
// Reply parsing (client side)

OpenReply parse_open_reply(const std::string& payload) {
  const auto doc = io::parse_json(payload);
  OpenReply r;
  parse_reply_head(doc, r.ok, r.error, r.seq);
  if (!r.ok) return r;
  r.session = string_field(doc, "session", "open reply");
  r.scheduler = string_field(doc, "scheduler", "open reply");
  r.P = int_field(doc, "P", "open reply");
  return r;
}

ReleaseReply parse_release_reply(const std::string& payload) {
  const auto doc = io::parse_json(payload);
  ReleaseReply r;
  parse_reply_head(doc, r.ok, r.error, r.seq);
  if (!r.ok) return r;
  r.task = int_field(doc, "task", "release reply");
  r.alloc = int_field(doc, "alloc", "release reply");
  r.ready = member(doc, "ready", "release reply").number;
  r.start = member(doc, "start", "release reply").number;
  r.end = member(doc, "end", "release reply").number;
  r.projected_makespan =
      member(doc, "projected_makespan", "release reply").number;
  return r;
}

CloseReply parse_close_reply(const std::string& payload) {
  const auto doc = io::parse_json(payload);
  CloseReply r;
  parse_reply_head(doc, r.ok, r.error, r.seq);
  if (!r.ok) return r;
  r.makespan = member(doc, "makespan", "close reply").number;
  r.lower_bound = member(doc, "lower_bound", "close reply").number;
  r.ratio = member(doc, "ratio", "close reply").number;
  r.num_tasks = int_field(doc, "num_tasks", "close reply");
  r.num_events = static_cast<std::uint64_t>(
      member(doc, "num_events", "close reply").number);
  const auto& alloc = member(doc, "allocation", "close reply");
  if (!alloc.is_array())
    throw std::invalid_argument("close reply: 'allocation' must be an array");
  for (const auto& a : alloc.array)
    r.allocation.push_back(static_cast<int>(a.number));
  const auto& records = member(doc, "records", "close reply");
  if (!records.is_array())
    throw std::invalid_argument("close reply: 'records' must be an array");
  for (const auto& rec : records.array) {
    sim::TaskRecord t;
    t.task = int_field(rec, "task", "close reply record");
    t.start = member(rec, "start", "close reply record").number;
    t.end = member(rec, "end", "close reply record").number;
    t.procs = int_field(rec, "procs", "close reply record");
    r.records.push_back(t);
  }
  const auto& stats = member(doc, "stats", "close reply");
  r.stats.releases = static_cast<std::uint64_t>(
      member(stats, "releases", "close reply stats").number);
  r.stats.reschedules = static_cast<std::uint64_t>(
      member(stats, "reschedules", "close reply stats").number);
  r.stats.schedule_ms =
      member(stats, "schedule_ms", "close reply stats").number;
  const auto* trace = doc.find("trace_json");
  if (trace != nullptr && trace->is_string()) r.trace_json = trace->string;
  return r;
}

StopReply parse_stop_reply(const std::string& payload) {
  const auto doc = io::parse_json(payload);
  StopReply r;
  parse_reply_head(doc, r.ok, r.error, r.seq);
  return r;
}

}  // namespace moldsched::svc
