#include "moldsched/svc/wire.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/general_model.hpp"
#include "moldsched/model/special_models.hpp"

namespace moldsched::svc {

namespace {

[[nodiscard]] double number_field(const io::JsonValue& v,
                                  const std::string& key) {
  const auto* f = v.find(key);
  if (f == nullptr || !f->is_number())
    throw std::invalid_argument("decode_model: missing numeric '" + key +
                                "'");
  return f->number;
}

[[nodiscard]] double number_field_or(const io::JsonValue& v,
                                     const std::string& key,
                                     double fallback) {
  const auto* f = v.find(key);
  if (f == nullptr) return fallback;
  if (!f->is_number())
    throw std::invalid_argument("decode_model: '" + key +
                                "' must be a number");
  return f->number;
}

[[nodiscard]] int int_field(const io::JsonValue& v, const std::string& key,
                            const char* who) {
  const auto* f = v.find(key);
  if (f == nullptr || !f->is_number())
    throw std::invalid_argument(std::string(who) + ": missing integer '" +
                                key + "'");
  const double d = f->number;
  if (d != std::floor(d) || d < -2147483648.0 || d > 2147483647.0)
    throw std::invalid_argument(std::string(who) + ": '" + key +
                                "' is not a 32-bit integer");
  return static_cast<int>(d);
}

}  // namespace

// ---------------------------------------------------------------------------
// Socket plumbing

void set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int tcp_listen(const std::string& host, int port, int& bound_port,
               int backlog) {
  if (port < 0 || port > 65535)
    throw std::invalid_argument("tcp_listen: port out of range");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::invalid_argument("tcp_listen: bad IPv4 host '" + host + "'");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const auto fail = [fd](const char* what) {
    const std::string msg = std::string(what) + ": " + std::strerror(errno);
    ::close(fd);
    throw std::runtime_error(msg);
  };
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    fail("bind");
  if (::listen(fd, backlog) != 0) fail("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    fail("getsockname");
  bound_port = static_cast<int>(ntohs(bound.sin_port));
  set_nonblocking(fd);
  return fd;
}

// ---------------------------------------------------------------------------
// Framing

std::string encode_frame(const std::string& payload, std::size_t max_frame) {
  if (payload.size() > max_frame)
    throw std::invalid_argument("encode_frame: payload of " +
                                std::to_string(payload.size()) +
                                " bytes exceeds the frame cap of " +
                                std::to_string(max_frame));
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out += static_cast<char>((n >> 24) & 0xFF);
  out += static_cast<char>((n >> 16) & 0xFF);
  out += static_cast<char>((n >> 8) & 0xFF);
  out += static_cast<char>(n & 0xFF);
  out += payload;
  return out;
}

void FrameReader::feed(const char* data, std::size_t n) {
  // Reclaim consumed prefix lazily, once it dominates the buffer, so
  // feeding many small frames stays amortized O(bytes).
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

std::optional<std::string> FrameReader::next() {
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < 4) return std::nullopt;
  const auto* p =
      reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  const std::uint32_t len = (static_cast<std::uint32_t>(p[0]) << 24) |
                            (static_cast<std::uint32_t>(p[1]) << 16) |
                            (static_cast<std::uint32_t>(p[2]) << 8) |
                            static_cast<std::uint32_t>(p[3]);
  if (len > max_frame_)
    throw std::invalid_argument("FrameReader: frame of " +
                                std::to_string(len) +
                                " bytes exceeds the cap of " +
                                std::to_string(max_frame_));
  if (avail < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  std::string payload = buffer_.substr(consumed_ + 4, len);
  consumed_ += 4 + static_cast<std::size_t>(len);
  return payload;
}

// ---------------------------------------------------------------------------
// Model / graph codec

std::string wire_number(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string encode_model(const model::SpeedupModel& m) {
  std::ostringstream os;
  if (const auto* gm = dynamic_cast<const model::GeneralModel*>(&m)) {
    os << "{\"kind\":\"" << model::to_string(gm->kind()) << "\",\"w\":"
       << wire_number(gm->w()) << ",\"d\":" << wire_number(gm->d())
       << ",\"c\":" << wire_number(gm->c());
    if (gm->pbar() != model::GeneralParams::kUnboundedParallelism)
      os << ",\"pbar\":" << gm->pbar();
    os << '}';
    return os.str();
  }
  if (const auto* tm = dynamic_cast<const model::TableModel*>(&m)) {
    os << "{\"kind\":\"arbitrary\",\"times\":[";
    for (int p = 1; p <= tm->table_size(); ++p) {
      if (p > 1) os << ',';
      os << wire_number(tm->time(p));
    }
    os << "]}";
    return os.str();
  }
  throw std::invalid_argument("encode_model: model '" + m.describe() +
                              "' is not wire-serializable");
}

model::ModelPtr decode_model(const io::JsonValue& v) {
  if (!v.is_object())
    throw std::invalid_argument("decode_model: model must be an object");
  const auto* kind = v.find("kind");
  if (kind == nullptr || !kind->is_string())
    throw std::invalid_argument("decode_model: missing string 'kind'");

  if (kind->string == "arbitrary") {
    const auto* times = v.find("times");
    if (times == nullptr || !times->is_array())
      throw std::invalid_argument(
          "decode_model: arbitrary model needs a 'times' array");
    std::vector<double> t;
    t.reserve(times->array.size());
    for (const auto& e : times->array) {
      if (!e.is_number())
        throw std::invalid_argument(
            "decode_model: 'times' entries must be numbers");
      t.push_back(e.number);
    }
    return std::make_shared<model::TableModel>(std::move(t));
  }

  const double w = number_field(v, "w");
  if (kind->string == "roofline") {
    // pbar defaults to unbounded, matching GeneralParams — a roofline
    // without pbar is w/p all the way up to P.
    const auto* pb = v.find("pbar");
    const int pbar = pb != nullptr
                         ? int_field(v, "pbar", "decode_model")
                         : model::GeneralParams::kUnboundedParallelism;
    return std::make_shared<model::RooflineModel>(w, pbar);
  }
  if (kind->string == "communication")
    return std::make_shared<model::CommunicationModel>(w,
                                                       number_field(v, "c"));
  if (kind->string == "amdahl")
    return std::make_shared<model::AmdahlModel>(w, number_field(v, "d"));
  if (kind->string == "general") {
    model::GeneralParams params;
    params.w = w;
    params.d = number_field_or(v, "d", 0.0);
    params.c = number_field_or(v, "c", 0.0);
    params.pbar = v.find("pbar") != nullptr
                      ? int_field(v, "pbar", "decode_model")
                      : model::GeneralParams::kUnboundedParallelism;
    return std::make_shared<model::GeneralModel>(params);
  }
  throw std::invalid_argument("decode_model: unknown kind '" + kind->string +
                              "'");
}

std::string encode_graph(const graph::TaskGraph& g) {
  std::ostringstream os;
  os << "{\"tasks\":[";
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    if (v > 0) os << ',';
    os << "{\"id\":" << v << ",\"name\":\"" << io::json_escape(g.name(v))
       << "\",\"model\":" << encode_model(g.model_of(v)) << '}';
  }
  os << "],\"edges\":[";
  bool first = true;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    for (const graph::TaskId s : g.successors(v)) {
      if (!first) os << ',';
      first = false;
      os << '[' << v << ',' << s << ']';
    }
  }
  os << "]}";
  return os.str();
}

graph::TaskGraph decode_graph(const io::JsonValue& v) {
  if (!v.is_object())
    throw std::invalid_argument("decode_graph: document must be an object");
  const auto* tasks = v.find("tasks");
  if (tasks == nullptr || !tasks->is_array())
    throw std::invalid_argument("decode_graph: missing 'tasks' array");
  graph::TaskGraph g;
  int expected_id = 0;
  for (const auto& t : tasks->array) {
    if (!t.is_object())
      throw std::invalid_argument("decode_graph: task entries are objects");
    if (int_field(t, "id", "decode_graph") != expected_id)
      throw std::invalid_argument(
          "decode_graph: task ids must be dense and ascending (expected " +
          std::to_string(expected_id) + ")");
    ++expected_id;
    const auto* name = t.find("name");
    const auto* m = t.find("model");
    if (m == nullptr)
      throw std::invalid_argument("decode_graph: task without 'model'");
    g.add_task(decode_model(*m),
               name != nullptr && name->is_string() ? name->string : "");
  }
  const auto* edges = v.find("edges");
  if (edges != nullptr) {
    if (!edges->is_array())
      throw std::invalid_argument("decode_graph: 'edges' must be an array");
    for (const auto& e : edges->array) {
      if (!e.is_array() || e.array.size() != 2 || !e.array[0].is_number() ||
          !e.array[1].is_number())
        throw std::invalid_argument(
            "decode_graph: edges are [from, to] integer pairs");
      const double fu = e.array[0].number, fv = e.array[1].number;
      if (fu != std::floor(fu) || fv != std::floor(fv) || fu < 0 || fv < 0 ||
          fu >= g.num_tasks() || fv >= g.num_tasks())
        throw std::invalid_argument("decode_graph: edge endpoint out of range");
      g.add_edge(static_cast<graph::TaskId>(fu),
                 static_cast<graph::TaskId>(fv));
    }
  }
  return g;
}

graph::TaskGraph decode_graph(const std::string& json) {
  return decode_graph(io::parse_json(json));
}

}  // namespace moldsched::svc
