#include "moldsched/svc/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "moldsched/svc/protocol.hpp"

namespace moldsched::svc {

namespace {

constexpr int kPollTimeoutMs = 200;
constexpr double kReapSweepSeconds = 1.0;
constexpr double kWriteTimeoutSeconds = 10.0;
/// Minimum spacing between slow-request flight dumps: one storm of slow
/// requests produces one dump, not one file write per request.
constexpr double kSlowDumpCooldownSeconds = 1.0;

[[nodiscard]] std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

using Clock = std::chrono::steady_clock;

[[nodiscard]] double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Best-effort seq extraction for replies built before (or instead of)
/// a full parse — overload rejections and framing errors.
[[nodiscard]] std::int64_t extract_seq(const std::string& payload) {
  try {
    const auto doc = io::parse_json(payload);
    const auto* seq = doc.find("seq");
    if (seq != nullptr && seq->is_number())
      return static_cast<std::int64_t>(seq->number);
  } catch (const std::exception&) {
  }
  return 0;
}

}  // namespace

Server::Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServerLimits limits, engine::Executor& executor,
               obs::MetricRegistry& registry)
    : Server(limits, ServerTelemetry{}, executor, registry) {}

Server::Server(ServerLimits limits, ServerTelemetry telemetry,
               engine::Executor& executor, obs::MetricRegistry& registry)
    : limits_(limits),
      telemetry_(std::move(telemetry)),
      telemetry_armed_(telemetry_.armed()),
      executor_(executor),
      m_accepted_(registry.counter("svc.connections.accepted")),
      m_requests_(registry.counter("svc.requests.received")),
      m_rejected_overloaded_(registry.counter("svc.rejected.overloaded")),
      m_errors_(registry.counter("svc.replies.error")),
      m_sessions_opened_(registry.counter("svc.sessions.opened")),
      m_sessions_closed_(registry.counter("svc.sessions.closed")),
      m_sessions_reaped_(registry.counter("svc.sessions.reaped")),
      m_sessions_active_(registry.gauge("svc.sessions.active")),
      m_queue_depth_(registry.gauge("svc.queue.depth")),
      m_latency_ms_(registry.histogram(
          "svc.request.latency_ms", obs::Histogram::default_latency_bounds())),
      m_phase_queue_ms_(registry.histogram(
          "svc.phase.queue_ms", obs::Histogram::default_latency_bounds())),
      m_phase_parse_ms_(registry.histogram(
          "svc.phase.parse_ms", obs::Histogram::default_latency_bounds())),
      m_phase_schedule_ms_(registry.histogram(
          "svc.phase.schedule_ms", obs::Histogram::default_latency_bounds())),
      m_phase_serialize_ms_(registry.histogram(
          "svc.phase.serialize_ms", obs::Histogram::default_latency_bounds())),
      m_phase_write_ms_(registry.histogram(
          "svc.phase.write_ms", obs::Histogram::default_latency_bounds())),
      epoch_(Clock::now()) {
  if (limits_.max_sessions < 1 || limits_.max_in_flight < 1 ||
      limits_.max_tasks_per_session < 1)
    throw std::invalid_argument("Server: limits must be >= 1");
  if (telemetry_.flight_capacity > 0)
    flight_ = std::make_unique<FlightRecorder>(telemetry_.flight_capacity);
}

Server::~Server() {
  stop();
  wait();
}

int Server::listen(const std::string& host, int port) {
  if (listen_fd_ >= 0) throw std::logic_error("Server::listen called twice");

  int bound_port = 0;
  const int fd = tcp_listen(host, port, bound_port);
  if (::pipe(wake_fds_) != 0) {
    const std::string msg = errno_message("pipe");
    ::close(fd);
    throw std::runtime_error(msg);
  }
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);

  listen_fd_ = fd;
  port_ = bound_port;
  io_thread_ = std::thread([this] { io_loop(); });
  return port_;
}

void Server::stop() {
  stopping_.store(true, std::memory_order_release);
  wake_io();
}

void Server::wake_io() {
  if (wake_fds_[1] >= 0) {
    const char b = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &b, 1);
  }
}

void Server::wait() {
  if (io_thread_.joinable()) io_thread_.join();
  {
    std::unique_lock<std::mutex> lock(jobs_mu_);
    jobs_cv_.wait(lock, [this] { return jobs_outstanding_ == 0; });
  }
  // All stop() callers (worker-side server.stop included) have finished
  // once jobs_outstanding_ hit zero, so the self-pipe can close safely.
  if (wake_fds_[0] >= 0) {
    ::close(wake_fds_[0]);
    ::close(wake_fds_[1]);
    wake_fds_[0] = wake_fds_[1] = -1;
  }
  stopped_.store(true, std::memory_order_release);
}

bool Server::wait_for(double seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  // The io thread only exits once stopping_ is set, so polling is the
  // honest contract here: a live server simply times out.
  while (std::chrono::steady_clock::now() < deadline) {
    if (stopping_.load(std::memory_order_acquire)) {
      wait();
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return stopped();
}

int Server::num_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return static_cast<int>(sessions_.size());
}

// ---------------------------------------------------------------------------
// io thread

void Server::io_loop() {
  std::map<int, std::shared_ptr<Conn>> conns;
  auto last_sweep = std::chrono::steady_clock::now();

  while (!stopping_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.reserve(2 + conns.size());
    fds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& [fd, c] : conns) fds.push_back(pollfd{fd, POLLIN, 0});

    const int rc = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    if (rc < 0 && errno != EINTR) break;

    if (rc > 0) {
      if ((fds[0].revents & POLLIN) != 0) {
        char buf[64];
        while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
        }
      }
      if ((fds[1].revents & POLLIN) != 0) accept_ready(conns);
      for (std::size_t i = 2; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        auto it = conns.find(fds[i].fd);
        if (it == conns.end()) continue;
        const bool hup = (fds[i].revents & (POLLERR | POLLNVAL)) != 0;
        if (hup || !read_ready(it->second)) {
          it->second->open.store(false, std::memory_order_release);
          conns.erase(it);  // fd closes when workers drop their refs
        }
      }
    }

    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - last_sweep).count() >=
        kReapSweepSeconds) {
      last_sweep = now;
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        bool idle = false;
        {
          std::lock_guard<std::mutex> entry_lock(it->second->mu);
          idle = it->second->session.idle_seconds() > limits_.idle_timeout_s;
        }
        if (idle) {
          it = sessions_.erase(it);
          m_sessions_reaped_.add();
          m_sessions_active_.set(static_cast<double>(sessions_.size()));
        } else {
          ++it;
        }
      }
    }
  }

  // Shutdown: stop reading, nudge peers, and let per-Conn destructors
  // close fds once in-flight replies are written.
  for (auto& [fd, c] : conns) {
    c->open.store(false, std::memory_order_release);
    ::shutdown(fd, SHUT_RD);
  }
  conns.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // The wake pipe stays open: stop() may still be writing to it from a
  // worker thread; wait() closes it after the job count drains.
}

void Server::accept_ready(std::map<int, std::shared_ptr<Conn>>& conns) {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN / transient
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    m_accepted_.add();
    conns.emplace(fd, std::make_shared<Conn>(fd, limits_.max_frame_bytes));
  }
}

bool Server::read_ready(const std::shared_ptr<Conn>& c) {
  char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    try {
      c->reader.feed(buf, static_cast<std::size_t>(n));
      for (;;) {
        auto payload = c->reader.next();
        if (!payload) break;
        admit(c, std::move(*payload));
      }
    } catch (const std::exception& e) {
      // Oversized frame header: the stream position is poisoned. Tell
      // the peer why, then drop the connection.
      try {
        write_frame(*c, error_reply_json(0, ErrorCode::kParseError, e.what()));
      } catch (const std::exception&) {
      }
      m_errors_.add();
      return false;
    }
  }
  return true;
}

void Server::admit(const std::shared_ptr<Conn>& c, std::string payload) {
  m_requests_.add();
  if (stopping_.load(std::memory_order_acquire)) {
    write_frame(*c, error_reply_json(extract_seq(payload),
                                     ErrorCode::kShuttingDown,
                                     "server is shutting down"));
    m_errors_.add();
    return;
  }
  // The bounded queue: admission is a single atomic claim against
  // max_in_flight, released when the reply is written.
  int cur = in_flight_.load(std::memory_order_relaxed);
  for (;;) {
    if (cur >= limits_.max_in_flight) {
      m_rejected_overloaded_.add();
      m_errors_.add();
      write_frame(*c,
                  error_reply_json(extract_seq(payload),
                                   ErrorCode::kOverloaded,
                                   "request queue is full (" +
                                       std::to_string(limits_.max_in_flight) +
                                       " in flight)"));
      return;
    }
    if (in_flight_.compare_exchange_weak(cur, cur + 1,
                                         std::memory_order_acq_rel))
      break;
  }
  m_queue_depth_.set(in_flight_.load(std::memory_order_relaxed));

  bool start = false;
  {
    std::lock_guard<std::mutex> lock(c->queue_mu);
    c->queue.push_back(
        PendingRequest{std::move(payload), std::chrono::steady_clock::now()});
    if (!c->draining) {
      c->draining = true;
      start = true;
    }
  }
  if (start) {
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      ++jobs_outstanding_;
    }
    executor_.submit([this, c] {
      drain(c);
      std::lock_guard<std::mutex> lock(jobs_mu_);
      --jobs_outstanding_;
      jobs_cv_.notify_all();
    });
  }
}

void Server::drain(const std::shared_ptr<Conn>& c) {
  for (;;) {
    PendingRequest item;
    {
      std::lock_guard<std::mutex> lock(c->queue_mu);
      if (c->queue.empty()) {
        c->draining = false;
        return;
      }
      item = std::move(c->queue.front());
      c->queue.pop_front();
    }

    if (!telemetry_armed_) {
      // Fast path: identical clock-read count to the pre-telemetry
      // server — one steady_clock::now() per request, for the latency
      // histogram.
      HandleResult result = handle(item.payload, nullptr);
      try {
        write_frame(*c, result.reply);
      } catch (const std::exception&) {
        c->open.store(false, std::memory_order_release);
      }
      m_latency_ms_.observe(
          std::chrono::duration<double, std::milli>(Clock::now() -
                                                    item.enqueued)
              .count());
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      m_queue_depth_.set(in_flight_.load(std::memory_order_relaxed));
      if (result.stop_server) stop();
      continue;
    }

    obs::RequestSpan span;
    span.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    span.start_us = us_between(epoch_, item.enqueued);
    const auto dequeued = Clock::now();
    span.queue_us = us_between(item.enqueued, dequeued);
    HandleResult result = handle(item.payload, &span);
    const auto handled = Clock::now();
    try {
      write_frame(*c, result.reply);
    } catch (const std::exception&) {
      c->open.store(false, std::memory_order_release);
    }
    const auto done = Clock::now();
    span.write_us = us_between(handled, done);
    span.total_us = us_between(item.enqueued, done);
    m_latency_ms_.observe(span.total_us / 1000.0);
    emit_span(span);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    m_queue_depth_.set(in_flight_.load(std::memory_order_relaxed));
    if (result.stop_server) stop();
  }
}

void Server::emit_span(const obs::RequestSpan& span) {
  m_phase_queue_ms_.observe(span.queue_us / 1000.0);
  m_phase_parse_ms_.observe(span.parse_us / 1000.0);
  m_phase_schedule_ms_.observe(span.schedule_us / 1000.0);
  m_phase_serialize_ms_.observe(span.serialize_us / 1000.0);
  m_phase_write_ms_.observe(span.write_us / 1000.0);
  if (flight_) flight_->record(span);
  if (telemetry_.spans != nullptr) telemetry_.spans->on_request(span);
  if (telemetry_.slow_ms > 0 && span.total_us / 1000.0 >= telemetry_.slow_ms)
    maybe_dump_slow(span);
}

void Server::maybe_dump_slow(const obs::RequestSpan& span) {
  (void)span;
  if (!flight_ || telemetry_.slow_dump_path.empty()) return;
  const auto now_us =
      static_cast<std::int64_t>(us_between(epoch_, Clock::now()));
  std::int64_t last = last_slow_dump_us_.load(std::memory_order_relaxed);
  const auto cooldown_us =
      static_cast<std::int64_t>(kSlowDumpCooldownSeconds * 1e6);
  if (last >= 0 && now_us - last < cooldown_us) return;
  if (!last_slow_dump_us_.compare_exchange_strong(last, now_us,
                                                  std::memory_order_relaxed))
    return;  // another worker is dumping
  // Atomic-rename publish: readers never see a half-written dump.
  const std::string tmp = telemetry_.slow_dump_path + ".tmp";
  std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
  if (!out) return;
  out << flight_->to_jsonl();
  out.close();
  if (out) ::rename(tmp.c_str(), telemetry_.slow_dump_path.c_str());
}

// ---------------------------------------------------------------------------
// Request dispatch (worker threads)

namespace {

/// Marks a span's outcome with an error code (no-op on a null span).
void span_error(obs::RequestSpan* span, ErrorCode code) {
  if (span != nullptr) span->outcome = to_string(code);
}

[[nodiscard]] const char* op_name(Request::Op op) {
  switch (op) {
    case Request::Op::kOpen: return "session.open";
    case Request::Op::kRelease: return "task.release";
    case Request::Op::kClose: return "session.close";
    case Request::Op::kStop: return "server.stop";
  }
  return "other";
}

}  // namespace

Server::HandleResult Server::handle(const std::string& payload,
                                    obs::RequestSpan* span) {
  Request req;
  try {
    if (span == nullptr) {
      req = parse_request(payload);
    } else {
      const auto t0 = Clock::now();
      req = parse_request(payload);
      span->parse_us = us_between(t0, Clock::now());
      span->op = op_name(req.op);
      span->seq = req.seq;
      span->session = req.session;
      span->trace_id = req.trace_id;
      span->outcome = "ok";
    }
  } catch (const std::exception& e) {
    const std::string what = e.what();
    ErrorCode code = ErrorCode::kBadRequest;
    std::string message = what;
    if (what.rfind("parse_error: ", 0) == 0) {
      code = ErrorCode::kParseError;
      message = what.substr(13);
    } else if (what.rfind("unknown_op: ", 0) == 0) {
      code = ErrorCode::kUnknownOp;
      message = what.substr(12);
    }
    m_errors_.add();
    span_error(span, code);
    return {error_reply_json(extract_seq(payload), code, message), false};
  }

  try {
    switch (req.op) {
      case Request::Op::kOpen:
        return {handle_open(req, span), false};
      case Request::Op::kRelease:
        return {handle_release(req, span), false};
      case Request::Op::kClose:
        return {handle_close(req, span), false};
      case Request::Op::kStop: {
        if (!limits_.allow_remote_stop) {
          m_errors_.add();
          span_error(span, ErrorCode::kForbidden);
          return {error_reply_json(req.seq, ErrorCode::kForbidden,
                                   "server.stop is disabled"),
                  false};
        }
        StopReply reply;
        reply.ok = true;
        reply.seq = req.seq;
        return {stop_reply_json(reply), true};
      }
    }
    m_errors_.add();
    span_error(span, ErrorCode::kInternal);
    return {error_reply_json(req.seq, ErrorCode::kInternal, "unreachable"),
            false};
  } catch (const SessionError& e) {
    m_errors_.add();
    span_error(span, e.code());
    return {error_reply_json(req.seq, e.code(), e.what()), false};
  } catch (const std::exception& e) {
    m_errors_.add();
    span_error(span, ErrorCode::kInternal);
    return {error_reply_json(req.seq, ErrorCode::kInternal, e.what()), false};
  }
}

std::string Server::handle_open(const Request& req, obs::RequestSpan* span) {
  const auto t0 = span != nullptr ? Clock::now() : Clock::time_point{};
  std::string id;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (static_cast<int>(sessions_.size()) >= limits_.max_sessions) {
      m_rejected_overloaded_.add();
      m_errors_.add();
      span_error(span, ErrorCode::kOverloaded);
      return error_reply_json(req.seq, ErrorCode::kOverloaded,
                              "session limit reached (" +
                                  std::to_string(limits_.max_sessions) + ")");
    }
    id = "s" + std::to_string(++next_session_);
  }
  // Construct outside the map lock: spec_by_name walks the registry.
  auto entry = std::make_shared<SessionEntry>(Session(id, req.open));
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.emplace(id, std::move(entry));
    m_sessions_active_.set(static_cast<double>(sessions_.size()));
  }
  m_sessions_opened_.add();

  OpenReply reply;
  reply.ok = true;
  reply.seq = req.seq;
  reply.session = id;
  reply.scheduler = req.open.scheduler;
  reply.P = req.open.P;
  if (span == nullptr) return open_reply_json(reply);
  const auto t1 = Clock::now();
  span->schedule_us = us_between(t0, t1);
  span->session = id;  // the minted id, so the span lands in its lane
  std::string out = open_reply_json(reply);
  span->serialize_us = us_between(t1, Clock::now());
  return out;
}

std::string Server::handle_release(const Request& req,
                                   obs::RequestSpan* span) {
  std::shared_ptr<SessionEntry> entry;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(req.session);
    if (it != sessions_.end()) entry = it->second;
  }
  if (!entry) {
    m_errors_.add();
    span_error(span, ErrorCode::kUnknownSession);
    return error_reply_json(req.seq, ErrorCode::kUnknownSession,
                            "no session '" + req.session + "'");
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->session.num_tasks() >= limits_.max_tasks_per_session)
    throw SessionError(ErrorCode::kQuotaExceeded,
                       "session task quota of " +
                           std::to_string(limits_.max_tasks_per_session) +
                           " reached");
  if (span == nullptr) {
    ReleaseReply reply = entry->session.release(req.release);
    reply.seq = req.seq;
    return release_reply_json(reply);
  }
  const auto t0 = Clock::now();
  ReleaseReply reply = entry->session.release(req.release);
  reply.seq = req.seq;
  const auto t1 = Clock::now();
  span->schedule_us = us_between(t0, t1);
  std::string out = release_reply_json(reply);
  span->serialize_us = us_between(t1, Clock::now());
  return out;
}

std::string Server::handle_close(const Request& req, obs::RequestSpan* span) {
  std::shared_ptr<SessionEntry> entry;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(req.session);
    if (it != sessions_.end()) {
      entry = it->second;
      sessions_.erase(it);
      m_sessions_active_.set(static_cast<double>(sessions_.size()));
    }
  }
  if (!entry) {
    m_errors_.add();
    span_error(span, ErrorCode::kUnknownSession);
    return error_reply_json(req.seq, ErrorCode::kUnknownSession,
                            "no session '" + req.session + "'");
  }
  m_sessions_closed_.add();
  std::lock_guard<std::mutex> lock(entry->mu);
  if (span == nullptr) {
    CloseReply reply = entry->session.close();
    reply.seq = req.seq;
    return close_reply_json(reply);
  }
  const auto t0 = Clock::now();
  CloseReply reply = entry->session.close();
  reply.seq = req.seq;
  const auto t1 = Clock::now();
  span->schedule_us = us_between(t0, t1);
  std::string out = close_reply_json(reply);
  span->serialize_us = us_between(t1, Clock::now());
  return out;
}

// ---------------------------------------------------------------------------
// Writing

void Server::write_frame(Conn& c, const std::string& payload) {
  if (!c.open.load(std::memory_order_acquire)) return;
  const std::string frame = encode_frame(payload, limits_.max_frame_bytes);
  std::lock_guard<std::mutex> lock(c.write_mu);
  std::size_t off = 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(kWriteTimeoutSeconds);
  while (off < frame.size()) {
    const ssize_t n =
        ::send(c.fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (std::chrono::steady_clock::now() >= deadline)
        throw std::runtime_error("write_frame: send timed out");
      pollfd pfd{c.fd, POLLOUT, 0};
      ::poll(&pfd, 1, 100);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error(errno_message("send"));
  }
}

}  // namespace moldsched::svc
