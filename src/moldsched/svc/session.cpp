#include "moldsched/svc/session.hpp"

#include <algorithm>
#include <utility>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/io/json.hpp"

namespace moldsched::svc {

Session::Session(std::string id, const OpenParams& params)
    : id_(std::move(id)),
      params_(params),
      last_active_(std::chrono::steady_clock::now()) {
  try {
    spec_ = sched::spec_by_name(params.scheduler, params.mu);
  } catch (const std::exception& e) {
    throw SessionError(ErrorCode::kBadRequest, e.what());
  }
  // The queue policy is a session parameter, not a scheduler one: the
  // client's choice replaces the spec's (engine-variant runners bake the
  // policy into their closure and ignore this). The in-process reference
  // in check::wire_roundtrip_check applies the same override.
  spec_.policy = params_.policy;
}

void Session::touch() { last_active_ = std::chrono::steady_clock::now(); }

double Session::idle_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       last_active_)
      .count();
}

const core::ScheduleResult& Session::run_prefix() {
  if (result_tasks_ == graph_.num_tasks()) return last_result_;
  const auto t0 = std::chrono::steady_clock::now();
  last_result_ = spec_.run(graph_, params_.P);
  stats_.schedule_ms +=
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  ++stats_.reschedules;
  result_tasks_ = graph_.num_tasks();
  return last_result_;
}

ReleaseReply Session::release(const ReleaseParams& params) {
  touch();
  if (!params.model)
    throw SessionError(ErrorCode::kBadRequest, "release without a model");
  const int id = graph_.num_tasks();
  if (params.expected_task && *params.expected_task != id)
    throw SessionError(
        ErrorCode::kBadRequest,
        "duplicate or out-of-order release: client sent task " +
            std::to_string(*params.expected_task) + ", session expects " +
            std::to_string(id));
  // Validate every predecessor before mutating the graph, so a bad
  // release leaves the session untouched and the stream can continue.
  std::vector<int> preds = params.preds;
  std::sort(preds.begin(), preds.end());
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] < 0 || preds[i] >= id)
      throw SessionError(ErrorCode::kBadRequest,
                         "predecessor " + std::to_string(preds[i]) +
                             " was never released (next task id is " +
                             std::to_string(id) + ")");
    if (i > 0 && preds[i] == preds[i - 1])
      throw SessionError(ErrorCode::kBadRequest,
                         "duplicate predecessor " + std::to_string(preds[i]));
  }

  const graph::TaskId v = graph_.add_task(params.model, params.name);
  for (const int u : params.preds) graph_.add_edge(u, v);
  ++stats_.releases;

  const core::ScheduleResult& result = run_prefix();
  ReleaseReply reply;
  reply.ok = true;
  reply.task = v;
  reply.alloc = result.allocation[static_cast<std::size_t>(v)];
  reply.ready = result.ready_time[static_cast<std::size_t>(v)];
  reply.projected_makespan = result.makespan;
  for (const auto& rec : result.trace.records()) {
    if (rec.task == v) {
      reply.start = rec.start;
      reply.end = rec.end;
      break;
    }
  }
  return reply;
}

CloseReply Session::close() {
  touch();
  CloseReply reply;
  reply.ok = true;
  reply.num_tasks = graph_.num_tasks();
  if (graph_.num_tasks() == 0) {
    // An empty instance has nothing to schedule (OnlineScheduler rejects
    // empty graphs); by convention it closes at makespan 0, ratio 1.
    reply.ratio = 1.0;
    reply.stats = stats_;
    return reply;
  }
  const core::ScheduleResult& result = run_prefix();
  reply.makespan = result.makespan;
  reply.lower_bound = analysis::optimal_makespan_lower_bound(graph_, params_.P);
  reply.ratio =
      reply.lower_bound > 0.0 ? reply.makespan / reply.lower_bound : 1.0;
  reply.num_events = result.num_events;
  reply.allocation = result.allocation;
  reply.records = result.trace.records();
  reply.stats = stats_;
  if (params_.trace)
    reply.trace_json =
        io::trace_to_chrome_json(result.trace, params_.P, "svc:" + id_,
                                 &graph_);
  return reply;
}

}  // namespace moldsched::svc
