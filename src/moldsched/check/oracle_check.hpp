// Differential self-check for the exact optimum oracle.
//
// opt::branch_and_bound_topt is only trustworthy as a test-tier
// denominator if three independent relations hold on every instance it
// certifies:
//  * sandwich: Lemma 2 LB <= T_opt <= every registry scheduler's
//    makespan (the oracle may never "beat" an impossible bound, nor
//    claim an optimum above a schedule that demonstrably exists);
//  * arbiter: on tiny instances, T_opt equals opt::brute_force_topt
//    bit-for-bit (same canonical decision tree, pruning off);
//  * certificate: the returned (allocation, start_time) pass
//    sim::validate_schedule and their recomputed makespan is exactly the
//    reported one.
// This module makes the relations executable over one instance, mirroring
// check::differential_check's report idiom so the fuzz tier and the
// engine selfcheck suite can share it.
#pragma once

#include <string>
#include <vector>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/sched/registry.hpp"

namespace moldsched::check {

struct OracleReport {
  /// Human-readable description of every violated relation. Empty means
  /// the oracle's value is consistent with every witness.
  std::vector<std::string> mismatches;

  double t_opt = 0.0;        ///< certified optimum (0 when not certified)
  double lower_bound = 0.0;  ///< Lemma 2 bound max(A_min/P, C_min)
  bool certified = false;    ///< oracle reached kExact within budget
  bool brute_checked = false;  ///< brute-force arbiter ran (tiny instance)

  [[nodiscard]] bool ok() const noexcept { return mismatches.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Runs the oracle on (g, P) and checks the relations above against the
/// given scheduler suite. Instances over the oracle's caps (or budget
/// truncations) are not failures: the report comes back uncertified with
/// only the Lemma 2 vs suite sandwich checked. `brute_force_max_tasks`
/// bounds when the exhaustive arbiter runs (it is unpruned and explodes
/// combinatorially).
[[nodiscard]] OracleReport exact_oracle_check(
    const graph::TaskGraph& g, int P,
    const std::vector<sched::SchedulerSpec>& suite,
    int brute_force_max_tasks = 8);

/// Convenience overload: suite = sched::full_suite(mu).
[[nodiscard]] OracleReport exact_oracle_check(const graph::TaskGraph& g, int P,
                                              double mu = 0.3,
                                              int brute_force_max_tasks = 8);

}  // namespace moldsched::check
