// Differential check for the scheduling service's wire path.
//
// The service promises that a streamed instance schedules byte-for-byte
// identically to an in-process run. This module makes that promise
// executable without sockets: it drives an instance through every codec
// layer the TCP path uses — graph JSON, task.release request JSON, the
// session state machine, close-reply JSON — and compares canonical
// schedule forms (check::canonical_schedule hexfloats) against a direct
// sched::SchedulerSpec run.
//
// Streaming requires predecessors to be released before their
// successors. Corpus families whose id order is not topological (the
// in-tree family points edges from larger to smaller ids) are first
// relabeled by the stable minimum-id topological order, which is the
// identity whenever id order was already topological — so for streamable
// graphs the check compares against the untouched instance.
#pragma once

#include <string>
#include <vector>

#include "moldsched/core/queue_policy.hpp"
#include "moldsched/graph/task_graph.hpp"

namespace moldsched::check {

/// The stable minimum-id topological order of `g` (Kahn with a min-heap
/// of ready ids). Position i holds the old id scheduled i-th. Identity
/// permutation iff every edge already points from a smaller to a larger
/// id. Throws std::invalid_argument on a cyclic graph.
[[nodiscard]] std::vector<graph::TaskId> min_id_topological_order(
    const graph::TaskGraph& g);

/// `g` with tasks renumbered along min_id_topological_order (models and
/// names shared, edges remapped); the result streams in id order.
[[nodiscard]] graph::TaskGraph relabel_topological(const graph::TaskGraph& g);

struct WireCheckReport {
  /// Human-readable description of every divergence; empty = the wire
  /// path is indistinguishable from the in-process run.
  std::vector<std::string> mismatches;
  bool relabeled = false;  ///< instance needed the topological relabel
  int num_tasks = 0;
  double makespan = 0.0;   ///< in-process reference makespan

  [[nodiscard]] bool ok() const noexcept { return mismatches.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Runs the full wire battery for scheduler `scheduler` (a
/// sched::full_suite_names() entry, rebuilt at `mu`, queue policy
/// overridden to `policy` — the same override svc::Session applies):
///  1. encode_graph -> decode_graph -> encode_graph is byte-stable, and
///     the decoded graph schedules byte-identically to the original;
///  2. releasing the instance task by task through svc::Session — each
///     release serialized with release_request_json and re-parsed with
///     parse_request, the close reply serialized and re-parsed likewise —
///     reconstructs a schedule byte-identical to the in-process run;
///  3. the final release's projected makespan equals the close makespan
///     (the last prefix *is* the full instance).
[[nodiscard]] WireCheckReport wire_roundtrip_check(const graph::TaskGraph& g,
                                                   int P,
                                                   const std::string& scheduler,
                                                   double mu,
                                                   core::QueuePolicy policy);

/// Convenience overload: the paper's scheduler, scheduler = "lpa".
[[nodiscard]] WireCheckReport wire_roundtrip_check(
    const graph::TaskGraph& g, int P, double mu,
    core::QueuePolicy policy = core::QueuePolicy::kFifo);

}  // namespace moldsched::check
