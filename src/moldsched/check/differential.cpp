#include "moldsched/check/differential.hpp"

#include <memory>
#include <sstream>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/sim/validator.hpp"

namespace moldsched::check {

namespace {

void hexfloat(std::ostream& os, double v) {
  // std::hexfloat via operator<< is locale-independent and bit-exact for
  // finite doubles, which makes the canonical form a byte-level witness.
  os << std::hexfloat << v << std::defaultfloat;
}

bool graph_has_cacheable_model(const graph::TaskGraph& g) {
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    if (g.model_of(v).fingerprint().cacheable) return true;
  return false;
}

}  // namespace

std::string canonical_schedule(const core::ScheduleResult& r) {
  std::ostringstream os;
  os << "makespan=";
  hexfloat(os, r.makespan);
  os << "\nevents=" << r.num_events << "\nalloc=";
  for (const int a : r.allocation) os << ' ' << a;
  os << '\n';
  for (const auto& rec : r.trace.records()) {
    os << rec.task << ' ' << rec.procs << ' ';
    hexfloat(os, rec.start);
    os << ' ';
    hexfloat(os, rec.end);
    os << '\n';
  }
  return os.str();
}

std::string DifferentialReport::to_string() const {
  std::ostringstream os;
  if (ok()) {
    os << "differential: ok (makespan=" << makespan
       << ", lower_bound=" << lower_bound << ", cache_hits=" << cache_hits
       << ")";
    return os.str();
  }
  os << "differential: " << mismatches.size() << " mismatch(es):\n";
  for (const auto& m : mismatches) os << "  - " << m << '\n';
  return os.str();
}

DifferentialReport differential_check(const graph::TaskGraph& g, int P,
                                      const core::Allocator& reference,
                                      core::QueuePolicy policy) {
  DifferentialReport report;

  const auto ref = core::schedule_online(g, P, reference, policy);
  report.makespan = ref.makespan;
  const std::string ref_canon = canonical_schedule(ref);

  // Oracle 1: the reference schedule must be feasible on its own terms.
  const auto validation = sim::validate_schedule(g, ref.trace, P);
  if (!validation.ok())
    report.mismatches.push_back("reference schedule invalid: " +
                                validation.to_string());

  // Oracle 2: no schedule may beat the Lemma 2 optimal lower bound.
  report.lower_bound = analysis::optimal_makespan_lower_bound(g, P);
  if (ref.makespan < report.lower_bound * (1.0 - 1e-9)) {
    std::ostringstream os;
    os << "makespan " << ref.makespan << " beats the Lemma 2 lower bound "
       << report.lower_bound;
    report.mismatches.push_back(os.str());
  }

  // Optimized path, cold cache: every cacheable decision is a miss that
  // populates the store; the schedule must not change.
  const auto cache = std::make_shared<core::DecisionCache>();
  const core::CachingAllocator caching(reference, cache);
  const auto cold = core::schedule_online(g, P, caching, policy);
  if (canonical_schedule(cold) != ref_canon)
    report.mismatches.push_back(
        "cold-cache schedule diverges from the reference schedule");
  report.cache_misses = cache->misses();

  // Optimized path, warm cache: decisions are served from the store.
  const auto warm = core::schedule_online(g, P, caching, policy);
  if (canonical_schedule(warm) != ref_canon)
    report.mismatches.push_back(
        "warm-cache schedule diverges from the reference schedule");
  report.cache_hits = cache->hits();
  if (report.cache_hits == 0 && graph_has_cacheable_model(g))
    report.mismatches.push_back(
        "warm pass served zero cache hits despite cacheable models — "
        "the decision cache is dead");

  return report;
}

DifferentialReport differential_check(const graph::TaskGraph& g, int P,
                                      double mu, core::QueuePolicy policy) {
  const core::LpaAllocator lpa(mu);
  return differential_check(g, P, lpa, policy);
}

}  // namespace moldsched::check
