// Differential self-check harness guarding the hot-path optimizations.
//
// The optimized paths (CachingAllocator memoization, the event-queue
// batch pop, the scheduler's ready-set skip) are only admissible because
// they are *behavior-preserving*: for any instance they must produce the
// byte-identical schedule the reference path produces. This module makes
// that property executable — it runs one instance through the reference
// allocator and through the caching decorator (cold cache, then warm),
// canonicalizes each resulting schedule to a byte string, and reports any
// divergence, alongside two independent oracles: the schedule validator
// and the Lemma 2 makespan lower bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/core/queue_policy.hpp"
#include "moldsched/graph/task_graph.hpp"

namespace moldsched::check {

/// Canonical byte representation of a schedule: one line per trace record
/// (task, start, end, procs) plus the allocation vector and makespan, all
/// doubles printed as hexfloats so the string is bit-exact. Two schedules
/// are the same computation iff their canonical forms compare equal.
[[nodiscard]] std::string canonical_schedule(const core::ScheduleResult& r);

struct DifferentialReport {
  /// Human-readable description of every divergence or oracle failure.
  /// Empty means the optimized paths are indistinguishable from the
  /// reference and both oracles hold.
  std::vector<std::string> mismatches;

  double makespan = 0.0;     ///< reference-path makespan
  double lower_bound = 0.0;  ///< Lemma 2 bound max(A_min/P, C_min)
  std::uint64_t cache_hits = 0;    ///< hits observed on the warm pass
  std::uint64_t cache_misses = 0;  ///< misses observed on the cold pass

  [[nodiscard]] bool ok() const noexcept { return mismatches.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Runs `g` on P processors under `policy` three times — with `reference`
/// directly, with a cold CachingAllocator around it, and again with the
/// now-warm cache — and checks:
///  * the three canonical schedules are byte-identical;
///  * the reference schedule passes sim::validate_schedule;
///  * makespan >= Lemma 2 lower bound (within 1e-9 relative slack).
/// The warm pass must serve at least one hit whenever the graph contains
/// a cacheable model (otherwise the cache is silently dead — reported).
[[nodiscard]] DifferentialReport differential_check(
    const graph::TaskGraph& g, int P, const core::Allocator& reference,
    core::QueuePolicy policy = core::QueuePolicy::kFifo);

/// Convenience overload: reference = LpaAllocator(mu).
[[nodiscard]] DifferentialReport differential_check(
    const graph::TaskGraph& g, int P, double mu,
    core::QueuePolicy policy = core::QueuePolicy::kFifo);

}  // namespace moldsched::check
