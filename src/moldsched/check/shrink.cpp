#include "moldsched/check/shrink.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/general_model.hpp"

namespace moldsched::check {

namespace {

graph::TaskGraph copy_with_model(const graph::TaskGraph& g, graph::TaskId id,
                                 model::ModelPtr replacement) {
  graph::TaskGraph out;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    out.add_task(v == id ? std::move(replacement) : g.model_ptr(v),
                 g.name(v));
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    for (const graph::TaskId s : g.successors(v)) out.add_edge(v, s);
  return out;
}

/// Simpler replacement candidates for one task's model, most aggressive
/// first. Empty when the model is already minimal or not simplifiable.
std::vector<model::ModelPtr> simpler_models(const model::SpeedupModel& m) {
  std::vector<model::ModelPtr> out;
  if (const auto* gen = dynamic_cast<const model::GeneralModel*>(&m)) {
    const model::GeneralParams p = gen->params();
    const model::GeneralParams unit{1.0, 0.0, 0.0,
                                    model::GeneralParams::kUnboundedParallelism};
    const auto differs = [&p](const model::GeneralParams& q) {
      return q.w != p.w || q.d != p.d || q.c != p.c || q.pbar != p.pbar;
    };
    // Most aggressive: the unit roofline task.
    if (differs(unit))
      out.push_back(std::make_shared<model::GeneralModel>(unit));
    // Drop one complication at a time.
    if (p.d != 0.0)
      out.push_back(std::make_shared<model::GeneralModel>(
          model::GeneralParams{p.w, 0.0, p.c, p.pbar}));
    if (p.c != 0.0)
      out.push_back(std::make_shared<model::GeneralModel>(
          model::GeneralParams{p.w, p.d, 0.0, p.pbar}));
    if (p.pbar != model::GeneralParams::kUnboundedParallelism)
      out.push_back(std::make_shared<model::GeneralModel>(model::GeneralParams{
          p.w, p.d, p.c, model::GeneralParams::kUnboundedParallelism}));
    // Rescale the work towards 1 (keeps w + d + c > 0).
    if (p.w > 2.0)
      out.push_back(std::make_shared<model::GeneralModel>(
          model::GeneralParams{p.w / 2.0, p.d, p.c, p.pbar}));
  } else if (const auto* table = dynamic_cast<const model::TableModel*>(&m)) {
    // Truncate the table: fewer distinct allocations to reason about.
    const int len = table->table_size();
    const auto truncated = [&](int new_len) {
      std::vector<double> times(static_cast<std::size_t>(new_len));
      for (int p = 1; p <= new_len; ++p)
        times[static_cast<std::size_t>(p - 1)] = table->time(p);
      return std::make_shared<model::TableModel>(std::move(times));
    };
    if (len > 1) out.push_back(truncated(1));
    if (len > 2) out.push_back(truncated(len / 2));
  }
  return out;
}

}  // namespace

graph::TaskGraph induced_subgraph(const graph::TaskGraph& g,
                                  const std::vector<graph::TaskId>& keep) {
  std::vector<graph::TaskId> ids = keep;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.empty())
    throw std::invalid_argument("induced_subgraph: empty selection");
  std::vector<graph::TaskId> new_id(static_cast<std::size_t>(g.num_tasks()),
                                    -1);
  graph::TaskGraph out;
  for (const graph::TaskId v : ids) {
    if (v < 0 || v >= g.num_tasks())
      throw std::invalid_argument("induced_subgraph: unknown task id " +
                                  std::to_string(v));
    new_id[static_cast<std::size_t>(v)] = out.add_task(g.model_ptr(v),
                                                       g.name(v));
  }
  for (const graph::TaskId v : ids)
    for (const graph::TaskId s : g.successors(v))
      if (new_id[static_cast<std::size_t>(s)] != -1)
        out.add_edge(new_id[static_cast<std::size_t>(v)],
                     new_id[static_cast<std::size_t>(s)]);
  return out;
}

graph::TaskGraph without_edge(const graph::TaskGraph& g, graph::TaskId from,
                              graph::TaskId to) {
  if (!g.has_edge(from, to))
    throw std::invalid_argument("without_edge: no such edge");
  graph::TaskGraph out;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    out.add_task(g.model_ptr(v), g.name(v));
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    for (const graph::TaskId s : g.successors(v))
      if (!(v == from && s == to)) out.add_edge(v, s);
  return out;
}

ShrinkResult shrink_instance(const graph::TaskGraph& g,
                             const FailurePredicate& still_fails) {
  ShrinkResult result{g, 0, 0, 0, 0};
  const auto fails = [&](const graph::TaskGraph& candidate) {
    ++result.predicate_calls;
    return still_fails(candidate);
  };
  if (!fails(g))
    throw std::invalid_argument(
        "shrink_instance: the original instance does not fail");

  bool progress = true;
  while (progress) {
    progress = false;

    // Phase 1 (ddmin over tasks): drop contiguous id chunks, halving the
    // chunk size down to single tasks. Induced subgraphs of a DAG stay
    // acyclic, so candidates are always valid unless empty.
    const int n = result.graph.num_tasks();
    for (int chunk = (n + 1) / 2; chunk >= 1; chunk = chunk == 1 ? 0 : chunk / 2) {
      for (int begin = 0; begin + chunk <= result.graph.num_tasks();) {
        const int m = result.graph.num_tasks();
        if (m - chunk < 1) break;  // never empty the graph
        std::vector<graph::TaskId> keep;
        keep.reserve(static_cast<std::size_t>(m - chunk));
        for (graph::TaskId v = 0; v < m; ++v)
          if (v < begin || v >= begin + chunk) keep.push_back(v);
        auto candidate = induced_subgraph(result.graph, keep);
        if (fails(candidate)) {
          result.graph = std::move(candidate);
          result.tasks_removed += chunk;
          progress = true;
          // Ids shifted; retry the same window against the new graph.
        } else {
          begin += chunk;
        }
      }
    }

    // Phase 2: drop single edges.
    bool edge_progress = true;
    while (edge_progress) {
      edge_progress = false;
      const int m = result.graph.num_tasks();
      for (graph::TaskId v = 0; v < m && !edge_progress; ++v) {
        for (const graph::TaskId s : result.graph.successors(v)) {
          auto candidate = without_edge(result.graph, v, s);
          if (fails(candidate)) {
            result.graph = std::move(candidate);
            ++result.edges_removed;
            edge_progress = true;
            progress = true;
            break;  // successor list invalidated; rescan
          }
        }
      }
    }

    // Phase 3: simplify task models (round Eq. (1) params, truncate
    // tables) one accepted replacement at a time.
    bool model_progress = true;
    while (model_progress) {
      model_progress = false;
      const int m = result.graph.num_tasks();
      for (graph::TaskId v = 0; v < m && !model_progress; ++v) {
        for (auto& replacement : simpler_models(result.graph.model_of(v))) {
          auto candidate = copy_with_model(result.graph, v,
                                           std::move(replacement));
          if (fails(candidate)) {
            result.graph = std::move(candidate);
            ++result.models_simplified;
            model_progress = true;
            progress = true;
            break;
          }
        }
      }
    }
  }
  return result;
}

std::string describe_instance(const graph::TaskGraph& g, int P, double mu,
                              const std::string& note) {
  std::ostringstream os;
  os << "minimal repro";
  if (!note.empty()) os << " (" << note << ")";
  os << ": P=" << P << " mu=" << mu << " tasks=" << g.num_tasks()
     << " edges=" << g.num_edges() << '\n';
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    os << "  task " << v;
    if (!g.name(v).empty()) os << " [" << g.name(v) << "]";
    os << ": " << g.model_of(v).describe() << '\n';
  }
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    for (const graph::TaskId s : g.successors(v))
      os << "  edge " << v << " -> " << s << '\n';
  return os.str();
}

}  // namespace moldsched::check
