#include "moldsched/check/corpus.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>

#include "moldsched/graph/generators.hpp"
#include "moldsched/ingest/catalog.hpp"
#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/sampler.hpp"

namespace moldsched::check {

namespace {

/// Random positive table of length <= min(P, 64). Entries are log-uniform
/// in [0.1, 100] with no monotonicity — that is the point of Section 5.
graph::ModelProvider table_provider(util::Rng& rng, int P) {
  const int max_len = std::min(P, 64);
  return [&rng, max_len]() -> model::ModelPtr {
    const int len = static_cast<int>(rng.uniform_int(1, max_len));
    std::vector<double> times(static_cast<std::size_t>(len));
    for (auto& t : times) t = rng.log_uniform(0.1, 100.0);
    return std::make_shared<model::TableModel>(std::move(times));
  };
}

/// The bundled workload catalog's DAG shapes, loaded once. Only the
/// structure (edges + names) is reused: corpus draws resample every
/// task's model from the requested kind, so the real workflow shapes
/// get fuzzed under all five model families instead of just the models
/// their files happen to declare.
const std::vector<ingest::Workload>& ingested_shapes() {
  static const std::vector<ingest::Workload> shapes =
      ingest::load_bundled_workloads();
  return shapes;
}

}  // namespace

const std::vector<std::string>& corpus_families() {
  static const std::vector<std::string> families = {
      "layered_random", "erdos_renyi",     "fork_join",
      "random_out_tree", "random_in_tree", "series_parallel",
      "chain",           "independent",    "diamond",
      "ingested"};
  return families;
}

int num_corpus_families() {
  return static_cast<int>(corpus_families().size());
}

const std::vector<model::ModelKind>& corpus_model_kinds() {
  static const std::vector<model::ModelKind> kinds = {
      model::ModelKind::kRoofline, model::ModelKind::kCommunication,
      model::ModelKind::kAmdahl, model::ModelKind::kGeneral,
      model::ModelKind::kArbitrary};
  return kinds;
}

graph::TaskGraph corpus_graph(int family, model::ModelKind kind,
                              util::Rng& rng, int P) {
  // kArbitrary has no sampler parameterization; use random tables. The
  // sampler must outlive the provider (captured by reference), hence the
  // optional local.
  std::optional<model::ModelSampler> sampler;
  graph::ModelProvider provider;
  if (kind == model::ModelKind::kArbitrary) {
    provider = table_provider(rng, P);
  } else {
    sampler.emplace(kind);
    provider = graph::sampling_provider(*sampler, rng, P);
  }
  switch (family) {
    case 0:
      return graph::layered_random(
          static_cast<int>(rng.uniform_int(1, 8)), 1,
          static_cast<int>(rng.uniform_int(1, 10)), rng.unit(), rng,
          provider);
    case 1:
      return graph::erdos_renyi_dag(
          static_cast<int>(rng.uniform_int(1, 60)), rng.unit() * 0.3, rng,
          provider);
    case 2:
      return graph::fork_join(static_cast<int>(rng.uniform_int(1, 4)),
                              static_cast<int>(rng.uniform_int(1, 10)),
                              provider);
    case 3:
      return graph::random_out_tree(
          static_cast<int>(rng.uniform_int(1, 60)),
          static_cast<int>(rng.uniform_int(0, 4)), rng, provider);
    case 4:
      return graph::random_in_tree(
          static_cast<int>(rng.uniform_int(1, 60)),
          static_cast<int>(rng.uniform_int(0, 4)), rng, provider);
    case 5:
      return graph::series_parallel(
          static_cast<int>(rng.uniform_int(1, 50)), rng, provider);
    case 6:
      return graph::chain(static_cast<int>(rng.uniform_int(1, 25)), provider);
    case 7:
      return graph::independent(static_cast<int>(rng.uniform_int(1, 50)),
                                provider);
    case 8:
      return graph::diamond(static_cast<int>(rng.uniform_int(1, 20)),
                            provider);
    case 9: {
      const auto& shapes = ingested_shapes();
      const auto& src =
          shapes[static_cast<std::size_t>(rng.uniform_int(
                     0, static_cast<std::int64_t>(shapes.size()) - 1))]
              .graph;
      graph::TaskGraph g;
      g.reserve(src.num_tasks(), src.num_edges());
      for (graph::TaskId v = 0; v < src.num_tasks(); ++v)
        g.add_task(provider(), src.name(v));
      for (graph::TaskId v = 0; v < src.num_tasks(); ++v)
        for (const graph::TaskId s : src.successors(v)) g.add_edge(v, s);
      return g;
    }
    default:
      throw std::invalid_argument("corpus_graph: unknown family " +
                                  std::to_string(family));
  }
}

CorpusInstance corpus_instance(util::Rng& rng) {
  // Draw the knobs before the graph so the graph recipe consumes the
  // tail of the stream and knob draws stay aligned across families.
  // The platform draw reserves a slice above 100 that collapses to the
  // P = 1 unit platform: every scheduler must degenerate to a valid
  // serial schedule there, and routing ~7% of the corpus through that
  // case keeps the degenerate path permanently fuzzed (one draw either
  // way, so the rest of the stream stays aligned).
  const auto p_raw = rng.uniform_int(1, 107);
  const int P = p_raw > 100 ? 1 : static_cast<int>(p_raw);
  const double mu = rng.uniform(0.05, 0.38);
  static const std::vector<core::QueuePolicy> policies = {
      core::QueuePolicy::kFifo, core::QueuePolicy::kLifo,
      core::QueuePolicy::kLargestWorkFirst,
      core::QueuePolicy::kLongestMinTimeFirst,
      core::QueuePolicy::kSmallestAllocFirst};
  const auto policy = rng.pick(policies);
  const int family =
      static_cast<int>(rng.uniform_int(0, num_corpus_families() - 1));
  const auto kind = rng.pick(corpus_model_kinds());
  CorpusInstance inst{corpus_graph(family, kind, rng, P),
                      P, mu, policy, family, kind};
  return inst;
}

}  // namespace moldsched::check
