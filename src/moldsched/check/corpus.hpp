// Shared random-instance corpus for the fuzz and self-check harnesses.
//
// One canonical recipe turns (family, model kind, platform size, rng)
// into a task graph, so the gtest fuzzer and the engine's selfcheck
// suite exercise the same instance distribution and a failure in either
// reproduces in the other from the same seed.
#pragma once

#include <string>
#include <vector>

#include "moldsched/core/queue_policy.hpp"
#include "moldsched/graph/task_graph.hpp"
#include "moldsched/model/speedup_model.hpp"
#include "moldsched/util/rng.hpp"

namespace moldsched::check {

/// Generator families of the corpus, in a fixed order so family indices
/// are stable identifiers in logs and repros.
[[nodiscard]] const std::vector<std::string>& corpus_families();
[[nodiscard]] int num_corpus_families();

/// Model kinds the corpus draws from: the four Eq. (1) kinds plus
/// kArbitrary, realized as random TableModel instances.
[[nodiscard]] const std::vector<model::ModelKind>& corpus_model_kinds();

/// Builds one random graph of the given family (index into
/// corpus_families()) whose tasks all carry models of `kind`. kArbitrary
/// yields random positive tables of length <= min(P, 64). The "ingested"
/// family reuses the bundled workload catalog's DAG shapes (structure
/// and names) with models resampled from `kind`. Throws
/// std::invalid_argument for an unknown family index.
[[nodiscard]] graph::TaskGraph corpus_graph(int family, model::ModelKind kind,
                                            util::Rng& rng, int P);

/// One fully specified random instance: graph plus scheduling knobs.
struct CorpusInstance {
  graph::TaskGraph graph;
  int P = 1;
  double mu = 0.25;                 ///< LPA parameter, in (0, mu_max]
  core::QueuePolicy policy = core::QueuePolicy::kFifo;
  int family = 0;                   ///< index into corpus_families()
  model::ModelKind kind = model::ModelKind::kGeneral;
};

/// Draws a complete instance: P in [1, 100] with an extra ~7% slice
/// pinned to the P = 1 unit platform (the degenerate serial case every
/// scheduler must handle), mu in [0.05, 0.38], a uniform queue policy,
/// a uniform family, and a uniform model kind.
[[nodiscard]] CorpusInstance corpus_instance(util::Rng& rng);

}  // namespace moldsched::check
