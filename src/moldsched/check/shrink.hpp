// Test-case reduction for failing fuzz/self-check instances.
//
// A randomized harness that finds a bug hands back a 60-task graph; the
// human debugging it wants a 3-task one. shrink_instance runs a ddmin-
// style greedy loop — drop task chunks, drop single tasks, drop edges,
// round the Eq. (1) work parameters — re-testing the caller's failure
// predicate after each candidate reduction and keeping every reduction
// that still fails. The result is 1-minimal with respect to these moves:
// no single remaining task or edge can be removed without losing the
// failure.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "moldsched/graph/task_graph.hpp"

namespace moldsched::check {

/// Returns true when the instance still exhibits the failure under
/// reduction. Predicates must treat exceptions themselves (a throwing
/// predicate aborts the shrink); a predicate that fails on the original
/// graph is a precondition of shrink_instance.
using FailurePredicate = std::function<bool(const graph::TaskGraph&)>;

/// Subgraph induced by `keep` (ids into g, any order, duplicates
/// ignored): tasks are re-numbered in ascending old-id order and every
/// edge with both endpoints kept survives. Throws on unknown ids or an
/// empty selection.
[[nodiscard]] graph::TaskGraph induced_subgraph(
    const graph::TaskGraph& g, const std::vector<graph::TaskId>& keep);

/// Copy of g without the edge from -> to (which must exist).
[[nodiscard]] graph::TaskGraph without_edge(const graph::TaskGraph& g,
                                            graph::TaskId from,
                                            graph::TaskId to);

struct ShrinkResult {
  graph::TaskGraph graph;    ///< smallest failing instance found
  int tasks_removed = 0;
  int edges_removed = 0;
  int models_simplified = 0; ///< Eq. (1) models rounded to simpler params
  int predicate_calls = 0;
};

/// Greedily minimizes `g` while `still_fails` keeps returning true.
/// `still_fails(g)` must be true on entry (checked; throws
/// std::invalid_argument otherwise). Deterministic: candidate order is a
/// pure function of the input graph.
[[nodiscard]] ShrinkResult shrink_instance(const graph::TaskGraph& g,
                                           const FailurePredicate& still_fails);

/// Printable minimal repro: per-task model description plus the edge
/// list, ready to paste into a bug report or a regression test.
[[nodiscard]] std::string describe_instance(const graph::TaskGraph& g, int P,
                                            double mu,
                                            const std::string& note = "");

}  // namespace moldsched::check
