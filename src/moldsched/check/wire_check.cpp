#include "moldsched/check/wire_check.hpp"

#include <queue>
#include <sstream>
#include <stdexcept>

#include "moldsched/check/differential.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/svc/protocol.hpp"
#include "moldsched/svc/session.hpp"
#include "moldsched/svc/wire.hpp"

namespace moldsched::check {

std::vector<graph::TaskId> min_id_topological_order(const graph::TaskGraph& g) {
  const int n = g.num_tasks();
  std::vector<int> indegree(static_cast<std::size_t>(n));
  std::priority_queue<graph::TaskId, std::vector<graph::TaskId>,
                      std::greater<>>
      ready;
  for (graph::TaskId v = 0; v < n; ++v) {
    indegree[static_cast<std::size_t>(v)] = g.in_degree(v);
    if (g.in_degree(v) == 0) ready.push(v);
  }
  std::vector<graph::TaskId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const graph::TaskId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (const graph::TaskId s : g.successors(v))
      if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push(s);
  }
  if (static_cast<int>(order.size()) != n)
    throw std::invalid_argument("min_id_topological_order: graph is cyclic");
  return order;
}

graph::TaskGraph relabel_topological(const graph::TaskGraph& g) {
  const auto order = min_id_topological_order(g);
  std::vector<graph::TaskId> new_id(order.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    new_id[static_cast<std::size_t>(order[i])] = static_cast<graph::TaskId>(i);
  graph::TaskGraph out;
  for (const graph::TaskId old : order)
    out.add_task(g.model_ptr(old), g.name(old));
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    for (const graph::TaskId s : g.successors(v))
      out.add_edge(new_id[static_cast<std::size_t>(v)],
                   new_id[static_cast<std::size_t>(s)]);
  return out;
}

std::string WireCheckReport::to_string() const {
  std::ostringstream os;
  os << "wire check: " << num_tasks << " tasks"
     << (relabeled ? " (relabeled)" : "") << ", makespan " << makespan;
  if (ok()) {
    os << ", ok";
    return os.str();
  }
  os << ", " << mismatches.size() << " mismatch(es):";
  for (const auto& m : mismatches) os << "\n  - " << m;
  return os.str();
}

namespace {

/// Rebuilds a ScheduleResult from the fields a close reply carries, so
/// canonical_schedule can compare it against the in-process run.
/// Records replay in reply order, which is the trace's insertion order —
/// the canonical form preserves it.
[[nodiscard]] core::ScheduleResult result_from_close(
    const svc::CloseReply& reply) {
  core::ScheduleResult out;
  for (const auto& rec : reply.records) {
    out.trace.record_start(rec.task, rec.start, rec.procs);
    out.trace.record_end(rec.task, rec.end);
  }
  out.makespan = reply.makespan;
  out.allocation = reply.allocation;
  out.num_events = reply.num_events;
  return out;
}

}  // namespace

WireCheckReport wire_roundtrip_check(const graph::TaskGraph& g, int P,
                                     const std::string& scheduler, double mu,
                                     core::QueuePolicy policy) {
  WireCheckReport report;
  report.num_tasks = g.num_tasks();

  // Layer 1: the graph codec round-trips losslessly and stably.
  const std::string encoded = svc::encode_graph(g);
  const graph::TaskGraph decoded = svc::decode_graph(encoded);
  if (svc::encode_graph(decoded) != encoded)
    report.mismatches.push_back("graph re-encode is not byte-stable");

  sched::SchedulerSpec spec = sched::spec_by_name(scheduler, mu);
  spec.policy = policy;
  if (g.num_tasks() > 0) {
    const std::string direct = canonical_schedule(spec.run(g, P));
    const std::string via_codec = canonical_schedule(spec.run(decoded, P));
    if (via_codec != direct)
      report.mismatches.push_back(
          "decoded graph schedules differently from the original");
  }

  // Layer 2: the streamed session. Relabel if id order is not already
  // topological, then reference the relabeled instance directly.
  graph::TaskGraph streamable = relabel_topological(g);
  report.relabeled = svc::encode_graph(streamable) != encoded;
  const graph::TaskGraph& s = report.relabeled ? streamable : g;

  svc::OpenParams open;
  open.scheduler = scheduler;
  open.P = P;
  open.mu = mu;
  open.policy = policy;
  svc::Session session("wirecheck", open);
  double last_projected = 0.0;
  for (graph::TaskId v = 0; v < s.num_tasks(); ++v) {
    svc::ReleaseParams params;
    params.name = s.name(v);
    params.model = s.model_ptr(v);
    for (const graph::TaskId u : s.predecessors(v)) params.preds.push_back(u);
    params.expected_task = v;
    // Round-trip the release through the request codec, exactly as the
    // TCP path would carry it.
    const svc::Request req = svc::parse_request(
        svc::release_request_json("wirecheck", params, v + 1));
    const svc::ReleaseReply reply = session.release(req.release);
    if (reply.task != v)
      report.mismatches.push_back("release " + std::to_string(v) +
                                  " got id " + std::to_string(reply.task));
    last_projected = reply.projected_makespan;
  }

  svc::CloseReply close = session.close();
  // Round-trip the close reply through its codec, too.
  close = svc::parse_close_reply(svc::close_reply_json(close));
  if (!close.ok) {
    report.mismatches.push_back("close reply not ok: " + close.error.message);
    return report;
  }

  if (s.num_tasks() > 0) {
    const std::string reference = canonical_schedule(spec.run(s, P));
    report.makespan = close.makespan;
    const std::string streamed = canonical_schedule(result_from_close(close));
    if (streamed != reference)
      report.mismatches.push_back(
          "streamed session diverges from the in-process schedule");
    if (last_projected != close.makespan)
      report.mismatches.push_back(
          "final release projected a different makespan than close");
  }
  return report;
}

WireCheckReport wire_roundtrip_check(const graph::TaskGraph& g, int P,
                                     double mu, core::QueuePolicy policy) {
  return wire_roundtrip_check(g, P, "lpa", mu, policy);
}

}  // namespace moldsched::check
