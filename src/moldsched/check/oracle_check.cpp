#include "moldsched/check/oracle_check.hpp"

#include <ios>
#include <sstream>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/opt/bnb.hpp"
#include "moldsched/sim/trace.hpp"
#include "moldsched/sim/validator.hpp"

namespace moldsched::check {

namespace {

std::string hex(double v) {
  std::ostringstream os;
  os << std::hexfloat << v;
  return os.str();
}

std::string both(double a, double b) {
  return hex(a) + " (" + std::to_string(a) + ") vs " + hex(b) + " (" +
         std::to_string(b) + ")";
}

}  // namespace

std::string OracleReport::to_string() const {
  std::ostringstream os;
  os << "oracle check: t_opt=" << t_opt << " lower_bound=" << lower_bound
     << " certified=" << (certified ? "yes" : "no")
     << " brute_checked=" << (brute_checked ? "yes" : "no");
  if (ok()) {
    os << " OK";
  } else {
    for (const auto& m : mismatches) os << "\n  MISMATCH: " << m;
  }
  return os.str();
}

OracleReport exact_oracle_check(const graph::TaskGraph& g, int P,
                                const std::vector<sched::SchedulerSpec>& suite,
                                int brute_force_max_tasks) {
  OracleReport report;
  report.lower_bound = analysis::optimal_makespan_lower_bound(g, P);

  opt::BnbResult bnb;
  const bool in_caps = [&] {
    opt::BnbOptions options;
    if (g.num_tasks() > options.max_tasks || P > options.max_procs)
      return false;
    bnb = opt::branch_and_bound_topt(g, P, options);
    return true;
  }();
  report.certified = in_caps && bnb.status == opt::BnbStatus::kExact;
  if (report.certified) report.t_opt = bnb.makespan;

  // Relation 1a: the oracle never dips below the admissible Lemma 2
  // bound. The bound is exact real arithmetic on both sides of the same
  // doubles, so a tiny relative slack absorbs summation-order noise.
  if (report.certified &&
      bnb.makespan < report.lower_bound * (1.0 - 1e-9)) {
    report.mismatches.push_back("T_opt below Lemma 2 lower bound: " +
                                both(bnb.makespan, report.lower_bound));
  }
  if (in_caps && bnb.lower_bound > bnb.makespan * (1.0 + 1e-12)) {
    report.mismatches.push_back(
        "reported bracket inverted (lower_bound > makespan): " +
        both(bnb.lower_bound, bnb.makespan));
  }

  // Relation 1b: no registry scheduler may beat the certified optimum —
  // each of their makespans is a feasible schedule, hence >= T_opt. Also
  // witnesses the Lemma 2 side for uncertified instances.
  for (const auto& spec : suite) {
    const auto result = spec.run(g, P);
    if (result.makespan < report.lower_bound * (1.0 - 1e-9)) {
      report.mismatches.push_back("scheduler '" + spec.name +
                                  "' beat the Lemma 2 lower bound: " +
                                  both(result.makespan, report.lower_bound));
    }
    if (report.certified &&
        result.makespan < bnb.makespan * (1.0 - 1e-12)) {
      report.mismatches.push_back("scheduler '" + spec.name +
                                  "' beat the certified optimum: " +
                                  both(result.makespan, bnb.makespan));
    }
  }

  if (report.certified) {
    // Relation 3: the certificate schedule must be feasible and must
    // reproduce the reported value exactly.
    sim::Trace trace;
    double recomputed = 0.0;
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
      const auto idx = static_cast<std::size_t>(v);
      trace.record_start(v, bnb.start_time[idx], bnb.allocation[idx]);
    }
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
      const auto idx = static_cast<std::size_t>(v);
      const double finish =
          bnb.start_time[idx] + g.model_of(v).time(bnb.allocation[idx]);
      trace.record_end(v, finish);
      if (finish > recomputed) recomputed = finish;
    }
    const auto validation = sim::validate_schedule(g, trace, P);
    for (const auto& violation : validation.violations)
      report.mismatches.push_back("certificate schedule invalid: " + violation);
    if (recomputed != bnb.makespan) {
      report.mismatches.push_back(
          "certificate makespan differs from reported T_opt: " +
          both(recomputed, bnb.makespan));
    }

    // Relation 2: exhaustive arbiter on tiny instances, bit-for-bit. The
    // unpruned tree can still be astronomically large at high P, so the
    // arbiter carries its own node budget; a truncated run is simply not
    // an arbiter (brute_checked stays false).
    if (g.num_tasks() <= brute_force_max_tasks) {
      const auto brute =
          opt::brute_force_topt(g, P, brute_force_max_tasks, 20'000'000);
      if (brute.status == opt::BnbStatus::kExact) {
        report.brute_checked = true;
        if (brute.makespan != bnb.makespan) {
          report.mismatches.push_back(
              "branch-and-bound and brute force disagree: " +
              both(bnb.makespan, brute.makespan));
        }
      }
    }
  }

  return report;
}

OracleReport exact_oracle_check(const graph::TaskGraph& g, int P, double mu,
                                int brute_force_max_tasks) {
  return exact_oracle_check(g, P, sched::full_suite(mu),
                            brute_force_max_tasks);
}

}  // namespace moldsched::check
