// Scheduler/engine instrumentation hooks.
//
// An Observer receives the per-decision data the paper's analysis is
// built on: when a task is revealed (and what allocation Algorithm 2
// chose relative to the mu-cap), when it starts (after how much
// waiting), when it completes, and the running waiting-area /
// executing-area totals that Lemmas 1-5 partition the schedule into.
// The engine reports its own lifecycle (job start/end) through the same
// interface so one observer can watch both layers.
//
// All callbacks use plain scalar/string parameters — obs stays below
// graph/sim/core in the layering. Hooks fire synchronously on the
// calling thread; implementations must be cheap and, when shared across
// jobs, thread-safe. The default is no observer at all (a null pointer,
// checked once per event), so unobserved runs pay nothing; NullObserver
// exists for call sites that want a non-null sink.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "moldsched/obs/metrics.hpp"
#include "moldsched/obs/trace_writer.hpp"

namespace moldsched::obs {

class Observer {
 public:
  virtual ~Observer() = default;

  // --- simulated-scheduler events (times are simulation time) ---------

  /// Task revealed: its last predecessor completed and Algorithm 2
  /// fixed `alloc` processors. `alloc_cap` is the LPA mu-threshold
  /// ceil(mu P) when the allocator exposes one, else -1. `queue_depth`
  /// counts waiting tasks including this one.
  virtual void on_task_ready(int task, const std::string& name, double time,
                             int alloc, int alloc_cap,
                             std::size_t queue_depth) {
    (void)task; (void)name; (void)time; (void)alloc; (void)alloc_cap;
    (void)queue_depth;
  }

  /// Task left the waiting queue and started. `waited` is time spent
  /// ready-but-queued (its contribution to the waiting area is
  /// procs * waited); `layer` is the task's hop depth (0 = source).
  virtual void on_task_start(int task, const std::string& name,
                             const std::string& model, double time, int procs,
                             double waited, int layer,
                             std::size_t queue_depth, int procs_in_use) {
    (void)task; (void)name; (void)model; (void)time; (void)procs;
    (void)waited; (void)layer; (void)queue_depth; (void)procs_in_use;
  }

  /// Task completed after `exec_time` on `procs` processors.
  virtual void on_task_end(int task, double time, int procs, double exec_time,
                           std::size_t queue_depth, int procs_in_use) {
    (void)task; (void)time; (void)procs; (void)exec_time; (void)queue_depth;
    (void)procs_in_use;
  }

  /// Simulation finished. `waiting_area` is sum over tasks of
  /// alloc * (start - ready); `executing_area` sum of alloc * exec_time
  /// — the two areas the Lemma accounting partitions work into.
  virtual void on_sim_done(double makespan, double waiting_area,
                           double executing_area, std::uint64_t num_events) {
    (void)makespan; (void)waiting_area; (void)executing_area;
    (void)num_events;
  }

  // --- event-queue events ---------------------------------------------

  /// An event was inserted into the discrete-event queue.
  virtual void on_event_scheduled(double now, double event_time,
                                  std::int64_t payload,
                                  std::size_t pending_events) {
    (void)now; (void)event_time; (void)payload; (void)pending_events;
  }

  /// A batch of simultaneous events is about to be processed.
  virtual void on_event_batch(double time, std::size_t batch_size,
                              std::size_t pending_events) {
    (void)time; (void)batch_size; (void)pending_events;
  }

  // --- engine events (times are real milliseconds) --------------------

  virtual void on_job_start(std::uint64_t job_id, const std::string& key,
                            double queue_ms) {
    (void)job_id; (void)key; (void)queue_ms;
  }

  virtual void on_job_end(std::uint64_t job_id, const std::string& key,
                          const std::string& status, double wall_ms) {
    (void)job_id; (void)key; (void)status; (void)wall_ms;
  }
};

/// Explicit do-nothing sink (equivalent to passing no observer).
class NullObserver final : public Observer {};

/// Forwards every event to each registered observer, in order.
class FanoutObserver final : public Observer {
 public:
  /// Pointers must outlive this observer; nulls are ignored.
  explicit FanoutObserver(std::vector<Observer*> sinks);

  void on_task_ready(int task, const std::string& name, double time,
                     int alloc, int alloc_cap,
                     std::size_t queue_depth) override;
  void on_task_start(int task, const std::string& name,
                     const std::string& model, double time, int procs,
                     double waited, int layer, std::size_t queue_depth,
                     int procs_in_use) override;
  void on_task_end(int task, double time, int procs, double exec_time,
                   std::size_t queue_depth, int procs_in_use) override;
  void on_sim_done(double makespan, double waiting_area,
                   double executing_area, std::uint64_t num_events) override;
  void on_event_scheduled(double now, double event_time, std::int64_t payload,
                          std::size_t pending_events) override;
  void on_event_batch(double time, std::size_t batch_size,
                      std::size_t pending_events) override;
  void on_job_start(std::uint64_t job_id, const std::string& key,
                    double queue_ms) override;
  void on_job_end(std::uint64_t job_id, const std::string& key,
                  const std::string& status, double wall_ms) override;

 private:
  std::vector<Observer*> sinks_;
};

/// Feeds scheduler events into a MetricRegistry under `prefix`:
/// counters <prefix>.tasks.started/.completed/.capped (allocation hit
/// the mu-cap), gauges <prefix>.queue_depth.peak, .waiting_area,
/// .executing_area, histogram <prefix>.task.wait (waiting times).
/// Thread-safe to share across concurrent simulations.
class MetricsObserver final : public Observer {
 public:
  explicit MetricsObserver(MetricRegistry& registry,
                           const std::string& prefix = "sim");

  void on_task_ready(int task, const std::string& name, double time,
                     int alloc, int alloc_cap,
                     std::size_t queue_depth) override;
  void on_task_start(int task, const std::string& name,
                     const std::string& model, double time, int procs,
                     double waited, int layer, std::size_t queue_depth,
                     int procs_in_use) override;
  void on_task_end(int task, double time, int procs, double exec_time,
                   std::size_t queue_depth, int procs_in_use) override;
  void on_sim_done(double makespan, double waiting_area,
                   double executing_area, std::uint64_t num_events) override;

 private:
  Counter& ready_;
  Counter& started_;
  Counter& completed_;
  Counter& capped_;
  Counter& sims_;
  Gauge& queue_peak_;
  Gauge& waiting_area_;
  Gauge& executing_area_;
  Histogram& wait_;
};

/// Renders one simulation as a Chrome-trace process: one lane (tid) per
/// processor with a span for every task occupying it, plus counter
/// tracks "ready queue" and "procs in use" — the timeline picture of
/// Figure 2 (layer serialization shows up as staircased lanes).
///
/// For platforms larger than `max_lanes` the per-processor rendering
/// would drown the viewer, so the observer falls back to one lane per
/// *concurrently running task* and a single span per task (the counter
/// tracks still carry the utilization shape). Simulated seconds map to
/// trace microseconds times `time_scale` (default 1e6, i.e. 1 simulated
/// second = 1 trace second).
///
/// Not thread-safe: use one instance per simulation.
class SimTraceObserver final : public Observer {
 public:
  SimTraceObserver(TraceWriter& writer, int pid, int P, int max_lanes = 64,
                   double time_scale = 1e6);

  void on_task_ready(int task, const std::string& name, double time,
                     int alloc, int alloc_cap,
                     std::size_t queue_depth) override;
  void on_task_start(int task, const std::string& name,
                     const std::string& model, double time, int procs,
                     double waited, int layer, std::size_t queue_depth,
                     int procs_in_use) override;
  void on_task_end(int task, double time, int procs, double exec_time,
                   std::size_t queue_depth, int procs_in_use) override;
  void on_sim_done(double makespan, double waiting_area,
                   double executing_area, std::uint64_t num_events) override;

 private:
  struct Running {
    double start = 0.0;
    std::vector<int> lanes;
    std::string label;
    std::vector<std::pair<std::string, std::string>> args;
  };

  [[nodiscard]] int acquire_lane();

  TraceWriter& writer_;
  int pid_;
  int P_;
  bool per_processor_;  ///< true when P <= max_lanes
  double scale_;
  std::vector<char> lane_busy_;
  std::map<int, Running> running_;
};

}  // namespace moldsched::obs
