// Process-level health signals (resident set, open file descriptors,
// uptime) read from /proc, plus a sampler that mirrors them into a
// MetricRegistry as proc.* gauges.
//
// These are exactly the signals a soak run asserts on — "no fd leak, no
// memory growth" — so they live next to the registry the admin listener
// exposes: every scrape refreshes the gauges first, making a running
// server's curve observable from outside without instrumenting the
// kernel. Reads are best-effort: on platforms without /proc the fields
// stay at their zero defaults rather than erroring.
#pragma once

#include <chrono>
#include <string>

#include "moldsched/obs/metrics.hpp"

namespace moldsched::obs {

struct ProcessStats {
  double rss_bytes = 0.0;       ///< resident set size (statm * page size)
  double peak_rss_bytes = 0.0;  ///< lifetime peak RSS (VmHWM)
  double open_fds = 0.0;        ///< entries in /proc/self/fd
  double uptime_s = 0.0;        ///< seconds since process start
};

/// One best-effort sample of the calling process.
[[nodiscard]] ProcessStats read_process_stats();

/// Lifetime peak resident set (VmHWM from /proc/self/status), in bytes;
/// 0.0 when unavailable. This is what a memory-ceiling guard wants: the
/// high-water mark survives frees, so a bench that builds, runs and
/// tears down a 10^7-task instance still reports its true footprint.
[[nodiscard]] double read_peak_rss_bytes();

/// Registers <prefix>.rss_bytes / <prefix>.open_fds / <prefix>.uptime_s
/// gauges in `registry` and refreshes them on every sample() call. The
/// registry must outlive the sampler.
class ProcessSampler {
 public:
  explicit ProcessSampler(MetricRegistry& registry,
                          const std::string& prefix = "proc");

  /// Reads /proc and stores the result into the three gauges; returns
  /// the sample for callers that want the raw values too.
  ProcessStats sample();

 private:
  Gauge& rss_bytes_;
  Gauge& peak_rss_bytes_;
  Gauge& open_fds_;
  Gauge& uptime_s_;
};

}  // namespace moldsched::obs
