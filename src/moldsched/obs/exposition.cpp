#include "moldsched/obs/exposition.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace moldsched::obs {

namespace {

std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Counters render as <name>_total per the naming convention; a name
/// that already carries the suffix is left alone.
std::string counter_name(const std::string& sanitized) {
  constexpr const char* kSuffix = "_total";
  if (sanitized.size() >= 6 &&
      sanitized.compare(sanitized.size() - 6, 6, kSuffix) == 0)
    return sanitized;
  return sanitized + kSuffix;
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty()) out.push_back('_');
  if (std::isdigit(static_cast<unsigned char>(out.front())) != 0)
    out.insert(out.begin(), '_');
  return out;
}

std::string to_prometheus_text(const std::vector<MetricSample>& samples) {
  std::string out;
  for (const auto& s : samples) {
    const std::string name = prometheus_name(s.name);
    switch (s.kind) {
      case MetricSample::Kind::kCounter: {
        const std::string full = counter_name(name);
        out += "# TYPE " + full + " counter\n";
        out += full + ' ' + format_value(s.value) + '\n';
        break;
      }
      case MetricSample::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + ' ' + format_value(s.value) + '\n';
        break;
      case MetricSample::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        // The wire format wants cumulative bucket counts; the registry
        // stores per-bucket ones.
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          cum += s.buckets[i];
          const std::string le =
              i < s.bounds.size() ? format_value(s.bounds[i]) : "+Inf";
          out += name + "_bucket{le=\"" + le + "\"} " +
                 std::to_string(cum) + '\n';
        }
        out += name + "_sum " + format_value(s.sum) + '\n';
        out += name + "_count " + std::to_string(s.count) + '\n';
        break;
      }
    }
  }
  return out;
}

std::string to_prometheus_text(const MetricRegistry& registry) {
  return to_prometheus_text(registry.snapshot());
}

}  // namespace moldsched::obs
