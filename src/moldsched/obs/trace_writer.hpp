// Chrome trace-event JSON production (the format Perfetto and
// chrome://tracing load natively).
//
// One TraceWriter collects events from many threads; export sorts by
// timestamp (then insertion order) so output is deterministic for
// deterministic inputs. Two producers feed it in this codebase:
//   - the engine: one lane (tid) per worker thread, with job spans and
//     steal/cancellation instants, timestamped with real wall time;
//   - the simulator: one process (pid) per traced simulation, one lane
//     per processor, timestamped with simulated time (see
//     obs::SimTraceObserver in observer.hpp).
//
// A process-wide tracer slot (set_global_tracer / global_tracer) lets
// the CLI arm tracing for a whole run without threading a pointer
// through every layer; it is null by default, and instrumented code
// must check it before paying any cost.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace moldsched::obs {

/// One trace event. `args` values are emitted as JSON strings unless
/// they parse as a plain number (keeps the writer API simple).
struct TraceEvent {
  char phase = 'X';   ///< X = complete span, i = instant, C = counter,
                      ///< M = metadata
  int pid = 0;
  int tid = 0;
  double ts_us = 0.0;   ///< event timestamp, microseconds
  double dur_us = 0.0;  ///< span duration (phase 'X' only)
  std::string name;
  std::string cat;
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceWriter {
 public:
  /// Process id used by the engine producer (workers, jobs).
  static constexpr int kEnginePid = 1;

  TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Microseconds since this writer was constructed (the engine's
  /// timestamp base, so every run's trace starts near 0).
  [[nodiscard]] double now_us() const;

  /// Allocates a fresh pid (> kEnginePid) and names it; used to give
  /// each traced simulation its own process group in the viewer.
  int new_process(const std::string& name);

  void complete_span(int pid, int tid, const std::string& name,
                     const std::string& cat, double ts_us, double dur_us,
                     std::vector<std::pair<std::string, std::string>> args = {});
  void instant(int pid, int tid, const std::string& name,
               const std::string& cat, double ts_us,
               std::vector<std::pair<std::string, std::string>> args = {});
  /// Counter track: one sample of named series at ts_us.
  void counter(int pid, const std::string& name, double ts_us,
               std::vector<std::pair<std::string, double>> series);

  /// Metadata events; idempotent per (pid, tid)/(pid) — repeated calls
  /// with the same target are dropped.
  void set_process_name(int pid, const std::string& name);
  void set_thread_name(int pid, int tid, const std::string& name);

  [[nodiscard]] std::size_t num_events() const;

  /// The complete trace document:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path` (creating parent directories). Throws
  /// std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  void push(TraceEvent event);

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::vector<std::uint64_t> seq_;  ///< insertion order, parallel to events_
  std::uint64_t next_seq_ = 0;
  int next_pid_ = kEnginePid + 1;
  std::vector<std::pair<int, int>> named_threads_;
  std::vector<int> named_processes_;
  std::chrono::steady_clock::time_point epoch_;
};

/// Arms/disarms process-wide tracing. The pointer must outlive every
/// instrumented call made while it is set; callers disarm (nullptr)
/// before destroying the writer.
void set_global_tracer(TraceWriter* tracer) noexcept;
[[nodiscard]] TraceWriter* global_tracer() noexcept;

/// Statistics gathered while validating a trace document.
struct TraceStats {
  std::size_t events = 0;
  std::size_t spans = 0;
  std::size_t instants = 0;
  std::size_t counter_samples = 0;
  std::size_t metadata = 0;
  std::vector<int> pids;  ///< distinct pids, ascending
};

/// Strict structural validation of a Chrome trace-event document: the
/// top level must be an object with a "traceEvents" array; every event
/// must be an object with a string "ph" of a known phase, string
/// "name", numeric "pid"/"tid", a numeric "ts" (except metadata), a
/// numeric "dur" on complete spans, and an "args" object where
/// required. Returns std::nullopt on success (filling *stats when
/// given), else a description of the first violation. The parser
/// rejects malformed JSON outright — trailing garbage, unquoted keys,
/// bad escapes.
[[nodiscard]] std::optional<std::string> validate_chrome_trace(
    const std::string& json, TraceStats* stats = nullptr);

}  // namespace moldsched::obs
