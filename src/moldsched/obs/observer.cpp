#include "moldsched/obs/observer.hpp"

#include <algorithm>

namespace moldsched::obs {

// ---------------------------------------------------------------------------
// FanoutObserver

FanoutObserver::FanoutObserver(std::vector<Observer*> sinks) {
  for (Observer* s : sinks)
    if (s != nullptr) sinks_.push_back(s);
}

void FanoutObserver::on_task_ready(int task, const std::string& name,
                                   double time, int alloc, int alloc_cap,
                                   std::size_t queue_depth) {
  for (Observer* s : sinks_)
    s->on_task_ready(task, name, time, alloc, alloc_cap, queue_depth);
}

void FanoutObserver::on_task_start(int task, const std::string& name,
                                   const std::string& model, double time,
                                   int procs, double waited, int layer,
                                   std::size_t queue_depth,
                                   int procs_in_use) {
  for (Observer* s : sinks_)
    s->on_task_start(task, name, model, time, procs, waited, layer,
                     queue_depth, procs_in_use);
}

void FanoutObserver::on_task_end(int task, double time, int procs,
                                 double exec_time, std::size_t queue_depth,
                                 int procs_in_use) {
  for (Observer* s : sinks_)
    s->on_task_end(task, time, procs, exec_time, queue_depth, procs_in_use);
}

void FanoutObserver::on_sim_done(double makespan, double waiting_area,
                                 double executing_area,
                                 std::uint64_t num_events) {
  for (Observer* s : sinks_)
    s->on_sim_done(makespan, waiting_area, executing_area, num_events);
}

void FanoutObserver::on_event_scheduled(double now, double event_time,
                                        std::int64_t payload,
                                        std::size_t pending_events) {
  for (Observer* s : sinks_)
    s->on_event_scheduled(now, event_time, payload, pending_events);
}

void FanoutObserver::on_event_batch(double time, std::size_t batch_size,
                                    std::size_t pending_events) {
  for (Observer* s : sinks_)
    s->on_event_batch(time, batch_size, pending_events);
}

void FanoutObserver::on_job_start(std::uint64_t job_id, const std::string& key,
                                  double queue_ms) {
  for (Observer* s : sinks_) s->on_job_start(job_id, key, queue_ms);
}

void FanoutObserver::on_job_end(std::uint64_t job_id, const std::string& key,
                                const std::string& status, double wall_ms) {
  for (Observer* s : sinks_) s->on_job_end(job_id, key, status, wall_ms);
}

// ---------------------------------------------------------------------------
// MetricsObserver

MetricsObserver::MetricsObserver(MetricRegistry& registry,
                                 const std::string& prefix)
    : ready_(registry.counter(prefix + ".tasks.ready")),
      started_(registry.counter(prefix + ".tasks.started")),
      completed_(registry.counter(prefix + ".tasks.completed")),
      capped_(registry.counter(prefix + ".tasks.capped")),
      sims_(registry.counter(prefix + ".sims")),
      queue_peak_(registry.gauge(prefix + ".queue_depth.peak")),
      waiting_area_(registry.gauge(prefix + ".waiting_area")),
      executing_area_(registry.gauge(prefix + ".executing_area")),
      wait_(registry.histogram(prefix + ".task.wait")) {}

void MetricsObserver::on_task_ready(int, const std::string&, double,
                                    int alloc, int alloc_cap,
                                    std::size_t queue_depth) {
  ready_.add();
  if (alloc_cap >= 1 && alloc >= alloc_cap) capped_.add();
  queue_peak_.record_max(static_cast<double>(queue_depth));
}

void MetricsObserver::on_task_start(int, const std::string&,
                                    const std::string&, double, int,
                                    double waited, int, std::size_t, int) {
  started_.add();
  wait_.observe(waited);
}

void MetricsObserver::on_task_end(int, double, int, double, std::size_t,
                                  int) {
  completed_.add();
}

void MetricsObserver::on_sim_done(double, double waiting_area,
                                  double executing_area, std::uint64_t) {
  sims_.add();
  waiting_area_.add(waiting_area);
  executing_area_.add(executing_area);
}

// ---------------------------------------------------------------------------
// SimTraceObserver

SimTraceObserver::SimTraceObserver(TraceWriter& writer, int pid, int P,
                                   int max_lanes, double time_scale)
    : writer_(writer),
      pid_(pid),
      P_(P),
      per_processor_(P <= max_lanes),
      scale_(time_scale) {
  if (per_processor_) {
    lane_busy_.assign(static_cast<std::size_t>(P), 0);
    for (int lane = 0; lane < P; ++lane)
      writer_.set_thread_name(pid_, lane, "proc " + std::to_string(lane));
  }
}

int SimTraceObserver::acquire_lane() {
  for (std::size_t i = 0; i < lane_busy_.size(); ++i) {
    if (!lane_busy_[i]) {
      lane_busy_[i] = 1;
      return static_cast<int>(i);
    }
  }
  lane_busy_.push_back(1);
  const int lane = static_cast<int>(lane_busy_.size()) - 1;
  if (!per_processor_)
    writer_.set_thread_name(pid_, lane, "slot " + std::to_string(lane));
  return lane;
}

void SimTraceObserver::on_task_ready(int task, const std::string& name,
                                     double time, int alloc, int alloc_cap,
                                     std::size_t queue_depth) {
  std::vector<std::pair<std::string, std::string>> args = {
      {"task", std::to_string(task)},
      {"alloc", std::to_string(alloc)},
  };
  if (!name.empty()) args.emplace_back("name", name);
  if (alloc_cap >= 1) args.emplace_back("mu_cap", std::to_string(alloc_cap));
  writer_.instant(pid_, 0, "ready", "sim", time * scale_, std::move(args));
  writer_.counter(pid_, "ready queue", time * scale_,
                  {{"depth", static_cast<double>(queue_depth)}});
}

void SimTraceObserver::on_task_start(int task, const std::string& name,
                                     const std::string& model, double time,
                                     int procs, double waited, int layer,
                                     std::size_t queue_depth,
                                     int procs_in_use) {
  Running run;
  run.start = time;
  run.label = name.empty() ? "task " + std::to_string(task) : name;
  run.args = {{"task", std::to_string(task)},
              {"procs", std::to_string(procs)},
              {"model", model},
              {"layer", std::to_string(layer)},
              {"waited", std::to_string(waited)}};
  const int spans = per_processor_ ? procs : 1;
  run.lanes.reserve(static_cast<std::size_t>(spans));
  for (int k = 0; k < spans; ++k) run.lanes.push_back(acquire_lane());
  running_[task] = std::move(run);

  writer_.counter(pid_, "ready queue", time * scale_,
                  {{"depth", static_cast<double>(queue_depth)}});
  writer_.counter(pid_, "procs in use", time * scale_,
                  {{"procs", static_cast<double>(procs_in_use)}});
}

void SimTraceObserver::on_task_end(int task, double time, int procs,
                                   double exec_time, std::size_t queue_depth,
                                   int procs_in_use) {
  (void)procs;
  (void)exec_time;
  (void)queue_depth;
  const auto it = running_.find(task);
  if (it == running_.end()) return;  // started before this observer attached
  const Running& run = it->second;
  const double ts = run.start * scale_;
  const double dur = (time - run.start) * scale_;
  for (const int lane : run.lanes) {
    writer_.complete_span(pid_, lane, run.label, "sim", ts, dur, run.args);
    lane_busy_[static_cast<std::size_t>(lane)] = 0;
  }
  running_.erase(it);
  writer_.counter(pid_, "procs in use", time * scale_,
                  {{"procs", static_cast<double>(procs_in_use)}});
}

void SimTraceObserver::on_sim_done(double makespan, double waiting_area,
                                   double executing_area,
                                   std::uint64_t num_events) {
  writer_.instant(
      pid_, 0, "sim done", "sim", makespan * scale_,
      {{"makespan", std::to_string(makespan)},
       {"waiting_area", std::to_string(waiting_area)},
       {"executing_area", std::to_string(executing_area)},
       {"events", std::to_string(num_events)},
       {"P", std::to_string(P_)}});
}

}  // namespace moldsched::obs
