// Thread-safe metrics: counters, gauges and histograms behind a named
// registry, designed so instrumenting a hot path (the executor's
// steal/pop loop, the simulator's event loop) costs about one relaxed
// atomic operation.
//
// Counters are sharded: each thread hashes to one of a fixed set of
// cache-line-padded atomic cells, so concurrent increments from the
// worker pool do not bounce a single cache line. Reads sum the shards
// (reads are rare — snapshots, heartbeats — writes are the hot case).
// Gauges are a single atomic double. Histograms bucket by fixed,
// registration-time bounds with sharded per-bucket counts.
//
// A process-wide default_registry() backs the engine's built-in
// instrumentation; library code may also create private registries.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace moldsched::obs {

namespace detail {
/// Stable small shard index for the calling thread (assigned on first
/// use, round-robin over the shard count). Inline: Counter::add() sits
/// on per-decision hot paths (e.g. the allocator cache), where an
/// out-of-line call would rival the fetch_add it guards.
[[nodiscard]] inline std::size_t thread_shard(
    std::size_t num_shards) noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id % num_shards;
}
}  // namespace detail

/// Monotonic event count. add() is wait-free: one relaxed fetch_add on
/// the caller's shard.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::thread_shard(kShards)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over all shards. Concurrent adds may or may not be included.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-writer-wins instantaneous value (queue depth, utilization, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  /// Raises the stored value to v if v is larger (peak tracking).
  void record_max(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution of observed values over fixed upper-bound buckets
/// (bucket i counts samples <= bounds[i]; one implicit +inf bucket
/// catches the rest). observe() touches one sharded bucket cell plus
/// sharded sum/count cells — all relaxed.
class Histogram {
 public:
  /// Bounds must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  /// Default bounds suited to millisecond timings: 0.1 .. 10000 ms.
  [[nodiscard]] static const std::vector<double>& default_time_bounds();

  /// Geometric (HDR-style log-bucketed) ladder: `per_decade` bounds per
  /// factor of ten, from `lo` up to the first bound >= `hi`. Adjacent
  /// bounds differ by the constant factor 10^(1/per_decade), so any
  /// quantile read off the buckets carries at most that relative error.
  /// Throws std::invalid_argument unless 0 < lo < hi and per_decade >= 1.
  [[nodiscard]] static std::vector<double> log_bounds(double lo, double hi,
                                                      int per_decade = 24);

  /// Log-bucketed default for request latencies: 1 us .. 60 s (in ms)
  /// at 24 buckets per decade (~10% relative resolution per bucket).
  [[nodiscard]] static const std::vector<double>& default_latency_bounds();

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts, one extra trailing entry for the +inf bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  /// 0 when empty.
  [[nodiscard]] double mean() const noexcept;
  /// +inf / -inf when empty.
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

  /// Nearest-rank quantile estimate read off the bucket counts: the
  /// upper bound of the bucket holding the rank-ceil(q n) sample,
  /// clamped to the exact tracked [min, max]. With log_bounds the
  /// estimate is within one bucket's relative resolution of the exact
  /// order statistic. q is clamped to [0, 1]; 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  void reset() noexcept;

 private:
  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::array<Shard, kShards> shards_;
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Point-in-time value of one metric, as captured by
/// MetricRegistry::snapshot().
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;  ///< counter value or gauge reading
  // Histogram-only fields:
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
};

/// Histogram::quantile over an already-captured histogram sample —
/// exposition paths and benches compute quantiles from snapshots
/// without touching the live instrument. 0 for non-histogram samples.
[[nodiscard]] double sample_quantile(const MetricSample& sample, double q);

/// Named metric registry. Registration is idempotent: asking twice for
/// the same name returns the same instrument (and throws
/// std::invalid_argument if the existing instrument has a different
/// type). Returned references live as long as the registry.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first registration; empty = default
  /// time bounds.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> bounds = {});

  /// All metrics in name order (deterministic serialization).
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Pretty-printed JSON object {"counters":{...}, "gauges":{...},
  /// "histograms":{...}} with keys in name order. `indent` spaces of
  /// leading indentation on every line (for embedding).
  [[nodiscard]] std::string to_json(int indent = 0) const;

  /// Zeroes every counter/gauge and clears histogram contents without
  /// invalidating references handed out earlier.
  void reset();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, Entry>> entries_;  // name-sorted
};

/// The process-wide registry used by the engine's built-in
/// instrumentation (executor steal/pop counters, job outcome counters).
[[nodiscard]] MetricRegistry& default_registry();

/// Arms optional fine-grained collection (the CLI sets this when
/// --metrics is passed). The engine's coarse built-in counters are
/// always on; this flag gates only instrumentation too hot to run
/// unconditionally, such as per-task simulator observers.
void set_metrics_collection(bool enabled) noexcept;
[[nodiscard]] bool metrics_collection_enabled() noexcept;

}  // namespace moldsched::obs
