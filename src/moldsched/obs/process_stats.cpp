#include "moldsched/obs/process_stats.hpp"

#include <dirent.h>
#include <unistd.h>

#include <fstream>
#include <sstream>

namespace moldsched::obs {

namespace {

double read_rss_bytes() {
  // /proc/self/statm: size resident shared ... (in pages).
  std::ifstream in("/proc/self/statm");
  long long size_pages = 0, resident_pages = 0;
  if (!(in >> size_pages >> resident_pages)) return 0.0;
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0.0;
  return static_cast<double>(resident_pages) * static_cast<double>(page);
}

double read_peak_rss_kb() {
  // /proc/self/status: "VmHWM:   123456 kB" — the high-water mark of
  // the resident set over the process lifetime.
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    long long kb = 0;
    if (fields >> kb && kb >= 0) return static_cast<double>(kb);
    return 0.0;
  }
  return 0.0;
}

double read_open_fds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0.0;
  long count = 0;
  while (const dirent* entry = ::readdir(dir)) {
    const char* n = entry->d_name;
    if (n[0] == '.' && (n[1] == '\0' || (n[1] == '.' && n[2] == '\0')))
      continue;
    ++count;
  }
  ::closedir(dir);
  // The directory stream itself holds one fd that vanishes on closedir.
  return static_cast<double>(count > 0 ? count - 1 : 0);
}

double read_uptime_seconds() {
  // starttime is field 22 of /proc/self/stat, in clock ticks since
  // boot; the boot-relative clock comes from /proc/uptime. comm (field
  // 2) may contain spaces, so parsing starts after its closing ')'.
  std::ifstream stat("/proc/self/stat");
  std::string line;
  const bool have_stat = static_cast<bool>(std::getline(stat, line));
  const std::size_t close = have_stat ? line.rfind(')') : std::string::npos;
  double system_uptime = 0.0;
  std::ifstream up("/proc/uptime");
  const bool have_uptime = static_cast<bool>(up >> system_uptime);
  if (have_stat && have_uptime && close != std::string::npos) {
    std::istringstream rest(line.substr(close + 1));
    std::string token;
    // After ')' the next token is state (field 3); starttime is field
    // 22, i.e. the 20th token from here.
    double starttime_ticks = 0.0;
    bool ok = true;
    for (int i = 0; i < 20 && ok; ++i) ok = static_cast<bool>(rest >> token);
    if (ok) {
      try {
        starttime_ticks = std::stod(token);
      } catch (const std::exception&) {
        ok = false;
      }
    }
    const long hz = ::sysconf(_SC_CLK_TCK);
    if (ok && hz > 0) {
      const double uptime =
          system_uptime - starttime_ticks / static_cast<double>(hz);
      if (uptime >= 0.0) return uptime;
    }
  }
  // No usable /proc: fall back to time since this function first ran,
  // which in practice is process start (the sampler is constructed by
  // the serving tool's main).
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

}  // namespace

ProcessStats read_process_stats() {
  ProcessStats stats;
  stats.rss_bytes = read_rss_bytes();
  stats.peak_rss_bytes = read_peak_rss_bytes();
  stats.open_fds = read_open_fds();
  stats.uptime_s = read_uptime_seconds();
  return stats;
}

double read_peak_rss_bytes() { return read_peak_rss_kb() * 1024.0; }

ProcessSampler::ProcessSampler(MetricRegistry& registry,
                               const std::string& prefix)
    : rss_bytes_(registry.gauge(prefix + ".rss_bytes")),
      peak_rss_bytes_(registry.gauge(prefix + ".peak_rss_bytes")),
      open_fds_(registry.gauge(prefix + ".open_fds")),
      uptime_s_(registry.gauge(prefix + ".uptime_s")) {}

ProcessStats ProcessSampler::sample() {
  const ProcessStats stats = read_process_stats();
  rss_bytes_.set(stats.rss_bytes);
  peak_rss_bytes_.set(stats.peak_rss_bytes);
  open_fds_.set(stats.open_fds);
  uptime_s_.set(stats.uptime_s);
  return stats;
}

}  // namespace moldsched::obs
