#include "moldsched/obs/span.hpp"

#include <cstdio>

namespace moldsched::obs {

namespace {

std::string format_us(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

TraceSpanObserver::TraceSpanObserver(TraceWriter& writer,
                                     const std::string& process_name)
    : writer_(writer), pid_(writer.new_process(process_name)) {}

int TraceSpanObserver::lane_for(const std::string& session) {
  const std::string key = session.empty() ? "(no session)" : session;
  const auto it = lanes_.find(key);
  if (it != lanes_.end()) return it->second;
  const int tid = next_tid_++;
  lanes_.emplace(key, tid);
  writer_.set_thread_name(pid_, tid, key);
  return tid;
}

void TraceSpanObserver::on_request(const RequestSpan& span) {
  int tid = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tid = lane_for(span.session);
  }
  std::vector<std::pair<std::string, std::string>> args;
  args.reserve(10);
  args.emplace_back("request_id", std::to_string(span.request_id));
  args.emplace_back("seq", std::to_string(span.seq));
  if (!span.trace_id.empty()) args.emplace_back("trace_id", span.trace_id);
  args.emplace_back("outcome", span.outcome);
  args.emplace_back("queue_us", format_us(span.queue_us));
  args.emplace_back("parse_us", format_us(span.parse_us));
  args.emplace_back("schedule_us", format_us(span.schedule_us));
  args.emplace_back("serialize_us", format_us(span.serialize_us));
  args.emplace_back("write_us", format_us(span.write_us));
  writer_.complete_span(pid_, tid, span.op, "svc.request", span.start_us,
                        span.total_us, std::move(args));

  // Phases as nested children, laid out in their true order: queue
  // leads from the enqueue instant, then parse / schedule / serialize /
  // write follow each other back-to-back (the measured segments are
  // contiguous up to scheduling noise, so cursor stacking keeps every
  // child inside the parent).
  double cursor = span.start_us;
  const std::pair<const char*, double> phases[] = {
      {"queue", span.queue_us},
      {"parse", span.parse_us},
      {"schedule", span.schedule_us},
      {"serialize", span.serialize_us},
      {"write", span.write_us},
  };
  for (const auto& [name, dur] : phases) {
    if (dur <= 0.0) continue;
    writer_.complete_span(pid_, tid, name, "svc.phase", cursor, dur);
    cursor += dur;
  }
}

}  // namespace moldsched::obs
