#include "moldsched/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace moldsched::obs {

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: bounds must be non-empty");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
  for (auto& shard : shards_)
    shard.buckets =
        std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

const std::vector<double>& Histogram::default_time_bounds() {
  static const std::vector<double> bounds = {
      0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
      250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};
  return bounds;
}

std::vector<double> Histogram::log_bounds(double lo, double hi,
                                          int per_decade) {
  if (!(lo > 0.0) || !(hi > lo))
    throw std::invalid_argument("log_bounds: need 0 < lo < hi");
  if (per_decade < 1)
    throw std::invalid_argument("log_bounds: per_decade must be >= 1");
  // Bounds are computed as lo * 10^(i / per_decade) rather than by
  // repeated multiplication, so the ladder is deterministic regardless
  // of length and strictly increasing by construction.
  std::vector<double> bounds;
  for (int i = 0;; ++i) {
    const double b =
        lo * std::pow(10.0, static_cast<double>(i) /
                                static_cast<double>(per_decade));
    bounds.push_back(b);
    if (b >= hi) break;
  }
  return bounds;
}

const std::vector<double>& Histogram::default_latency_bounds() {
  static const std::vector<double> bounds = log_bounds(1e-3, 6e4, 24);
  return bounds;
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  Shard& shard = shards_[detail::thread_shard(kShards)];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  double sum = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(sum, sum + v,
                                          std::memory_order_relaxed)) {
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (v < lo &&
         !min_.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (v > hi &&
         !max_.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& shard : shards_)
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] += shard.buckets[i].load(std::memory_order_relaxed);
  return out;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_)
    total += shard.count.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const noexcept {
  double total = 0.0;
  for (const auto& shard : shards_)
    total += shard.sum.load(std::memory_order_relaxed);
  return total;
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

namespace {

/// Shared nearest-rank estimator over captured bucket counts; min/max
/// clamp the bucket upper bound to the exactly-tracked value range.
double quantile_from_buckets(const std::vector<double>& bounds,
                             const std::vector<std::uint64_t>& buckets,
                             std::uint64_t count, double min_v, double max_v,
                             double q) {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum >= rank) {
      // The +inf bucket has no finite upper bound; the tracked max is
      // the tightest honest estimate there.
      const double upper = i < bounds.size() ? bounds[i] : max_v;
      return std::min(std::max(upper, min_v), max_v);
    }
  }
  return max_v;  // unreachable when buckets sum to count
}

}  // namespace

double Histogram::quantile(double q) const {
  return quantile_from_buckets(bounds_, bucket_counts(), count(), min(),
                               max(), q);
}

double sample_quantile(const MetricSample& sample, double q) {
  if (sample.kind != MetricSample::Kind::kHistogram) return 0.0;
  return quantile_from_buckets(sample.bounds, sample.buckets, sample.count,
                               sample.min, sample.max, q);
}

double Histogram::min() const noexcept {
  return min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (auto& shard : shards_) {
    for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricRegistry

namespace {

std::string format_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Same escaping contract as io::json_escape (quotes, backslashes and
/// control characters); duplicated locally because obs sits below io in
/// the layering. Metric names are caller-chosen strings, and at least
/// one caller (the svc server) derives names from configuration.
std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Counter& MetricRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, const std::string& n) { return e.first < n; });
  if (it != entries_.end() && it->first == name) {
    if (!it->second.counter)
      throw std::invalid_argument("MetricRegistry: '" + name +
                                  "' is registered with a different type");
    return *it->second.counter;
  }
  Entry entry;
  entry.counter = std::make_unique<Counter>();
  Counter& ref = *entry.counter;
  entries_.insert(it, {name, std::move(entry)});
  return ref;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, const std::string& n) { return e.first < n; });
  if (it != entries_.end() && it->first == name) {
    if (!it->second.gauge)
      throw std::invalid_argument("MetricRegistry: '" + name +
                                  "' is registered with a different type");
    return *it->second.gauge;
  }
  Entry entry;
  entry.gauge = std::make_unique<Gauge>();
  Gauge& ref = *entry.gauge;
  entries_.insert(it, {name, std::move(entry)});
  return ref;
}

Histogram& MetricRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, const std::string& n) { return e.first < n; });
  if (it != entries_.end() && it->first == name) {
    if (!it->second.histogram)
      throw std::invalid_argument("MetricRegistry: '" + name +
                                  "' is registered with a different type");
    return *it->second.histogram;
  }
  Entry entry;
  entry.histogram = std::make_unique<Histogram>(
      bounds.empty() ? Histogram::default_time_bounds() : std::move(bounds));
  Histogram& ref = *entry.histogram;
  entries_.insert(it, {name, std::move(entry)});
  return ref;
}

std::vector<MetricSample> MetricRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricSample s;
    s.name = name;
    if (entry.counter) {
      s.kind = MetricSample::Kind::kCounter;
      s.value = static_cast<double>(entry.counter->value());
    } else if (entry.gauge) {
      s.kind = MetricSample::Kind::kGauge;
      s.value = entry.gauge->value();
    } else {
      s.kind = MetricSample::Kind::kHistogram;
      s.count = entry.histogram->count();
      s.sum = entry.histogram->sum();
      s.min = entry.histogram->min();
      s.max = entry.histogram->max();
      s.bounds = entry.histogram->bounds();
      s.buckets = entry.histogram->bucket_counts();
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricRegistry::to_json(int indent) const {
  const auto samples = snapshot();
  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  // The opening brace carries no padding so the document embeds cleanly
  // after a "key": prefix; continuation lines use `indent` spaces.
  std::string out = "{\n";
  for (const auto kind :
       {MetricSample::Kind::kCounter, MetricSample::Kind::kGauge,
        MetricSample::Kind::kHistogram}) {
    const char* section = kind == MetricSample::Kind::kCounter ? "counters"
                          : kind == MetricSample::Kind::kGauge
                              ? "gauges"
                              : "histograms";
    out += pad + "  \"" + section + "\": {";
    bool first = true;
    for (const auto& s : samples) {
      if (s.kind != kind) continue;
      if (!first) out += ',';
      first = false;
      out += "\n" + pad + "    \"" + escape_json(s.name) + "\": ";
      if (kind == MetricSample::Kind::kCounter) {
        out += std::to_string(static_cast<std::uint64_t>(s.value));
      } else if (kind == MetricSample::Kind::kGauge) {
        out += format_number(s.value);
      } else {
        out += "{\"count\": " + std::to_string(s.count) +
               ", \"sum\": " + format_number(s.sum);
        if (s.count > 0) {
          out += ", \"min\": " + format_number(s.min) +
                 ", \"max\": " + format_number(s.max);
        }
        out += ", \"buckets\": [";
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          if (i > 0) out += ',';
          out += std::to_string(s.buckets[i]);
        }
        out += "]}";
      }
    }
    out += first ? "}" : "\n" + pad + "  }";
    out += kind == MetricSample::Kind::kHistogram ? "\n" : ",\n";
  }
  out += pad + "}";
  return out;
}

void MetricRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    if (entry.counter) entry.counter->reset();
    else if (entry.gauge) entry.gauge->reset();
    else entry.histogram->reset();
  }
}

MetricRegistry& default_registry() {
  static MetricRegistry registry;
  return registry;
}

namespace {
std::atomic<bool> g_metrics_collection{false};
}  // namespace

void set_metrics_collection(bool enabled) noexcept {
  g_metrics_collection.store(enabled, std::memory_order_relaxed);
}

bool metrics_collection_enabled() noexcept {
  return g_metrics_collection.load(std::memory_order_relaxed);
}

}  // namespace moldsched::obs
