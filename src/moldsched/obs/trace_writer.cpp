#include "moldsched/obs/trace_writer.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>
#include <stdexcept>

namespace moldsched::obs {

namespace {

std::string format_number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// True when `s` is a plain JSON number token, so arg values that carry
/// numbers serialize unquoted.
bool is_number_token(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

TraceWriter::TraceWriter() : epoch_(std::chrono::steady_clock::now()) {}

double TraceWriter::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int TraceWriter::new_process(const std::string& name) {
  int pid = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    pid = next_pid_++;
  }
  set_process_name(pid, name);
  return pid;
}

void TraceWriter::push(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
  seq_.push_back(next_seq_++);
}

void TraceWriter::complete_span(
    int pid, int tid, const std::string& name, const std::string& cat,
    double ts_us, double dur_us,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent e;
  e.phase = 'X';
  e.pid = pid;
  e.tid = tid;
  e.name = name;
  e.cat = cat;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.args = std::move(args);
  push(std::move(e));
}

void TraceWriter::instant(
    int pid, int tid, const std::string& name, const std::string& cat,
    double ts_us, std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent e;
  e.phase = 'i';
  e.pid = pid;
  e.tid = tid;
  e.name = name;
  e.cat = cat;
  e.ts_us = ts_us;
  e.args = std::move(args);
  push(std::move(e));
}

void TraceWriter::counter(int pid, const std::string& name, double ts_us,
                          std::vector<std::pair<std::string, double>> series) {
  TraceEvent e;
  e.phase = 'C';
  e.pid = pid;
  e.tid = 0;
  e.name = name;
  e.ts_us = ts_us;
  e.args.reserve(series.size());
  for (auto& [k, v] : series) e.args.emplace_back(k, format_number(v));
  push(std::move(e));
}

void TraceWriter::set_process_name(int pid, const std::string& name) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (std::find(named_processes_.begin(), named_processes_.end(), pid) !=
        named_processes_.end())
      return;
    named_processes_.push_back(pid);
  }
  TraceEvent e;
  e.phase = 'M';
  e.pid = pid;
  e.name = "process_name";
  e.args.emplace_back("name", name);
  push(std::move(e));
}

void TraceWriter::set_thread_name(int pid, int tid, const std::string& name) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto key = std::make_pair(pid, tid);
    if (std::find(named_threads_.begin(), named_threads_.end(), key) !=
        named_threads_.end())
      return;
    named_threads_.push_back(key);
  }
  TraceEvent e;
  e.phase = 'M';
  e.pid = pid;
  e.tid = tid;
  e.name = "thread_name";
  e.args.emplace_back("name", name);
  push(std::move(e));
}

std::size_t TraceWriter::num_events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::string TraceWriter::to_json() const {
  std::vector<TraceEvent> events;
  std::vector<std::uint64_t> seq;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
    seq = seq_;
  }
  // Metadata first, then by timestamp, ties by insertion order — a
  // deterministic document for deterministic event streams.
  std::vector<std::size_t> order(events.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const bool meta_a = events[a].phase == 'M';
    const bool meta_b = events[b].phase == 'M';
    if (meta_a != meta_b) return meta_a;
    if (events[a].ts_us != events[b].ts_us)
      return events[a].ts_us < events[b].ts_us;
    return seq[a] < seq[b];
  });

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const std::size_t i : order) {
    const TraceEvent& e = events[i];
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":" + std::to_string(e.pid) +
           ",\"tid\":" + std::to_string(e.tid);
    out += ",\"name\":\"" + escape(e.name) + '"';
    if (!e.cat.empty()) out += ",\"cat\":\"" + escape(e.cat) + '"';
    if (e.phase != 'M') out += ",\"ts\":" + format_number(e.ts_us);
    if (e.phase == 'X') out += ",\"dur\":" + format_number(e.dur_us);
    if (e.phase == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [k, v] : e.args) {
        if (!first_arg) out += ',';
        first_arg = false;
        out += '"' + escape(k) + "\":";
        if (is_number_token(v)) out += v;
        else out += '"' + escape(v) + '"';
      }
      out += '}';
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void TraceWriter::write_file(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("TraceWriter: cannot open " + path);
  out << to_json();
  if (!out) throw std::runtime_error("TraceWriter: write failed on " + path);
}

// ---------------------------------------------------------------------------
// Global tracer slot

namespace {
std::atomic<TraceWriter*> g_tracer{nullptr};
}  // namespace

void set_global_tracer(TraceWriter* tracer) noexcept {
  g_tracer.store(tracer, std::memory_order_release);
}

TraceWriter* global_tracer() noexcept {
  return g_tracer.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// Strict validation

namespace {

/// Minimal strict JSON parser (objects, arrays, strings, numbers,
/// true/false/null) producing just enough structure to check the trace
/// schema. Throws std::invalid_argument with an offset on any deviation
/// from RFC 8259 syntax it understands.
struct JsonValue {
  enum class Type { kObject, kArray, kString, kNumber, kBool, kNull };
  Type type = Type::kNull;
  std::string string;
  double number = 0.0;
  bool boolean = false;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

struct JsonParser {
  const std::string& s;
  std::size_t i = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument(what + " at offset " + std::to_string(i));
  }
  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r'))
      ++i;
  }
  char peek() {
    skip_ws();
    if (i >= s.size()) fail("unexpected end of input");
    return s[i];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i;
  }

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (i != s.size()) fail("trailing characters after document");
    return v;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.string = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') return parse_keyword(c == 't');
    if (c == 'n') {
      match_keyword("null");
      return JsonValue{};
    }
    return parse_number();
  }

  void match_keyword(const char* kw) {
    for (const char* p = kw; *p; ++p) {
      if (i >= s.size() || s[i] != *p) fail(std::string("expected ") + kw);
      ++i;
    }
  }

  JsonValue parse_keyword(bool value) {
    match_keyword(value ? "true" : "false");
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    v.boolean = value;
    return v;
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
      fail("malformed number");
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    if (i < s.size() && s[i] == '.') {
      ++i;
      if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
        fail("malformed number");
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
        fail("malformed number");
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::strtod(s.substr(start, i - start).c_str(), nullptr);
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (i >= s.size()) fail("unterminated string");
      const char c = s[i++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (i >= s.size()) fail("truncated escape");
      const char e = s[i++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i + 4 > s.size()) fail("truncated \\u escape");
          for (std::size_t k = 0; k < 4; ++k)
            if (!std::isxdigit(static_cast<unsigned char>(s[i + k])))
              fail("malformed \\u escape");
          out += static_cast<char>(
              std::strtoul(s.substr(i, 4).c_str(), nullptr, 16));
          i += 4;
          break;
        }
        default: fail("unsupported escape");
      }
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++i;
      return v;
    }
    for (;;) {
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      const char c = peek();
      if (c == ',') {
        ++i;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++i;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      const char c = peek();
      if (c == ',') {
        ++i;
        continue;
      }
      expect(']');
      return v;
    }
  }
};

std::optional<std::string> check_event(const JsonValue& e, std::size_t index,
                                       TraceStats& stats,
                                       std::set<int>& pids) {
  const auto where = [index](const std::string& what) {
    return "event " + std::to_string(index) + ": " + what;
  };
  if (e.type != JsonValue::Type::kObject) return where("not an object");

  const JsonValue* ph = e.find("ph");
  if (!ph || ph->type != JsonValue::Type::kString || ph->string.size() != 1)
    return where("missing or malformed \"ph\"");
  const char phase = ph->string[0];
  static const std::string kKnownPhases = "XBEiICMbens";
  if (kKnownPhases.find(phase) == std::string::npos)
    return where(std::string("unknown phase '") + phase + "'");

  const JsonValue* name = e.find("name");
  if (!name || name->type != JsonValue::Type::kString || name->string.empty())
    return where("missing or empty \"name\"");

  for (const char* key : {"pid", "tid"}) {
    const JsonValue* v = e.find(key);
    if (!v || v->type != JsonValue::Type::kNumber)
      return where(std::string("missing numeric \"") + key + "\"");
  }
  pids.insert(static_cast<int>(e.find("pid")->number));

  if (phase != 'M') {
    const JsonValue* ts = e.find("ts");
    if (!ts || ts->type != JsonValue::Type::kNumber)
      return where("missing numeric \"ts\"");
    if (!(ts->number >= 0.0)) return where("negative \"ts\"");
  }
  if (phase == 'X') {
    const JsonValue* dur = e.find("dur");
    if (!dur || dur->type != JsonValue::Type::kNumber)
      return where("complete span without numeric \"dur\"");
    if (!(dur->number >= 0.0)) return where("negative \"dur\"");
    ++stats.spans;
  }
  if (phase == 'i') ++stats.instants;
  if (phase == 'C' || phase == 'M') {
    const JsonValue* args = e.find("args");
    if (!args || args->type != JsonValue::Type::kObject ||
        args->object.empty())
      return where("counter/metadata event without \"args\" object");
    if (phase == 'C') {
      for (const auto& [k, v] : args->object)
        if (v.type != JsonValue::Type::kNumber)
          return where("counter series \"" + k + "\" is not numeric");
      ++stats.counter_samples;
    } else {
      ++stats.metadata;
    }
  }
  ++stats.events;
  return std::nullopt;
}

}  // namespace

std::optional<std::string> validate_chrome_trace(const std::string& json,
                                                 TraceStats* stats) {
  JsonValue doc;
  try {
    JsonParser parser{json};
    doc = parser.parse_document();
  } catch (const std::exception& e) {
    return std::string("malformed JSON: ") + e.what();
  }
  if (doc.type != JsonValue::Type::kObject)
    return "top level is not an object";
  const JsonValue* events = doc.find("traceEvents");
  if (!events || events->type != JsonValue::Type::kArray)
    return "missing \"traceEvents\" array";

  TraceStats local;
  std::set<int> pids;
  for (std::size_t i = 0; i < events->array.size(); ++i)
    if (auto problem = check_event(events->array[i], i, local, pids))
      return problem;
  local.pids.assign(pids.begin(), pids.end());
  if (stats) *stats = local;
  return std::nullopt;
}

}  // namespace moldsched::obs
