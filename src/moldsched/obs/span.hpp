// Request-scoped spans: the unit of observability for the service layer.
//
// One RequestSpan describes one request's full server-side life —
// enqueue to reply-written — decomposed into the five phases the server
// measures (parse / queue / schedule / serialize / write), tagged with
// the ids that tie it back to the wire protocol: the session id minted
// by session.open, the client's seq, and the optional client-supplied
// trace_id that rides every request. The svc server produces one span
// per request when telemetry is armed and fans it out to whichever
// SpanObserver is attached; the flight recorder and the svc.phase.*
// histograms consume the same struct, so every sink agrees on what a
// request cost.
//
// TraceSpanObserver renders spans into the existing Chrome-trace writer:
// one process for the service, one lane (tid) per session, the request
// as a complete span with the phases as nested child spans — open a
// produced trace in Perfetto and a session reads as a staircase of
// open/release/close requests with their phase breakdown inside.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "moldsched/obs/trace_writer.hpp"

namespace moldsched::obs {

struct RequestSpan {
  std::uint64_t request_id = 0;  ///< server-wide monotone request number
  std::int64_t seq = 0;          ///< client seq echoed in the reply
  std::string session;           ///< empty for session.open / server ops
  std::string op;                ///< "session.open", "task.release", ...
  std::string trace_id;          ///< client-supplied id; empty when absent
  std::string outcome;           ///< "ok" or the reply's error code
  double start_us = 0.0;         ///< enqueue time, us since server start
  double total_us = 0.0;         ///< enqueue -> reply written
  // Phase decomposition; disjoint sub-intervals of [start, start+total],
  // so their sum never exceeds total_us.
  double queue_us = 0.0;      ///< enqueue -> picked up by a worker
  double parse_us = 0.0;      ///< payload JSON -> Request
  double schedule_us = 0.0;   ///< session state machine + scheduler run
  double serialize_us = 0.0;  ///< reply struct -> JSON payload
  double write_us = 0.0;      ///< frame write to the socket
};

/// Sink for completed request spans. on_request fires once per request
/// on the worker thread that wrote the reply; implementations must be
/// thread-safe and cheap. The default implementation drops the span.
class SpanObserver {
 public:
  virtual ~SpanObserver() = default;
  virtual void on_request(const RequestSpan& span) { (void)span; }
};

/// Renders request spans into a TraceWriter: one process named
/// `process_name`, one lane per distinct session id (requests without a
/// session — opens, rejected parses — share a "(no session)" lane). The
/// request becomes a complete span carrying seq/trace_id/outcome/phase
/// args; each non-zero phase additionally becomes a nested child span so
/// the decomposition is visible without expanding args. Thread-safe.
class TraceSpanObserver final : public SpanObserver {
 public:
  explicit TraceSpanObserver(TraceWriter& writer,
                             const std::string& process_name = "svc requests");

  void on_request(const RequestSpan& span) override;

 private:
  [[nodiscard]] int lane_for(const std::string& session);

  TraceWriter& writer_;
  int pid_;
  std::mutex mutex_;
  std::map<std::string, int> lanes_;  // session id -> tid, guarded by mutex_
  int next_tid_ = 1;                  // guarded by mutex_
};

}  // namespace moldsched::obs
