// Prometheus text exposition of a MetricRegistry snapshot.
//
// Rendering follows the text format scrapers expect (version 0.0.4):
// one # TYPE line per metric, counters suffixed _total, histograms
// expanded into cumulative _bucket{le="..."} series with a closing
// le="+Inf" bucket plus _sum and _count, gauges as plain samples.
// Metric names arrive dot-separated (svc.request.latency_ms) and are
// sanitized to the [a-zA-Z_:][a-zA-Z0-9_:]* grammar by mapping every
// other character to '_'.
//
// This is the payload behind the admin listener's GET /metrics; it also
// lets CI assert on a live server's state without waiting for the
// shutdown JSON dump.
#pragma once

#include <string>
#include <vector>

#include "moldsched/obs/metrics.hpp"

namespace moldsched::obs {

/// Sanitizes one metric name to the Prometheus grammar ('.' and every
/// other illegal character become '_'; a leading digit gains a '_'
/// prefix). Exposed so tests and scrape assertions agree with the
/// renderer.
[[nodiscard]] std::string prometheus_name(const std::string& name);

/// Renders captured samples in name order (the order snapshot() yields).
[[nodiscard]] std::string to_prometheus_text(
    const std::vector<MetricSample>& samples);

/// snapshot() + render.
[[nodiscard]] std::string to_prometheus_text(const MetricRegistry& registry);

}  // namespace moldsched::obs
