// Umbrella header for the observability subsystem: the metrics registry
// (counters/gauges/histograms with per-thread sharding), the Chrome
// trace-event writer + validator, and the Observer instrumentation
// hooks wired into the simulator, the online scheduler and the
// experiment engine.
#pragma once

#include "moldsched/obs/metrics.hpp"
#include "moldsched/obs/observer.hpp"
#include "moldsched/obs/trace_writer.hpp"
