// One-call measurement of the Section 4.4 lower-bound instances: build
// the adversarial instance for a model at a given size, run Algorithm 1
// on it (at the model's optimal mu unless overridden), and report the
// simulated competitive ratio against the proof's alternative schedule.
#pragma once

#include <vector>

#include "moldsched/graph/adversary.hpp"
#include "moldsched/model/speedup_model.hpp"

namespace moldsched::analysis {

struct AdversaryMeasurement {
  model::ModelKind kind = model::ModelKind::kRoofline;
  int size = 0;          ///< P (roofline/communication) or K (Amdahl/general)
  int P = 0;
  int num_tasks = 0;
  double mu = 0.0;
  double simulated_makespan = 0.0;
  double t_opt_upper = 0.0;
  double ratio = 0.0;        ///< simulated_makespan / t_opt_upper
  double ratio_limit = 0.0;  ///< the theorem's asymptotic limit
  bool allocations_match_proof = false;
};

/// Builds and simulates the instance. `size` is P for roofline and
/// communication (Theorems 5/6), K for Amdahl and general (Theorems 7/8).
/// mu <= 0 selects the model's optimal mu. Throws for kArbitrary (use the
/// chains machinery) or an out-of-range size.
[[nodiscard]] AdversaryMeasurement measure_adversary(model::ModelKind kind,
                                                     int size,
                                                     double mu = -1.0);

/// The size ladder the benches use for each model (ratios visibly climb
/// along it while staying laptop-fast).
[[nodiscard]] std::vector<int> default_adversary_sizes(model::ModelKind kind);

}  // namespace moldsched::analysis
