#include "moldsched/analysis/report.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace moldsched::analysis {

util::Table table1_table(const std::vector<OptimalRatio>& rows) {
  util::Table t({"Model", "Upper bound", "Lower bound", "mu*", "x*"});
  for (const auto& r : rows) {
    t.new_row()
        .cell(model::to_string(r.kind))
        .cell(r.upper_bound, 3)
        .cell(r.lower_bound, 3)
        .cell(r.mu_star, 4)
        .cell(r.x_star, 4);
  }
  return t;
}

util::Table suite_table(const std::vector<AggregateRow>& rows) {
  util::Table t({"Scheduler", "ratio mean", "ratio p95", "ratio max",
                 "utilization"});
  for (const auto& r : rows) {
    t.new_row()
        .cell(r.scheduler)
        .cell(r.ratio.mean, 3)
        .cell(r.ratio.p95, 3)
        .cell(r.ratio.max, 3)
        .cell(r.mean_utilization, 3);
  }
  return t;
}

void write_file(const std::string& path, const std::string& content) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec)
      throw std::runtime_error("write_file: cannot create directories for " +
                               path + ": " + ec.message());
  }
  std::ofstream out(p);
  if (!out)
    throw std::runtime_error("write_file: cannot open " + path);
  out << content;
  if (!out)
    throw std::runtime_error("write_file: write failed for " + path);
}

}  // namespace moldsched::analysis
