#include "moldsched/analysis/report.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace moldsched::analysis {

util::Table table1_table(const std::vector<OptimalRatio>& rows) {
  util::Table t({"Model", "Upper bound", "Lower bound", "mu*", "x*"});
  for (const auto& r : rows) {
    t.new_row()
        .cell(model::to_string(r.kind))
        .cell(r.upper_bound, 3)
        .cell(r.lower_bound, 3)
        .cell(r.mu_star, 4)
        .cell(r.x_star, 4);
  }
  return t;
}

util::Table suite_table(const std::vector<AggregateRow>& rows) {
  bool any_true_ratio = false;
  for (const auto& r : rows) any_true_ratio |= r.has_true_ratio;

  std::vector<std::string> headers = {"Scheduler", "ratio mean", "ratio p95",
                                      "ratio max", "utilization"};
  if (any_true_ratio) {
    // T/T_opt columns appear only when some case was certified by the
    // exact oracle; the LB-ratio columns above stay as the apples-to-
    // apples baseline across tiers.
    headers.insert(headers.end(), {"T/T_opt mean", "T/T_opt max"});
  }
  util::Table t(std::move(headers));
  for (const auto& r : rows) {
    auto& row = t.new_row()
                    .cell(r.scheduler)
                    .cell(r.ratio.mean, 3)
                    .cell(r.ratio.p95, 3)
                    .cell(r.ratio.max, 3)
                    .cell(r.mean_utilization, 3);
    if (!any_true_ratio) continue;
    if (r.has_true_ratio)
      row.cell(r.true_ratio.mean, 3).cell(r.true_ratio.max, 3);
    else
      row.cell("-").cell("-");
  }
  return t;
}

void write_file(const std::string& path, const std::string& content) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec)
      throw std::runtime_error("write_file: cannot create directories for " +
                               path + ": " + ec.message());
  }
  std::ofstream out(p);
  if (!out)
    throw std::runtime_error("write_file: cannot open " + path);
  out << content;
  if (!out)
    throw std::runtime_error("write_file: write failed for " + path);
}

}  // namespace moldsched::analysis
