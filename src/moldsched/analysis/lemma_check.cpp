#include "moldsched/analysis/lemma_check.hpp"

#include <algorithm>

#include "moldsched/analysis/bounds.hpp"

namespace moldsched::analysis {

FrameworkCheck check_framework(const graph::TaskGraph& g, int P,
                               const core::LpaAllocator& alloc,
                               const core::ScheduleResult& run) {
  FrameworkCheck check;
  const double mu = alloc.mu();
  check.intervals = core::classify_intervals(run.trace, P, mu);
  check.makespan = run.makespan;

  check.alpha = 1.0;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    check.alpha = std::max(check.alpha, alloc.decide(g.model_of(v), P).alpha);
  check.beta = std::max(1.0, alloc.delta());

  const auto bounds = lower_bounds(g, P);
  check.min_total_area = bounds.min_total_area;
  check.min_critical_path = bounds.min_critical_path;
  check.lower_bound = bounds.lower_bound;

  check.lemma3_lhs = core::lemma3_lhs(check.intervals, mu);
  check.lemma3_rhs =
      check.alpha * bounds.min_total_area / static_cast<double>(P);
  check.lemma4_lhs = core::lemma4_lhs(check.intervals, mu, check.beta);
  check.lemma4_rhs = bounds.min_critical_path;
  check.lemma5_ratio =
      (mu * check.alpha + 1.0 - 2.0 * mu) / (mu * (1.0 - mu));
  return check;
}

}  // namespace moldsched::analysis
