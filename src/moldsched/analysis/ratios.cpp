#include "moldsched/analysis/ratios.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "moldsched/analysis/optimize.hpp"

namespace moldsched::analysis {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Lemma 7's admissible x range for the communication model.
const double kCommXMin = (std::sqrt(13.0) - 1.0) / 6.0;  // ~0.4343
constexpr double kCommXMax = 0.5;

}  // namespace

double delta_of_mu(double mu) {
  if (!(mu > 0.0) || mu > kMuMax + 1e-12)
    throw std::invalid_argument(
        "delta_of_mu: mu must lie in (0, (3-sqrt(5))/2]");
  return (1.0 - 2.0 * mu) / (mu * (1.0 - mu));
}

double lemma5_ratio(double alpha, double mu) {
  if (!(alpha >= 1.0)) throw std::invalid_argument("lemma5_ratio: alpha < 1");
  return (mu * alpha + 1.0 - 2.0 * mu) / (mu * (1.0 - mu));
}

XChoice best_x(model::ModelKind kind, double mu) {
  return best_x_at_threshold(kind, delta_of_mu(mu));
}

XChoice best_x_at_threshold(model::ModelKind kind, double B) {
  // delta_of_mu(kMuMax) is analytically 1 but can round to 1 - eps, so
  // tolerate (and clamp away) tiny underflow instead of rejecting it.
  if (!(B >= 1.0 - 1e-9))
    throw std::invalid_argument("best_x_at_threshold: threshold must be >= 1");
  const double delta = std::max(B, 1.0);
  XChoice choice;
  switch (kind) {
    case model::ModelKind::kRoofline: {
      // Lemma 6: alpha = beta = 1, feasible iff delta >= 1, which holds
      // for every mu in (0, kMuMax].
      choice.x = 0.0;
      choice.alpha = 1.0;
      choice.beta = 1.0;
      return choice;
    }
    case model::ModelKind::kCommunication: {
      // Lemma 7: beta_x = (3/5)(1/x + x) <= delta, x in [kCommXMin, 1/2].
      // The smallest feasible x (Theorem 2) is the small root of
      // (3/5)x^2 - delta x + 3/5 = 0; the construction additionally
      // requires x <= 1/2 (i.e. delta >= beta(1/2) = 3/2) and clamps at
      // kCommXMin, below which alpha_x would undercut Case 1's 4/3.
      const double disc = delta * delta - 36.0 / 25.0;
      if (!(delta >= 1.5) || disc < 0.0) {
        choice.feasible = false;
        choice.alpha = kInf;
        choice.beta = kInf;
        return choice;
      }
      double x = (5.0 / 6.0) * (delta - std::sqrt(disc));
      x = std::min(std::max(x, kCommXMin), kCommXMax);
      choice.x = x;
      choice.alpha = 1.0 + x * x + x / 3.0;
      choice.beta = (3.0 / 5.0) * (1.0 / x + x);
      return choice;
    }
    case model::ModelKind::kAmdahl: {
      // Lemma 8: beta_x = 1 + 1/x <= delta needs delta > 1; then
      // x* = 1/(delta - 1) = mu(1-mu)/(mu^2 - 3mu + 1) (Theorem 3).
      if (!(delta > 1.0)) {
        choice.feasible = false;
        choice.alpha = kInf;
        choice.beta = kInf;
        return choice;
      }
      const double x = 1.0 / (delta - 1.0);
      choice.x = x;
      choice.alpha = 1.0 + x;
      choice.beta = 1.0 + 1.0 / x;
      return choice;
    }
    case model::ModelKind::kGeneral: {
      // Lemma 9: beta_x = x + 1 + 1/x <= delta with x > 1, i.e.
      // x^2 - (delta - 1)x + 1 <= 0; Theorem 4 takes the largest root
      // (alpha_x = 1 + 1/x + 1/x^2 decreases with x). Real roots need
      // delta >= 3.
      const double q = delta - 1.0;
      const double disc = q * q - 4.0;
      if (disc < 0.0) {
        choice.feasible = false;
        choice.alpha = kInf;
        choice.beta = kInf;
        return choice;
      }
      const double x = 0.5 * (q + std::sqrt(disc));
      choice.x = x;
      choice.alpha = 1.0 + 1.0 / x + 1.0 / (x * x);
      choice.beta = x + 1.0 + 1.0 / x;
      return choice;
    }
    case model::ModelKind::kArbitrary:
      break;
  }
  throw std::invalid_argument(
      "best_x_at_threshold: no (alpha, beta) construction for the arbitrary "
      "model (Section 5 proves no constant ratio exists)");
}

double upper_ratio(model::ModelKind kind, double mu) {
  const XChoice choice = best_x(kind, mu);
  if (!choice.feasible) return kInf;
  return lemma5_ratio(choice.alpha, mu);
}

double lower_bound_limit(model::ModelKind kind, double mu) {
  const double delta = delta_of_mu(mu);
  switch (kind) {
    case model::ModelKind::kRoofline:
      // Theorem 5: the single-task instance forces T/T_opt -> 1/mu.
      return 1.0 / mu;
    case model::ModelKind::kCommunication: {
      // Theorem 6 limit: 1/(1-mu) + 2/((1-mu) w_B) + delta with
      // w_B = 6 delta / (3 - delta) (the P -> inf value).
      if (!(delta < 3.0)) return kInf;
      const double w_b = 6.0 * delta / (3.0 - delta);
      return 1.0 / (1.0 - mu) + 2.0 / ((1.0 - mu) * w_b) + delta;
    }
    case model::ModelKind::kAmdahl:
    case model::ModelKind::kGeneral:
      // Theorems 7 and 8: delta / ((delta - 1)(1 - mu)) + delta.
      if (!(delta > 1.0)) return kInf;
      return delta / ((delta - 1.0) * (1.0 - mu)) + delta;
    case model::ModelKind::kArbitrary:
      break;
  }
  throw std::invalid_argument(
      "lower_bound_limit: arbitrary model has no constant bound "
      "(Theorem 9 gives Omega(ln D))");
}

OptimalRatio optimal_ratio(model::ModelKind kind) {
  OptimalRatio out;
  out.kind = kind;
  const auto objective = [kind](double mu) { return upper_ratio(kind, mu); };
  // Stay strictly inside (0, kMuMax]: the ratio blows up at mu -> 0.
  const auto best = grid_then_golden_minimize(objective, 1e-4, kMuMax);
  out.mu_star = best.x;
  out.upper_bound = best.value;
  out.x_star = best_x(kind, best.x).x;
  out.lower_bound = lower_bound_limit(kind, best.x);
  return out;
}

double optimal_mu(model::ModelKind kind) {
  static std::mutex mutex;
  static std::array<double, 4> cache{-1.0, -1.0, -1.0, -1.0};
  std::size_t idx = 0;
  switch (kind) {
    case model::ModelKind::kRoofline: idx = 0; break;
    case model::ModelKind::kCommunication: idx = 1; break;
    case model::ModelKind::kAmdahl: idx = 2; break;
    case model::ModelKind::kGeneral: idx = 3; break;
    case model::ModelKind::kArbitrary:
      throw std::invalid_argument("optimal_mu: arbitrary model");
  }
  std::lock_guard<std::mutex> lock(mutex);
  if (cache[idx] < 0.0) cache[idx] = optimal_ratio(kind).mu_star;
  return cache[idx];
}

std::vector<OptimalRatio> compute_table1() {
  return {optimal_ratio(model::ModelKind::kRoofline),
          optimal_ratio(model::ModelKind::kCommunication),
          optimal_ratio(model::ModelKind::kAmdahl),
          optimal_ratio(model::ModelKind::kGeneral)};
}

}  // namespace moldsched::analysis
