#include "moldsched/analysis/bounds.hpp"

#include <algorithm>
#include <stdexcept>

#include "moldsched/graph/algorithms.hpp"

namespace moldsched::analysis {

std::vector<double> min_times(const graph::TaskGraph& g, int P) {
  if (P < 1) throw std::invalid_argument("min_times: P must be >= 1");
  std::vector<double> out(static_cast<std::size_t>(g.num_tasks()));
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    out[static_cast<std::size_t>(v)] = g.model_of(v).min_time(P);
  return out;
}

double min_total_area(const graph::TaskGraph& g, int P) {
  if (P < 1) throw std::invalid_argument("min_total_area: P must be >= 1");
  double total = 0.0;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    total += g.model_of(v).min_area(P);
  return total;
}

double min_critical_path(const graph::TaskGraph& g, int P) {
  return graph::longest_path_length(g, min_times(g, P));
}

double total_serial_work(const graph::TaskGraph& g) {
  double total = 0.0;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    total += g.model_of(v).time(1);
  return total;
}

double optimal_makespan_lower_bound(const graph::TaskGraph& g, int P) {
  return lower_bounds(g, P).lower_bound;
}

LowerBounds lower_bounds(const graph::TaskGraph& g, int P) {
  LowerBounds b;
  b.min_total_area = min_total_area(g, P);
  b.min_critical_path = min_critical_path(g, P);
  b.lower_bound =
      std::max(b.min_total_area / static_cast<double>(P), b.min_critical_path);
  return b;
}

}  // namespace moldsched::analysis
