#include "moldsched/analysis/adversary_study.hpp"

#include <stdexcept>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/core/allocator.hpp"
#include "moldsched/core/online_scheduler.hpp"

namespace moldsched::analysis {

AdversaryMeasurement measure_adversary(model::ModelKind kind, int size,
                                       double mu) {
  if (mu <= 0.0) mu = optimal_mu(kind);

  graph::AdversaryInstance inst;
  switch (kind) {
    case model::ModelKind::kRoofline:
      inst = graph::roofline_adversary(size, mu);
      break;
    case model::ModelKind::kCommunication:
      inst = graph::communication_adversary(size, mu);
      break;
    case model::ModelKind::kAmdahl:
      inst = graph::amdahl_adversary(size, mu);
      break;
    case model::ModelKind::kGeneral:
      inst = graph::general_adversary(size, mu);
      break;
    case model::ModelKind::kArbitrary:
      throw std::invalid_argument(
          "measure_adversary: the arbitrary model's lower bound is the "
          "chains game (sched::EqualAllocationChainScheduler)");
  }

  const core::LpaAllocator alloc(inst.mu);
  const auto result = core::schedule_online(inst.graph, inst.P, alloc);

  AdversaryMeasurement m;
  m.kind = kind;
  m.size = size;
  m.P = inst.P;
  m.num_tasks = inst.graph.num_tasks();
  m.mu = inst.mu;
  m.simulated_makespan = result.makespan;
  m.t_opt_upper = inst.t_opt_upper;
  m.ratio = result.makespan / inst.t_opt_upper;
  m.ratio_limit = inst.ratio_limit;

  m.allocations_match_proof = true;
  for (graph::TaskId v = 0; v < inst.graph.num_tasks(); ++v) {
    const char group = inst.graph.name(v).front();
    const int expected = group == 'A'   ? inst.expected_alloc_a
                         : group == 'B' ? inst.expected_alloc_b
                                        : inst.expected_alloc_c;
    if (result.allocation[static_cast<std::size_t>(v)] != expected) {
      m.allocations_match_proof = false;
      break;
    }
  }
  return m;
}

std::vector<int> default_adversary_sizes(model::ModelKind kind) {
  switch (kind) {
    case model::ModelKind::kRoofline:
      return {64, 1024, 8192};
    case model::ModelKind::kCommunication:
      return {64, 256, 512};
    case model::ModelKind::kAmdahl:
    case model::ModelKind::kGeneral:
      return {12, 24, 48};
    case model::ModelKind::kArbitrary:
      break;
  }
  throw std::invalid_argument("default_adversary_sizes: arbitrary model");
}

}  // namespace moldsched::analysis
