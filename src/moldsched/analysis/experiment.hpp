// Experiment harness: run scheduler suites over graph collections and
// aggregate competitive-ratio statistics against the Lemma 2 lower bound.
#pragma once

#include <string>
#include <vector>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/model/speedup_model.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/util/rng.hpp"
#include "moldsched/util/stats.hpp"

namespace moldsched::analysis {

/// One scheduler on one graph.
struct Measurement {
  std::string scheduler;
  double makespan = 0.0;
  double lower_bound = 0.0;      ///< Lemma 2: max(A_min/P, C_min)
  double ratio_vs_lb = 0.0;      ///< makespan / lower_bound (>= observed
                                 ///< competitive ratio, since LB <= T_opt)
  double avg_utilization = 0.0;  ///< time-averaged busy fraction
};

/// Runs the spec's scheduler on g and measures it. Validates the produced
/// schedule (throws std::logic_error on an infeasible schedule — that
/// would be a library bug, not an experiment outcome).
[[nodiscard]] Measurement measure_scheduler(const graph::TaskGraph& g, int P,
                                            const sched::SchedulerSpec& spec);

struct GraphCase {
  std::string name;
  graph::TaskGraph graph;
};

/// A diverse set of random DAGs with tasks of the given model family:
/// layered, Erdos-Renyi, fork-join, trees, series-parallel, chains,
/// independent. `scale` >= 1 multiplies the case sizes.
[[nodiscard]] std::vector<GraphCase> random_graph_catalog(
    model::ModelKind kind, int P, util::Rng& rng, int scale = 1);

/// The realistic-workflow set (Cholesky, LU, FFT, Montage, wavefront)
/// with kernels of the given model family.
[[nodiscard]] std::vector<GraphCase> workflow_catalog(model::ModelKind kind,
                                                      int scale = 1);

/// Suite comparison: per scheduler, summary of ratio_vs_lb across cases.
struct AggregateRow {
  std::string scheduler;
  util::Summary ratio;
  double mean_utilization = 0.0;
};
[[nodiscard]] std::vector<AggregateRow> compare_suite(
    const std::vector<GraphCase>& cases, int P,
    const std::vector<sched::SchedulerSpec>& suite);

}  // namespace moldsched::analysis
