// Experiment harness: run scheduler suites over graph collections and
// aggregate competitive-ratio statistics against the Lemma 2 lower bound.
#pragma once

#include <string>
#include <vector>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/model/speedup_model.hpp"
#include "moldsched/sched/registry.hpp"
#include "moldsched/util/rng.hpp"
#include "moldsched/util/stats.hpp"

namespace moldsched::analysis {

/// One scheduler on one graph.
struct Measurement {
  std::string scheduler;
  double makespan = 0.0;
  double lower_bound = 0.0;      ///< Lemma 2: max(A_min/P, C_min)
  double ratio_vs_lb = 0.0;      ///< makespan / lower_bound (>= observed
                                 ///< competitive ratio, since LB <= T_opt)
  double avg_utilization = 0.0;  ///< time-averaged busy fraction
  /// Exact optimum and the *true* competitive ratio makespan / T_opt,
  /// filled only when an oracle value was supplied (0 = unknown). The
  /// true ratio always sits below ratio_vs_lb: the LB denominator
  /// overstates every scheduler's ratio by exactly the LB's slack.
  double t_opt = 0.0;
  double ratio_vs_opt = 0.0;
};

/// Runs the spec's scheduler on g and measures it. Validates the produced
/// schedule (throws std::logic_error on an infeasible schedule — that
/// would be a library bug, not an experiment outcome).
[[nodiscard]] Measurement measure_scheduler(const graph::TaskGraph& g, int P,
                                            const sched::SchedulerSpec& spec);

/// Same, additionally scoring against a known exact optimum `t_opt` (from
/// opt::branch_and_bound_topt). Pass 0 for unknown — the T/T_opt fields
/// then stay 0 as in the plain overload.
[[nodiscard]] Measurement measure_scheduler(const graph::TaskGraph& g, int P,
                                            const sched::SchedulerSpec& spec,
                                            double t_opt);

struct GraphCase {
  std::string name;
  graph::TaskGraph graph;
};

/// A diverse set of random DAGs with tasks of the given model family:
/// layered, Erdos-Renyi, fork-join, trees, series-parallel, chains,
/// independent. `scale` >= 1 multiplies the case sizes.
[[nodiscard]] std::vector<GraphCase> random_graph_catalog(
    model::ModelKind kind, int P, util::Rng& rng, int scale = 1);

/// The realistic-workflow set (Cholesky, LU, FFT, Montage, wavefront)
/// with kernels of the given model family.
[[nodiscard]] std::vector<GraphCase> workflow_catalog(model::ModelKind kind,
                                                      int scale = 1);

/// Suite comparison: per scheduler, summary of ratio_vs_lb across cases.
struct AggregateRow {
  std::string scheduler;
  util::Summary ratio;
  double mean_utilization = 0.0;
  /// Summary of makespan / T_opt over the cases whose exact optimum is
  /// known; empty (has_true_ratio == false) outside the exact tier.
  util::Summary true_ratio;
  bool has_true_ratio = false;
};
[[nodiscard]] std::vector<AggregateRow> compare_suite(
    const std::vector<GraphCase>& cases, int P,
    const std::vector<sched::SchedulerSpec>& suite);

/// compare_suite with true-ratio columns: `t_opts[i]` is case i's exact
/// optimum, or 0 when the oracle could not certify it (that case is then
/// excluded from the true-ratio summary but still counts toward the LB
/// ratio). Throws if the sizes differ.
[[nodiscard]] std::vector<AggregateRow> compare_suite_with_oracle(
    const std::vector<GraphCase>& cases, int P,
    const std::vector<sched::SchedulerSpec>& suite,
    const std::vector<double>& t_opts);

}  // namespace moldsched::analysis
