// Competitive-ratio machinery: everything needed to regenerate Table 1.
//
// For each speedup model, Section 4.3 exhibits a per-task allocation
// achieving (alpha_x, beta_x); the competitive ratio of Algorithm 1 is
// then (mu * alpha + 1 - 2 mu) / (mu (1 - mu)) subject to
// beta <= delta(mu) (Lemma 5). Minimizing over the free parameters x and
// mu yields the paper's upper bounds; Theorems 5-8 give closed-form
// asymptotic lower bounds at the same mu.
#pragma once

#include <string>
#include <vector>

#include "moldsched/model/speedup_model.hpp"

namespace moldsched::analysis {

inline constexpr double kMuMax = 0.38196601125010515;  // (3 - sqrt(5)) / 2

/// delta(mu) = (1 - 2 mu) / (mu (1 - mu)). Throws outside (0, kMuMax].
[[nodiscard]] double delta_of_mu(double mu);

/// The generic Lemma 5 ratio for given alpha and mu.
[[nodiscard]] double lemma5_ratio(double alpha, double mu);

/// The x achieving beta_x = delta(mu) for the given model (the tightest
/// admissible allocation parameter), together with its alpha. Returns
/// +inf alpha when no admissible x exists at this mu. Roofline has no x;
/// its alpha is always 1.
struct XChoice {
  double x = 0.0;
  double alpha = 1.0;
  double beta = 1.0;
  bool feasible = true;
};
[[nodiscard]] XChoice best_x(model::ModelKind kind, double mu);

/// Same construction, parameterized by the raw time-ratio threshold
/// B >= 1 instead of mu (best_x(kind, mu) == best_x_at_threshold(kind,
/// delta_of_mu(mu))). This is the form the decoupled two-parameter
/// analysis in analysis/improved.hpp needs, where the Step 1 threshold
/// no longer equals delta of the Step 2 cap. Throws on B < 1.
[[nodiscard]] XChoice best_x_at_threshold(model::ModelKind kind, double B);

/// Upper-bound ratio of Algorithm 1 at parameter mu under `kind`
/// (Theorems 1-4 before the final minimization); +inf if mu is
/// infeasible for the model.
[[nodiscard]] double upper_ratio(model::ModelKind kind, double mu);

/// The theorem's closed-form asymptotic lower bound on Algorithm 1's
/// competitive ratio when run with parameter mu (Theorems 5-8).
[[nodiscard]] double lower_bound_limit(model::ModelKind kind, double mu);

/// Result of minimizing upper_ratio over mu.
struct OptimalRatio {
  model::ModelKind kind = model::ModelKind::kRoofline;
  double mu_star = 0.0;
  double x_star = 0.0;
  double upper_bound = 0.0;   ///< Table 1, "Upper bound" row
  double lower_bound = 0.0;   ///< Table 1, "Lower bound" row (at mu_star)
};

/// Numerically optimal (mu*, x*) and the Table 1 entries for one model.
[[nodiscard]] OptimalRatio optimal_ratio(model::ModelKind kind);

/// The paper's recommended mu for the model: argmin of the upper bound.
/// Cached after the first computation. Throws for kArbitrary.
[[nodiscard]] double optimal_mu(model::ModelKind kind);

/// All four models, in the paper's column order
/// (roofline, communication, Amdahl, general).
[[nodiscard]] std::vector<OptimalRatio> compute_table1();

}  // namespace moldsched::analysis
