#include "moldsched/analysis/improved.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "moldsched/analysis/optimize.hpp"

namespace moldsched::analysis {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::size_t kind_index(model::ModelKind kind) {
  switch (kind) {
    case model::ModelKind::kRoofline: return 0;
    case model::ModelKind::kCommunication: return 1;
    case model::ModelKind::kAmdahl: return 2;
    case model::ModelKind::kGeneral: return 3;
    case model::ModelKind::kArbitrary: break;
  }
  throw std::invalid_argument(
      "analysis::improved: arbitrary model has no constant ratio");
}

}  // namespace

double threshold_of_nu(double nu) {
  return std::max(1.0, delta_of_mu(nu));
}

double improved_upper_ratio(model::ModelKind kind, double mu, double nu) {
  const double delta_mu = delta_of_mu(mu);
  const double threshold = threshold_of_nu(nu);
  const XChoice choice = best_x_at_threshold(kind, threshold);
  if (!choice.feasible) return kInf;
  // Interval argument at cap mu with Step 1 threshold delta_tilde(nu):
  //   T1 / max(delta(mu), threshold) + mu T2 <= C_min   (path charging)
  //   mu T2 + (1 - mu) T3 <= alpha A_min / P            (area charging)
  // combine as in Lemma 5 to R = max(delta(mu), threshold)
  // + alpha / (1 - mu), valid because mu * max(...) <= 1 on (0, kMuMax].
  return std::max(delta_mu, threshold) + choice.alpha / (1.0 - mu);
}

ImprovedRatio improved_optimal_ratio(model::ModelKind kind) {
  static std::mutex mutex;
  static std::array<ImprovedRatio, 4> cache{};
  static std::array<bool, 4> cached{};
  const std::size_t idx = kind_index(kind);
  {
    const std::lock_guard<std::mutex> lock(mutex);
    if (cached[idx]) return cache[idx];
  }

  constexpr double kMuLo = 1e-4;
  // Inner minimization over nu at fixed mu. R is unimodal in nu on the
  // feasible range for every Eq. (1) family, so grid-then-golden finds
  // the global inner optimum; a coarser grid suffices since the outer
  // search revisits it hundreds of times.
  const auto inner = [kind](double mu) {
    const auto objective = [kind, mu](double nu) {
      return improved_upper_ratio(kind, mu, nu);
    };
    return grid_then_golden_minimize(objective, kMuLo, kMuMax, 192);
  };
  const auto outer_objective = [&inner](double mu) {
    return inner(mu).value;
  };
  const auto best_mu = grid_then_golden_minimize(outer_objective, kMuLo,
                                                 kMuMax, 192);
  const auto best_nu = inner(best_mu.x);

  ImprovedRatio out;
  out.kind = kind;
  out.mu_star = best_mu.x;
  out.nu_star = best_nu.x;
  out.threshold = threshold_of_nu(best_nu.x);
  const XChoice choice = best_x_at_threshold(kind, out.threshold);
  out.x_star = choice.x;
  out.alpha_star = choice.alpha;
  out.upper_bound = best_nu.value;
  out.coupled_bound = optimal_ratio(kind).upper_bound;

  const std::lock_guard<std::mutex> lock(mutex);
  cache[idx] = out;
  cached[idx] = true;
  return out;
}

std::vector<ImprovedRatio> compute_improved_table() {
  return {improved_optimal_ratio(model::ModelKind::kRoofline),
          improved_optimal_ratio(model::ModelKind::kCommunication),
          improved_optimal_ratio(model::ModelKind::kAmdahl),
          improved_optimal_ratio(model::ModelKind::kGeneral)};
}

MixedEnvelope improved_mixed_envelope(
    const std::vector<model::ModelKind>& kinds) {
  if (kinds.empty())
    throw std::invalid_argument("improved_mixed_envelope: no kinds given");
  MixedEnvelope env;
  env.mu_min = kMuMax;
  env.alpha_max = 1.0;
  bool bounded = true;
  for (const auto kind : kinds) {
    if (kind == model::ModelKind::kArbitrary) {
      bounded = false;
      continue;
    }
    const auto r = improved_optimal_ratio(kind);
    env.mu_min = std::min(env.mu_min, r.mu_star);
    env.alpha_max = std::max(env.alpha_max, r.alpha_star);
  }
  // The charging argument holds with the weakest cap and the largest
  // area ratio present; a single arbitrary-model task already defeats
  // any constant bound (Theorem 9).
  env.bound = bounded ? lemma5_ratio(env.alpha_max, env.mu_min) : kInf;
  return env;
}

MixedEnvelope improved_envelope_for_graph(const graph::TaskGraph& g) {
  if (g.num_tasks() == 0)
    throw std::invalid_argument("improved_envelope_for_graph: empty graph");
  std::vector<model::ModelKind> kinds;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    const auto kind = g.model_of(v).kind();
    if (std::find(kinds.begin(), kinds.end(), kind) == kinds.end())
      kinds.push_back(kind);
  }
  return improved_mixed_envelope(kinds);
}

}  // namespace moldsched::analysis
