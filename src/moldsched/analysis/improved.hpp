// Refined two-parameter allocation analysis behind sched::improved_lpa.
//
// Algorithm 2 couples its two knobs: the Step 1 time-ratio threshold is
// delta(mu) = (1-2mu)/(mu(1-mu)) for the same mu that caps Step 2 at
// ceil(mu P). The refinement studied here (following the improved
// analysis of Perotin & Sun, arXiv:2304.14127) decouples them: Step 1
// admits any allocation with t(p) <= delta_tilde(nu) * t_min while Step 2
// caps at ceil(mu P), with (mu, nu) free. Re-running the interval
// charging argument of Section 4.2 with the decoupled pair yields
//
//   R(mu, nu) = max(delta(mu), delta_tilde(nu))
//               + alpha(delta_tilde(nu)) / (1 - mu),
//
// where delta_tilde(nu) = max(1, delta(nu)) and alpha(B) is the model's
// area ratio at time-ratio threshold B (best_x_at_threshold). The
// constants pinned by tests/analysis/golden_bounds_test.cpp are the
// numerical optima of this program as computed by this module — they are
// re-derived from the generalized program above, not transcribed from
// the paper (whose exact theorem constants are not reproduced here).
//
// The second export is the piece the coupled analysis cannot provide: a
// certified makespan envelope for the *per-model-aware* allocator, which
// gives every task the optimal parameters of its own speedup-model kind
// instead of one global mu. For a graph mixing kinds K, re-running the
// interval argument at mu_min = min_k mu_k with alpha_max = max_k
// alpha_k shows
//
//   T <= lemma5_ratio(alpha_max, mu_min) * max(A_min/P, C_min),
//
// which on single-kind graphs collapses to that kind's own optimal
// constant — strictly tighter than running one global mu and paying the
// general-model bound on every instance.
#pragma once

#include <vector>

#include "moldsched/analysis/ratios.hpp"
#include "moldsched/graph/task_graph.hpp"
#include "moldsched/model/speedup_model.hpp"

namespace moldsched::analysis {

/// delta_tilde(nu) = max(1, delta(nu)): the effective Step 1 threshold
/// (a threshold below 1 is vacuous since beta >= 1 always). Throws
/// outside (0, kMuMax], like delta_of_mu.
[[nodiscard]] double threshold_of_nu(double nu);

/// The decoupled upper-bound ratio R(mu, nu) described above; +inf when
/// no admissible allocation exists at threshold delta_tilde(nu) for this
/// model. Throws for kArbitrary (no constant ratio exists) and for
/// mu or nu outside (0, kMuMax].
[[nodiscard]] double improved_upper_ratio(model::ModelKind kind, double mu,
                                          double nu);

/// Result of jointly minimizing R(mu, nu) for one model.
struct ImprovedRatio {
  model::ModelKind kind = model::ModelKind::kRoofline;
  double mu_star = 0.0;     ///< optimal Step 2 cap parameter
  double nu_star = 0.0;     ///< optimal Step 1 threshold parameter
  double threshold = 0.0;   ///< delta_tilde(nu_star)
  double x_star = 0.0;      ///< model allocation parameter at the threshold
  double alpha_star = 0.0;  ///< area ratio at the threshold
  double upper_bound = 0.0; ///< min over (mu, nu) of R
  double coupled_bound = 0.0;  ///< the coupled optimum (optimal_ratio), for
                               ///< the side-by-side report
};

/// Joint numerical optimum of the decoupled program. Cached per kind
/// after the first computation (the 2-D search is not free).
[[nodiscard]] ImprovedRatio improved_optimal_ratio(model::ModelKind kind);

/// All four analytic models in Table 1 column order.
[[nodiscard]] std::vector<ImprovedRatio> compute_improved_table();

/// Certified envelope of the per-model-aware allocator over a set of
/// model kinds: lemma5_ratio(max_k alpha_k, min_k mu_k) with each kind
/// at its own optimum. kArbitrary contributes +inf (Theorem 9: no
/// constant-competitive online algorithm exists for arbitrary speedups).
struct MixedEnvelope {
  double mu_min = 0.0;     ///< min over kinds of the per-kind optimal mu
  double alpha_max = 1.0;  ///< max over kinds of the per-kind alpha*
  double bound = 0.0;      ///< lemma5_ratio(alpha_max, mu_min); may be +inf
};
[[nodiscard]] MixedEnvelope improved_mixed_envelope(
    const std::vector<model::ModelKind>& kinds);

/// Envelope for exactly the kinds appearing in g. Throws on an empty
/// graph.
[[nodiscard]] MixedEnvelope improved_envelope_for_graph(
    const graph::TaskGraph& g);

}  // namespace moldsched::analysis
