// One-dimensional numerical minimization used to reproduce the paper's
// "minimizing this function numerically for mu in (0, (3-sqrt(5))/2]"
// steps (Theorems 2-4).
#pragma once

#include <functional>

namespace moldsched::analysis {

struct MinimizeResult {
  double x = 0.0;
  double value = 0.0;
  int iterations = 0;
};

/// Golden-section search for a minimum of f on [lo, hi]. Requires
/// lo < hi; converges to within `tol` on x for unimodal f (for
/// non-unimodal f it still returns a local minimum inside the bracket).
/// Throws std::invalid_argument on a bad bracket or tol <= 0.
[[nodiscard]] MinimizeResult golden_section_minimize(
    const std::function<double(double)>& f, double lo, double hi,
    double tol = 1e-12, int max_iterations = 400);

/// Coarse grid scan followed by golden-section refinement around the best
/// grid point: robust when f has infeasible (+inf) plateaus, as the
/// ratio functions do near the ends of the mu range.
[[nodiscard]] MinimizeResult grid_then_golden_minimize(
    const std::function<double(double)>& f, double lo, double hi,
    int grid_points = 512, double tol = 1e-12);

}  // namespace moldsched::analysis
