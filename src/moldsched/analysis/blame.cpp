#include "moldsched/analysis/blame.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace moldsched::analysis {

namespace {

constexpr double kEps = 1e-9;

}  // namespace

std::string to_string(BlameReason reason) {
  switch (reason) {
    case BlameReason::kStartOfSchedule: return "start-of-schedule";
    case BlameReason::kPrecedence: return "precedence";
    case BlameReason::kResources: return "resources";
  }
  throw std::logic_error("to_string: unknown BlameReason");
}

std::vector<BlameLink> blame_chain(const graph::TaskGraph& g,
                                   const core::ScheduleResult& run) {
  const int n = g.num_tasks();
  const auto& recs = run.trace.records();
  if (static_cast<int>(recs.size()) != n)
    throw std::invalid_argument(
        "blame_chain: trace does not cover the whole graph");

  std::vector<double> start(static_cast<std::size_t>(n));
  std::vector<double> end(static_cast<std::size_t>(n));
  for (const auto& r : recs) {
    start[static_cast<std::size_t>(r.task)] = r.start;
    end[static_cast<std::size_t>(r.task)] = r.end;
  }

  graph::TaskId cur = 0;
  for (graph::TaskId v = 1; v < n; ++v)
    if (end[static_cast<std::size_t>(v)] >
        end[static_cast<std::size_t>(cur)])
      cur = v;

  std::vector<BlameLink> chain;
  while (true) {
    BlameLink link;
    link.task = cur;
    link.start = start[static_cast<std::size_t>(cur)];
    link.end = end[static_cast<std::size_t>(cur)];

    if (link.start <= kEps) {
      link.reason = BlameReason::kStartOfSchedule;
      chain.push_back(link);
      break;
    }

    const double ready = run.ready_time[static_cast<std::size_t>(cur)];
    if (std::abs(ready - link.start) <= kEps && g.in_degree(cur) > 0) {
      // Precedence-bound: blame the predecessor that finished last.
      graph::TaskId blamed = g.predecessors(cur).front();
      for (const graph::TaskId u : g.predecessors(cur))
        if (end[static_cast<std::size_t>(u)] >
            end[static_cast<std::size_t>(blamed)])
          blamed = u;
      link.reason = BlameReason::kPrecedence;
      link.blamed = blamed;
      chain.push_back(link);
      cur = blamed;
      continue;
    }

    // Resource-bound: blame the completion at exactly this instant (the
    // event that freed the processors); fall back to the latest earlier
    // completion if tie matching fails numerically.
    graph::TaskId blamed = -1;
    for (graph::TaskId v = 0; v < n; ++v) {
      if (v == cur) continue;
      const double e = end[static_cast<std::size_t>(v)];
      if (e <= link.start + kEps &&
          (blamed < 0 || e > end[static_cast<std::size_t>(blamed)] + kEps))
        blamed = v;
    }
    if (blamed < 0 ||
        start[static_cast<std::size_t>(blamed)] >= link.start - kEps) {
      // No earlier completion explains the wait; close the chain.
      link.reason = BlameReason::kStartOfSchedule;
      chain.push_back(link);
      break;
    }
    link.reason = BlameReason::kResources;
    link.blamed = blamed;
    chain.push_back(link);
    cur = blamed;
  }
  return chain;
}

std::string format_blame_chain(const graph::TaskGraph& g,
                               const std::vector<BlameLink>& chain) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  for (const auto& link : chain) {
    os << g.name(link.task) << " [" << link.start << ", " << link.end
       << ") — " << to_string(link.reason);
    if (link.blamed >= 0) os << " (waited on " << g.name(link.blamed) << ")";
    os << '\n';
  }
  return os.str();
}

}  // namespace moldsched::analysis
