// Post-mortem of a simulated schedule: the *blame chain* explains what
// determined the makespan. Walking back from the task that finished
// last, each task's start was delayed either by a precedence (its last
// predecessor finished exactly then) or by resources (it was ready
// earlier but had to wait for processors freed by another completion).
// The resulting chain of blame edges covers the makespan and is the
// schedule-debugging counterpart of the critical path.
#pragma once

#include <string>
#include <vector>

#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/task_graph.hpp"

namespace moldsched::analysis {

enum class BlameReason {
  kStartOfSchedule,  ///< the task started at time 0
  kPrecedence,       ///< waited for its last predecessor
  kResources,        ///< ready earlier; waited for processors
};

[[nodiscard]] std::string to_string(BlameReason reason);

struct BlameLink {
  graph::TaskId task = -1;
  double start = 0.0;
  double end = 0.0;
  BlameReason reason = BlameReason::kStartOfSchedule;
  /// The task blamed for the wait (predecessor or resource-freeing
  /// completion); -1 for kStartOfSchedule.
  graph::TaskId blamed = -1;
};

/// The blame chain of the schedule in `run`, from the task that defines
/// the makespan back to time 0 (last element starts at 0). Total
/// precedence-bound vs resource-bound time along the chain tells whether
/// the makespan is critical-path- or capacity-limited. Throws if the
/// trace does not cover the whole graph.
[[nodiscard]] std::vector<BlameLink> blame_chain(
    const graph::TaskGraph& g, const core::ScheduleResult& run);

/// Renders the chain as readable lines (one per link).
[[nodiscard]] std::string format_blame_chain(
    const graph::TaskGraph& g, const std::vector<BlameLink>& chain);

}  // namespace moldsched::analysis
