#include "moldsched/analysis/experiment.hpp"

#include <stdexcept>
#include <utility>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/generators.hpp"
#include "moldsched/graph/workflows.hpp"
#include "moldsched/model/sampler.hpp"
#include "moldsched/sim/validator.hpp"
#include "moldsched/util/parallel.hpp"

namespace moldsched::analysis {

Measurement measure_scheduler(const graph::TaskGraph& g, int P,
                              const sched::SchedulerSpec& spec) {
  return measure_scheduler(g, P, spec, 0.0);
}

Measurement measure_scheduler(const graph::TaskGraph& g, int P,
                              const sched::SchedulerSpec& spec, double t_opt) {
  if (!spec.allocator && !spec.runner)
    throw std::invalid_argument(
        "measure_scheduler: spec has neither allocator nor runner");
  const auto result = spec.run(g, P);
  sim::expect_valid_schedule(g, result.trace, P);

  Measurement m;
  m.scheduler = spec.name;
  m.makespan = result.makespan;
  m.lower_bound = optimal_makespan_lower_bound(g, P);
  m.ratio_vs_lb = m.makespan / m.lower_bound;
  m.avg_utilization = result.trace.average_utilization(P);
  if (t_opt > 0.0) {
    m.t_opt = t_opt;
    m.ratio_vs_opt = m.makespan / t_opt;
  }
  return m;
}

std::vector<GraphCase> random_graph_catalog(model::ModelKind kind, int P,
                                            util::Rng& rng, int scale) {
  if (scale < 1)
    throw std::invalid_argument("random_graph_catalog: scale must be >= 1");
  const model::ModelSampler sampler(kind);
  const auto provider = graph::sampling_provider(sampler, rng, P);

  std::vector<GraphCase> cases;
  cases.push_back(
      {"layered", graph::layered_random(8 * scale, 2, 12, 0.3, rng, provider)});
  cases.push_back(
      {"erdos-renyi", graph::erdos_renyi_dag(60 * scale, 0.05, rng, provider)});
  cases.push_back({"fork-join", graph::fork_join(4 * scale, 10, provider)});
  cases.push_back(
      {"out-tree", graph::random_out_tree(80 * scale, 3, rng, provider)});
  cases.push_back(
      {"in-tree", graph::random_in_tree(80 * scale, 3, rng, provider)});
  cases.push_back(
      {"series-parallel", graph::series_parallel(70 * scale, rng, provider)});
  cases.push_back({"chain", graph::chain(20 * scale, provider)});
  cases.push_back({"independent", graph::independent(50 * scale, provider)});
  cases.push_back({"diamond", graph::diamond(40 * scale, provider)});
  return cases;
}

std::vector<GraphCase> workflow_catalog(model::ModelKind kind, int scale) {
  if (scale < 1)
    throw std::invalid_argument("workflow_catalog: scale must be >= 1");
  graph::WorkflowModelConfig config;
  config.kind = kind;

  std::vector<GraphCase> cases;
  cases.push_back({"cholesky", graph::cholesky(4 + 2 * scale, config)});
  cases.push_back({"lu", graph::lu(3 + 2 * scale, config)});
  cases.push_back({"fft", graph::fft(3 + scale, config)});
  cases.push_back({"montage", graph::montage(12 * scale, config)});
  cases.push_back({"wavefront", graph::wavefront(6 * scale, 6 * scale, config)});
  return cases;
}

namespace {

std::vector<AggregateRow> compare_suite_impl(
    const std::vector<GraphCase>& cases, int P,
    const std::vector<sched::SchedulerSpec>& suite,
    const std::vector<double>* t_opts) {
  if (cases.empty())
    throw std::invalid_argument("compare_suite: no graph cases");
  if (t_opts != nullptr && t_opts->size() != cases.size())
    throw std::invalid_argument(
        "compare_suite_with_oracle: t_opts size does not match cases");
  std::vector<AggregateRow> rows;
  rows.reserve(suite.size());
  for (const auto& spec : suite) {
    // Simulations are independent and deterministic: fan them out.
    std::vector<Measurement> measurements(cases.size());
    util::parallel_for(cases.size(), [&](std::size_t i) {
      const double t_opt = t_opts != nullptr ? (*t_opts)[i] : 0.0;
      measurements[i] = measure_scheduler(cases[i].graph, P, spec, t_opt);
    });
    std::vector<double> ratios;
    std::vector<double> true_ratios;
    util::Accumulator util_acc;
    ratios.reserve(cases.size());
    for (const auto& m : measurements) {
      ratios.push_back(m.ratio_vs_lb);
      if (m.t_opt > 0.0) true_ratios.push_back(m.ratio_vs_opt);
      util_acc.add(m.avg_utilization);
    }
    AggregateRow row;
    row.scheduler = spec.name;
    row.ratio = util::summarize(ratios);
    row.mean_utilization = util_acc.mean();
    if (!true_ratios.empty()) {
      row.true_ratio = util::summarize(true_ratios);
      row.has_true_ratio = true;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

std::vector<AggregateRow> compare_suite(
    const std::vector<GraphCase>& cases, int P,
    const std::vector<sched::SchedulerSpec>& suite) {
  return compare_suite_impl(cases, P, suite, nullptr);
}

std::vector<AggregateRow> compare_suite_with_oracle(
    const std::vector<GraphCase>& cases, int P,
    const std::vector<sched::SchedulerSpec>& suite,
    const std::vector<double>& t_opts) {
  return compare_suite_impl(cases, P, suite, &t_opts);
}

}  // namespace moldsched::analysis
