#include "moldsched/analysis/curves.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "moldsched/analysis/ratios.hpp"

namespace moldsched::analysis {

std::vector<CurvePoint> ratio_curve(model::ModelKind kind, int points) {
  if (points < 2)
    throw std::invalid_argument("ratio_curve: points must be >= 2");
  if (kind == model::ModelKind::kArbitrary)
    throw std::invalid_argument("ratio_curve: arbitrary model has no curve");
  std::vector<CurvePoint> curve;
  curve.reserve(static_cast<std::size_t>(points));
  for (int i = 1; i <= points; ++i) {
    CurvePoint p;
    p.mu = kMuMax * static_cast<double>(i) / static_cast<double>(points);
    p.upper_bound = upper_ratio(kind, p.mu);
    p.lower_bound_limit = lower_bound_limit(kind, p.mu);
    curve.push_back(p);
  }
  return curve;
}

std::string ratio_curves_csv(int points) {
  const model::ModelKind kinds[] = {
      model::ModelKind::kRoofline, model::ModelKind::kCommunication,
      model::ModelKind::kAmdahl, model::ModelKind::kGeneral};
  std::vector<std::vector<CurvePoint>> curves;
  for (const auto kind : kinds) curves.push_back(ratio_curve(kind, points));

  std::ostringstream os;
  os << "mu";
  for (const auto kind : kinds)
    os << ',' << model::to_string(kind) << "_upper,"
       << model::to_string(kind) << "_lower";
  os << '\n';
  os.precision(10);
  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    os << curves[0][i].mu;
    for (const auto& curve : curves) {
      const auto& p = curve[i];
      os << ',';
      if (std::isfinite(p.upper_bound)) os << p.upper_bound;
      os << ',';
      if (std::isfinite(p.lower_bound_limit)) os << p.lower_bound_limit;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace moldsched::analysis
