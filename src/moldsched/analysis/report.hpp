// Report rendering shared by the benchmark binaries and examples: the
// paper-shaped tables, plus small file helpers for CSV export.
#pragma once

#include <string>
#include <vector>

#include "moldsched/analysis/experiment.hpp"
#include "moldsched/analysis/ratios.hpp"
#include "moldsched/util/table.hpp"

namespace moldsched::analysis {

/// Table 1 of the paper: one column per model, upper and lower bound rows,
/// plus the optimal mu* and x* for reference.
[[nodiscard]] util::Table table1_table(const std::vector<OptimalRatio>& rows);

/// Scheduler-suite comparison: one row per scheduler with ratio summary.
[[nodiscard]] util::Table suite_table(const std::vector<AggregateRow>& rows);

/// Writes content to path, creating parent directories as needed.
/// Throws std::runtime_error on I/O failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace moldsched::analysis
