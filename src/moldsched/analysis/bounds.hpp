// Lower bounds on the optimal makespan (Section 3.2, Lemma 2):
//   T_opt >= max(A_min / P, C_min)
// where A_min is the minimum total area and C_min the minimum critical
// path length of the task graph.
#pragma once

#include <vector>

#include "moldsched/graph/task_graph.hpp"

namespace moldsched::analysis {

/// Per-task minimum execution times t_min = t(p_max) (Eq. (5)).
[[nodiscard]] std::vector<double> min_times(const graph::TaskGraph& g, int P);

/// A_min = sum of per-task minimum areas (Definition 1).
[[nodiscard]] double min_total_area(const graph::TaskGraph& g, int P);

/// C_min = longest path weighted by per-task minimum times (Definition 2).
[[nodiscard]] double min_critical_path(const graph::TaskGraph& g, int P);

/// Lemma 2: max(A_min / P, C_min).
[[nodiscard]] double optimal_makespan_lower_bound(const graph::TaskGraph& g,
                                                  int P);

/// Sum of single-processor times t(1) — the exact makespan every valid
/// schedule must achieve on a unit platform (P = 1 serializes the graph),
/// and the natural yardstick for the degenerate-instance checks.
[[nodiscard]] double total_serial_work(const graph::TaskGraph& g);

/// All three quantities in one pass (cheaper for the harnesses).
struct LowerBounds {
  double min_total_area = 0.0;
  double min_critical_path = 0.0;
  double lower_bound = 0.0;  ///< max(min_total_area / P, min_critical_path)
};
[[nodiscard]] LowerBounds lower_bounds(const graph::TaskGraph& g, int P);

}  // namespace moldsched::analysis
