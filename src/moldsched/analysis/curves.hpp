// Ratio-versus-mu curves: the functions the paper minimizes numerically
// in Theorems 2-4, exported for plotting (each model's upper-bound curve
// plus its lower-bound-limit curve).
#pragma once

#include <string>
#include <vector>

#include "moldsched/model/speedup_model.hpp"

namespace moldsched::analysis {

struct CurvePoint {
  double mu = 0.0;
  double upper_bound = 0.0;       ///< +inf where mu is infeasible
  double lower_bound_limit = 0.0; ///< +inf where the construction fails
};

/// Samples `points` >= 2 values of mu uniformly over (0, (3-sqrt(5))/2].
/// Throws on points < 2 or ModelKind::kArbitrary.
[[nodiscard]] std::vector<CurvePoint> ratio_curve(model::ModelKind kind,
                                                  int points = 200);

/// CSV with columns mu,<model>_upper,<model>_lower for all four models,
/// one row per mu sample. Infeasible entries are empty cells.
[[nodiscard]] std::string ratio_curves_csv(int points = 200);

}  // namespace moldsched::analysis
