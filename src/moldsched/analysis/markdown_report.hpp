// One-call generation of a Markdown experiment report: Table 1, the
// simulated adversary ratios, a random-DAG suite comparison and the
// Theorem 9 growth series — the paper's headline results in a single
// self-describing document.
#pragma once

#include <cstdint>
#include <string>

namespace moldsched::analysis {

struct ReportConfig {
  int P = 32;                ///< platform for the random-DAG section
  int repetitions = 2;       ///< catalog repetitions per model
  int max_chains_k = 12;     ///< largest K in the Theorem 9 sweep
  std::uint64_t seed = 1234;
  bool include_adversaries = true;  ///< the slowest section; skippable
};

/// Runs the experiments (seeded, deterministic) and renders the report.
/// Takes a few seconds at the default configuration.
[[nodiscard]] std::string generate_markdown_report(ReportConfig config = {});

}  // namespace moldsched::analysis
