// First-class verification of the Section 4.2 analysis framework on a
// concrete simulated schedule: evaluates both sides of Lemmas 3, 4 and 5
// with the alpha/beta values Algorithm 2 actually realized on each task.
// Used by the property tests and by diagnostic tooling; any violation
// would falsify the paper's analysis (or reveal a scheduler bug).
#pragma once

#include "moldsched/core/allocator.hpp"
#include "moldsched/core/intervals.hpp"
#include "moldsched/core/online_scheduler.hpp"
#include "moldsched/graph/task_graph.hpp"

namespace moldsched::analysis {

struct FrameworkCheck {
  core::IntervalBreakdown intervals;
  double alpha = 1.0;      ///< max over tasks of a(p_initial)/a_min
  double beta = 1.0;       ///< delta(mu): every task satisfies beta_p <= it
  double min_total_area = 0.0;
  double min_critical_path = 0.0;
  double lower_bound = 0.0;

  double lemma3_lhs = 0.0;  ///< mu*T2 + (1-mu)*T3
  double lemma3_rhs = 0.0;  ///< alpha * A_min / P
  double lemma4_lhs = 0.0;  ///< T1/beta + mu*T2
  double lemma4_rhs = 0.0;  ///< C_min
  double lemma5_ratio = 0.0;  ///< (mu*alpha + 1 - 2mu) / (mu (1-mu))
  double makespan = 0.0;

  [[nodiscard]] bool lemma3_holds(double tol = 1e-9) const {
    return lemma3_lhs <= lemma3_rhs * (1.0 + tol);
  }
  [[nodiscard]] bool lemma4_holds(double tol = 1e-9) const {
    return lemma4_lhs <= lemma4_rhs * (1.0 + tol);
  }
  [[nodiscard]] bool lemma5_holds(double tol = 1e-9) const {
    return makespan <= lemma5_ratio * lower_bound * (1.0 + tol);
  }
  [[nodiscard]] bool all_hold(double tol = 1e-9) const {
    return lemma3_holds(tol) && lemma4_holds(tol) && lemma5_holds(tol);
  }
};

/// Evaluates the framework for a schedule produced by Algorithm 1 with
/// LpaAllocator(mu) on graph g. The result must satisfy every lemma for
/// any correct run; all_hold() false indicates a bug.
[[nodiscard]] FrameworkCheck check_framework(const graph::TaskGraph& g, int P,
                                             const core::LpaAllocator& alloc,
                                             const core::ScheduleResult& run);

}  // namespace moldsched::analysis
