#include "moldsched/analysis/optimize.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace moldsched::analysis {

MinimizeResult golden_section_minimize(const std::function<double(double)>& f,
                                       double lo, double hi, double tol,
                                       int max_iterations) {
  if (!f) throw std::invalid_argument("golden_section_minimize: empty f");
  if (!(lo < hi))
    throw std::invalid_argument("golden_section_minimize: need lo < hi");
  if (!(tol > 0.0))
    throw std::invalid_argument("golden_section_minimize: tol must be > 0");

  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo;
  double b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c);
  double fd = f(d);
  int iter = 0;
  while (b - a > tol && iter < max_iterations) {
    if (fc <= fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
    ++iter;
  }
  MinimizeResult r;
  r.x = fc <= fd ? c : d;
  r.value = std::min(fc, fd);
  r.iterations = iter;
  return r;
}

MinimizeResult grid_then_golden_minimize(
    const std::function<double(double)>& f, double lo, double hi,
    int grid_points, double tol) {
  if (!f) throw std::invalid_argument("grid_then_golden_minimize: empty f");
  if (!(lo < hi))
    throw std::invalid_argument("grid_then_golden_minimize: need lo < hi");
  if (grid_points < 3)
    throw std::invalid_argument(
        "grid_then_golden_minimize: grid_points must be >= 3");

  double best_x = lo;
  double best_v = std::numeric_limits<double>::infinity();
  for (int i = 0; i <= grid_points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(grid_points);
    const double v = f(x);
    if (v < best_v) {
      best_v = v;
      best_x = x;
    }
  }
  if (!std::isfinite(best_v))
    throw std::invalid_argument(
        "grid_then_golden_minimize: f is infinite on the whole bracket");

  const double step = (hi - lo) / static_cast<double>(grid_points);
  const double a = std::max(lo, best_x - step);
  const double b = std::min(hi, best_x + step);
  auto refined = golden_section_minimize(f, a, b, tol);
  if (best_v < refined.value) {
    refined.x = best_x;
    refined.value = best_v;
  }
  return refined;
}

}  // namespace moldsched::analysis
