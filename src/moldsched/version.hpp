// Library version, bumped with releases.
#pragma once

namespace moldsched {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;

/// "major.minor.patch".
[[nodiscard]] constexpr const char* version() noexcept { return "1.0.0"; }

}  // namespace moldsched
