// Plain-text graph serialization with a lossless round trip for the
// Eq. (1) model family, so instances can be saved, shared and reloaded:
//
//   # moldsched-graph v1
//   task <name> <kind> <w> <d> <c> <pbar|inf>
//   edge <from_index> <to_index>
//
// Task indices are assignment order (0-based). Lines starting with '#'
// and blank lines are ignored. Arbitrary models are not serializable.
#pragma once

#include <string>
#include <vector>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/sched/release_scheduler.hpp"

namespace moldsched::io {

/// Serializes the graph. Throws std::invalid_argument if any task has an
/// arbitrary (non-Eq. (1)) model, or a name containing whitespace.
[[nodiscard]] std::string write_graph_text(const graph::TaskGraph& g);

/// Parses the format back into a graph. Throws std::invalid_argument
/// with a line number on any malformed input (unknown directive, bad
/// kind, non-numeric field, out-of-range edge endpoint, missing header).
[[nodiscard]] graph::TaskGraph read_graph_text(const std::string& text);

/// Serialization of released-task sets (see sched::ReleasedTask):
///
///   # moldsched-released-tasks v1
///   task <name> <kind> <w> <d> <c> <pbar|inf> <release>
///
/// Same conventions and error handling as the graph format.
[[nodiscard]] std::string write_released_tasks_text(
    const std::vector<sched::ReleasedTask>& tasks);
[[nodiscard]] std::vector<sched::ReleasedTask> read_released_tasks_text(
    const std::string& text);

}  // namespace moldsched::io
