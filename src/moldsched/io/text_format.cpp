#include "moldsched/io/text_format.hpp"

#include <memory>
#include <sstream>
#include <stdexcept>

#include "moldsched/model/general_model.hpp"
#include "moldsched/model/special_models.hpp"

namespace moldsched::io {

namespace {

constexpr const char* kHeader = "# moldsched-graph v1";
constexpr const char* kReleasedHeader = "# moldsched-released-tasks v1";

[[noreturn]] void parse_error(int line, const std::string& message) {
  throw std::invalid_argument("read_graph_text: line " +
                              std::to_string(line) + ": " + message);
}

model::ModelKind parse_kind(const std::string& s, int line) {
  if (s == "roofline") return model::ModelKind::kRoofline;
  if (s == "communication") return model::ModelKind::kCommunication;
  if (s == "amdahl") return model::ModelKind::kAmdahl;
  if (s == "general") return model::ModelKind::kGeneral;
  parse_error(line, "unknown model kind '" + s + "'");
}

model::ModelPtr build_model(model::ModelKind kind, double w, double d,
                            double c, int pbar, int line) {
  try {
    switch (kind) {
      case model::ModelKind::kRoofline:
        return std::make_shared<model::RooflineModel>(w, pbar);
      case model::ModelKind::kCommunication:
        return std::make_shared<model::CommunicationModel>(w, c);
      case model::ModelKind::kAmdahl:
        return std::make_shared<model::AmdahlModel>(w, d);
      case model::ModelKind::kGeneral: {
        model::GeneralParams p;
        p.w = w;
        p.d = d;
        p.c = c;
        p.pbar = pbar;
        return std::make_shared<model::GeneralModel>(p);
      }
      case model::ModelKind::kArbitrary:
        break;
    }
  } catch (const std::invalid_argument& e) {
    parse_error(line, std::string("invalid model parameters: ") + e.what());
  }
  parse_error(line, "arbitrary models are not serializable");
}

}  // namespace

std::string write_graph_text(const graph::TaskGraph& g) {
  std::ostringstream os;
  os << kHeader << '\n';
  os.precision(17);
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    const auto& m = g.model_of(v);
    const auto* gm = dynamic_cast<const model::GeneralModel*>(&m);
    if (gm == nullptr)
      throw std::invalid_argument(
          "write_graph_text: task '" + g.name(v) +
          "' has a non-serializable (arbitrary) model");
    const auto& name = g.name(v);
    if (name.find_first_of(" \t\n") != std::string::npos)
      throw std::invalid_argument("write_graph_text: task name '" + name +
                                  "' contains whitespace");
    os << "task " << name << ' ' << model::to_string(gm->kind()) << ' '
       << gm->w() << ' ' << gm->d() << ' ' << gm->c() << ' ';
    if (gm->pbar() == model::GeneralParams::kUnboundedParallelism)
      os << "inf";
    else
      os << gm->pbar();
    os << '\n';
  }
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    for (const graph::TaskId s : g.successors(v))
      os << "edge " << v << ' ' << s << '\n';
  return os.str();
}

graph::TaskGraph read_graph_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  graph::TaskGraph g;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line == kHeader) saw_header = true;
      continue;
    }
    if (!saw_header)
      parse_error(line_no, std::string("missing header '") + kHeader + "'");

    std::istringstream fields(line);
    std::string directive;
    fields >> directive;
    if (directive == "task") {
      std::string name;
      std::string kind_str;
      double w = 0.0;
      double d = 0.0;
      double c = 0.0;
      std::string pbar_str;
      if (!(fields >> name >> kind_str >> w >> d >> c >> pbar_str))
        parse_error(line_no, "malformed task line");
      const auto kind = parse_kind(kind_str, line_no);
      int pbar = model::GeneralParams::kUnboundedParallelism;
      if (pbar_str != "inf") {
        try {
          pbar = std::stoi(pbar_str);
        } catch (const std::exception&) {
          parse_error(line_no, "bad pbar '" + pbar_str + "'");
        }
      }
      (void)g.add_task(build_model(kind, w, d, c, pbar, line_no), name);
    } else if (directive == "edge") {
      int from = -1;
      int to = -1;
      if (!(fields >> from >> to)) parse_error(line_no, "malformed edge line");
      if (from < 0 || from >= g.num_tasks() || to < 0 || to >= g.num_tasks())
        parse_error(line_no, "edge endpoint out of range");
      try {
        g.add_edge(from, to);
      } catch (const std::invalid_argument& e) {
        parse_error(line_no, e.what());
      }
    } else {
      parse_error(line_no, "unknown directive '" + directive + "'");
    }
  }
  if (!saw_header)
    parse_error(line_no, std::string("missing header '") + kHeader + "'");
  return g;
}

namespace {

/// Writes one task's model fields (kind w d c pbar); shared between the
/// graph and released-task writers.
void write_model_fields(std::ostream& os, const model::GeneralModel& gm) {
  os << model::to_string(gm.kind()) << ' ' << gm.w() << ' ' << gm.d() << ' '
     << gm.c() << ' ';
  if (gm.pbar() == model::GeneralParams::kUnboundedParallelism)
    os << "inf";
  else
    os << gm.pbar();
}

}  // namespace

std::string write_released_tasks_text(
    const std::vector<sched::ReleasedTask>& tasks) {
  std::ostringstream os;
  os << kReleasedHeader << '\n';
  os.precision(17);
  for (const auto& t : tasks) {
    const auto* gm = dynamic_cast<const model::GeneralModel*>(t.model.get());
    if (gm == nullptr)
      throw std::invalid_argument(
          "write_released_tasks_text: task '" + t.name +
          "' has a non-serializable (arbitrary) model");
    if (t.name.empty() ||
        t.name.find_first_of(" \t\n") != std::string::npos)
      throw std::invalid_argument(
          "write_released_tasks_text: task name '" + t.name +
          "' is empty or contains whitespace");
    os << "task " << t.name << ' ';
    write_model_fields(os, *gm);
    os << ' ' << t.release << '\n';
  }
  return os.str();
}

std::vector<sched::ReleasedTask> read_released_tasks_text(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  std::vector<sched::ReleasedTask> tasks;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line == kReleasedHeader) saw_header = true;
      continue;
    }
    if (!saw_header)
      parse_error(line_no,
                  std::string("missing header '") + kReleasedHeader + "'");

    std::istringstream fields(line);
    std::string directive;
    fields >> directive;
    if (directive != "task")
      parse_error(line_no, "unknown directive '" + directive + "'");
    std::string name;
    std::string kind_str;
    double w = 0.0;
    double d = 0.0;
    double c = 0.0;
    std::string pbar_str;
    double release = 0.0;
    if (!(fields >> name >> kind_str >> w >> d >> c >> pbar_str >> release))
      parse_error(line_no, "malformed task line");
    const auto kind = parse_kind(kind_str, line_no);
    int pbar = model::GeneralParams::kUnboundedParallelism;
    if (pbar_str != "inf") {
      try {
        pbar = std::stoi(pbar_str);
      } catch (const std::exception&) {
        parse_error(line_no, "bad pbar '" + pbar_str + "'");
      }
    }
    if (!(release >= 0.0))
      parse_error(line_no, "release time must be >= 0");
    tasks.push_back(sched::ReleasedTask{
        build_model(kind, w, d, c, pbar, line_no), release, name});
  }
  if (!saw_header)
    parse_error(line_no,
                std::string("missing header '") + kReleasedHeader + "'");
  return tasks;
}

}  // namespace moldsched::io
