// Graphviz DOT export of task graphs and schedule traces, for visual
// inspection of instances and results.
#pragma once

#include <string>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/sim/trace.hpp"

namespace moldsched::io {

/// DOT digraph with one node per task, labelled with the task name and
/// its speedup model description. Nodes additionally carry lossless
/// machine attributes (name, model/w/d/c/pbar for the Eq. (1) family,
/// times for TableModel, all doubles at 17 significant digits) so
/// ingest::parse_dot reconstructs the graph with identical wire bytes.
[[nodiscard]] std::string to_dot(const graph::TaskGraph& g);

/// DOT digraph whose node labels additionally carry the scheduled
/// [start, end) window and allocation from the trace. Tasks missing
/// from the trace are rendered dashed. Throws if the trace has records
/// for unknown task ids.
[[nodiscard]] std::string to_dot_with_schedule(const graph::TaskGraph& g,
                                               const sim::Trace& trace);

}  // namespace moldsched::io
