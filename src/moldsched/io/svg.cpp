#include "moldsched/io/svg.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace moldsched::io {

namespace {

constexpr int kMarginLeft = 46;
constexpr int kMarginTop = 18;
constexpr int kAxisHeight = 26;

/// Deterministic pleasant-ish color per task id (golden-angle hue walk).
std::string color_for(int task) {
  const double hue = std::fmod(static_cast<double>(task) * 137.508, 360.0);
  // HSL(hue, 55%, 62%) converted to RGB.
  const double s = 0.55;
  const double l = 0.62;
  const double c = (1.0 - std::abs(2.0 * l - 1.0)) * s;
  const double hp = hue / 60.0;
  const double x = c * (1.0 - std::abs(std::fmod(hp, 2.0) - 1.0));
  double r = 0.0;
  double gr = 0.0;
  double b = 0.0;
  if (hp < 1) { r = c; gr = x; }
  else if (hp < 2) { r = x; gr = c; }
  else if (hp < 3) { gr = c; b = x; }
  else if (hp < 4) { gr = x; b = c; }
  else if (hp < 5) { r = x; b = c; }
  else { r = c; b = x; }
  const double m = l - c / 2.0;
  std::ostringstream os;
  os << "rgb(" << static_cast<int>(std::lround((r + m) * 255.0)) << ','
     << static_cast<int>(std::lround((gr + m) * 255.0)) << ','
     << static_cast<int>(std::lround((b + m) * 255.0)) << ')';
  return os.str();
}

std::string xml_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string render_gantt_svg(const sim::Trace& trace,
                             const graph::TaskGraph& g, int P,
                             SvgGanttOptions options) {
  if (P < 1 || P > 4096)
    throw std::invalid_argument("render_gantt_svg: P must be in [1, 4096]");
  if (options.width < 100 || options.row_height < 4)
    throw std::invalid_argument("render_gantt_svg: options too small");

  const auto& recs = trace.records();
  const double makespan = std::max(trace.makespan(), 1e-12);
  const double x_scale = static_cast<double>(options.width) / makespan;

  // Row assignment: sweep events, claim lowest free rows per start.
  struct Ev {
    double t;
    int delta;
    std::size_t rec;
  };
  std::vector<Ev> evs;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    if (recs[i].task < 0 || recs[i].task >= g.num_tasks())
      throw std::invalid_argument(
          "render_gantt_svg: trace references unknown task");
    evs.push_back({recs[i].start, +1, i});
    evs.push_back({recs[i].end, -1, i});
  }
  std::sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;
  });
  std::vector<bool> busy(static_cast<std::size_t>(P), false);
  std::vector<std::vector<int>> rows_of(recs.size());
  for (const auto& ev : evs) {
    if (ev.delta < 0) {
      for (const int r : rows_of[ev.rec])
        busy[static_cast<std::size_t>(r)] = false;
      continue;
    }
    auto& rows = rows_of[ev.rec];
    for (int r = 0;
         r < P && static_cast<int>(rows.size()) < recs[ev.rec].procs; ++r) {
      if (!busy[static_cast<std::size_t>(r)]) {
        busy[static_cast<std::size_t>(r)] = true;
        rows.push_back(r);
      }
    }
  }

  const int chart_h = P * options.row_height;
  const int total_w = kMarginLeft + options.width + 10;
  const int total_h = kMarginTop + chart_h + kAxisHeight;

  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << total_w
     << "\" height=\"" << total_h << "\" font-family=\"sans-serif\">\n";
  os << "<rect x=\"" << kMarginLeft << "\" y=\"" << kMarginTop
     << "\" width=\"" << options.width << "\" height=\"" << chart_h
     << "\" fill=\"#f7f7f7\" stroke=\"#999\"/>\n";

  // Task boxes: one rect per contiguous run of assigned rows.
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    auto rows = rows_of[i];
    std::sort(rows.begin(), rows.end());
    const double x = kMarginLeft + r.start * x_scale;
    const double w = std::max(0.5, (r.end - r.start) * x_scale);
    std::size_t k = 0;
    while (k < rows.size()) {
      std::size_t j = k;
      while (j + 1 < rows.size() && rows[j + 1] == rows[j] + 1) ++j;
      const int y_row = P - 1 - rows[j];  // row 0 at the bottom
      const double y = kMarginTop + y_row * options.row_height;
      const double h =
          static_cast<double>(j - k + 1) * options.row_height;
      os << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
         << "\" height=\"" << h << "\" fill=\"" << color_for(r.task)
         << "\" stroke=\"#333\" stroke-width=\"0.4\"><title>"
         << xml_escape(g.name(r.task)) << " [" << r.start << ", " << r.end
         << ") p=" << r.procs << "</title></rect>\n";
      k = j + 1;
    }
    if (options.show_labels && w > 60.0 && !rows.empty()) {
      const int y_row = P - 1 - rows.back();
      os << "<text x=\"" << x + 3.0 << "\" y=\""
         << kMarginTop + y_row * options.row_height +
                options.row_height * 0.75
         << "\" font-size=\"" << std::max(8, options.row_height - 5)
         << "\">" << xml_escape(g.name(recs[i].task)) << "</text>\n";
    }
  }

  // Time axis: ~8 ticks.
  const double tick = makespan / 8.0;
  for (int t = 0; t <= 8; ++t) {
    const double x = kMarginLeft + static_cast<double>(t) * tick * x_scale;
    os << "<line x1=\"" << x << "\" y1=\"" << kMarginTop + chart_h
       << "\" x2=\"" << x << "\" y2=\"" << kMarginTop + chart_h + 5
       << "\" stroke=\"#333\"/>\n";
    os << "<text x=\"" << x << "\" y=\"" << kMarginTop + chart_h + 18
       << "\" font-size=\"10\" text-anchor=\"middle\">"
       << static_cast<double>(t) * tick << "</text>\n";
  }
  os << "<text x=\"4\" y=\"" << kMarginTop + 10
     << "\" font-size=\"10\">P=" << P << "</text>\n";
  os << "</svg>\n";
  return os.str();
}

}  // namespace moldsched::io
