#include "moldsched/io/dot.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

#include "moldsched/model/arbitrary_model.hpp"
#include "moldsched/model/general_model.hpp"

namespace moldsched::io {

namespace {

/// Escapes a string for use inside a double-quoted DOT value. Newlines
/// become the two-character \n escape (a raw newline inside a quoted ID
/// is invalid DOT and used to silently corrupt exported graphs whose
/// task names contained one); ingest::parse_dot reverses exactly this
/// mapping, which is what makes the DOT round trip byte-exact.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// 17-significant-digit rendering, matching svc::wire_number so fitted
/// parameters survive DOT -> parse -> wire encode bit-identically.
std::string dot_number(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Machine-readable model attributes for the wire-serializable model
/// families (Eq. (1) subclasses and TableModel). Other arbitrary models
/// have no parameter encoding; their nodes carry only the human label
/// and are not round-trippable (encode_model rejects them too).
std::string model_attributes(const model::SpeedupModel& m) {
  std::ostringstream os;
  if (const auto* gm = dynamic_cast<const model::GeneralModel*>(&m)) {
    os << " model=\"" << model::to_string(gm->kind()) << "\" w=\""
       << dot_number(gm->w()) << '"';
    if (gm->d() != 0.0) os << " d=\"" << dot_number(gm->d()) << '"';
    if (gm->c() != 0.0) os << " c=\"" << dot_number(gm->c()) << '"';
    if (gm->pbar() != model::GeneralParams::kUnboundedParallelism)
      os << " pbar=\"" << gm->pbar() << '"';
    return os.str();
  }
  if (const auto* tm = dynamic_cast<const model::TableModel*>(&m)) {
    os << " times=\"";
    for (int p = 1; p <= tm->table_size(); ++p) {
      if (p > 1) os << ',';
      os << dot_number(tm->time(p));
    }
    os << '"';
    return os.str();
  }
  return "";
}

}  // namespace

std::string to_dot(const graph::TaskGraph& g) {
  std::ostringstream os;
  os << "digraph moldsched {\n  rankdir=TB;\n  node [shape=box];\n";
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    os << "  n" << v << " [label=\"" << escape(g.name(v)) << "\\n"
       << escape(g.model_of(v).describe()) << "\" name=\""
       << escape(g.name(v)) << '"' << model_attributes(g.model_of(v))
       << "];\n";
  }
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    for (const graph::TaskId s : g.successors(v))
      os << "  n" << v << " -> n" << s << ";\n";
  os << "}\n";
  return os.str();
}

std::string to_dot_with_schedule(const graph::TaskGraph& g,
                                 const sim::Trace& trace) {
  std::vector<const sim::TaskRecord*> record_of(
      static_cast<std::size_t>(g.num_tasks()), nullptr);
  for (const auto& r : trace.records()) {
    if (r.task < 0 || r.task >= g.num_tasks())
      throw std::invalid_argument(
          "to_dot_with_schedule: trace mentions unknown task " +
          std::to_string(r.task));
    record_of[static_cast<std::size_t>(r.task)] = &r;
  }

  std::ostringstream os;
  os << "digraph moldsched_schedule {\n  rankdir=TB;\n  node [shape=box];\n";
  os.setf(std::ios::fixed);
  os.precision(3);
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    os << "  n" << v << " [label=\"" << escape(g.name(v));
    if (const auto* r = record_of[static_cast<std::size_t>(v)]) {
      os << "\\n[" << r->start << ", " << r->end << ") p=" << r->procs
         << "\"];\n";
    } else {
      os << "\\n(unscheduled)\" style=dashed];\n";
    }
  }
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    for (const graph::TaskId s : g.successors(v))
      os << "  n" << v << " -> n" << s << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace moldsched::io
