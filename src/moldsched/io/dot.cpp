#include "moldsched/io/dot.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace moldsched::io {

namespace {

/// Escapes a string for use inside a double-quoted DOT label.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string to_dot(const graph::TaskGraph& g) {
  std::ostringstream os;
  os << "digraph moldsched {\n  rankdir=TB;\n  node [shape=box];\n";
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    os << "  n" << v << " [label=\"" << escape(g.name(v)) << "\\n"
       << escape(g.model_of(v).describe()) << "\"];\n";
  }
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    for (const graph::TaskId s : g.successors(v))
      os << "  n" << v << " -> n" << s << ";\n";
  os << "}\n";
  return os.str();
}

std::string to_dot_with_schedule(const graph::TaskGraph& g,
                                 const sim::Trace& trace) {
  std::vector<const sim::TaskRecord*> record_of(
      static_cast<std::size_t>(g.num_tasks()), nullptr);
  for (const auto& r : trace.records()) {
    if (r.task < 0 || r.task >= g.num_tasks())
      throw std::invalid_argument(
          "to_dot_with_schedule: trace mentions unknown task " +
          std::to_string(r.task));
    record_of[static_cast<std::size_t>(r.task)] = &r;
  }

  std::ostringstream os;
  os << "digraph moldsched_schedule {\n  rankdir=TB;\n  node [shape=box];\n";
  os.setf(std::ios::fixed);
  os.precision(3);
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    os << "  n" << v << " [label=\"" << escape(g.name(v));
    if (const auto* r = record_of[static_cast<std::size_t>(v)]) {
      os << "\\n[" << r->start << ", " << r->end << ") p=" << r->procs
         << "\"];\n";
    } else {
      os << "\\n(unscheduled)\" style=dashed];\n";
    }
  }
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    for (const graph::TaskId s : g.successors(v))
      os << "  n" << v << " -> n" << s << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace moldsched::io
