// Scalable (SVG) Gantt rendering of schedule traces — the
// publication-quality counterpart of sim::render_gantt's ASCII view.
// Pure string generation; no external dependencies.
#pragma once

#include <string>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/sim/trace.hpp"

namespace moldsched::io {

struct SvgGanttOptions {
  int width = 960;        ///< drawing width in px (plus margins)
  int row_height = 14;    ///< px per processor row
  bool show_labels = true;  ///< task names inside wide boxes
};

/// Renders the schedule as an SVG document: one row per processor, time
/// on the x axis, one box per task (split across its processor rows),
/// deterministic per-task colors, and a time axis. Throws on P < 1 or
/// P > 4096, or trace records referencing tasks outside the graph.
[[nodiscard]] std::string render_gantt_svg(const sim::Trace& trace,
                                           const graph::TaskGraph& g, int P,
                                           SvgGanttOptions options = {});

}  // namespace moldsched::io
