#include "moldsched/io/json.hpp"

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "moldsched/model/general_model.hpp"
#include "moldsched/obs/trace_writer.hpp"

namespace moldsched::io {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string graph_to_json(const graph::TaskGraph& g) {
  std::ostringstream os;
  os << "{\"tasks\":[";
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    if (v > 0) os << ',';
    const auto& m = g.model_of(v);
    os << "{\"id\":" << v << ",\"name\":\"" << json_escape(g.name(v))
       << "\",\"kind\":\"" << model::to_string(m.kind()) << '"';
    if (const auto* gm = dynamic_cast<const model::GeneralModel*>(&m)) {
      os << ",\"w\":" << gm->w() << ",\"d\":" << gm->d()
         << ",\"c\":" << gm->c();
      if (gm->pbar() != model::GeneralParams::kUnboundedParallelism)
        os << ",\"pbar\":" << gm->pbar();
    } else {
      os << ",\"model\":\"" << json_escape(m.describe()) << '"';
    }
    os << '}';
  }
  os << "],\"edges\":[";
  bool first = true;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    for (const graph::TaskId s : g.successors(v)) {
      if (!first) os << ',';
      first = false;
      os << '[' << v << ',' << s << ']';
    }
  }
  os << "]}";
  return os.str();
}

std::string trace_to_json(const sim::Trace& trace) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"makespan\":" << trace.makespan() << ",\"records\":[";
  bool first = true;
  for (const auto& r : trace.records()) {
    if (!first) os << ',';
    first = false;
    os << "{\"task\":" << r.task << ",\"start\":" << r.start
       << ",\"end\":" << r.end << ",\"procs\":" << r.procs << '}';
  }
  os << "]}";
  return os.str();
}

std::string trace_to_chrome_json(const sim::Trace& trace, int P,
                                 const std::string& process_name,
                                 const graph::TaskGraph* g) {
  if (P < 1)
    throw std::invalid_argument("trace_to_chrome_json: P must be >= 1");
  constexpr double kScale = 1e6;  // simulated seconds -> microseconds
  constexpr int kMaxLanes = 64;
  const bool per_processor = P <= kMaxLanes;

  obs::TraceWriter writer;
  const int pid = writer.new_process(process_name);

  // Greedy lane assignment over records in start order: a lane is free
  // once the previous occupant's end is <= the new start. A valid
  // schedule never needs more than P lanes in per-processor mode.
  std::vector<double> lane_free;
  if (per_processor) {
    lane_free.assign(static_cast<std::size_t>(P), 0.0);
    for (int lane = 0; lane < P; ++lane)
      writer.set_thread_name(pid, lane, "proc " + std::to_string(lane));
  }
  for (const auto& r : trace.records()) {
    const std::string label =
        g != nullptr && r.task >= 0 && r.task < g->num_tasks()
            ? g->name(r.task)
            : "task " + std::to_string(r.task);
    const std::vector<std::pair<std::string, std::string>> args = {
        {"task", std::to_string(r.task)},
        {"procs", std::to_string(r.procs)}};
    const int spans = per_processor ? r.procs : 1;
    int placed = 0;
    for (std::size_t lane = 0; lane < lane_free.size() && placed < spans;
         ++lane) {
      if (lane_free[lane] <= r.start) {
        lane_free[lane] = r.end;
        writer.complete_span(pid, static_cast<int>(lane), label, "sim",
                             r.start * kScale, (r.end - r.start) * kScale,
                             args);
        ++placed;
      }
    }
    while (placed < spans) {
      lane_free.push_back(r.end);
      const int lane = static_cast<int>(lane_free.size()) - 1;
      if (!per_processor)
        writer.set_thread_name(pid, lane, "slot " + std::to_string(lane));
      writer.complete_span(pid, lane, label, "sim", r.start * kScale,
                           (r.end - r.start) * kScale, args);
      ++placed;
    }
  }

  for (const auto& iv : trace.utilization_profile())
    writer.counter(pid, "procs in use", iv.begin * kScale,
                   {{"procs", static_cast<double>(iv.procs_in_use)}});
  return writer.to_json();
}

sim::Trace read_trace_csv(const std::string& csv) {
  std::istringstream in(csv);
  std::string line;
  int line_no = 0;
  sim::Trace trace;
  auto fail = [&](const std::string& message) {
    throw std::invalid_argument("read_trace_csv: line " +
                                std::to_string(line_no) + ": " + message);
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1) {
      if (line != "task,name,start,end,procs")
        fail("unexpected header '" + line + "'");
      continue;
    }
    // Split on commas; the name field may not contain commas (our writer
    // never quotes it) so a simple split suffices.
    std::vector<std::string> fields;
    std::size_t pos = 0;
    while (true) {
      const auto comma = line.find(',', pos);
      fields.push_back(line.substr(pos, comma - pos));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (fields.size() != 5) fail("expected 5 fields");
    try {
      const int task = std::stoi(fields[0]);
      const double start = std::stod(fields[2]);
      const double end = std::stod(fields[3]);
      const int procs = std::stoi(fields[4]);
      trace.record_start(task, start, procs);
      trace.record_end(task, end);
    } catch (const std::invalid_argument& e) {
      fail(e.what());
    } catch (const std::exception& e) {
      fail(std::string("bad numeric field: ") + e.what());
    }
  }
  return trace;
}

std::string trace_to_csv(const graph::TaskGraph& g, const sim::Trace& trace) {
  std::ostringstream os;
  os.precision(17);  // lossless double round trip
  os << "task,name,start,end,procs\n";
  for (const auto& r : trace.records()) {
    std::string name =
        (r.task >= 0 && r.task < g.num_tasks()) ? g.name(r.task) : "?";
    // The name column is informational only; keep the format trivially
    // splittable by replacing any commas (e.g. "gemm(0,1,2)").
    for (char& ch : name)
      if (ch == ',') ch = ';';
    os << r.task << ',' << name << ',' << r.start << ',' << r.end << ','
       << r.procs << '\n';
  }
  return os.str();
}

}  // namespace moldsched::io
