#include "moldsched/io/json.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "moldsched/model/general_model.hpp"
#include "moldsched/obs/trace_writer.hpp"

namespace moldsched::io {

namespace {

// ---------------------------------------------------------------------------
// parse_json

class JsonParser {
 public:
  JsonParser(const std::string& text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  /// Errors carry byte offset plus line/column so a malformed frame in a
  /// multi-line document (or a server log) pinpoints the defect.
  [[noreturn]] void fail(const std::string& what) const {
    const LineColumn lc = line_column(text_, pos_);
    throw std::invalid_argument("parse_json: " + what + " at byte " +
                                std::to_string(pos_) + " (line " +
                                std::to_string(lc.line) + ", column " +
                                std::to_string(lc.column) + ")");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  void append_utf8(std::string& out, unsigned long cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  unsigned long parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned long value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned long>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<unsigned long>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<unsigned long>(c - 'A' + 10);
      else
        fail("invalid \\u escape digit");
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned long cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              fail("unpaired surrogate");
            pos_ += 2;
            const unsigned long low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  [[nodiscard]] bool digit_at(std::size_t i) const {
    return i < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[i])) != 0;
  }

  /// Strict JSON number grammar: '-'? ('0' | [1-9][0-9]*) ('.' [0-9]+)?
  /// ([eE] [+-]? [0-9]+)?. strtod alone is too permissive (it accepts
  /// "+1", ".5", "1.", "0x10", "inf"), so the token is scanned first and
  /// strtod only converts what the grammar admitted.
  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digit_at(pos_)) {
      pos_ = start;
      fail("malformed number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
      if (digit_at(pos_)) {
        pos_ = start;
        fail("malformed number (leading zero)");
      }
    } else {
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit_at(pos_)) {
        pos_ = start;
        fail("malformed number (bare decimal point)");
      }
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!digit_at(pos_)) {
        pos_ = start;
        fail("malformed number (missing exponent digits)");
      }
      while (digit_at(pos_)) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) {
      pos_ = start;
      fail("number '" + token + "' outside the finite double range");
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = value;
    return v;
  }

  JsonValue parse_value(int depth) {
    if (depth > max_depth_) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    const std::size_t value_start = pos_;
    JsonValue v;
    v.offset = value_start;
    switch (c) {
      case '{': {
        ++pos_;
        v.type = JsonValue::Type::kObject;
        skip_ws();
        if (peek() == '}') { ++pos_; return v; }
        while (true) {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':');
          v.object.emplace_back(std::move(key), parse_value(depth + 1));
          skip_ws();
          if (peek() == ',') { ++pos_; continue; }
          expect('}');
          return v;
        }
      }
      case '[': {
        ++pos_;
        v.type = JsonValue::Type::kArray;
        skip_ws();
        if (peek() == ']') { ++pos_; return v; }
        while (true) {
          v.array.push_back(parse_value(depth + 1));
          skip_ws();
          if (peek() == ',') { ++pos_; continue; }
          expect(']');
          return v;
        }
      }
      case '"':
        v.type = JsonValue::Type::kString;
        v.string = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.type = JsonValue::Type::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return v;
      default: {
        JsonValue num = parse_number();
        num.offset = value_start;
        return num;
      }
    }
  }

  const std::string& text_;
  int max_depth_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Remaining control characters as \u00XX — required for valid
          // JSON when echoing untrusted strings (svc task names).
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr)
    throw std::out_of_range("JsonValue::at: no member '" + key + "'");
  return *v;
}

LineColumn line_column(const std::string& text, std::size_t offset) {
  LineColumn lc;
  const std::size_t end = std::min(offset, text.size());
  for (std::size_t i = 0; i < end; ++i) {
    if (text[i] == '\n') {
      ++lc.line;
      lc.column = 1;
    } else {
      ++lc.column;
    }
  }
  return lc;
}

JsonValue parse_json(const std::string& text, int max_depth) {
  if (max_depth < 1)
    throw std::invalid_argument("parse_json: max_depth must be >= 1");
  return JsonParser(text, max_depth).parse_document();
}

std::string graph_to_json(const graph::TaskGraph& g) {
  std::ostringstream os;
  os << "{\"tasks\":[";
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    if (v > 0) os << ',';
    const auto& m = g.model_of(v);
    os << "{\"id\":" << v << ",\"name\":\"" << json_escape(g.name(v))
       << "\",\"kind\":\"" << model::to_string(m.kind()) << '"';
    if (const auto* gm = dynamic_cast<const model::GeneralModel*>(&m)) {
      os << ",\"w\":" << gm->w() << ",\"d\":" << gm->d()
         << ",\"c\":" << gm->c();
      if (gm->pbar() != model::GeneralParams::kUnboundedParallelism)
        os << ",\"pbar\":" << gm->pbar();
    } else {
      os << ",\"model\":\"" << json_escape(m.describe()) << '"';
    }
    os << '}';
  }
  os << "],\"edges\":[";
  bool first = true;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    for (const graph::TaskId s : g.successors(v)) {
      if (!first) os << ',';
      first = false;
      os << '[' << v << ',' << s << ']';
    }
  }
  os << "]}";
  return os.str();
}

std::string trace_to_json(const sim::Trace& trace) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"makespan\":" << trace.makespan() << ",\"records\":[";
  bool first = true;
  for (const auto& r : trace.records()) {
    if (!first) os << ',';
    first = false;
    os << "{\"task\":" << r.task << ",\"start\":" << r.start
       << ",\"end\":" << r.end << ",\"procs\":" << r.procs << '}';
  }
  os << "]}";
  return os.str();
}

std::string trace_to_chrome_json(const sim::Trace& trace, int P,
                                 const std::string& process_name,
                                 const graph::TaskGraph* g) {
  if (P < 1)
    throw std::invalid_argument("trace_to_chrome_json: P must be >= 1");
  constexpr double kScale = 1e6;  // simulated seconds -> microseconds
  constexpr int kMaxLanes = 64;
  const bool per_processor = P <= kMaxLanes;

  obs::TraceWriter writer;
  const int pid = writer.new_process(process_name);

  // Greedy lane assignment over records in start order: a lane is free
  // once the previous occupant's end is <= the new start. A valid
  // schedule never needs more than P lanes in per-processor mode.
  std::vector<double> lane_free;
  if (per_processor) {
    lane_free.assign(static_cast<std::size_t>(P), 0.0);
    for (int lane = 0; lane < P; ++lane)
      writer.set_thread_name(pid, lane, "proc " + std::to_string(lane));
  }
  for (const auto& r : trace.records()) {
    const std::string label =
        g != nullptr && r.task >= 0 && r.task < g->num_tasks()
            ? g->name(r.task)
            : "task " + std::to_string(r.task);
    const std::vector<std::pair<std::string, std::string>> args = {
        {"task", std::to_string(r.task)},
        {"procs", std::to_string(r.procs)}};
    const int spans = per_processor ? r.procs : 1;
    int placed = 0;
    for (std::size_t lane = 0; lane < lane_free.size() && placed < spans;
         ++lane) {
      if (lane_free[lane] <= r.start) {
        lane_free[lane] = r.end;
        writer.complete_span(pid, static_cast<int>(lane), label, "sim",
                             r.start * kScale, (r.end - r.start) * kScale,
                             args);
        ++placed;
      }
    }
    while (placed < spans) {
      lane_free.push_back(r.end);
      const int lane = static_cast<int>(lane_free.size()) - 1;
      if (!per_processor)
        writer.set_thread_name(pid, lane, "slot " + std::to_string(lane));
      writer.complete_span(pid, lane, label, "sim", r.start * kScale,
                           (r.end - r.start) * kScale, args);
      ++placed;
    }
  }

  for (const auto& iv : trace.utilization_profile())
    writer.counter(pid, "procs in use", iv.begin * kScale,
                   {{"procs", static_cast<double>(iv.procs_in_use)}});
  return writer.to_json();
}

sim::Trace read_trace_csv(const std::string& csv) {
  std::istringstream in(csv);
  std::string line;
  int line_no = 0;
  sim::Trace trace;
  auto fail = [&](const std::string& message) {
    throw std::invalid_argument("read_trace_csv: line " +
                                std::to_string(line_no) + ": " + message);
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1) {
      if (line != "task,name,start,end,procs")
        fail("unexpected header '" + line + "'");
      continue;
    }
    // Split on commas; the name field may not contain commas (our writer
    // never quotes it) so a simple split suffices.
    std::vector<std::string> fields;
    std::size_t pos = 0;
    while (true) {
      const auto comma = line.find(',', pos);
      fields.push_back(line.substr(pos, comma - pos));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (fields.size() != 5) fail("expected 5 fields");
    try {
      const int task = std::stoi(fields[0]);
      const double start = std::stod(fields[2]);
      const double end = std::stod(fields[3]);
      const int procs = std::stoi(fields[4]);
      trace.record_start(task, start, procs);
      trace.record_end(task, end);
    } catch (const std::invalid_argument& e) {
      fail(e.what());
    } catch (const std::exception& e) {
      fail(std::string("bad numeric field: ") + e.what());
    }
  }
  return trace;
}

std::string trace_to_csv(const graph::TaskGraph& g, const sim::Trace& trace) {
  std::ostringstream os;
  os.precision(17);  // lossless double round trip
  os << "task,name,start,end,procs\n";
  for (const auto& r : trace.records()) {
    std::string name =
        (r.task >= 0 && r.task < g.num_tasks()) ? g.name(r.task) : "?";
    // The name column is informational only; keep the format trivially
    // splittable by replacing any commas (e.g. "gemm(0,1,2)").
    for (char& ch : name)
      if (ch == ',') ch = ';';
    os << r.task << ',' << name << ',' << r.start << ',' << r.end << ','
       << r.procs << '\n';
  }
  return os.str();
}

}  // namespace moldsched::io
