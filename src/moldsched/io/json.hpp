// Minimal JSON export of graphs and traces (no external dependency).
// The output is plain, stable JSON suitable for plotting scripts.
#pragma once

#include <string>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/sim/trace.hpp"

namespace moldsched::io {

/// {"tasks": [{"id", "name", "model", ...params}], "edges": [[u, v]]}.
/// Eq. (1)-family tasks carry their (w, d, c, pbar) parameters;
/// arbitrary models carry only their description.
[[nodiscard]] std::string graph_to_json(const graph::TaskGraph& g);

/// {"makespan": ..., "records": [{"task", "start", "end", "procs"}]}.
[[nodiscard]] std::string trace_to_json(const sim::Trace& trace);

/// Chrome trace-event JSON of a completed trace, loadable in Perfetto /
/// chrome://tracing: one process named `process_name`, one lane per
/// processor (each task spans every lane it occupies) when P <= 64,
/// else one lane per concurrently running task, plus a "procs in use"
/// counter track. Simulated seconds map to trace seconds. Task names
/// come from `g` when given, else "task <id>".
[[nodiscard]] std::string trace_to_chrome_json(
    const sim::Trace& trace, int P, const std::string& process_name = "sim",
    const graph::TaskGraph* g = nullptr);

/// CSV with one row per scheduled task: task,name,start,end,procs.
[[nodiscard]] std::string trace_to_csv(const graph::TaskGraph& g,
                                       const sim::Trace& trace);

/// Parses the trace_to_csv format back into a Trace (the name column is
/// ignored), enabling externally produced schedules to be validated with
/// sim::validate_schedule. Throws std::invalid_argument with a line
/// number on malformed rows or an unexpected header.
[[nodiscard]] sim::Trace read_trace_csv(const std::string& csv);

}  // namespace moldsched::io
