// Minimal JSON export of graphs and traces (no external dependency),
// plus a small DOM parser so tools and tests can read the JSON the
// library itself writes (BENCH_*.json, metrics dumps) back in.
// The output is plain, stable JSON suitable for plotting scripts.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/sim/trace.hpp"

namespace moldsched::io {

/// One parsed JSON value. Object members keep their source order (the
/// library's writers emit deterministic key order; round-trips preserve
/// it). Numbers are doubles — adequate for every file this library
/// produces.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;
  /// Byte offset of the value's first character in the parsed document
  /// (0 for values not produced by parse_json). Consumers that keep the
  /// source text can turn this into a line/column via line_column() —
  /// that is how semantic errors in imported documents (ingest) point at
  /// the offending value, not just syntactic ones.
  std::size_t offset = 0;

  [[nodiscard]] bool is_null() const noexcept { return type == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type == Type::kObject;
  }

  /// First member with the given key, or nullptr (also for non-objects).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// find(key), throwing std::out_of_range when absent.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
};

/// Strict recursive-descent parse of one JSON document. Throws
/// std::invalid_argument (with byte offset, line and column) on syntax
/// errors, trailing garbage, numbers outside the strict JSON grammar
/// (leading zeros, bare '.', missing exponent digits) or outside the
/// finite double range, or nesting deeper than `max_depth` levels. The
/// depth limit exists because this parser also sits on the svc network
/// boundary, where a hostile peer could otherwise exhaust the stack with
/// "[[[[...". \uXXXX escapes are decoded to UTF-8 (surrogate pairs
/// included); unpaired surrogates are rejected.
inline constexpr int kDefaultMaxJsonDepth = 256;
[[nodiscard]] JsonValue parse_json(const std::string& text,
                                   int max_depth = kDefaultMaxJsonDepth);

/// 1-based line/column of the given byte offset in `text` (offsets past
/// the end clamp to one column past the last character). Shared by
/// parse_json's own diagnostics and by importers that report semantic
/// errors against a JsonValue::offset.
struct LineColumn {
  std::size_t line = 1;
  std::size_t column = 1;
};
[[nodiscard]] LineColumn line_column(const std::string& text,
                                     std::size_t offset);

/// Escapes `s` for embedding inside a JSON string literal: quotes,
/// backslashes and every control character below 0x20 (the common ones
/// as \n-style shorthands, the rest as \u00XX). Exposed because every
/// JSON writer in the library — and the svc wire encoder, which echoes
/// client-supplied names back over the network — must agree on it.
[[nodiscard]] std::string json_escape(const std::string& s);

/// {"tasks": [{"id", "name", "model", ...params}], "edges": [[u, v]]}.
/// Eq. (1)-family tasks carry their (w, d, c, pbar) parameters;
/// arbitrary models carry only their description.
[[nodiscard]] std::string graph_to_json(const graph::TaskGraph& g);

/// {"makespan": ..., "records": [{"task", "start", "end", "procs"}]}.
[[nodiscard]] std::string trace_to_json(const sim::Trace& trace);

/// Chrome trace-event JSON of a completed trace, loadable in Perfetto /
/// chrome://tracing: one process named `process_name`, one lane per
/// processor (each task spans every lane it occupies) when P <= 64,
/// else one lane per concurrently running task, plus a "procs in use"
/// counter track. Simulated seconds map to trace seconds. Task names
/// come from `g` when given, else "task <id>".
[[nodiscard]] std::string trace_to_chrome_json(
    const sim::Trace& trace, int P, const std::string& process_name = "sim",
    const graph::TaskGraph* g = nullptr);

/// CSV with one row per scheduled task: task,name,start,end,procs.
[[nodiscard]] std::string trace_to_csv(const graph::TaskGraph& g,
                                       const sim::Trace& trace);

/// Parses the trace_to_csv format back into a Trace (the name column is
/// ignored), enabling externally produced schedules to be validated with
/// sim::validate_schedule. Throws std::invalid_argument with a line
/// number on malformed rows or an unexpected header.
[[nodiscard]] sim::Trace read_trace_csv(const std::string& csv);

}  // namespace moldsched::io
