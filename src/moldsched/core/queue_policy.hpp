// Ordering of the waiting queue Q of Algorithm 1. The paper inserts
// "without any priority considerations" (FIFO) but remarks that priority
// rules may help in practice; the alternatives here feed the
// queue-policy ablation benchmark.
#pragma once

#include <string>

#include "moldsched/model/speedup_model.hpp"

namespace moldsched::core {

enum class QueuePolicy {
  kFifo,                 ///< reveal order (the paper's Algorithm 1)
  kLifo,                 ///< newest available first
  kLargestWorkFirst,     ///< descending sequential time t(1)
  kLongestMinTimeFirst,  ///< descending t_min (critical-path-ish)
  kSmallestAllocFirst,   ///< ascending final allocation (packs gaps)
};

[[nodiscard]] std::string to_string(QueuePolicy policy);

/// Priority key for a task under `policy`; larger keys are served first.
/// `alloc` is the task's final processor allocation, P the platform size.
/// FIFO/LIFO are handled positionally by the scheduler and get key 0.
[[nodiscard]] double priority_key(QueuePolicy policy,
                                  const model::SpeedupModel& m, int alloc,
                                  int P);

}  // namespace moldsched::core
