#include "moldsched/core/online_scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "moldsched/sim/event_queue.hpp"
#include "moldsched/sim/platform.hpp"

namespace moldsched::core {

OnlineScheduler::OnlineScheduler(const graph::TaskGraph& g, int P,
                                 const Allocator& alloc, QueuePolicy policy)
    : graph_(g), P_(P), allocator_(alloc), policy_(policy) {
  if (P < 1) throw std::invalid_argument("OnlineScheduler: P must be >= 1");
  g.validate();
}

namespace {

struct QueueEntry {
  graph::TaskId task;
  double key;          // priority key; larger first
  std::uint64_t seq;   // reveal order; lower first among equal keys
};

}  // namespace

ScheduleResult OnlineScheduler::run() const {
  const int n = graph_.num_tasks();
  ScheduleResult result;
  result.allocation.assign(static_cast<std::size_t>(n), 0);
  result.ready_time.assign(static_cast<std::size_t>(n), -1.0);

  sim::EventQueue events;
  sim::Platform platform(P_);
  std::vector<int> pending_preds(static_cast<std::size_t>(n));
  for (graph::TaskId v = 0; v < n; ++v)
    pending_preds[static_cast<std::size_t>(v)] = graph_.in_degree(v);

  std::vector<QueueEntry> queue;  // waiting queue Q, kept in service order
  std::uint64_t reveal_seq = 0;

  auto reveal = [&](graph::TaskId task, double now) {
    const int alloc = allocator_.allocate(graph_.model_of(task), P_);
    if (alloc < 1 || alloc > P_)
      throw std::logic_error("OnlineScheduler: allocator returned " +
                             std::to_string(alloc) + " for task " +
                             graph_.name(task) + ", outside [1, " +
                             std::to_string(P_) + "]");
    result.allocation[static_cast<std::size_t>(task)] = alloc;
    result.ready_time[static_cast<std::size_t>(task)] = now;

    const QueueEntry entry{
        task, priority_key(policy_, graph_.model_of(task), alloc, P_),
        reveal_seq++};
    switch (policy_) {
      case QueuePolicy::kFifo:
        queue.push_back(entry);
        break;
      case QueuePolicy::kLifo:
        queue.insert(queue.begin(), entry);
        break;
      default: {
        // Stable descending order by key: insert before the first entry
        // with a strictly smaller key.
        auto it = std::find_if(queue.begin(), queue.end(),
                               [&](const QueueEntry& e) {
                                 return e.key < entry.key;
                               });
        queue.insert(it, entry);
        break;
      }
    }
  };

  auto try_start_all = [&](double now) {
    // Algorithm 1, lines 7-11: scan the whole queue; start every task
    // that fits on the idle processors.
    auto it = queue.begin();
    while (it != queue.end()) {
      const graph::TaskId task = it->task;
      const int alloc = result.allocation[static_cast<std::size_t>(task)];
      if (alloc <= platform.available()) {
        platform.acquire(alloc);
        result.trace.record_start(task, now, alloc);
        events.schedule(now + graph_.model_of(task).time(alloc), task);
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
  };

  // Time 0: sources become available in id order.
  for (graph::TaskId v = 0; v < n; ++v)
    if (pending_preds[static_cast<std::size_t>(v)] == 0) reveal(v, 0.0);
  try_start_all(0.0);

  while (!events.empty()) {
    const auto batch = events.pop_simultaneous();
    const double now = events.now();
    result.num_events += batch.size();

    std::vector<graph::TaskId> newly_ready;
    for (const auto& ev : batch) {
      const auto task = static_cast<graph::TaskId>(ev.payload);
      result.trace.record_end(task, now);
      platform.release(result.allocation[static_cast<std::size_t>(task)]);
      for (const graph::TaskId s : graph_.successors(task))
        if (--pending_preds[static_cast<std::size_t>(s)] == 0)
          newly_ready.push_back(s);
    }
    // Reveal simultaneously available tasks in id order: deterministic,
    // and it realizes the adversarial instances' worst-case queueing.
    std::sort(newly_ready.begin(), newly_ready.end());
    for (const graph::TaskId v : newly_ready) reveal(v, now);

    try_start_all(now);
  }

  if (!queue.empty())
    throw std::logic_error(
        "OnlineScheduler: deadlock — waiting tasks but no pending events");
  if (result.trace.num_records() != static_cast<std::size_t>(n))
    throw std::logic_error("OnlineScheduler: not every task was scheduled");

  result.makespan = result.trace.makespan();
  return result;
}

ScheduleResult schedule_online(const graph::TaskGraph& g, int P,
                               const Allocator& alloc, QueuePolicy policy) {
  return OnlineScheduler(g, P, alloc, policy).run();
}

}  // namespace moldsched::core
