#include "moldsched/core/online_scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "moldsched/graph/algorithms.hpp"
#include "moldsched/sim/event_queue.hpp"
#include "moldsched/sim/platform.hpp"

namespace moldsched::core {

OnlineScheduler::OnlineScheduler(const graph::TaskGraph& g, int P,
                                 const Allocator& alloc, QueuePolicy policy,
                                 obs::Observer* observer)
    : graph_(g), P_(P), allocator_(alloc), policy_(policy),
      observer_(observer) {
  if (P < 1) throw std::invalid_argument("OnlineScheduler: P must be >= 1");
  g.validate();
}

namespace {

struct QueueEntry {
  graph::TaskId task;
  int alloc;           // final allocation, denormalized off ScheduleResult
  double key;          // priority key; larger first
  std::uint64_t seq;   // reveal order; lower first among equal keys
};

}  // namespace

ScheduleResult OnlineScheduler::run() const {
  const int n = graph_.num_tasks();
  ScheduleResult result;
  result.allocation.assign(static_cast<std::size_t>(n), 0);
  result.ready_time.assign(static_cast<std::size_t>(n), -1.0);

  sim::EventQueue events;
  events.reserve(static_cast<std::size_t>(std::min(n, P_)));
  sim::Platform platform(P_);
  std::vector<int> pending_preds(static_cast<std::size_t>(n));
  for (graph::TaskId v = 0; v < n; ++v)
    pending_preds[static_cast<std::size_t>(v)] = graph_.in_degree(v);

  std::vector<QueueEntry> queue;  // waiting queue Q, kept in service order
  std::uint64_t reveal_seq = 0;
  // Smallest allocation among queued tasks: when it exceeds the idle
  // processor count, no queued task can start and the Algorithm 1 queue
  // scan is provably a no-op, so try_start_all skips it outright. The
  // value is exact after every scan (recomputed in-pass) and only ever
  // an under-estimate between scans (reveals lower it), so skipping is
  // behavior-identical to scanning.
  int min_waiting_alloc = P_ + 1;

  // Instrumentation state, touched only when an observer is attached so
  // unobserved runs pay a single pointer check per decision.
  int alloc_cap = -1;          // LPA mu-threshold ceil(mu P), if any
  std::vector<int> layers;     // hop depth per task (0 = source)
  std::vector<double> start_time;
  int procs_in_use = 0;
  double waiting_area = 0.0;    // sum of alloc * (start - ready)
  double executing_area = 0.0;  // sum of alloc * exec_time
  if (observer_ != nullptr) {
    events.set_observer(observer_);
    if (const auto* lpa = dynamic_cast<const LpaAllocator*>(&allocator_))
      alloc_cap = lpa->cap(P_);
    const std::vector<double> hops(static_cast<std::size_t>(n), 1.0);
    const std::vector<double> tops = graph::top_levels(graph_, hops);
    layers.reserve(static_cast<std::size_t>(n));
    for (const double t : tops) layers.push_back(static_cast<int>(t + 0.5));
    start_time.assign(static_cast<std::size_t>(n), 0.0);
  }

  auto reveal = [&](graph::TaskId task, double now) {
    const int alloc = allocator_.allocate(graph_.model_of(task), P_);
    if (alloc < 1 || alloc > P_)
      throw std::logic_error("OnlineScheduler: allocator returned " +
                             std::to_string(alloc) + " for task " +
                             graph_.name(task) + ", outside [1, " +
                             std::to_string(P_) + "]");
    result.allocation[static_cast<std::size_t>(task)] = alloc;
    result.ready_time[static_cast<std::size_t>(task)] = now;

    const QueueEntry entry{
        task, alloc, priority_key(policy_, graph_.model_of(task), alloc, P_),
        reveal_seq++};
    min_waiting_alloc = std::min(min_waiting_alloc, alloc);
    switch (policy_) {
      case QueuePolicy::kFifo:
        queue.push_back(entry);
        break;
      case QueuePolicy::kLifo:
        queue.insert(queue.begin(), entry);
        break;
      default: {
        // Stable descending order by key: insert before the first entry
        // with a strictly smaller key.
        auto it = std::find_if(queue.begin(), queue.end(),
                               [&](const QueueEntry& e) {
                                 return e.key < entry.key;
                               });
        queue.insert(it, entry);
        break;
      }
    }
    if (observer_ != nullptr)
      observer_->on_task_ready(task, graph_.name(task), now, alloc, alloc_cap,
                               queue.size());
  };

  auto try_start_all = [&](double now) {
    // Fast path: nothing waiting, or even the smallest waiting
    // allocation exceeds the idle processors — the scan cannot start
    // anything, so skip it (amortized O(1) per event when saturated).
    if (queue.empty() || min_waiting_alloc > platform.available()) return;
    min_waiting_alloc = P_ + 1;
    // Algorithm 1, lines 7-11: scan the whole queue; start every task
    // that fits on the idle processors. platform.available() only
    // shrinks during the pass, so entries skipped earlier stay
    // unstartable and one pass both starts everything startable and
    // recomputes the exact minimum over the survivors.
    auto it = queue.begin();
    while (it != queue.end()) {
      const graph::TaskId task = it->task;
      const int alloc = it->alloc;
      if (alloc <= platform.available()) {
        platform.acquire(alloc);
        result.trace.record_start(task, now, alloc);
        events.schedule(now + graph_.model_of(task).time(alloc), task);
        it = queue.erase(it);
        if (observer_ != nullptr) {
          const auto t = static_cast<std::size_t>(task);
          const double waited = now - result.ready_time[t];
          start_time[t] = now;
          procs_in_use += alloc;
          waiting_area += static_cast<double>(alloc) * waited;
          observer_->on_task_start(task, graph_.name(task),
                                   graph_.model_of(task).describe(), now,
                                   alloc, waited, layers[t], queue.size(),
                                   procs_in_use);
        }
      } else {
        min_waiting_alloc = std::min(min_waiting_alloc, alloc);
        ++it;
      }
    }
  };

  // Time 0: sources become available in id order.
  for (graph::TaskId v = 0; v < n; ++v)
    if (pending_preds[static_cast<std::size_t>(v)] == 0) reveal(v, 0.0);
  try_start_all(0.0);

  std::vector<sim::Event> batch;        // reused across iterations
  std::vector<graph::TaskId> newly_ready;
  while (!events.empty()) {
    events.pop_simultaneous_into(batch);
    const double now = events.now();
    result.num_events += batch.size();

    newly_ready.clear();
    for (const auto& ev : batch) {
      const auto task = static_cast<graph::TaskId>(ev.payload);
      result.trace.record_end(task, now);
      const int alloc = result.allocation[static_cast<std::size_t>(task)];
      platform.release(alloc);
      if (observer_ != nullptr) {
        const auto t = static_cast<std::size_t>(task);
        const double exec_time = now - start_time[t];
        procs_in_use -= alloc;
        executing_area += static_cast<double>(alloc) * exec_time;
        observer_->on_task_end(task, now, alloc, exec_time, queue.size(),
                               procs_in_use);
      }
      for (const graph::TaskId s : graph_.successors(task))
        if (--pending_preds[static_cast<std::size_t>(s)] == 0)
          newly_ready.push_back(s);
    }
    // Reveal simultaneously available tasks in id order: deterministic,
    // and it realizes the adversarial instances' worst-case queueing.
    std::sort(newly_ready.begin(), newly_ready.end());
    for (const graph::TaskId v : newly_ready) reveal(v, now);

    try_start_all(now);
  }

  if (!queue.empty())
    throw std::logic_error(
        "OnlineScheduler: deadlock — waiting tasks but no pending events");
  if (result.trace.num_records() != static_cast<std::size_t>(n))
    throw std::logic_error("OnlineScheduler: not every task was scheduled");

  result.makespan = result.trace.makespan();
  if (observer_ != nullptr)
    observer_->on_sim_done(result.makespan, waiting_area, executing_area,
                           result.num_events);
  return result;
}

ScheduleResult schedule_online(const graph::TaskGraph& g, int P,
                               const Allocator& alloc, QueuePolicy policy,
                               obs::Observer* observer) {
  return OnlineScheduler(g, P, alloc, policy, observer).run();
}

}  // namespace moldsched::core
