// Algorithm 1 of the paper: event-driven online list scheduling of a
// moldable task graph.
//
// The scheduler discovers a task only when its last predecessor
// completes (the online reveal rule); it then fixes the task's processor
// allocation via the supplied Allocator and inserts it into the waiting
// queue Q. At time 0 and at every completion it scans Q and starts every
// task that fits on the currently idle processors.
#pragma once

#include <cstdint>
#include <vector>

#include "moldsched/core/allocator.hpp"
#include "moldsched/core/queue_policy.hpp"
#include "moldsched/graph/task_graph.hpp"
#include "moldsched/obs/observer.hpp"
#include "moldsched/sim/trace.hpp"

namespace moldsched::core {

struct ScheduleResult {
  sim::Trace trace;
  double makespan = 0.0;
  /// Final allocation per task (index = TaskId).
  std::vector<int> allocation;
  /// Instant each task became available (last predecessor finished).
  std::vector<double> ready_time;
  /// Number of completion events processed.
  std::uint64_t num_events = 0;
};

class OnlineScheduler {
 public:
  /// Throws std::invalid_argument for an empty/cyclic graph or P < 1.
  /// The allocator reference must outlive run(). An optional observer
  /// receives every scheduling decision (task ready/start/end, event
  /// queue activity, final Lemma areas); nullptr — the default — keeps
  /// the hot path free of instrumentation beyond one pointer check.
  OnlineScheduler(const graph::TaskGraph& g, int P, const Allocator& alloc,
                  QueuePolicy policy = QueuePolicy::kFifo,
                  obs::Observer* observer = nullptr);

  /// Simulates the schedule to completion and returns the result.
  /// Throws std::logic_error if the allocator ever returns an allocation
  /// outside [1, P] (which would deadlock the list scheduler).
  [[nodiscard]] ScheduleResult run() const;

 private:
  const graph::TaskGraph& graph_;
  int P_;
  const Allocator& allocator_;
  QueuePolicy policy_;
  obs::Observer* observer_;
};

/// One-call convenience wrapper.
[[nodiscard]] ScheduleResult schedule_online(
    const graph::TaskGraph& g, int P, const Allocator& alloc,
    QueuePolicy policy = QueuePolicy::kFifo,
    obs::Observer* observer = nullptr);

}  // namespace moldsched::core
