#include "moldsched/core/intervals.hpp"

#include <cmath>
#include <stdexcept>

namespace moldsched::core {

IntervalBreakdown classify_intervals(const sim::Trace& trace, int P,
                                     double mu) {
  if (P < 1)
    throw std::invalid_argument("classify_intervals: P must be >= 1");
  if (!(mu > 0.0) || mu > 0.38196601125010515 + 1e-12)
    throw std::invalid_argument(
        "classify_intervals: mu must lie in (0, (3-sqrt(5))/2]");

  IntervalBreakdown b;
  b.low_threshold = static_cast<int>(
      std::ceil(mu * static_cast<double>(P) - 1e-12));
  b.high_threshold = static_cast<int>(
      std::ceil((1.0 - mu) * static_cast<double>(P) - 1e-12));
  b.makespan = trace.makespan();

  for (const auto& iv : trace.utilization_profile()) {
    const double len = iv.duration();
    if (iv.procs_in_use <= 0)
      b.t0 += len;
    else if (iv.procs_in_use < b.low_threshold)
      b.t1 += len;
    else if (iv.procs_in_use < b.high_threshold)
      b.t2 += len;
    else
      b.t3 += len;
  }
  return b;
}

double lemma3_lhs(const IntervalBreakdown& b, double mu) {
  return mu * b.t2 + (1.0 - mu) * b.t3;
}

double lemma4_lhs(const IntervalBreakdown& b, double mu, double beta) {
  if (!(beta >= 1.0))
    throw std::invalid_argument("lemma4_lhs: beta must be >= 1");
  return b.t1 / beta + mu * b.t2;
}

}  // namespace moldsched::core
