#include "moldsched/core/queue_policy.hpp"

#include <stdexcept>

namespace moldsched::core {

std::string to_string(QueuePolicy policy) {
  switch (policy) {
    case QueuePolicy::kFifo: return "fifo";
    case QueuePolicy::kLifo: return "lifo";
    case QueuePolicy::kLargestWorkFirst: return "largest-work";
    case QueuePolicy::kLongestMinTimeFirst: return "longest-min-time";
    case QueuePolicy::kSmallestAllocFirst: return "smallest-alloc";
  }
  throw std::logic_error("to_string: unknown QueuePolicy");
}

double priority_key(QueuePolicy policy, const model::SpeedupModel& m,
                    int alloc, int P) {
  switch (policy) {
    case QueuePolicy::kFifo:
    case QueuePolicy::kLifo:
      return 0.0;
    case QueuePolicy::kLargestWorkFirst:
      return m.time(1);
    case QueuePolicy::kLongestMinTimeFirst:
      return m.min_time(P);
    case QueuePolicy::kSmallestAllocFirst:
      return -static_cast<double>(alloc);
  }
  throw std::logic_error("priority_key: unknown QueuePolicy");
}

}  // namespace moldsched::core
