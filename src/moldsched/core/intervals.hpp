// The interval decomposition of Section 4.2: the schedule splits into
// maximal intervals of constant processor utilization p(I), classified by
//   I1: p(I) in (0, ceil(mu P)),
//   I2: p(I) in [ceil(mu P), ceil((1-mu) P)),
//   I3: p(I) in [ceil((1-mu) P), P],
// with total durations T1, T2, T3 and T = T1 + T2 + T3. Lemmas 3 and 4
// bound mu*T2 + (1-mu)*T3 by alpha * A_min / P and T1/beta + mu*T2 by
// C_min; the tests assert both on every simulated schedule.
#pragma once

#include "moldsched/sim/trace.hpp"

namespace moldsched::core {

struct IntervalBreakdown {
  double t0 = 0.0;  ///< interior idle time (zero utilization); 0 for any
                    ///< list schedule — kept as a sanity witness
  double t1 = 0.0;
  double t2 = 0.0;
  double t3 = 0.0;
  int low_threshold = 0;   ///< ceil(mu P)
  int high_threshold = 0;  ///< ceil((1-mu) P)
  double makespan = 0.0;

  [[nodiscard]] double total() const noexcept { return t0 + t1 + t2 + t3; }
};

/// Classifies the trace's utilization profile. Throws on P < 1 or mu
/// outside (0, (3-sqrt(5))/2].
[[nodiscard]] IntervalBreakdown classify_intervals(const sim::Trace& trace,
                                                   int P, double mu);

/// Left-hand side of Lemma 3: mu*T2 + (1-mu)*T3 (to compare against
/// alpha * A_min / P).
[[nodiscard]] double lemma3_lhs(const IntervalBreakdown& b, double mu);

/// Left-hand side of Lemma 4: T1/beta + mu*T2 (to compare against C_min).
[[nodiscard]] double lemma4_lhs(const IntervalBreakdown& b, double mu,
                                double beta);

}  // namespace moldsched::core
