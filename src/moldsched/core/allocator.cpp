#include "moldsched/core/allocator.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace moldsched::core {

namespace {

constexpr double kMuMax = 0.38196601125010515;  // (3 - sqrt(5)) / 2

// Relative tolerance when comparing beta_p against delta: the constraint
// boundary is often hit exactly by construction (adversarial instances),
// and we must not reject an allocation through rounding noise.
constexpr double kBetaTol = 1e-9;

}  // namespace

LpaAllocator::LpaAllocator(double mu) : mu_(mu) {
  if (!(mu > 0.0) || mu > kMuMax + 1e-12)
    throw std::invalid_argument(
        "LpaAllocator: mu must lie in (0, (3-sqrt(5))/2]");
  delta_ = (1.0 - 2.0 * mu_) / (mu_ * (1.0 - mu_));
}

int LpaAllocator::cap(int P) const {
  if (P < 1) throw std::invalid_argument("LpaAllocator::cap: P must be >= 1");
  return static_cast<int>(
      std::ceil(mu_ * static_cast<double>(P) - 1e-12));
}

LpaDecision LpaAllocator::decide(const model::SpeedupModel& m, int P) const {
  if (P < 1)
    throw std::invalid_argument("LpaAllocator::decide: P must be >= 1");
  LpaDecision d;
  d.p_max = m.max_useful_procs(P);
  d.t_min = m.time(d.p_max);
  d.a_min = m.min_area(P);
  const double threshold = delta_ * d.t_min * (1.0 + kBetaTol);

  if (m.kind() == model::ModelKind::kArbitrary) {
    // No monotonicity guarantees: solve the Step 1 program by exhaustive
    // scan over [1, p_max].
    int best = d.p_max;  // beta(p_max) = 1 <= delta, always feasible
    double best_area = m.area(d.p_max);
    for (int p = 1; p <= d.p_max; ++p) {
      if (m.time(p) <= threshold && m.area(p) < best_area) {
        best = p;
        best_area = m.area(p);
      }
    }
    d.initial = best;
  } else {
    // Lemma 1: t is non-increasing and a non-decreasing on [1, p_max], so
    // the smallest p with t(p) <= delta * t_min minimizes the area ratio.
    int lo = 1;
    int hi = d.p_max;
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (m.time(mid) <= threshold)
        hi = mid;
      else
        lo = mid + 1;
    }
    d.initial = lo;
  }

  d.alpha = m.area(d.initial) / d.a_min;
  d.beta = m.time(d.initial) / d.t_min;
  const int limit = cap(P);
  d.final_alloc = d.initial > limit ? limit : d.initial;
  return d;
}

int LpaAllocator::allocate(const model::SpeedupModel& m, int P) const {
  return decide(m, P).final_alloc;
}

std::string LpaAllocator::name() const {
  std::ostringstream os;
  os << "lpa(mu=" << mu_ << ")";
  return os.str();
}

}  // namespace moldsched::core
