#include "moldsched/core/allocator.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "moldsched/obs/metrics.hpp"

namespace moldsched::core {

namespace {

constexpr double kMuMax = 0.38196601125010515;  // (3 - sqrt(5)) / 2

std::uint64_t fnv1a_string(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Relative tolerance when comparing beta_p against delta: the constraint
// boundary is often hit exactly by construction (adversarial instances),
// and we must not reject an allocation through rounding noise.
constexpr double kBetaTol = 1e-9;

}  // namespace

LpaAllocator::LpaAllocator(double mu) : mu_(mu) {
  if (!(mu > 0.0) || mu > kMuMax + 1e-12)
    throw std::invalid_argument(
        "LpaAllocator: mu must lie in (0, (3-sqrt(5))/2]");
  delta_ = (1.0 - 2.0 * mu_) / (mu_ * (1.0 - mu_));
}

int LpaAllocator::cap(int P) const {
  if (P < 1) throw std::invalid_argument("LpaAllocator::cap: P must be >= 1");
  return static_cast<int>(
      std::ceil(mu_ * static_cast<double>(P) - 1e-12));
}

LpaDecision LpaAllocator::decide(const model::SpeedupModel& m, int P) const {
  if (P < 1)
    throw std::invalid_argument("LpaAllocator::decide: P must be >= 1");
  LpaDecision d;
  d.p_max = m.max_useful_procs(P);
  d.t_min = m.time(d.p_max);
  d.a_min = m.min_area(P);
  const double threshold = delta_ * d.t_min * (1.0 + kBetaTol);

  if (m.kind() == model::ModelKind::kArbitrary) {
    // No monotonicity guarantees: solve the Step 1 program by exhaustive
    // scan over [1, p_max].
    int best = d.p_max;  // beta(p_max) = 1 <= delta, always feasible
    double best_area = m.area(d.p_max);
    for (int p = 1; p <= d.p_max; ++p) {
      if (m.time(p) <= threshold && m.area(p) < best_area) {
        best = p;
        best_area = m.area(p);
      }
    }
    d.initial = best;
  } else {
    // Lemma 1: t is non-increasing and a non-decreasing on [1, p_max], so
    // the smallest p with t(p) <= delta * t_min minimizes the area ratio.
    int lo = 1;
    int hi = d.p_max;
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (m.time(mid) <= threshold)
        hi = mid;
      else
        lo = mid + 1;
    }
    d.initial = lo;
  }

  d.alpha = m.area(d.initial) / d.a_min;
  d.beta = m.time(d.initial) / d.t_min;
  const int limit = cap(P);
  d.final_alloc = d.initial > limit ? limit : d.initial;
  return d;
}

int LpaAllocator::allocate(const model::SpeedupModel& m, int P) const {
  return decide(m, P).final_alloc;
}

std::string LpaAllocator::name() const {
  std::ostringstream os;
  os << "lpa(mu=" << mu_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// DecisionCache

std::size_t DecisionCache::KeyHash::operator()(const Key& key) const noexcept {
  // This hash sits on the cache's hit path, so latency matters more
  // than mixing strength: multiply each word by its own odd constant
  // (independent multiplies, which the CPU overlaps), xor-reduce, and
  // run one murmur3-style finalizer for avalanche. A serial round-per-
  // word chain here costs as much as the LPA search it short-cuts; the
  // distinct constants keep word swaps from cancelling in the xor.
  std::uint64_t h = key.allocator_tag * 0x9e3779b97f4a7c15ULL ^
                    key.words[0] * 0xbf58476d1ce4e5b9ULL ^
                    key.words[1] * 0x94d049bb133111ebULL ^
                    key.words[2] * 0x2545f4914f6cdd1dULL ^
                    key.words[3] * 0xd6e8feb86659fd93ULL ^
                    ((static_cast<std::uint64_t>(key.kind) << 32) |
                     static_cast<std::uint32_t>(key.P)) *
                        0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 29;
  return static_cast<std::size_t>(h);
}

struct DecisionCache::RegistryCounters {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;

  static const RegistryCounters& get() {
    static const RegistryCounters counters{
        obs::default_registry().counter("core.alloc_cache.hits"),
        obs::default_registry().counter("core.alloc_cache.misses"),
        obs::default_registry().counter("core.alloc_cache.evictions")};
    return counters;
  }
};

DecisionCache::DecisionCache(std::size_t capacity)
    : capacity_(capacity), registry_(RegistryCounters::get()) {
  if (capacity == 0)
    throw std::invalid_argument("DecisionCache: capacity must be >= 1");
}

std::array<std::uint64_t, 6> DecisionCache::key_words(
    const Key& key) noexcept {
  return {key.allocator_tag, key.words[0], key.words[1], key.words[2],
          key.words[3],
          (static_cast<std::uint64_t>(key.kind) << 32) |
              static_cast<std::uint32_t>(key.P)};
}

// Canonical atomic seqlock (Boehm, MSPC'12). Readers retry nothing: an
// inconsistent or mismatching snapshot simply reports a miss and the
// caller falls back to the mutexed map.
int DecisionCache::l1_lookup(const Key& key,
                             std::size_t hash) const noexcept {
  const L1Slot& s = l1_[hash & (kL1Slots - 1)];
  const std::uint64_t seq0 = s.seq.load(std::memory_order_acquire);
  if ((seq0 & 1U) != 0) return -1;  // write in flight
  std::array<std::uint64_t, 6> got;
  for (std::size_t i = 0; i < got.size(); ++i)
    got[i] = s.words[i].load(std::memory_order_relaxed);
  const int alloc = s.alloc.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (s.seq.load(std::memory_order_relaxed) != seq0) return -1;  // torn
  if (got != key_words(key)) return -1;  // different key in this slot
  return alloc;  // -1 when the slot has never been filled
}

// Callers hold mutex_, making the writer side single-threaded.
void DecisionCache::l1_store(const Key& key, std::size_t hash,
                             int alloc) const noexcept {
  L1Slot& s = l1_[hash & (kL1Slots - 1)];
  const std::uint64_t seq0 = s.seq.load(std::memory_order_relaxed);
  s.seq.store(seq0 + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  const auto words = key_words(key);
  for (std::size_t i = 0; i < words.size(); ++i)
    s.words[i].store(words[i], std::memory_order_relaxed);
  s.alloc.store(alloc, std::memory_order_relaxed);
  s.seq.store(seq0 + 2, std::memory_order_release);
}

void DecisionCache::l1_erase(const Key& key) const noexcept {
  const std::size_t hash = KeyHash{}(key);
  L1Slot& s = l1_[hash & (kL1Slots - 1)];
  // Sole writer (mutex_ held): plain relaxed reads see the truth.
  const auto words = key_words(key);
  for (std::size_t i = 0; i < words.size(); ++i)
    if (s.words[i].load(std::memory_order_relaxed) != words[i])
      return;  // slot holds a different key; leave it alone
  l1_store(key, hash, -1);
}

int DecisionCache::lookup(const Key& key) const {
  const std::size_t hash = KeyHash{}(key);
  int found = l1_lookup(key, hash);
  if (found < 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      found = it->second;
      l1_store(key, hash, found);  // promote: next lookup is lock-free
    }
  }
  // Statistics use plain load+store increments rather than fetch_add:
  // the read-modify-write would dominate a hit. Concurrent hits may
  // drop a count — tolerable for monitoring, and still race-free.
  if (found < 0) {
    misses_.store(misses_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    registry_.misses.add();
    return -1;
  }
  hits_.store(hits_.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
  registry_.hits.add();
  return found;
}

void DecisionCache::insert(const Key& key, int alloc) {
  bool evicted = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!map_.emplace(key, alloc).second) return;  // idempotent re-insert
    if (map_.size() > capacity_) {
      // The ring holds exactly the keys of map_ in insertion order, so
      // the slot at evict_next_ is the oldest live entry; reuse its slot
      // for the newcomer to keep the ring aligned with the map.
      map_.erase(fifo_[evict_next_]);
      l1_erase(fifo_[evict_next_]);
      fifo_[evict_next_] = key;
      evict_next_ = (evict_next_ + 1) % capacity_;
      evicted = true;
    } else {
      fifo_.push_back(key);
    }
    l1_store(key, KeyHash{}(key), alloc);
  }
  if (evicted) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    registry_.evictions.add();
  }
}

std::size_t DecisionCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

std::uint64_t DecisionCache::hits() const {
  return hits_.load(std::memory_order_relaxed);
}

std::uint64_t DecisionCache::misses() const {
  return misses_.load(std::memory_order_relaxed);
}

std::uint64_t DecisionCache::evictions() const {
  return evictions_.load(std::memory_order_relaxed);
}

void DecisionCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  fifo_.clear();
  evict_next_ = 0;
  // Publish empty slots; all-zero words never match a real key (the
  // kind<<32|P word is nonzero for every legal P >= 1).
  for (std::size_t i = 0; i < kL1Slots; ++i) {
    L1Slot& s = l1_[i];
    const std::uint64_t seq0 = s.seq.load(std::memory_order_relaxed);
    s.seq.store(seq0 + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    for (auto& w : s.words) w.store(0, std::memory_order_relaxed);
    s.alloc.store(-1, std::memory_order_relaxed);
    s.seq.store(seq0 + 2, std::memory_order_release);
  }
}

const std::shared_ptr<DecisionCache>& DecisionCache::process_wide() {
  static const std::shared_ptr<DecisionCache> cache =
      std::make_shared<DecisionCache>();
  return cache;
}

// ---------------------------------------------------------------------------
// CachingAllocator

CachingAllocator::CachingAllocator(const Allocator& inner,
                                   std::shared_ptr<DecisionCache> cache)
    : inner_(inner),
      cache_(cache ? std::move(cache) : std::make_shared<DecisionCache>()),
      allocator_tag_(fnv1a_string(inner.name())) {}

CachingAllocator::CachingAllocator(std::shared_ptr<const Allocator> inner,
                                   std::shared_ptr<DecisionCache> cache)
    : owned_((inner == nullptr
                  ? throw std::invalid_argument("CachingAllocator: null inner")
                  : void(0),
              std::move(inner))),
      inner_(*owned_),
      cache_(cache ? std::move(cache) : std::make_shared<DecisionCache>()),
      allocator_tag_(fnv1a_string(inner_.name())) {}

int CachingAllocator::allocate(const model::SpeedupModel& m, int P) const {
  const model::ModelFingerprint fp = m.fingerprint();
  if (!fp.cacheable) return inner_.allocate(m, P);
  const DecisionCache::Key key{allocator_tag_, fp.words,
                               static_cast<std::uint32_t>(m.kind()), P};
  const int cached = cache_->lookup(key);
  if (cached >= 0) return cached;
  const int alloc = inner_.allocate(m, P);
  cache_->insert(key, alloc);
  return alloc;
}

std::string CachingAllocator::name() const {
  return "cached(" + inner_.name() + ")";
}

}  // namespace moldsched::core
