// Processor allocation strategies, chiefly Algorithm 2 of the paper: the
// two-step Local Processor Allocation (LPA) with the mu-cap.
#pragma once

#include <string>

#include "moldsched/model/speedup_model.hpp"

namespace moldsched::core {

/// Strategy interface: pick the (final) processor allocation for a task,
/// given its speedup model and the platform size. Implementations must
/// return a value in [1, P] and must be deterministic.
class Allocator {
 public:
  virtual ~Allocator() = default;

  [[nodiscard]] virtual int allocate(const model::SpeedupModel& m,
                                     int P) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Full breakdown of one Algorithm 2 decision, for tests and diagnostics.
struct LpaDecision {
  int p_max = 0;          ///< Eq. (5)
  double t_min = 0.0;     ///< t(p_max)
  double a_min = 0.0;     ///< minimum area
  int initial = 0;        ///< Step 1 result (min alpha s.t. beta <= delta)
  int final_alloc = 0;    ///< Step 2 result (capped at ceil(mu P))
  double alpha = 0.0;     ///< a(initial) / a_min
  double beta = 0.0;      ///< t(initial) / t_min
};

/// Algorithm 2. Step 1 finds the allocation minimizing the area ratio
/// alpha_p = a(p)/a_min subject to the time-ratio constraint
/// beta_p = t(p)/t_min <= delta(mu) = (1-2mu)/(mu(1-mu)). Step 2 caps the
/// result at ceil(mu P).
///
/// For the monotonic Eq. (1) family, alpha_p is non-decreasing and beta_p
/// non-increasing on [1, p_max] (Lemma 1), so Step 1 reduces to the
/// smallest feasible p, found by binary search in O(log P). For arbitrary
/// models a linear scan solves the same program exactly.
class LpaAllocator : public Allocator {
 public:
  /// Throws std::invalid_argument unless 0 < mu <= (3 - sqrt(5))/2 (the
  /// feasibility condition delta(mu) >= 1 of Section 4.2).
  explicit LpaAllocator(double mu);

  [[nodiscard]] int allocate(const model::SpeedupModel& m,
                             int P) const override;
  [[nodiscard]] std::string name() const override;

  /// Runs both steps and reports every intermediate quantity.
  [[nodiscard]] LpaDecision decide(const model::SpeedupModel& m, int P) const;

  [[nodiscard]] double mu() const noexcept { return mu_; }
  /// delta(mu) = (1-2mu)/(mu(1-mu)), the beta constraint bound.
  [[nodiscard]] double delta() const noexcept { return delta_; }
  /// ceil(mu P): the Step 2 allocation cap.
  [[nodiscard]] int cap(int P) const;

 private:
  double mu_;
  double delta_;
};

}  // namespace moldsched::core
