// Processor allocation strategies, chiefly Algorithm 2 of the paper: the
// two-step Local Processor Allocation (LPA) with the mu-cap, plus the
// memoizing CachingAllocator decorator that lets experiment grids reuse
// identical decisions instead of re-running the Step 1 search.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "moldsched/model/speedup_model.hpp"

namespace moldsched::core {

/// Strategy interface: pick the (final) processor allocation for a task,
/// given its speedup model and the platform size. Implementations must
/// return a value in [1, P] and must be deterministic.
class Allocator {
 public:
  virtual ~Allocator() = default;

  [[nodiscard]] virtual int allocate(const model::SpeedupModel& m,
                                     int P) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Full breakdown of one Algorithm 2 decision, for tests and diagnostics.
struct LpaDecision {
  int p_max = 0;          ///< Eq. (5)
  double t_min = 0.0;     ///< t(p_max)
  double a_min = 0.0;     ///< minimum area
  int initial = 0;        ///< Step 1 result (min alpha s.t. beta <= delta)
  int final_alloc = 0;    ///< Step 2 result (capped at ceil(mu P))
  double alpha = 0.0;     ///< a(initial) / a_min
  double beta = 0.0;      ///< t(initial) / t_min
};

/// Algorithm 2. Step 1 finds the allocation minimizing the area ratio
/// alpha_p = a(p)/a_min subject to the time-ratio constraint
/// beta_p = t(p)/t_min <= delta(mu) = (1-2mu)/(mu(1-mu)). Step 2 caps the
/// result at ceil(mu P).
///
/// For the monotonic Eq. (1) family, alpha_p is non-decreasing and beta_p
/// non-increasing on [1, p_max] (Lemma 1), so Step 1 reduces to the
/// smallest feasible p, found by binary search in O(log P). For arbitrary
/// models a linear scan solves the same program exactly.
class LpaAllocator : public Allocator {
 public:
  /// Throws std::invalid_argument unless 0 < mu <= (3 - sqrt(5))/2 (the
  /// feasibility condition delta(mu) >= 1 of Section 4.2).
  explicit LpaAllocator(double mu);

  [[nodiscard]] int allocate(const model::SpeedupModel& m,
                             int P) const override;
  [[nodiscard]] std::string name() const override;

  /// Runs both steps and reports every intermediate quantity.
  [[nodiscard]] LpaDecision decide(const model::SpeedupModel& m, int P) const;

  [[nodiscard]] double mu() const noexcept { return mu_; }
  /// delta(mu) = (1-2mu)/(mu(1-mu)), the beta constraint bound.
  [[nodiscard]] double delta() const noexcept { return delta_; }
  /// ceil(mu P): the Step 2 allocation cap.
  [[nodiscard]] int cap(int P) const;

 private:
  double mu_;
  double delta_;
};

/// Thread-safe bounded store of memoized allocation decisions, shared
/// between CachingAllocator instances. Entries are keyed by the model's
/// exact fingerprint, the platform size, and a tag identifying the
/// wrapped allocator (so one store can serve many (allocator, mu) pairs
/// without cross-talk). Eviction is FIFO at capacity, which keeps
/// lookups deterministic for any fixed query sequence.
///
/// Internally two-level: the authoritative FIFO map sits behind a mutex,
/// fronted by a direct-mapped, lock-free L1 of seqlock-published slots —
/// steady-state hits cost a handful of relaxed atomic loads, no lock.
/// An L1 slot conflict only costs the mutex probe, never correctness.
///
/// Hit/miss/eviction totals are mirrored into obs::default_registry()
/// under "core.alloc_cache.*" so --metrics runs expose cache
/// effectiveness alongside the engine counters.
class DecisionCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// Throws std::invalid_argument on capacity == 0.
  explicit DecisionCache(std::size_t capacity = kDefaultCapacity);

  struct Key {
    std::uint64_t allocator_tag = 0;  ///< hash of the inner allocator's name()
    std::array<std::uint64_t, 4> words{};  ///< ModelFingerprint payload
    std::uint32_t kind = 0;                ///< model::ModelKind
    std::int32_t P = 0;

    [[nodiscard]] bool operator==(const Key&) const = default;
  };

  /// Returns the cached allocation, or -1 on a miss.
  [[nodiscard]] int lookup(const Key& key) const;

  /// Inserts (idempotently); evicts the oldest entry when full.
  void insert(const Key& key, int alloc);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;

  void clear();

  /// Process-wide store used by the experiment suites, so repeated LPA
  /// decisions across a whole job grid collapse into one search each.
  [[nodiscard]] static const std::shared_ptr<DecisionCache>& process_wide();

 private:
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& key) const noexcept;
  };

  /// One direct-mapped L1 slot. The six key words (tag, fingerprint[4],
  /// kind<<32|P) plus the allocation are published under a seqlock:
  /// writers (serialized by mutex_) bump seq odd, store, bump even;
  /// readers snapshot the words between two matching even seq loads.
  /// Every word is an atomic with relaxed ordering inside the protocol,
  /// so the race is defined behavior; a torn or stale snapshot fails the
  /// seq or key comparison and falls back to the mutexed map.
  struct L1Slot {
    std::atomic<std::uint64_t> seq{0};  // odd while a write is in flight
    std::array<std::atomic<std::uint64_t>, 6> words{};
    std::atomic<int> alloc{-1};
  };
  static constexpr std::size_t kL1Slots = 1 << 12;  // direct-mapped

  static std::array<std::uint64_t, 6> key_words(const Key& key) noexcept;
  [[nodiscard]] int l1_lookup(const Key& key, std::size_t hash) const noexcept;
  // The two writers require mutex_ held (single-writer seqlock); const
  // because the hit-promoting path runs under the const lookup().
  void l1_store(const Key& key, std::size_t hash, int alloc) const noexcept;
  void l1_erase(const Key& key) const noexcept;

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<Key, int, KeyHash> map_;
  std::vector<Key> fifo_;      // insertion ring; fifo_[evict_next_] dies next
  std::size_t evict_next_ = 0;
  std::unique_ptr<L1Slot[]> l1_{new L1Slot[kL1Slots]};
  // Statistics live outside the mutex (relaxed atomics): the lookup hit
  // path is the whole point of the cache, so its critical section holds
  // only the map probe.
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  // Registry instruments resolved once at construction: the name lookup
  // takes the registry mutex, far too slow for the per-decision path.
  struct RegistryCounters;
  const RegistryCounters& registry_;
};

/// Memoizing decorator: forwards to `inner` on the first sighting of a
/// (model fingerprint, P) pair and serves every repeat from the cache.
/// Models without a cacheable fingerprint always pass through, so the
/// decorated allocator is decision-for-decision identical to the inner
/// one — the property check::differential_check asserts byte-for-byte.
/// The inner allocator must outlive this object and be deterministic.
class CachingAllocator : public Allocator {
 public:
  /// Wraps `inner`, memoizing into `cache` (a fresh private store when
  /// null). Pass DecisionCache::process_wide() to share decisions across
  /// allocator instances, e.g. between the jobs of a suite.
  explicit CachingAllocator(const Allocator& inner,
                            std::shared_ptr<DecisionCache> cache = nullptr);

  /// Owning variant for registry use: keeps `inner` alive for the
  /// decorator's lifetime. Throws std::invalid_argument on null.
  explicit CachingAllocator(std::shared_ptr<const Allocator> inner,
                            std::shared_ptr<DecisionCache> cache = nullptr);

  [[nodiscard]] int allocate(const model::SpeedupModel& m,
                             int P) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const DecisionCache& cache() const noexcept { return *cache_; }
  [[nodiscard]] const Allocator& inner() const noexcept { return inner_; }

 private:
  std::shared_ptr<const Allocator> owned_;  // may be null (reference ctor)
  const Allocator& inner_;                  // bound after owned_
  std::shared_ptr<DecisionCache> cache_;
  std::uint64_t allocator_tag_;
};

}  // namespace moldsched::core
