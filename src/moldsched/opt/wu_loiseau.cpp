#include "moldsched/opt/wu_loiseau.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "moldsched/analysis/bounds.hpp"
#include "moldsched/graph/algorithms.hpp"
#include "moldsched/sched/offline.hpp"

namespace moldsched::opt {

namespace {

double allotment_area(const graph::TaskGraph& g, const std::vector<int>& alloc) {
  double area = 0.0;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    area += g.model_of(v).area(alloc[static_cast<std::size_t>(v)]);
  return area;
}

/// Evaluates the canonical allotment of deadline `d` with bottom-level
/// priorities; the workhorse of both WL schedulers.
sim::Trace evaluate_allotment(const graph::TaskGraph& g, int P,
                              const std::vector<int>& alloc) {
  const int n = g.num_tasks();
  std::vector<double> times(static_cast<std::size_t>(n));
  for (graph::TaskId v = 0; v < n; ++v)
    times[static_cast<std::size_t>(v)] =
        g.model_of(v).time(alloc[static_cast<std::size_t>(v)]);
  const auto priorities = graph::bottom_levels(g, times);
  return sched::list_schedule_with_allocations(g, P, alloc, priorities);
}

void keep_best(WlResult& best, const graph::TaskGraph& g, int P,
               std::vector<int> alloc) {
  auto trace = evaluate_allotment(g, P, alloc);
  const double makespan = trace.makespan();
  ++best.evaluations;
  if (makespan < best.makespan) {
    best.makespan = makespan;
    best.trace = std::move(trace);
    best.allocation = std::move(alloc);
  }
}

/// [lower, upper] deadline anchors: the fastest any single task can run
/// and the slowest sequential task.
std::pair<double, double> deadline_anchors(const graph::TaskGraph& g, int P) {
  double lower = std::numeric_limits<double>::infinity();
  double upper = 0.0;
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    const auto& m = g.model_of(v);
    lower = std::min(lower, m.min_time(P));
    upper = std::max(upper, m.time(1));
  }
  upper = std::max(upper, lower * (1.0 + 1e-9));
  return {lower, upper};
}

}  // namespace

double canonical_target(const graph::TaskGraph& g, int P) {
  g.validate();
  if (P < 1) throw std::invalid_argument("canonical_target: P < 1");
  const auto [anchor_lo, anchor_hi] = deadline_anchors(g, P);
  const double lemma2 = analysis::optimal_makespan_lower_bound(g, P);
  // area(gamma(d)) is non-increasing in d (a larger deadline only ever
  // relaxes the allotment) while P*d grows, so the excess
  //   h(d) = area(gamma(d)) - P*d
  // crosses zero exactly once and bisection applies.
  auto excess = [&](double d) {
    return allotment_area(g, sched::area_minimal_allotment(g, P, d)) -
           static_cast<double>(P) * d;
  };
  double lo = std::min(anchor_lo, lemma2);
  double hi = anchor_hi;
  if (excess(lo) <= 0.0) return std::max(lo, lemma2);
  if (excess(hi) > 0.0) {
    // Even the all-minimal-area allotment overflows P * anchor_hi: the
    // fixed point is the area bound of that terminal allotment.
    const double d = allotment_area(g, sched::area_minimal_allotment(
                                           g, P, anchor_hi)) /
                     static_cast<double>(P);
    return std::max(d, lemma2);
  }
  for (int i = 0; i < 64; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (excess(mid) > 0.0)
      lo = mid;
    else
      hi = mid;
  }
  return std::max(hi, lemma2);
}

WlResult wl_canonical_schedule(const graph::TaskGraph& g, int P,
                               int ladder_points) {
  g.validate();
  if (P < 1) throw std::invalid_argument("wl_canonical_schedule: P < 1");
  if (ladder_points < 2)
    throw std::invalid_argument(
        "wl_canonical_schedule: ladder_points must be >= 2");

  WlResult best;
  best.makespan = std::numeric_limits<double>::infinity();
  best.canonical_target = canonical_target(g, P);

  const auto [anchor_lo, anchor_hi] = deadline_anchors(g, P);
  (void)anchor_lo;
  const double lo = best.canonical_target;
  const double hi = std::max(anchor_hi, lo) * (1.0 + 1e-9);
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);
  for (int i = 0; i < ladder_points; ++i) {
    const double frac =
        static_cast<double>(i) / static_cast<double>(ladder_points - 1);
    const double d = std::exp(log_lo + frac * (log_hi - log_lo));
    keep_best(best, g, P, sched::area_minimal_allotment(g, P, d));
  }
  return best;
}

WlResult wl_compress_schedule(const graph::TaskGraph& g, int P,
                              int max_rounds) {
  g.validate();
  if (P < 1) throw std::invalid_argument("wl_compress_schedule: P < 1");
  const int n = g.num_tasks();
  if (max_rounds == 0) max_rounds = 8 * n + 64;
  if (max_rounds < 1)
    throw std::invalid_argument("wl_compress_schedule: max_rounds must be >= 1");

  WlResult best;
  best.makespan = std::numeric_limits<double>::infinity();

  // Start from the cheapest allotment there is (deadline = infinity
  // selects the minimal-area point of every task, extended over
  // area-flat plateaus).
  auto alloc = sched::area_minimal_allotment(
      g, P, std::numeric_limits<double>::infinity());
  keep_best(best, g, P, alloc);
  best.canonical_target = best.makespan;

  std::vector<double> times(static_cast<std::size_t>(n));
  for (int round = 0; round < max_rounds; ++round) {
    for (graph::TaskId v = 0; v < n; ++v)
      times[static_cast<std::size_t>(v)] =
          g.model_of(v).time(alloc[static_cast<std::size_t>(v)]);

    // Widen the critical-path task whose next useful allocation buys the
    // most time per unit of extra area.
    const auto critical = graph::critical_path_tasks(g, times);
    graph::TaskId pick = -1;
    int pick_procs = 0;
    double pick_gain = 0.0;
    for (const graph::TaskId v : critical) {
      const auto idx = static_cast<std::size_t>(v);
      const auto& m = g.model_of(v);
      const int p_max = m.max_useful_procs(P);
      const double t_now = times[idx];
      const double a_now = m.area(alloc[idx]);
      for (int p = alloc[idx] + 1; p <= p_max; ++p) {
        const double t_next = m.time(p);
        if (t_next >= t_now) continue;  // not useful: no strict speedup
        const double extra_area =
            std::max(m.area(p) - a_now, 1e-12 * (1.0 + a_now));
        const double gain = (t_now - t_next) / extra_area;
        if (pick == -1 || gain > pick_gain) {
          pick = v;
          pick_procs = p;
          pick_gain = gain;
        }
        break;  // only the *next* useful point; later rounds go further
      }
    }
    if (pick == -1) break;  // critical path fully compressed
    alloc[static_cast<std::size_t>(pick)] = pick_procs;
    keep_best(best, g, P, alloc);
  }
  return best;
}

namespace {

sched::SchedulerSpec wl_spec(std::string name,
                             WlResult (*schedule)(const graph::TaskGraph&,
                                                  int)) {
  sched::SchedulerSpec spec;
  spec.name = std::move(name);
  spec.runner = [schedule](const graph::TaskGraph& g, int P) {
    auto r = schedule(g, P);
    core::ScheduleResult out;
    out.trace = std::move(r.trace);
    out.makespan = r.makespan;
    out.allocation = std::move(r.allocation);
    out.ready_time.assign(static_cast<std::size_t>(g.num_tasks()), 0.0);
    return out;
  };
  return spec;
}

}  // namespace

sched::SchedulerSpec wl_canonical_spec() {
  return wl_spec("wl-canonical", [](const graph::TaskGraph& g, int P) {
    return wl_canonical_schedule(g, P);
  });
}

sched::SchedulerSpec wl_compress_spec() {
  return wl_spec("wl-compress", [](const graph::TaskGraph& g, int P) {
    return wl_compress_schedule(g, P);
  });
}

std::vector<sched::SchedulerSpec> offline_reference_suite() {
  std::vector<sched::SchedulerSpec> suite;
  suite.push_back(wl_canonical_spec());
  suite.push_back(wl_compress_spec());
  return suite;
}

}  // namespace moldsched::opt
