// Convenience layer over the branch-and-bound oracle: T_opt as an
// optional value, the "exact-topt" registry spec (so the exact optimum
// can stand in anywhere a scheduler can — replay, annealing objective,
// comparison tables), and the frozen small-instance corpus that the
// true-ratio golden pins and `moldsched_run --suite exact` are measured
// on.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "moldsched/graph/task_graph.hpp"
#include "moldsched/opt/bnb.hpp"
#include "moldsched/sched/registry.hpp"

namespace moldsched::opt {

/// Budgets tuned for test-tier use: generous enough that every frozen
/// small-corpus instance solves to kExact, bounded enough that a runaway
/// instance degrades instead of hanging a suite.
[[nodiscard]] BnbOptions oracle_defaults();

/// T_opt when the search proves optimality within the budgets, nullopt
/// otherwise (instances over the caps also yield nullopt instead of
/// throwing — callers probing arbitrary instances shouldn't need a size
/// pre-check).
[[nodiscard]] std::optional<double> exact_topt(
    const graph::TaskGraph& g, int P,
    const BnbOptions& options = oracle_defaults());

/// Registry spec "exact-topt": runs the oracle and exposes the optimal
/// schedule as a core::ScheduleResult. Throws std::invalid_argument on
/// instances over the caps and std::runtime_error when the budget
/// truncates the proof — adv::evaluate_ratio treats both as a refused
/// candidate, which is exactly how an exact objective should degrade on
/// instances it cannot certify.
[[nodiscard]] sched::SchedulerSpec exact_topt_spec(
    const BnbOptions& options = oracle_defaults());

/// One frozen instance of the true-ratio corpus.
struct SmallInstance {
  std::string name;
  graph::TaskGraph graph;
  int P = 2;
  double mu = 0.3;  ///< LPA parameter the ratio tables use on it
};

/// The frozen <= 20-task corpus behind the T/T_opt golden pins and the
/// exact suite. Deterministic and append-only by convention: changing an
/// existing instance invalidates recorded pins, which is exactly what
/// the pins are for.
[[nodiscard]] std::vector<SmallInstance> small_corpus();

}  // namespace moldsched::opt
